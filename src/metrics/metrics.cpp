#include "metrics/metrics.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ethshard::metrics {

double static_edge_cut(const graph::Graph& g,
                       const partition::Partition& p) {
  const std::uint64_t total = g.num_edges();
  if (total == 0) return 0.0;
  return static_cast<double>(partition::edge_cut_count(g, p)) /
         static_cast<double>(total);
}

double dynamic_edge_cut(const graph::Graph& g,
                        const partition::Partition& p) {
  const graph::Weight total = g.total_edge_weight();
  if (total == 0) return 0.0;
  return static_cast<double>(partition::edge_cut_weight(g, p)) /
         static_cast<double>(total);
}

double static_balance(const partition::Partition& p) {
  const auto sizes = p.shard_sizes();
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  for (std::uint64_t s : sizes) {
    total += s;
    max = std::max(max, s);
  }
  if (total == 0) return 1.0;
  return static_cast<double>(max) * static_cast<double>(p.k()) /
         static_cast<double>(total);
}

double dynamic_balance(const graph::Graph& g,
                       const partition::Partition& p) {
  const auto weights = p.shard_weights(g);
  graph::Weight total = 0;
  graph::Weight max = 0;
  for (graph::Weight w : weights) {
    total += w;
    max = std::max(max, w);
  }
  if (total == 0) return 1.0;
  return static_cast<double>(max) * static_cast<double>(p.k()) /
         static_cast<double>(total);
}

double normalized_balance(double balance, std::uint32_t k) {
  if (k <= 1) return 0.0;
  return (balance - 1.0) / (static_cast<double>(k) - 1.0);
}

WindowAccumulator::WindowAccumulator(std::uint32_t k) : k_(k), load_(k, 0) {
  ETHSHARD_CHECK(k >= 1);
}

void WindowAccumulator::record_interaction(partition::ShardId a,
                                           partition::ShardId b,
                                           graph::Weight w) {
  ETHSHARD_CHECK(a < k_ && b < k_);
  total_interactions_ += w;
  pair_interactions_ += w;
  if (a != b) cross_interactions_ += w;
}

void WindowAccumulator::record_self_interaction(graph::Weight w) {
  total_interactions_ += w;
}

void WindowAccumulator::record_activity(partition::ShardId s,
                                        graph::Weight w) {
  ETHSHARD_CHECK(s < k_);
  load_[s] += w;
  total_load_ += w;
}

double WindowAccumulator::dynamic_edge_cut() const {
  if (pair_interactions_ == 0) return 0.0;
  return static_cast<double>(cross_interactions_) /
         static_cast<double>(pair_interactions_);
}

double WindowAccumulator::dynamic_balance() const {
  if (total_load_ == 0) return 1.0;
  const graph::Weight max = *std::max_element(load_.begin(), load_.end());
  return static_cast<double>(max) * static_cast<double>(k_) /
         static_cast<double>(total_load_);
}

void WindowAccumulator::reset() {
  total_interactions_ = 0;
  pair_interactions_ = 0;
  cross_interactions_ = 0;
  std::fill(load_.begin(), load_.end(), 0);
  total_load_ = 0;
}

}  // namespace ethshard::metrics
