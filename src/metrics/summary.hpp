// Distribution summaries for the paper's box-and-whisker figures.
//
// Fig. 4 reports, per method and period, the min/max (whiskers), first and
// third quartiles (box) and median (band) of the per-window metric
// samples; Fig. 5 aggregates over the whole history.
#pragma once

#include <string>
#include <vector>

namespace ethshard::metrics {

/// Five-number summary plus mean and count.
struct Summary {
  double min = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double max = 0;
  double mean = 0;
  std::size_t count = 0;
};

/// Summarizes a sample set (values are copied and sorted internally).
/// Quantiles use linear interpolation between order statistics. An empty
/// input yields an all-zero summary with count == 0.
Summary summarize(std::vector<double> values);

/// Linear-interpolated quantile of *sorted* data; q in [0, 1].
/// Precondition: data non-empty and sorted ascending.
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Mean and sample standard deviation (n−1 denominator; stdev 0 when
/// n < 2). Used for cross-seed robustness reporting.
struct MeanStdev {
  double mean = 0;
  double stdev = 0;
  std::size_t count = 0;
};

MeanStdev mean_stdev(const std::vector<double>& values);

/// "min=… q1=… med=… q3=… max=… mean=…" with the given precision.
std::string to_string(const Summary& s, int precision = 4);

}  // namespace ethshard::metrics
