// Time-series utilities for metric streams.
//
// The simulator emits one sample per four-hour window; the figures
// aggregate them (weekly means in our Fig. 3 rendering, per-period
// box-plots in Fig. 4) and the TR-METIS trigger smooths them. These
// helpers centralize that arithmetic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "metrics/summary.hpp"
#include "util/sim_time.hpp"

namespace ethshard::metrics {

/// One (time, value) observation.
struct TimePoint {
  util::Timestamp time = 0;
  double value = 0;

  friend bool operator==(const TimePoint&, const TimePoint&) = default;
};

/// A time-ordered series of observations.
using TimeSeries = std::vector<TimePoint>;

/// Exponentially weighted moving average with smoothing factor alpha in
/// (0, 1]; alpha = 1 reproduces the input. The first observation seeds
/// the average. Preconditions: 0 < alpha <= 1.
TimeSeries ewma(const TimeSeries& series, double alpha);

/// Buckets observations into fixed intervals anchored at `origin` and
/// reduces each non-empty bucket with `reduce` (over the bucket's
/// values). The emitted point carries the bucket's start time.
/// Preconditions: interval > 0; series sorted by time.
TimeSeries resample(const TimeSeries& series, util::Timestamp origin,
                    util::Timestamp interval,
                    const std::function<double(const std::vector<double>&)>&
                        reduce);

/// resample() with arithmetic-mean reduction.
TimeSeries resample_mean(const TimeSeries& series, util::Timestamp origin,
                         util::Timestamp interval);

/// Summary statistics of the observations within [from, to).
Summary summarize_range(const TimeSeries& series, util::Timestamp from,
                        util::Timestamp to);

/// Largest observation gap (consecutive time delta); 0 for size < 2.
util::Timestamp max_gap(const TimeSeries& series);

/// Rolling mean over a trailing window of `count` observations
/// (count >= 1); shorter prefixes average what is available.
TimeSeries rolling_mean(const TimeSeries& series, std::size_t count);

}  // namespace ethshard::metrics
