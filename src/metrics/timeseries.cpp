#include "metrics/timeseries.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace ethshard::metrics {

TimeSeries ewma(const TimeSeries& series, double alpha) {
  ETHSHARD_CHECK(alpha > 0.0 && alpha <= 1.0);
  TimeSeries out;
  out.reserve(series.size());
  double acc = 0;
  bool seeded = false;
  for (const TimePoint& p : series) {
    acc = seeded ? (1 - alpha) * acc + alpha * p.value : p.value;
    seeded = true;
    out.push_back(TimePoint{p.time, acc});
  }
  return out;
}

TimeSeries resample(const TimeSeries& series, util::Timestamp origin,
                    util::Timestamp interval,
                    const std::function<double(const std::vector<double>&)>&
                        reduce) {
  ETHSHARD_CHECK(interval > 0);
  TimeSeries out;
  std::vector<double> bucket;
  bool open = false;
  util::Timestamp bucket_start = 0;

  auto flush = [&] {
    if (!open || bucket.empty()) return;
    out.push_back(TimePoint{bucket_start, reduce(bucket)});
    bucket.clear();
  };

  for (const TimePoint& p : series) {
    ETHSHARD_CHECK_MSG(p.time >= origin, "observation precedes origin");
    const util::Timestamp start =
        origin + (p.time - origin) / interval * interval;
    if (!open || start != bucket_start) {
      flush();
      bucket_start = start;
      open = true;
    }
    bucket.push_back(p.value);
  }
  flush();
  return out;
}

TimeSeries resample_mean(const TimeSeries& series, util::Timestamp origin,
                         util::Timestamp interval) {
  return resample(series, origin, interval,
                  [](const std::vector<double>& values) {
                    return std::accumulate(values.begin(), values.end(),
                                           0.0) /
                           static_cast<double>(values.size());
                  });
}

Summary summarize_range(const TimeSeries& series, util::Timestamp from,
                        util::Timestamp to) {
  std::vector<double> values;
  for (const TimePoint& p : series)
    if (p.time >= from && p.time < to) values.push_back(p.value);
  return summarize(std::move(values));
}

util::Timestamp max_gap(const TimeSeries& series) {
  util::Timestamp gap = 0;
  for (std::size_t i = 1; i < series.size(); ++i)
    gap = std::max(gap, series[i].time - series[i - 1].time);
  return gap;
}

TimeSeries rolling_mean(const TimeSeries& series, std::size_t count) {
  ETHSHARD_CHECK(count >= 1);
  TimeSeries out;
  out.reserve(series.size());
  double sum = 0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    sum += series[i].value;
    if (i >= count) sum -= series[i - count].value;
    const std::size_t have = std::min(i + 1, count);
    out.push_back(
        TimePoint{series[i].time, sum / static_cast<double>(have)});
  }
  return out;
}

}  // namespace ethshard::metrics
