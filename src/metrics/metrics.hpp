// The paper's evaluation metrics (§II-C, Eqs. 1 and 2).
//
//   edge-cut = Σ|C(p_i)| / |E|          (fraction of edges across shards)
//   balance  = max_i(|p_i|) · k / |V|   (most loaded shard vs average)
//
// *Static* variants count vertices and edges; *dynamic* variants weight
// them by how often they appear in transactions, which the paper reads as
// the executed cross-shard transaction ratio and the actual load balance.
// Ideal values: edge-cut 0, balance 1.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "partition/types.hpp"

namespace ethshard::metrics {

/// Eq. 1 on edge counts. Returns 0 for an edgeless graph.
double static_edge_cut(const graph::Graph& g, const partition::Partition& p);

/// Eq. 1 on edge weights (interaction frequencies).
double dynamic_edge_cut(const graph::Graph& g, const partition::Partition& p);

/// Eq. 2 on vertex counts. Returns 1 for an empty assignment.
double static_balance(const partition::Partition& p);

/// Eq. 2 on vertex weights (activity).
double dynamic_balance(const graph::Graph& g, const partition::Partition& p);

/// Fig. 5's normalization: (balance − 1) / (k − 1), mapping "perfect" to 0
/// and "everything in one shard" to 1 regardless of k. k = 1 maps to 0.
double normalized_balance(double balance, std::uint32_t k);

/// Accumulates the paper's per-window *dynamic* metrics during trace
/// replay. A window's dynamic edge-cut is the weighted fraction of its
/// interactions that crossed shards; its dynamic balance is Eq. 2 over the
/// activity observed in the window.
class WindowAccumulator {
 public:
  explicit WindowAccumulator(std::uint32_t k);

  /// One edge traversal (call) between the shards of its *distinct*
  /// endpoints. Self-calls must go through record_self_interaction
  /// instead: they can never be cut, and counting them here would deflate
  /// dynamic_edge_cut relative to metrics::dynamic_edge_cut on the
  /// symmetrized window graph (which drops self-loops).
  void record_interaction(partition::ShardId a, partition::ShardId b,
                          graph::Weight w = 1);

  /// A call whose caller and callee are the same account. Counted in
  /// total_interactions (the window's traffic volume) but excluded from
  /// the edge-cut denominator.
  void record_self_interaction(graph::Weight w = 1);

  /// One unit of vertex activity on shard s.
  void record_activity(partition::ShardId s, graph::Weight w = 1);

  /// Weighted cross-shard fraction of the window's non-self interactions
  /// — Eq. 1 over traversed edges, matching metrics::dynamic_edge_cut on
  /// the window graph. 0 when the window saw none.
  double dynamic_edge_cut() const;

  /// Eq. 2 over window activity; 1 when the window saw no activity.
  double dynamic_balance() const;

  graph::Weight total_interactions() const { return total_interactions_; }
  /// Interactions between distinct endpoints (the cut denominator).
  graph::Weight pair_interactions() const { return pair_interactions_; }
  graph::Weight cross_interactions() const { return cross_interactions_; }
  const std::vector<graph::Weight>& shard_load() const { return load_; }

  bool empty() const { return total_interactions_ == 0 && total_load_ == 0; }

  void reset();

 private:
  std::uint32_t k_;
  graph::Weight total_interactions_ = 0;
  graph::Weight pair_interactions_ = 0;
  graph::Weight cross_interactions_ = 0;
  std::vector<graph::Weight> load_;
  graph::Weight total_load_ = 0;
};

}  // namespace ethshard::metrics
