#include "metrics/summary.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.hpp"

namespace ethshard::metrics {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  ETHSHARD_CHECK(!sorted.empty());
  ETHSHARD_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.q1 = quantile_sorted(values, 0.25);
  s.median = quantile_sorted(values, 0.5);
  s.q3 = quantile_sorted(values, 0.75);
  s.mean = std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
  return s;
}

MeanStdev mean_stdev(const std::vector<double>& values) {
  MeanStdev out;
  out.count = values.size();
  if (values.empty()) return out;
  out.mean = std::accumulate(values.begin(), values.end(), 0.0) /
             static_cast<double>(values.size());
  if (values.size() < 2) return out;
  double ss = 0;
  for (double v : values) {
    const double d = v - out.mean;
    ss += d * d;
  }
  out.stdev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  return out;
}

std::string to_string(const Summary& s, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  os << "min=" << s.min << " q1=" << s.q1 << " med=" << s.median
     << " q3=" << s.q3 << " max=" << s.max << " mean=" << s.mean;
  return os.str();
}

}  // namespace ethshard::metrics
