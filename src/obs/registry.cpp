#include "obs/registry.hpp"

#include <atomic>

namespace ethshard::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_next_registry_id{1};

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

void TimerStat::add(double ms) {
  if (count == 0) {
    min_ms = ms;
    max_ms = ms;
  } else {
    if (ms < min_ms) min_ms = ms;
    if (ms > max_ms) max_ms = ms;
  }
  ++count;
  total_ms += ms;
}

void TimerStat::merge(const TimerStat& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  if (other.min_ms < min_ms) min_ms = other.min_ms;
  if (other.max_ms > max_ms) max_ms = other.max_ms;
  count += other.count;
  total_ms += other.total_ms;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] = v;
  for (const auto& [name, stat] : other.timers) timers[name].merge(stat);
}

Registry::Registry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

Registry::Sink& Registry::local_sink() {
  // Cache keyed by the registry's never-reused id: a destroyed registry
  // leaves a dead entry behind, but no new registry can ever match it.
  thread_local std::unordered_map<std::uint64_t, Sink*> cache;
  auto [it, fresh] = cache.try_emplace(id_, nullptr);
  if (fresh) {
    auto sink = std::make_unique<Sink>();
    it->second = sink.get();
    const std::lock_guard<std::mutex> lock(mu_);
    sinks_.push_back(std::move(sink));
  }
  return *it->second;
}

void Registry::add_counter(std::string_view name, std::uint64_t delta) {
  Sink& sink = local_sink();
  const std::lock_guard<std::mutex> lock(sink.mu);
  sink.counters[std::string(name)] += delta;
}

void Registry::set_gauge(std::string_view name, double value) {
  Sink& sink = local_sink();
  const std::lock_guard<std::mutex> lock(sink.mu);
  sink.gauges[std::string(name)] = value;
}

void Registry::record_ms(std::string_view name, double ms) {
  Sink& sink = local_sink();
  const std::lock_guard<std::mutex> lock(sink.mu);
  sink.timers[std::string(name)].add(ms);
}

void Registry::absorb(const MetricsSnapshot& snapshot) {
  const std::lock_guard<std::mutex> lock(mu_);
  absorbed_.merge(snapshot);
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out = absorbed_;
  for (const auto& sink : sinks_) {
    const std::lock_guard<std::mutex> sink_lock(sink->mu);
    for (const auto& [name, v] : sink->counters) out.counters[name] += v;
    for (const auto& [name, v] : sink->gauges) out.gauges[name] = v;
    for (const auto& [name, stat] : sink->timers)
      out.timers[name].merge(stat);
  }
  return out;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  absorbed_ = MetricsSnapshot{};
  for (const auto& sink : sinks_) {
    const std::lock_guard<std::mutex> sink_lock(sink->mu);
    sink->counters.clear();
    sink->gauges.clear();
    sink->timers.clear();
  }
}

Registry& Registry::global() {
  // Leaked so worker threads may flush metrics during static teardown.
  static Registry* instance = new Registry();
  return *instance;
}

}  // namespace ethshard::obs
