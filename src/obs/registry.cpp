#include "obs/registry.hpp"

#include <atomic>
#include <cstdio>

#include "obs/obs.hpp"
#include "util/parallel.hpp"

namespace ethshard::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_next_registry_id{1};

// Adapter the parallel runtime calls back into (util cannot depend on
// obs, so obs installs these when recording is switched on). Worker
// threads have no ScopedRegistry of their own, so samples land in
// whatever registry current() resolves to on that thread — the global
// one in practice.
void parallel_record_hist(const char* name, double value) {
  if (enabled()) current().record_hist(name, value);
}

void parallel_add_count(const char* name, std::uint64_t delta) {
  if (enabled()) current().add_counter(name, delta);
}

// Names the pool worker's timeline lane so traces show "pool-worker-N"
// instead of a bare thread number. Worker indices repeat across
// dispatches; identically named lanes are fine (the tid disambiguates).
void parallel_worker_start(std::size_t worker_index) {
  if (!trace_enabled()) return;
  char name[32];
  std::snprintf(name, sizeof(name), "pool-worker-%zu", worker_index);
  set_current_thread_lane(name);
}

constexpr util::ParallelTelemetryHooks kParallelHooks{
    &parallel_record_hist, &parallel_add_count, &parallel_worker_start};

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
  internal::refresh_parallel_hooks();
}

namespace internal {

void refresh_parallel_hooks() {
#if ETHSHARD_OBS_ENABLED
  // Hook the parallel runtime's pool telemetry in/out with the master
  // switches (metrics feed the registry, tracing names worker lanes) so
  // fully disabled runs pay nothing beyond one null-pointer check.
  const bool on = enabled() || trace_enabled();
  util::set_parallel_telemetry(on ? &kParallelHooks : nullptr);
#endif
}

}  // namespace internal

void TimerStat::add(double ms) {
  if (count == 0) {
    min_ms = ms;
    max_ms = ms;
  } else {
    if (ms < min_ms) min_ms = ms;
    if (ms > max_ms) max_ms = ms;
  }
  ++count;
  total_ms += ms;
  hist.record(ms);
}

void TimerStat::merge(const TimerStat& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  if (other.min_ms < min_ms) min_ms = other.min_ms;
  if (other.max_ms > max_ms) max_ms = other.max_ms;
  count += other.count;
  total_ms += other.total_ms;
  hist.merge(other.hist);
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] = v;
  for (const auto& [name, stat] : other.timers) timers[name].merge(stat);
  for (const auto& [name, h] : other.histograms)
    histograms[name].merge(h);
}

Registry::Registry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

Registry::Sink& Registry::local_sink() {
  // Cache keyed by the registry's never-reused id: a destroyed registry
  // leaves a dead entry behind, but no new registry can ever match it.
  thread_local std::unordered_map<std::uint64_t, Sink*> cache;
  auto [it, fresh] = cache.try_emplace(id_, nullptr);
  if (fresh) {
    auto sink = std::make_unique<Sink>();
    it->second = sink.get();
    const std::lock_guard<std::mutex> lock(mu_);
    sinks_.push_back(std::move(sink));
  }
  return *it->second;
}

void Registry::add_counter(std::string_view name, std::uint64_t delta) {
  Sink& sink = local_sink();
  const std::lock_guard<std::mutex> lock(sink.mu);
  sink.counters[std::string(name)] += delta;
}

void Registry::set_gauge(std::string_view name, double value) {
  Sink& sink = local_sink();
  const std::lock_guard<std::mutex> lock(sink.mu);
  sink.gauges[std::string(name)] = value;
}

void Registry::record_ms(std::string_view name, double ms) {
  Sink& sink = local_sink();
  const std::lock_guard<std::mutex> lock(sink.mu);
  sink.timers[std::string(name)].add(ms);
}

void Registry::record_hist(std::string_view name, double value) {
  Sink& sink = local_sink();
  const std::lock_guard<std::mutex> lock(sink.mu);
  sink.histograms[std::string(name)].record(value);
}

void Registry::absorb(const MetricsSnapshot& snapshot) {
  const std::lock_guard<std::mutex> lock(mu_);
  absorbed_.merge(snapshot);
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out = absorbed_;
  for (const auto& sink : sinks_) {
    const std::lock_guard<std::mutex> sink_lock(sink->mu);
    for (const auto& [name, v] : sink->counters) out.counters[name] += v;
    for (const auto& [name, v] : sink->gauges) out.gauges[name] = v;
    for (const auto& [name, stat] : sink->timers)
      out.timers[name].merge(stat);
    for (const auto& [name, h] : sink->histograms)
      out.histograms[name].merge(h);
  }
  return out;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  absorbed_ = MetricsSnapshot{};
  for (const auto& sink : sinks_) {
    const std::lock_guard<std::mutex> sink_lock(sink->mu);
    sink->counters.clear();
    sink->gauges.clear();
    sink->timers.clear();
    sink->histograms.clear();
  }
}

Registry& Registry::global() {
  // Leaked so worker threads may flush metrics during static teardown.
  static Registry* instance = new Registry();
  return *instance;
}

}  // namespace ethshard::obs
