// Umbrella header for the observability layer: the thread-redirectable
// current registry, scoped timers, and the instrumentation macros used in
// hot paths.
//
// Compile-time gate: build with -DETHSHARD_OBS_ENABLED=0 (CMake option
// ETHSHARD_OBS=OFF) and every macro below expands to nothing — no call,
// no argument evaluation. With instrumentation compiled in, the runtime
// switches (obs::set_enabled / obs::set_trace_enabled, both default off)
// gate all recording behind one relaxed atomic load.
#pragma once

#include <string_view>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

#ifndef ETHSHARD_OBS_ENABLED
#define ETHSHARD_OBS_ENABLED 1
#endif

namespace ethshard::obs {

/// The registry this thread's instrumentation writes to. Defaults to
/// Registry::global(); ScopedRegistry redirects it.
Registry& current();

/// RAII redirection of this thread's metrics to `r` — how an experiment
/// grid attributes instrumentation to one cell at a time. Only affects
/// the constructing thread.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry& r);
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* prev_;
};

/// RAII timer recording one sample under `name` in the thread's current
/// registry. `name` must outlive the timer (string literals in practice).
/// The enable check is latched at construction.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  bool active_;
  double start_ms_ = 0;
};

}  // namespace ethshard::obs

#if ETHSHARD_OBS_ENABLED

#define ETHSHARD_OBS_CONCAT_INNER(a, b) a##b
#define ETHSHARD_OBS_CONCAT(a, b) ETHSHARD_OBS_CONCAT_INNER(a, b)

/// Adds `delta` to the named counter (evaluated only when enabled).
#define ETHSHARD_OBS_COUNT(name, delta)                        \
  do {                                                         \
    if (::ethshard::obs::enabled())                            \
      ::ethshard::obs::current().add_counter((name), (delta)); \
  } while (0)

/// Sets the named gauge (evaluated only when enabled).
#define ETHSHARD_OBS_GAUGE(name, value)                        \
  do {                                                         \
    if (::ethshard::obs::enabled())                            \
      ::ethshard::obs::current().set_gauge((name), (value));   \
  } while (0)

/// Records one duration sample in milliseconds.
#define ETHSHARD_OBS_RECORD_MS(name, ms)                       \
  do {                                                         \
    if (::ethshard::obs::enabled())                            \
      ::ethshard::obs::current().record_ms((name), (ms));      \
  } while (0)

/// Records one sample in the named histogram (any unit: counts, depths,
/// durations). Distributions answer p50/p90/p99/max in the snapshot.
#define ETHSHARD_OBS_HIST(name, value)                          \
  do {                                                          \
    if (::ethshard::obs::enabled())                             \
      ::ethshard::obs::current().record_hist(                   \
          (name), static_cast<double>(value));                  \
  } while (0)

/// Times the enclosing scope under `name`.
#define ETHSHARD_OBS_TIMER(name)          \
  ::ethshard::obs::ScopedTimer ETHSHARD_OBS_CONCAT(obs_timer_, \
                                                   __LINE__)(name)

/// Opens a trace span for the enclosing scope.
#define ETHSHARD_OBS_SPAN(name)          \
  ::ethshard::obs::ScopedSpan ETHSHARD_OBS_CONCAT(obs_span_, \
                                                  __LINE__)(name)

#else  // !ETHSHARD_OBS_ENABLED

#define ETHSHARD_OBS_COUNT(name, delta) \
  do {                                  \
  } while (0)
#define ETHSHARD_OBS_GAUGE(name, value) \
  do {                                  \
  } while (0)
#define ETHSHARD_OBS_RECORD_MS(name, ms) \
  do {                                   \
  } while (0)
#define ETHSHARD_OBS_HIST(name, value) \
  do {                                 \
  } while (0)
#define ETHSHARD_OBS_TIMER(name) \
  do {                           \
  } while (0)
#define ETHSHARD_OBS_SPAN(name) \
  do {                          \
  } while (0)

#endif  // ETHSHARD_OBS_ENABLED
