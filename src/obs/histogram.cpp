#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace ethshard::obs {

namespace {

/// Lower bound of bucket `idx` (idx >= 1): 2^((idx - 1)/kSubBuckets + kMinExp).
double bucket_lower(int idx) {
  const double exp2arg =
      static_cast<double>(idx - 1) / Histogram::kSubBuckets +
      Histogram::kMinExp;
  return std::exp2(exp2arg);
}

}  // namespace

int Histogram::bucket_index(double value) {
  if (!(value > 0)) return 0;  // zero, negatives, NaN → underflow bucket
  // Scaled log2: bucket b (b >= 1) covers [2^((b-1)/S + kMinExp),
  // 2^(b/S + kMinExp)).
  const double scaled =
      (std::log2(value) - kMinExp) * static_cast<double>(kSubBuckets);
  if (scaled < 0) return 0;
  const int idx = static_cast<int>(scaled) + 1;
  return std::min(idx, kBucketCount - 1);
}

void Histogram::record(double value) {
  if (buckets_.empty()) buckets_.assign(kBucketCount, 0);
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  sum_ += value;
  ++buckets_[static_cast<std::size_t>(bucket_index(value))];
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < other.buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0) return min_;
  if (q >= 1) return max_;

  // Rank of the requested sample, 1-based; ceil so p50 of two samples is
  // the first (lower) one and quantiles are monotone in q.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);

  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[static_cast<std::size_t>(i)];
    if (cumulative < target) continue;
    double value;
    if (i == 0) {
      value = min_;  // underflow bucket: every sample is <= 2^kMinExp
    } else {
      // Geometric midpoint of the bucket's bounds.
      const double lo = bucket_lower(i);
      const double hi = bucket_lower(i + 1);
      value = std::sqrt(lo * hi);
    }
    return std::clamp(value, min_, max_);
  }
  return max_;  // unreachable: cumulative == count_ by the last bucket
}

}  // namespace ethshard::obs
