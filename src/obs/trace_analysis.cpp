#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <ostream>
#include <utility>

#include "util/check.hpp"

namespace ethshard::obs {

namespace {

// ---------------------------------------------------------------------
// Minimal field scanner over one serialized event object. The exporter
// writes flat objects with at most one nested "args" object, so a
// first-occurrence key search is unambiguous.

std::optional<std::size_t> value_pos(const std::string& obj,
                                     const char* key) {
  const std::string needle = std::string("\"") + key + "\"";
  std::size_t pos = obj.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos += needle.size();
  while (pos < obj.size() &&
         (obj[pos] == ' ' || obj[pos] == ':' || obj[pos] == '\t'))
    ++pos;
  if (pos >= obj.size()) return std::nullopt;
  return pos;
}

std::optional<std::string> string_field(const std::string& obj,
                                        const char* key) {
  const std::optional<std::size_t> at = value_pos(obj, key);
  if (!at || obj[*at] != '"') return std::nullopt;
  std::string out;
  for (std::size_t i = *at + 1; i < obj.size(); ++i) {
    const char c = obj[i];
    if (c == '"') return out;
    if (c == '\\' && i + 1 < obj.size()) {
      const char esc = obj[++i];
      switch (esc) {
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'u':
          // Only control characters are \u-escaped by our exporter;
          // decode the low byte and skip the four hex digits.
          if (i + 4 < obj.size()) {
            out += static_cast<char>(
                std::strtoul(obj.substr(i + 1, 4).c_str(), nullptr, 16));
            i += 4;
          }
          break;
        default:
          out += esc;
      }
      continue;
    }
    out += c;
  }
  return std::nullopt;  // unterminated string
}

std::optional<double> number_field(const std::string& obj,
                                   const char* key) {
  const std::optional<std::size_t> at = value_pos(obj, key);
  if (!at) return std::nullopt;
  const char* start = obj.c_str() + *at;
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return std::nullopt;
  return v;
}

/// The "args" sub-object, or empty when absent.
std::string args_text(const std::string& obj) {
  const std::optional<std::size_t> at = value_pos(obj, "args");
  if (!at || obj[*at] != '{') return {};
  int depth = 0;
  for (std::size_t i = *at; i < obj.size(); ++i) {
    if (obj[i] == '{') ++depth;
    if (obj[i] == '}' && --depth == 0)
      return obj.substr(*at, i - *at + 1);
  }
  return {};
}

// ---------------------------------------------------------------------
// Interval arithmetic for busy-time unions and stage overlap.

using Interval = std::pair<double, double>;

/// Sorts + merges in place; returns total covered length.
double merge_union(std::vector<Interval>& intervals) {
  if (intervals.empty()) return 0;
  std::sort(intervals.begin(), intervals.end());
  std::vector<Interval> merged;
  merged.reserve(intervals.size());
  for (const Interval& iv : intervals) {
    if (iv.second <= iv.first) continue;
    if (!merged.empty() && iv.first <= merged.back().second)
      merged.back().second = std::max(merged.back().second, iv.second);
    else
      merged.push_back(iv);
  }
  intervals = std::move(merged);
  double total = 0;
  for (const Interval& iv : intervals) total += iv.second - iv.first;
  return total;
}

/// Total intersection length of two already-merged unions.
double intersect_length(const std::vector<Interval>& a,
                        const std::vector<Interval>& b) {
  double total = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const double lo = std::max(a[i].first, b[j].first);
    const double hi = std::min(a[i].second, b[j].second);
    if (hi > lo) total += hi - lo;
    if (a[i].second < b[j].second)
      ++i;
    else
      ++j;
  }
  return total;
}

/// Matches a span path against a pipeline leaf name: exact, or nested
/// under enclosing ScopedSpans ("sim/run/pipeline/apply").
bool path_matches(const std::string& path, const char* leaf) {
  const std::size_t n = std::strlen(leaf);
  if (path.size() == n) return path == leaf;
  return path.size() > n + 1 &&
         path[path.size() - n - 1] == '/' &&
         path.compare(path.size() - n, n, leaf) == 0;
}

constexpr const char* kAggregate = "pipeline/aggregate";
constexpr const char* kApply = "pipeline/apply";
constexpr const char* kFlush = "pipeline/flush";
constexpr const char* kBackpressure = "pipeline/backpressure_stall";
constexpr const char* kPrefetch = "pipeline/prefetch_stall";

bool is_stall(const std::string& path) {
  return path_matches(path, kBackpressure) || path_matches(path, kPrefetch);
}

std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

ParsedTrace parse_chrome_trace(const std::string& json_text) {
  const std::size_t array_at = json_text.find("\"traceEvents\"");
  ETHSHARD_CHECK_MSG(array_at != std::string::npos,
                     "trace file has no traceEvents array");
  const std::size_t open = json_text.find('[', array_at);
  ETHSHARD_CHECK_MSG(open != std::string::npos,
                     "traceEvents is not an array");

  ParsedTrace trace;
  std::size_t pos = open + 1;
  while (pos < json_text.size()) {
    const std::size_t obj_start = json_text.find_first_of("{]", pos);
    ETHSHARD_CHECK_MSG(obj_start != std::string::npos,
                       "unterminated traceEvents array");
    if (json_text[obj_start] == ']') break;
    int depth = 0;
    std::size_t obj_end = std::string::npos;
    for (std::size_t i = obj_start; i < json_text.size(); ++i) {
      if (json_text[i] == '{') ++depth;
      if (json_text[i] == '}' && --depth == 0) {
        obj_end = i;
        break;
      }
    }
    ETHSHARD_CHECK_MSG(obj_end != std::string::npos,
                       "unterminated event object in trace");
    const std::string obj =
        json_text.substr(obj_start, obj_end - obj_start + 1);
    pos = obj_end + 1;

    const std::optional<std::string> name = string_field(obj, "name");
    const std::optional<std::string> ph = string_field(obj, "ph");
    ETHSHARD_CHECK_MSG(name && ph && ph->size() == 1,
                       "trace event without name/ph: " << obj);

    TraceEvent ev;
    ev.name = *name;
    ev.ph = (*ph)[0];
    const std::string args = args_text(obj);
    if (const std::optional<double> tid = number_field(obj, "tid"))
      ev.tid = static_cast<std::uint64_t>(*tid);
    if (ev.ph == 'X') {
      const std::optional<double> ts = number_field(obj, "ts");
      const std::optional<double> dur = number_field(obj, "dur");
      ETHSHARD_CHECK_MSG(ts && dur,
                         "X event without ts/dur: " << obj);
      ev.ts_ms = *ts / 1000.0;
      ev.dur_ms = *dur / 1000.0;
    } else if (ev.ph == 'C') {
      const std::optional<double> ts = number_field(obj, "ts");
      std::optional<double> value;
      if (!args.empty()) value = number_field(args, "value");
      ETHSHARD_CHECK_MSG(ts && value,
                         "C event without ts/args.value: " << obj);
      ev.ts_ms = *ts / 1000.0;
      ev.value = *value;
    } else if (ev.ph == 'M') {
      if (ev.name == "thread_name" && !args.empty()) {
        if (const std::optional<std::string> lane =
                string_field(args, "name")) {
          ev.arg_name = *lane;
          trace.lanes[ev.tid] = *lane;
        }
      }
    } else if (ev.ph == 'i') {
      if (const std::optional<double> ts = number_field(obj, "ts"))
        ev.ts_ms = *ts / 1000.0;
      if (ev.name == "trace_truncated") trace.truncated = true;
    }
    trace.events.push_back(std::move(ev));
  }
  return trace;
}

PipelineReport analyze_pipeline_trace(const ParsedTrace& trace) {
  PipelineReport report;
  report.truncated = trace.truncated;

  // Bucket the duration events once.
  std::vector<Interval> aggregate_ivs;
  std::vector<Interval> apply_flush_ivs;
  std::map<std::uint64_t, std::vector<Interval>> lane_stage_ivs;
  std::map<std::uint64_t, std::vector<Interval>> lane_all_ivs;
  std::map<std::uint64_t, std::uint64_t> lane_span_counts;
  double min_ts = 0;
  double max_ts = 0;
  bool any_pipeline = false;
  bool any_span = false;

  for (const TraceEvent& ev : trace.events) {
    if (ev.ph != 'X') continue;
    const Interval iv{ev.ts_ms, ev.ts_ms + ev.dur_ms};
    ++lane_span_counts[ev.tid];
    if (!is_stall(ev.name)) lane_all_ivs[ev.tid].push_back(iv);

    const bool agg = path_matches(ev.name, kAggregate);
    const bool apply = path_matches(ev.name, kApply);
    const bool flush = path_matches(ev.name, kFlush);
    const bool bp = path_matches(ev.name, kBackpressure);
    const bool pf = path_matches(ev.name, kPrefetch);
    if (agg || apply) any_pipeline = true;
    if (agg || apply || flush || bp || pf) {
      if (!any_span || iv.first < min_ts) min_ts = iv.first;
      if (!any_span || iv.second > max_ts) max_ts = iv.second;
      any_span = true;
    }
    if (agg) {
      report.aggregate_ms += ev.dur_ms;
      ++report.windows_aggregated;
      aggregate_ivs.push_back(iv);
      lane_stage_ivs[ev.tid].push_back(iv);
    } else if (apply) {
      report.apply_ms += ev.dur_ms;
      ++report.windows_applied;
      apply_flush_ivs.push_back(iv);
      lane_stage_ivs[ev.tid].push_back(iv);
    } else if (flush) {
      report.flush_ms += ev.dur_ms;
      apply_flush_ivs.push_back(iv);
      lane_stage_ivs[ev.tid].push_back(iv);
    } else if (bp) {
      report.backpressure_ms += ev.dur_ms;
      ++report.backpressure_count;
    } else if (pf) {
      report.prefetch_ms += ev.dur_ms;
      ++report.prefetch_count;
    }
  }

  // With no pipeline spans at all, fall back to the full event extent so
  // the lanes section still describes the trace.
  if (!any_span) {
    bool first = true;
    for (const TraceEvent& ev : trace.events) {
      if (ev.ph != 'X') continue;
      if (first || ev.ts_ms < min_ts) min_ts = ev.ts_ms;
      if (first || ev.ts_ms + ev.dur_ms > max_ts)
        max_ts = ev.ts_ms + ev.dur_ms;
      first = false;
    }
  }
  report.wall_ms = std::max(0.0, max_ts - min_ts);

  // Lanes: pipeline lanes report their stage-productive union; other
  // lanes (pool workers, the run's outer spans) report all non-stall
  // activity.
  for (auto& [tid, all_ivs] : lane_all_ivs) {
    LaneStat lane;
    lane.tid = tid;
    const auto lane_name = trace.lanes.find(tid);
    lane.name = lane_name != trace.lanes.end()
                    ? lane_name->second
                    : "thread-" + std::to_string(tid);
    auto stage = lane_stage_ivs.find(tid);
    std::vector<Interval>& ivs =
        stage != lane_stage_ivs.end() ? stage->second : all_ivs;
    lane.busy_ms = merge_union(ivs);
    lane.utilization =
        report.wall_ms > 0 ? lane.busy_ms / report.wall_ms : 0;
    lane.spans = lane_span_counts[tid];
    report.lanes.push_back(std::move(lane));
  }

  if (!any_pipeline) return report;  // bottleneck/verdict stay no-pipeline

  const double busy_a = merge_union(aggregate_ivs);
  const double busy_b = merge_union(apply_flush_ivs);

  // A degenerate pipeline trace — a single span, or spans so short the
  // wall extent (or every stage's busy time) rounds to zero — has no
  // measurable overlap or speedup. Say so explicitly instead of dividing
  // by zero into a speedup of 0, which used to read as a confident
  // "serial" recommendation.
  if (report.wall_ms <= 0 || busy_a + busy_b <= 0 ||
      report.windows_aggregated + report.windows_applied < 2) {
    report.bottleneck = "insufficient_data";
    report.recommendation = "insufficient_data";
    report.serial_estimate_ms =
        report.aggregate_ms + report.apply_ms + report.flush_ms;
    return report;
  }

  report.overlap_ms = intersect_length(aggregate_ivs, apply_flush_ivs);
  const double smaller = std::min(busy_a, busy_b);
  report.overlap_fraction = smaller > 0 ? report.overlap_ms / smaller : 0;

  if (report.wall_ms > 0) {
    report.prefetch_fraction = report.prefetch_ms / report.wall_ms;
    report.backpressure_fraction =
        report.backpressure_ms / report.wall_ms;
  }
  // One side stalling >=10% of the wall names that side's feeder as the
  // bottleneck; both sides stalling points at the queue itself.
  const bool pf_hot = report.prefetch_fraction >= 0.10;
  const bool bp_hot = report.backpressure_fraction >= 0.10;
  if (pf_hot && bp_hot)
    report.bottleneck = "queue-bound";
  else if (pf_hot)
    report.bottleneck = "aggregate-bound";
  else if (bp_hot)
    report.bottleneck = "apply-bound";
  else
    report.bottleneck = "balanced";

  report.serial_estimate_ms =
      report.aggregate_ms + report.apply_ms + report.flush_ms;
  report.speedup = report.wall_ms > 0
                       ? report.serial_estimate_ms / report.wall_ms
                       : 0;
  if (report.speedup >= 1.05)
    report.recommendation = "pipelined";
  else if (report.speedup <= 0.95)
    report.recommendation = "serial";
  else
    report.recommendation = "tie";
  return report;
}

void write_pipeline_report_json(std::ostream& out,
                                const PipelineReport& report) {
  out << "{\n"
      << "  \"schema_version\": " << report.schema_version << ",\n"
      << "  \"kind\": \"pipeline_report\",\n"
      << "  \"wall_ms\": " << json_number(report.wall_ms) << ",\n"
      << "  \"truncated\": " << (report.truncated ? "true" : "false")
      << ",\n  \"lanes\": [";
  bool first = true;
  for (const LaneStat& lane : report.lanes) {
    out << (first ? "\n" : ",\n") << "    {\"tid\": " << lane.tid
        << ", \"name\": \"" << json_escape(lane.name)
        << "\", \"busy_ms\": " << json_number(lane.busy_ms)
        << ", \"utilization\": " << json_number(lane.utilization)
        << ", \"spans\": " << lane.spans << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "],\n"
      << "  \"stages\": {\n"
      << "    \"aggregate_ms\": " << json_number(report.aggregate_ms)
      << ",\n    \"apply_ms\": " << json_number(report.apply_ms)
      << ",\n    \"flush_ms\": " << json_number(report.flush_ms)
      << ",\n    \"windows_aggregated\": " << report.windows_aggregated
      << ",\n    \"windows_applied\": " << report.windows_applied
      << "\n  },\n"
      << "  \"stalls\": {\n"
      << "    \"backpressure_ms\": " << json_number(report.backpressure_ms)
      << ",\n    \"backpressure_count\": " << report.backpressure_count
      << ",\n    \"prefetch_ms\": " << json_number(report.prefetch_ms)
      << ",\n    \"prefetch_count\": " << report.prefetch_count
      << "\n  },\n"
      << "  \"overlap\": {\n"
      << "    \"overlap_ms\": " << json_number(report.overlap_ms)
      << ",\n    \"overlap_fraction\": "
      << json_number(report.overlap_fraction) << "\n  },\n"
      << "  \"critical_path\": {\n"
      << "    \"bottleneck\": \"" << json_escape(report.bottleneck)
      << "\",\n    \"prefetch_fraction\": "
      << json_number(report.prefetch_fraction)
      << ",\n    \"backpressure_fraction\": "
      << json_number(report.backpressure_fraction) << "\n  },\n"
      << "  \"verdict\": {\n"
      << "    \"serial_estimate_ms\": "
      << json_number(report.serial_estimate_ms)
      << ",\n    \"pipelined_wall_ms\": " << json_number(report.wall_ms)
      << ",\n    \"speedup\": " << json_number(report.speedup)
      << ",\n    \"recommendation\": \""
      << json_escape(report.recommendation) << "\"\n  }\n}\n";
}

}  // namespace ethshard::obs
