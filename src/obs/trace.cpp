#include "obs/trace.hpp"

#include <atomic>
#include <chrono>

#include "obs/registry.hpp"

namespace ethshard::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};
std::atomic<std::uint32_t> g_next_thread_ordinal{0};

std::uint32_t thread_ordinal() {
  thread_local const std::uint32_t ordinal =
      g_next_thread_ordinal.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

/// Per-thread stack of open span names, for path construction.
std::vector<const char*>& span_stack() {
  thread_local std::vector<const char*> stack;
  return stack;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

bool trace_enabled() {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  g_trace_enabled.store(on, std::memory_order_relaxed);
  // Tracing names pool-worker lanes through the same parallel-runtime
  // hook table metrics use; keep its installation in sync.
  internal::refresh_parallel_hooks();
}

double trace_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

TraceBuffer& TraceBuffer::global() {
  // Leaked so spans may complete during static teardown.
  static TraceBuffer* instance = new TraceBuffer();
  return *instance;
}

void TraceBuffer::record(SpanRecord span) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (max_spans_ != 0 && spans_.size() >= max_spans_) {
    ++dropped_;
    return;
  }
  spans_.push_back(std::move(span));
}

void TraceBuffer::record_counter(CounterRecord sample) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (max_spans_ != 0 && counters_.size() >= max_spans_) {
    ++dropped_counters_;
    return;
  }
  counters_.push_back(std::move(sample));
}

void TraceBuffer::set_thread_lane(std::uint32_t ordinal, std::string name) {
  const std::lock_guard<std::mutex> lock(mu_);
  lanes_[ordinal] = std::move(name);
}

std::vector<SpanRecord> TraceBuffer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

TraceSnapshot TraceBuffer::trace_snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  TraceSnapshot snap;
  snap.spans = spans_;
  snap.counters = counters_;
  snap.lanes = lanes_;
  snap.dropped_spans = dropped_;
  snap.dropped_counters = dropped_counters_;
  return snap;
}

void TraceBuffer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  counters_.clear();
  lanes_.clear();
  dropped_ = 0;
  dropped_counters_ = 0;
}

std::size_t TraceBuffer::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void TraceBuffer::set_max_spans(std::size_t cap) {
  const std::lock_guard<std::mutex> lock(mu_);
  max_spans_ = cap;
}

std::size_t TraceBuffer::max_spans() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return max_spans_;
}

std::uint64_t TraceBuffer::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::uint32_t current_thread_ordinal() { return thread_ordinal(); }

void set_current_thread_lane(const char* name) {
  if (!trace_enabled()) return;
  TraceBuffer::global().set_thread_lane(thread_ordinal(), name);
}

void record_span(const char* path, double start_ms, double end_ms) {
  if (!trace_enabled()) return;
  SpanRecord span;
  span.path = path;
  span.start_ms = start_ms;
  span.duration_ms = end_ms - start_ms;
  span.thread = thread_ordinal();
  span.depth = static_cast<std::uint32_t>(span_stack().size());
  TraceBuffer::global().record(std::move(span));
}

void record_counter_sample(const char* name, double value) {
  if (!trace_enabled()) return;
  CounterRecord sample;
  sample.name = name;
  sample.ts_ms = trace_now_ms();
  sample.value = value;
  TraceBuffer::global().record_counter(std::move(sample));
}

ScopedSpan::ScopedSpan(const char* name) : active_(trace_enabled()) {
  if (!active_) return;
  span_stack().push_back(name);
  start_ms_ = trace_now_ms();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const double end_ms = trace_now_ms();
  std::vector<const char*>& stack = span_stack();

  SpanRecord span;
  span.path.reserve(32);
  for (std::size_t i = 0; i < stack.size(); ++i) {
    if (i > 0) span.path += '/';
    span.path += stack[i];
  }
  span.start_ms = start_ms_;
  span.duration_ms = end_ms - start_ms_;
  span.thread = thread_ordinal();
  span.depth = static_cast<std::uint32_t>(stack.size() - 1);
  stack.pop_back();

  TraceBuffer::global().record(std::move(span));
}

}  // namespace ethshard::obs
