#include "obs/obs.hpp"

namespace ethshard::obs {

namespace {

Registry*& tl_current() {
  thread_local Registry* current = nullptr;
  return current;
}

}  // namespace

Registry& current() {
  Registry* r = tl_current();
  return r != nullptr ? *r : Registry::global();
}

ScopedRegistry::ScopedRegistry(Registry& r) : prev_(tl_current()) {
  tl_current() = &r;
}

ScopedRegistry::~ScopedRegistry() { tl_current() = prev_; }

ScopedTimer::ScopedTimer(const char* name)
    : name_(name), active_(enabled()) {
  if (active_) start_ms_ = trace_now_ms();
}

ScopedTimer::~ScopedTimer() {
  if (!active_) return;
  current().record_ms(name_, trace_now_ms() - start_ms_);
}

}  // namespace ethshard::obs
