// Mergeable log-bucketed histogram for latency/size distributions.
//
// Values land in geometric buckets — kSubBuckets per power of two — so a
// recorded sample is attributed to a bucket whose bounds are within
// 2^(1/kSubBuckets) ≈ 9% of its true value, over a range of 2^-16
// (~15 ns in ms units) to 2^40 (~35 years in ms units). Everything the
// snapshot path needs is additive: two histograms recorded on different
// threads (or in different processes) merge by summing bucket counts, so
// the Registry can shard recording per thread and still answer
// p50/p90/p99/max queries over the union.
//
// Exact count/sum/min/max are carried alongside the buckets; only the
// interior quantiles are approximate.
#pragma once

#include <cstdint>
#include <vector>

namespace ethshard::obs {

class Histogram {
 public:
  /// Buckets per power of two; 8 bounds the per-bucket relative error at
  /// 2^(1/8)-1 ≈ 9%.
  static constexpr int kSubBuckets = 8;
  /// Smallest / largest finite-resolution magnitudes: 2^kMinExp .. 2^kMaxExp.
  static constexpr int kMinExp = -16;
  static constexpr int kMaxExp = 40;
  /// Bucket 0 holds v <= 2^kMinExp (including zero and negatives); the
  /// last bucket holds v >= 2^kMaxExp.
  static constexpr int kBucketCount = (kMaxExp - kMinExp) * kSubBuckets + 2;

  /// Adds one sample. Non-positive values are legal and count toward the
  /// underflow bucket (and toward min/sum exactly).
  void record(double value);

  /// Sums `other` into this histogram (bucket-wise; min/max/sum/count
  /// combine exactly).
  void merge(const Histogram& other);

  bool empty() const { return count_ == 0; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Value at quantile q in [0, 1]: q=0 → min, q=1 → max, interior
  /// quantiles → the geometric midpoint of the bucket containing the
  /// rank-ceil(q·count) sample, clamped to [min, max]. Returns 0 when
  /// empty.
  double quantile(double q) const;

  /// Bucket a value would land in — exposed for tests.
  static int bucket_index(double value);

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  /// Sized to kBucketCount on first record; empty histograms stay tiny so
  /// snapshots of registries with many idle names are cheap to copy.
  std::vector<std::uint64_t> buckets_;
};

}  // namespace ethshard::obs
