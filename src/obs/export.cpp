#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace ethshard::obs {

namespace {

/// Metric names are code-controlled, but escape defensively so the output
/// is always valid JSON.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

void write_metrics_json(std::ostream& out,
                        const MetricsSnapshot& snapshot) {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snapshot.counters) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << v;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snapshot.gauges) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": " << json_double(v);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"timers\": {";
  first = true;
  for (const auto& [name, t] : snapshot.timers) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": {\"count\": " << t.count
        << ", \"total_ms\": " << json_double(t.total_ms)
        << ", \"mean_ms\": " << json_double(t.mean_ms())
        << ", \"min_ms\": " << json_double(t.min_ms)
        << ", \"max_ms\": " << json_double(t.max_ms)
        << ", \"p50_ms\": " << json_double(t.quantile_ms(0.50))
        << ", \"p90_ms\": " << json_double(t.quantile_ms(0.90))
        << ", \"p99_ms\": " << json_double(t.quantile_ms(0.99)) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
        << "\": {\"count\": " << h.count()
        << ", \"sum\": " << json_double(h.sum())
        << ", \"mean\": " << json_double(h.mean())
        << ", \"min\": " << json_double(h.min())
        << ", \"max\": " << json_double(h.max())
        << ", \"p50\": " << json_double(h.quantile(0.50))
        << ", \"p90\": " << json_double(h.quantile(0.90))
        << ", \"p99\": " << json_double(h.quantile(0.99)) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

void write_metrics_csv(std::ostream& out,
                       const MetricsSnapshot& snapshot) {
  util::CsvWriter csv(out);
  csv.write_row({"kind", "name", "count", "value", "min", "max", "p50",
                 "p90", "p99"});
  for (const auto& [name, v] : snapshot.counters) {
    csv.field("counter").field(name).field(v).field(std::uint64_t{0});
    csv.field(0.0).field(0.0).field(0.0).field(0.0).field(0.0);
    csv.end_row();
  }
  for (const auto& [name, v] : snapshot.gauges) {
    csv.field("gauge").field(name).field(std::uint64_t{0}).field(v);
    csv.field(0.0).field(0.0).field(0.0).field(0.0).field(0.0);
    csv.end_row();
  }
  for (const auto& [name, t] : snapshot.timers) {
    csv.field("timer").field(name).field(t.count).field(t.total_ms);
    csv.field(t.min_ms).field(t.max_ms);
    csv.field(t.quantile_ms(0.50)).field(t.quantile_ms(0.90));
    csv.field(t.quantile_ms(0.99));
    csv.end_row();
  }
  for (const auto& [name, h] : snapshot.histograms) {
    csv.field("histogram").field(name).field(h.count()).field(h.sum());
    csv.field(h.min()).field(h.max());
    csv.field(h.quantile(0.50)).field(h.quantile(0.90));
    csv.field(h.quantile(0.99));
    csv.end_row();
  }
}

void write_trace_json(std::ostream& out,
                      const std::vector<SpanRecord>& spans) {
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const SpanRecord& s : spans) {
    out << (first ? "\n" : ",\n") << "  {\"name\": \""
        << json_escape(s.path) << "\", \"ph\": \"X\", \"ts\": "
        << json_double(s.start_ms * 1000.0)
        << ", \"dur\": " << json_double(s.duration_ms * 1000.0)
        << ", \"pid\": 0, \"tid\": " << s.thread << "}";
    first = false;
  }
  out << (first ? "" : "\n") << "]}\n";
}

void write_trace_json(std::ostream& out, const TraceSnapshot& snapshot) {
  // Render every timed event up front, then emit in timestamp order:
  // Perfetto doesn't require sorted input, but sorted output makes the
  // file scannable by line-oriented tools (and testable for monotonic
  // timestamps).
  struct Rendered {
    double ts_ms;
    std::string json;
  };
  std::vector<Rendered> events;
  events.reserve(snapshot.spans.size() + snapshot.counters.size() + 1);

  for (const SpanRecord& s : snapshot.spans) {
    std::string json = "  {\"name\": \"" + json_escape(s.path) +
                       "\", \"ph\": \"X\", \"ts\": " +
                       json_double(s.start_ms * 1000.0) +
                       ", \"dur\": " + json_double(s.duration_ms * 1000.0) +
                       ", \"pid\": 0, \"tid\": " + std::to_string(s.thread) +
                       "}";
    events.push_back({s.start_ms, std::move(json)});
  }
  for (const CounterRecord& c : snapshot.counters) {
    std::string json = "  {\"name\": \"" + json_escape(c.name) +
                       "\", \"ph\": \"C\", \"ts\": " +
                       json_double(c.ts_ms * 1000.0) +
                       ", \"pid\": 0, \"args\": {\"value\": " +
                       json_double(c.value) + "}}";
    events.push_back({c.ts_ms, std::move(json)});
  }
  if (snapshot.dropped_spans > 0 || snapshot.dropped_counters > 0) {
    // A global instant at the end of the timeline flags the truncation
    // right in the viewer, mirroring the trace/dropped_spans counter.
    double end_ms = 0;
    for (const SpanRecord& s : snapshot.spans)
      end_ms = std::max(end_ms, s.start_ms + s.duration_ms);
    for (const CounterRecord& c : snapshot.counters)
      end_ms = std::max(end_ms, c.ts_ms);
    std::string json =
        "  {\"name\": \"trace_truncated\", \"ph\": \"i\", \"ts\": " +
        json_double(end_ms * 1000.0) +
        ", \"s\": \"g\", \"pid\": 0, \"tid\": 0, "
        "\"args\": {\"dropped_spans\": " +
        std::to_string(snapshot.dropped_spans) +
        ", \"dropped_counters\": " +
        std::to_string(snapshot.dropped_counters) + "}}";
    events.push_back({end_ms, std::move(json)});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Rendered& a, const Rendered& b) {
                     return a.ts_ms < b.ts_ms;
                   });

  out << "{\"traceEvents\": [";
  bool first = true;
  out << (first ? "\n" : ",\n")
      << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
         "\"args\": {\"name\": \"ethshard\"}}";
  first = false;
  for (const auto& [ordinal, lane] : snapshot.lanes) {
    out << ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
           "\"tid\": "
        << ordinal << ", \"args\": {\"name\": \"" << json_escape(lane)
        << "\"}}";
  }
  for (const Rendered& e : events) out << ",\n" << e.json;
  out << "\n]}\n";
}

void write_metrics_json_file(const std::string& path,
                             const MetricsSnapshot& snapshot) {
  std::ofstream out(path);
  ETHSHARD_CHECK_MSG(out.good(), "cannot open " << path);
  write_metrics_json(out, snapshot);
}

void write_metrics_csv_file(const std::string& path,
                            const MetricsSnapshot& snapshot) {
  std::ofstream out(path);
  ETHSHARD_CHECK_MSG(out.good(), "cannot open " << path);
  write_metrics_csv(out, snapshot);
}

void write_trace_json_file(const std::string& path,
                           const std::vector<SpanRecord>& spans) {
  std::ofstream out(path);
  ETHSHARD_CHECK_MSG(out.good(), "cannot open " << path);
  write_trace_json(out, spans);
}

void write_trace_json_file(const std::string& path,
                           const TraceSnapshot& snapshot) {
  std::ofstream out(path);
  ETHSHARD_CHECK_MSG(out.good(), "cannot open " << path);
  write_trace_json(out, snapshot);
}

}  // namespace ethshard::obs
