// Named metrics for the simulation engine: counters, gauges, and timer
// statistics, aggregated in a thread-local-then-merged Registry.
//
// Writers bump a per-(thread, registry) sink guarded by its own mutex —
// uncontended in the common case, so the hot path is a thread-local map
// lookup plus an uncontended lock. snapshot() merges every sink the
// registry has ever handed out (sinks are owned by the registry, so data
// from joined worker threads is never lost).
//
// Two gates keep the cost near zero when observability is off:
//   * compile time — ETHSHARD_OBS_ENABLED=0 turns the macros in obs.hpp
//     into no-ops (no call, no argument evaluation);
//   * run time — enabled() is a relaxed atomic load checked before any
//     work; the default is off.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/histogram.hpp"

namespace ethshard::obs {

/// Runtime master switch for metrics recording (default off). Cheap to
/// query; writers check it before touching any registry state.
bool enabled();
void set_enabled(bool on);

namespace internal {
/// (Re)installs or clears the parallel-runtime hook table based on the
/// current metrics + tracing switches. Called by set_enabled and
/// set_trace_enabled; not part of the public surface.
void refresh_parallel_hooks();
}  // namespace internal

/// Aggregate of every record_ms() call made under one timer name. Exact
/// count/total/min/max plus a log-bucketed distribution of the samples,
/// so snapshots answer p50/p90/p99 as well as the mean.
struct TimerStat {
  std::uint64_t count = 0;
  double total_ms = 0;
  double min_ms = 0;
  double max_ms = 0;
  Histogram hist;

  double mean_ms() const {
    return count == 0 ? 0.0 : total_ms / static_cast<double>(count);
  }
  double quantile_ms(double q) const { return hist.quantile(q); }
  void add(double ms);
  void merge(const TimerStat& other);
};

/// Point-in-time view of a Registry, merged across threads. Ordered maps
/// so exports and tests are deterministic (keys always sort).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, TimerStat> timers;
  /// Free-standing distributions recorded via record_hist — unit-less
  /// values (queue depths, vertex counts, wait times) rather than the
  /// scope durations timers capture.
  std::map<std::string, Histogram> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && timers.empty() &&
           histograms.empty();
  }
  void merge(const MetricsSnapshot& other);
};

/// Thread-local-then-merged metric store. The process-wide instance is
/// global(); scoped instances (see ScopedRegistry in obs.hpp) let an
/// experiment grid attribute metrics to one cell at a time.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Adds `delta` to the named monotonic counter.
  void add_counter(std::string_view name, std::uint64_t delta = 1);
  /// Sets the named gauge to its latest value (last write wins).
  void set_gauge(std::string_view name, double value);
  /// Records one duration sample under the named timer.
  void record_ms(std::string_view name, double ms);
  /// Records one sample in the named histogram (values need not be
  /// durations — counts, depths and sizes are equally at home).
  void record_hist(std::string_view name, double value);

  /// Folds an external snapshot into this registry (e.g. a per-cell
  /// registry's totals into the process-wide one).
  void absorb(const MetricsSnapshot& snapshot);

  /// Merged view across all threads that ever wrote to this registry.
  MetricsSnapshot snapshot() const;

  /// Drops all recorded data (sinks stay registered).
  void reset();

  /// The process-wide registry.
  static Registry& global();

 private:
  struct Sink {
    std::mutex mu;
    std::unordered_map<std::string, std::uint64_t> counters;
    std::unordered_map<std::string, double> gauges;
    std::unordered_map<std::string, TimerStat> timers;
    std::unordered_map<std::string, Histogram> histograms;
  };

  Sink& local_sink();

  /// Never-reused identity for the thread-local sink cache, so a stale
  /// cache entry for a destroyed registry can never alias a new one.
  const std::uint64_t id_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Sink>> sinks_;
  MetricsSnapshot absorbed_;
};

}  // namespace ethshard::obs
