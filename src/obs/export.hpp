// Serialization of observability data for external tooling.
//
// Metrics export as a single JSON object (or a flat CSV) that loads
// directly into pandas / jq; traces export in the Chrome trace-event
// format, viewable at chrome://tracing or in Perfetto.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace ethshard::obs {

/// {"counters": {...}, "gauges": {...}, "timers": {name: {count,
/// total_ms, mean_ms, min_ms, max_ms, p50_ms, p90_ms, p99_ms}, ...},
/// "histograms": {name: {count, sum, mean, min, max, p50, p90, p99},
/// ...}}. Keys inside each section are emitted in sorted order (the
/// snapshot maps are ordered), so exports diff cleanly run to run.
void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot);

/// Flat rows: kind,name,count,value_or_total,min,max,p50,p90,p99.
void write_metrics_csv(std::ostream& out, const MetricsSnapshot& snapshot);

/// Chrome trace-event JSON: {"traceEvents": [{"name", "ph": "X", "ts",
/// "dur", "pid", "tid"}, ...]} with microsecond timestamps.
void write_trace_json(std::ostream& out,
                      const std::vector<SpanRecord>& spans);

/// Full-fidelity Chrome trace: "M" thread_name metadata rows name the
/// lanes (Stage A, Stage B, pool workers), "X" duration events carry the
/// spans, "C" events draw the counter tracks (queue depth, windows
/// completed), and a global "i" instant marks truncation when spans or
/// counters were dropped. Events are emitted one per line, sorted by
/// timestamp (metadata first), so downstream line scanners stay simple.
void write_trace_json(std::ostream& out, const TraceSnapshot& snapshot);

/// File conveniences; throw util::CheckFailure if the file cannot open.
void write_metrics_json_file(const std::string& path,
                             const MetricsSnapshot& snapshot);
void write_metrics_csv_file(const std::string& path,
                            const MetricsSnapshot& snapshot);
void write_trace_json_file(const std::string& path,
                           const std::vector<SpanRecord>& spans);
void write_trace_json_file(const std::string& path,
                           const TraceSnapshot& snapshot);

}  // namespace ethshard::obs
