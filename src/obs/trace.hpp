// Hierarchical trace spans for the simulation engine.
//
// A ScopedSpan marks one timed region; spans opened while another span is
// live on the same thread nest under it, and the recorded name is the
// '/'-joined path from the outermost span down ("simulate/mlkp/coarsen").
// Completed spans land in a process-wide TraceBuffer exportable as a
// Chrome trace-event JSON file (load at chrome://tracing or in Perfetto).
//
// Tracing has its own runtime switch (trace_enabled), independent of the
// metrics switch: metrics are cheap aggregates, traces grow with every
// span, so they stay off unless a sink was requested.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ethshard::obs {

/// Runtime master switch for span recording (default off).
bool trace_enabled();
void set_trace_enabled(bool on);

/// One completed span. Times are milliseconds since the process's trace
/// epoch (the first clock query made by this module).
struct SpanRecord {
  std::string path;
  double start_ms = 0;
  double duration_ms = 0;
  /// Small per-thread ordinal (0, 1, ...), stable within the process.
  std::uint32_t thread = 0;
  /// Nesting depth at record time (0 = outermost).
  std::uint32_t depth = 0;
};

/// Process-wide store of completed spans. Growth is bounded: once
/// max_spans() spans are buffered, further records are dropped and
/// counted (a multi-hour --trace-out run degrades to a truncated trace
/// instead of exhausting memory silently). The drop counter is surfaced
/// in metrics exports as the "trace/dropped_spans" counter.
class TraceBuffer {
 public:
  /// ~1M spans ≈ 100 MB of paths/records — ample for any figure run.
  static constexpr std::size_t kDefaultMaxSpans = 1 << 20;

  static TraceBuffer& global();

  void record(SpanRecord span);
  /// Copy of everything recorded so far, in completion order.
  std::vector<SpanRecord> snapshot() const;
  /// Drops buffered spans and resets the drop counter.
  void clear();
  std::size_t size() const;

  /// Buffered-span cap; 0 means unlimited.
  void set_max_spans(std::size_t cap);
  std::size_t max_spans() const;
  /// Spans rejected because the buffer was full (since the last clear).
  std::uint64_t dropped() const;

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::size_t max_spans_ = kDefaultMaxSpans;
  std::uint64_t dropped_ = 0;
};

/// RAII span. `name` must outlive the span (string literals in practice).
/// Construction is a no-op when tracing is disabled; the enable check is
/// latched at construction so a span never records a half-timed interval.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
  double start_ms_ = 0;
};

/// Milliseconds since the trace epoch (steady clock).
double trace_now_ms();

}  // namespace ethshard::obs
