// Hierarchical trace spans for the simulation engine.
//
// A ScopedSpan marks one timed region; spans opened while another span is
// live on the same thread nest under it, and the recorded name is the
// '/'-joined path from the outermost span down ("simulate/mlkp/coarsen").
// Completed spans land in a process-wide TraceBuffer exportable as a
// Chrome trace-event JSON file (load at chrome://tracing or in Perfetto).
//
// Tracing has its own runtime switch (trace_enabled), independent of the
// metrics switch: metrics are cheap aggregates, traces grow with every
// span, so they stay off unless a sink was requested.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ethshard::obs {

/// Runtime master switch for span recording (default off).
bool trace_enabled();
void set_trace_enabled(bool on);

/// One completed span. Times are milliseconds since the process's trace
/// epoch (the first clock query made by this module).
struct SpanRecord {
  std::string path;
  double start_ms = 0;
  double duration_ms = 0;
  /// Small per-thread ordinal (0, 1, ...), stable within the process.
  std::uint32_t thread = 0;
  /// Nesting depth at record time (0 = outermost).
  std::uint32_t depth = 0;
};

/// One sample on a named counter track (queue depth, windows completed).
/// Exported as a Chrome "C" event, so the viewer draws the series as a
/// step graph under the timeline lanes.
struct CounterRecord {
  std::string name;
  double ts_ms = 0;
  double value = 0;
};

/// Everything the buffer holds, copied atomically: spans, counter samples,
/// the thread-ordinal -> lane-name map, and the drop counts (nonzero means
/// the exported trace is a truncated prefix, not the full run).
struct TraceSnapshot {
  std::vector<SpanRecord> spans;
  std::vector<CounterRecord> counters;
  std::map<std::uint32_t, std::string> lanes;
  std::uint64_t dropped_spans = 0;
  std::uint64_t dropped_counters = 0;
};

/// Process-wide store of completed spans. Growth is bounded: once
/// max_spans() spans are buffered, further records are dropped and
/// counted (a multi-hour --trace-out run degrades to a truncated trace
/// instead of exhausting memory silently). The drop counter is surfaced
/// in metrics exports as the "trace/dropped_spans" counter.
class TraceBuffer {
 public:
  /// ~1M spans ≈ 100 MB of paths/records — ample for any figure run.
  static constexpr std::size_t kDefaultMaxSpans = 1 << 20;

  static TraceBuffer& global();

  void record(SpanRecord span);
  /// Records one counter-track sample. The span cap value applies to the
  /// counter store as its own budget (an unbounded sampler must not grow
  /// past what the span side is allowed).
  void record_counter(CounterRecord sample);
  /// Names the timeline lane for a thread ordinal ("Stage A (aggregate)").
  /// Last writer wins; unnamed lanes export as bare thread numbers.
  void set_thread_lane(std::uint32_t ordinal, std::string name);

  /// Copy of every span recorded so far, in completion order.
  std::vector<SpanRecord> snapshot() const;
  /// Spans + counters + lane names + drop counts in one consistent copy.
  TraceSnapshot trace_snapshot() const;
  /// Drops buffered spans/counters/lanes and resets the drop counters.
  void clear();
  std::size_t size() const;

  /// Buffered-span cap (applied to counters too); 0 means unlimited.
  void set_max_spans(std::size_t cap);
  std::size_t max_spans() const;
  /// Spans rejected because the buffer was full (since the last clear).
  std::uint64_t dropped() const;

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::vector<CounterRecord> counters_;
  std::map<std::uint32_t, std::string> lanes_;
  std::size_t max_spans_ = kDefaultMaxSpans;
  std::uint64_t dropped_ = 0;
  std::uint64_t dropped_counters_ = 0;
};

/// RAII span. `name` must outlive the span (string literals in practice).
/// Construction is a no-op when tracing is disabled; the enable check is
/// latched at construction so a span never records a half-timed interval.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
  double start_ms_ = 0;
};

/// Milliseconds since the trace epoch (steady clock).
double trace_now_ms();

/// This thread's small stable ordinal — the "tid" every span it records
/// carries, and the key set_thread_lane names.
std::uint32_t current_thread_ordinal();

/// Names the calling thread's timeline lane in the global buffer. No-op
/// when tracing is disabled. `name` is copied.
void set_current_thread_lane(const char* name);

/// Records an already-timed interval on the calling thread's lane —
/// for retroactive spans (a stall measured as now - wait) where RAII
/// scoping is impossible. `path` is recorded verbatim (no nesting under
/// the thread's open ScopedSpans). No-op when tracing is disabled.
void record_span(const char* path, double start_ms, double end_ms);

/// Records one sample on a counter track, stamped with the current trace
/// clock. No-op when tracing is disabled.
void record_counter_sample(const char* name, double value);

}  // namespace ethshard::obs
