// Offline analysis of our own Chrome trace-event files.
//
// tools/trace_report feeds a --trace-out file through this module to
// answer "why is the pipeline not winning" mechanically: how much of
// Stage A's aggregation actually overlapped Stage B's apply/flush, where
// the stall time went (producer backpressure vs consumer prefetch), and
// whether the measured run would have been faster serial.
//
// The parser is a strict line-level scanner over the format obs/export
// writes (one event object per line), not a general JSON parser — the
// repo deliberately has no JSON dependency, and every trace this module
// ingests is machine-written by write_trace_json. Malformed input throws
// util::CheckFailure.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace ethshard::obs {

/// One event lifted out of the trace JSON. `ph` is the Chrome phase
/// ('X' duration, 'C' counter, 'M' metadata, 'i' instant).
struct TraceEvent {
  std::string name;
  char ph = '\0';
  double ts_ms = 0;
  double dur_ms = 0;
  std::uint64_t tid = 0;
  /// "C" events: the sampled value. "M" thread_name events: unused.
  double value = 0;
  /// "M" events: args.name (the lane label).
  std::string arg_name;
};

struct ParsedTrace {
  std::vector<TraceEvent> events;
  /// tid -> lane label, from thread_name metadata.
  std::map<std::uint64_t, std::string> lanes;
  /// True when a trace_truncated instant was present.
  bool truncated = false;
};

/// Parses a write_trace_json file. Throws util::CheckFailure when the
/// container or any event is malformed (missing traceEvents, an event
/// without name/ph, an X event without ts/dur).
ParsedTrace parse_chrome_trace(const std::string& json_text);

/// Per-lane activity over the pipeline window.
struct LaneStat {
  std::uint64_t tid = 0;
  std::string name;
  /// Union of this lane's productive (non-stall) span intervals, ms.
  double busy_ms = 0;
  /// busy_ms / wall_ms.
  double utilization = 0;
  std::uint64_t spans = 0;
};

/// The trace_report payload. Schema v1; additions never bump the version
/// (consumers must ignore unknown keys), removals/renames do.
struct PipelineReport {
  int schema_version = 1;
  double wall_ms = 0;
  bool truncated = false;
  std::vector<LaneStat> lanes;

  // Per-stage productive time (sums of pipeline/aggregate, pipeline/apply,
  // pipeline/flush span durations) and window counts.
  double aggregate_ms = 0;
  double apply_ms = 0;
  double flush_ms = 0;
  std::uint64_t windows_aggregated = 0;
  std::uint64_t windows_applied = 0;

  // Stall attribution: producer blocked on a full queue (backpressure) vs
  // consumer blocked on an empty one (prefetch).
  double backpressure_ms = 0;
  std::uint64_t backpressure_count = 0;
  double prefetch_ms = 0;
  std::uint64_t prefetch_count = 0;

  // Overlap: time where Stage A aggregation and Stage B apply/flush ran
  // concurrently, as a fraction of the smaller stage's busy time. 1.0 is
  // a perfectly hidden Stage A; ~0 means the stages took turns and the
  // pipeline bought nothing.
  double overlap_ms = 0;
  double overlap_fraction = 0;

  // Critical-path decomposition: which side the wall clock is waiting on.
  // aggregate-bound (consumer starved), apply-bound (producer blocked),
  // queue-bound (both stall — capacity/burstiness), balanced, no-pipeline,
  // or insufficient_data (pipeline spans present but too few/short to
  // measure — see analyze_pipeline_trace).
  std::string bottleneck = "no-pipeline";
  double prefetch_fraction = 0;
  double backpressure_fraction = 0;

  // Serial-vs-pipelined verdict: the serial estimate is the sum of both
  // stages' productive time (what one thread doing everything would
  // spend); speedup = estimate / measured wall. Recommendation is one of
  // "pipelined", "serial", "tie", "no-pipeline", or "insufficient_data".
  double serial_estimate_ms = 0;
  double speedup = 0;
  std::string recommendation = "no-pipeline";
};

/// Computes the report from a parsed trace. A trace with no
/// pipeline/aggregate or pipeline/apply spans yields bottleneck ==
/// recommendation == "no-pipeline" with zeroed stage fields. A trace
/// with pipeline spans but nothing measurable — zero wall extent, zero
/// total stage busy time, or fewer than two windows — yields bottleneck
/// == recommendation == "insufficient_data" with speedup left at 0
/// (rather than a division-by-zero "serial" verdict).
PipelineReport analyze_pipeline_trace(const ParsedTrace& trace);

/// Schema-versioned report JSON (one object; see PipelineReport).
void write_pipeline_report_json(std::ostream& out,
                                const PipelineReport& report);

}  // namespace ethshard::obs
