#include "eth/pow.hpp"

#include "util/check.hpp"

namespace ethshard::eth {

std::uint64_t pow_target(unsigned difficulty_bits) {
  ETHSHARD_CHECK(difficulty_bits < 64);
  return ~std::uint64_t{0} >> difficulty_bits;
}

Hash256 pow_digest(const Hash256& block_hash, std::uint64_t nonce) {
  Keccak256 h;
  h.update(block_hash.data(), block_hash.size());
  h.update_u64(nonce);
  return h.finalize();
}

bool check_seal(const Block& block, const Seal& seal,
                unsigned difficulty_bits) {
  const Hash256 digest = pow_digest(block.hash(), seal.nonce);
  if (digest != seal.mix) return false;
  return hash_prefix_u64(digest) <= pow_target(difficulty_bits);
}

std::optional<Seal> mine(const Block& block, unsigned difficulty_bits,
                         std::uint64_t max_attempts,
                         std::uint64_t start_nonce) {
  const std::uint64_t target = pow_target(difficulty_bits);
  const Hash256 base = block.hash();
  for (std::uint64_t i = 0; i < max_attempts; ++i) {
    const std::uint64_t nonce = start_nonce + i;
    const Hash256 digest = pow_digest(base, nonce);
    if (hash_prefix_u64(digest) <= target) return Seal{nonce, digest};
  }
  return std::nullopt;
}

}  // namespace ethshard::eth
