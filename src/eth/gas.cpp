#include "eth/gas.hpp"

#include <unordered_set>

namespace ethshard::eth {

std::uint64_t call_gas(const Call& call, bool callee_exists,
                       const GasSchedule& schedule) {
  std::uint64_t gas = schedule.g_memory_per_call;
  switch (call.kind) {
    case CallKind::kTransfer:
      gas += schedule.g_call;
      if (call.value_wei > 0) gas += schedule.g_callvalue;
      if (!callee_exists) gas += schedule.g_newaccount;
      break;
    case CallKind::kContractCall:
      gas += schedule.g_call;
      if (call.value_wei > 0) gas += schedule.g_callvalue;
      break;
    case CallKind::kContractCreate:
      gas += schedule.g_create + schedule.g_sset;  // init code stores
      break;
  }
  return gas;
}

std::uint64_t transaction_gas(const Transaction& tx,
                              const AccountExistsFn& account_exists,
                              const GasSchedule& schedule) {
  std::uint64_t gas = schedule.g_transaction;
  std::unordered_set<AccountId> created_in_trace;
  for (const Call& c : tx.calls) {
    const bool exists = created_in_trace.contains(c.to) ||
                        (account_exists && account_exists(c.to));
    gas += call_gas(c, exists, schedule);
    created_in_trace.insert(c.to);
  }
  return gas;
}

std::uint64_t transaction_gas(const Transaction& tx,
                              const GasSchedule& schedule) {
  return transaction_gas(
      tx, [](AccountId) { return true; }, schedule);
}

std::uint64_t transaction_fee(const Transaction& tx,
                              const GasSchedule& schedule) {
  return transaction_gas(tx, schedule) * tx.gas_price;
}

}  // namespace ethshard::eth
