// Proof-of-work sealing (§I: "To produce a valid block, miners must
// solve a cryptographic puzzle").
//
// A simplified Ethash stand-in: a block seal is a 64-bit nonce such that
// keccak256(block_hash ‖ nonce) interpreted big-endian lies below a
// difficulty target. Difficulty is expressed in leading zero bits of the
// 64-bit digest prefix, so expected work is 2^bits hash evaluations —
// enough to demonstrate and test the mechanism without burning CPU.
#pragma once

#include <cstdint>
#include <optional>

#include "eth/block.hpp"
#include "eth/keccak.hpp"

namespace ethshard::eth {

/// A solved puzzle for one block.
struct Seal {
  std::uint64_t nonce = 0;
  Hash256 mix{};  ///< keccak256(block_hash ‖ nonce), the proved digest
};

/// The 64-bit big-endian target below which the digest prefix must fall.
/// Precondition: difficulty_bits < 64.
std::uint64_t pow_target(unsigned difficulty_bits);

/// The digest a (block, nonce) pair produces.
Hash256 pow_digest(const Hash256& block_hash, std::uint64_t nonce);

/// True iff the seal proves work at the given difficulty for this block.
bool check_seal(const Block& block, const Seal& seal,
                unsigned difficulty_bits);

/// Searches nonces from `start_nonce` upward; returns the first seal
/// within `max_attempts` tries, or nullopt if the budget is exhausted.
/// Deterministic: the same block and start always yield the same seal.
std::optional<Seal> mine(const Block& block, unsigned difficulty_bits,
                         std::uint64_t max_attempts = 1 << 22,
                         std::uint64_t start_nonce = 0);

}  // namespace ethshard::eth
