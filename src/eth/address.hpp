// Ethereum-style 20-byte account addresses and the account registry.
//
// Vertices in the blockchain graph are accounts (externally owned) and
// smart contracts (§II-B). Internally the library works with dense
// uint64 vertex ids; Address provides the realistic on-chain identity and
// is derived deterministically from the id via Keccak-256, mirroring how
// Ethereum derives contract addresses from (sender, nonce).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "eth/keccak.hpp"
#include "util/sim_time.hpp"

namespace ethshard::eth {

/// Dense vertex/account identifier used throughout the library.
using AccountId = std::uint64_t;

/// A 20-byte Ethereum address.
class Address {
 public:
  Address() = default;

  /// Derives the address for an account id: the low 20 bytes of
  /// keccak256(le64(id)), as Ethereum takes the low 20 bytes of
  /// keccak256(rlp(sender, nonce)).
  static Address from_id(AccountId id);

  /// Parses "0x"-prefixed or bare 40-hex-char form.
  static Address from_hex(std::string_view hex);

  const std::array<std::uint8_t, 20>& bytes() const { return bytes_; }

  /// Lower-case "0x"-prefixed hex form.
  std::string to_hex() const;

  friend bool operator==(const Address&, const Address&) = default;
  friend auto operator<=>(const Address&, const Address&) = default;

 private:
  std::array<std::uint8_t, 20> bytes_{};
};

/// Whether the account is a user key pair or deployed code.
enum class AccountKind : std::uint8_t {
  kExternallyOwned,  ///< full-line node in the paper's Fig. 2
  kContract,         ///< dashed-line node in the paper's Fig. 2
};

/// Behavioural archetype of a contract (how the workload generator drives
/// it); kGeneric for externally owned accounts and unclassified contracts.
enum class ContractArchetype : std::uint8_t {
  kGeneric,   ///< default call-cascade behaviour
  kToken,     ///< ERC-20-style: activations emit 1-2 transfers
  kExchange,  ///< long-lived hub touching many distinct accounts
  kIco,       ///< crowdsale: extremely hot for a few weeks, then dead
};

/// Metadata for one account or contract.
struct AccountInfo {
  AccountId id = 0;
  AccountKind kind = AccountKind::kExternallyOwned;
  util::Timestamp created_at = 0;
  /// Storage footprint proxy (32-byte slots); relevant to the paper's
  /// observation that moving a contract means moving its whole storage.
  std::uint64_t storage_slots = 0;
  ContractArchetype archetype = ContractArchetype::kGeneric;
};

/// Append-only directory of every account/contract ever seen. Ids are
/// dense: the i-th created account has id i, so the registry doubles as
/// the graph's vertex universe.
class AccountRegistry {
 public:
  /// Registers a new account and returns its id.
  AccountId create(AccountKind kind, util::Timestamp created_at,
                   std::uint64_t storage_slots = 0,
                   ContractArchetype archetype = ContractArchetype::kGeneric);

  std::size_t size() const { return accounts_.size(); }
  bool contains(AccountId id) const { return id < accounts_.size(); }

  /// Precondition: contains(id).
  const AccountInfo& info(AccountId id) const;

  /// Precondition: contains(id). Grows a contract's storage footprint.
  void add_storage(AccountId id, std::uint64_t slots);

  /// Number of registered contracts (the rest are externally owned).
  std::size_t contract_count() const { return contract_count_; }

  const std::vector<AccountInfo>& all() const { return accounts_; }

 private:
  std::vector<AccountInfo> accounts_;
  std::size_t contract_count_ = 0;
};

}  // namespace ethshard::eth
