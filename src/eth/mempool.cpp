#include "eth/mempool.hpp"

namespace ethshard::eth {

bool Mempool::submit(Transaction tx, util::Timestamp now) {
  if (!tx.well_formed()) return false;
  auto& queue = by_sender_[tx.sender];
  const auto it = queue.find(tx.nonce);
  if (it != queue.end()) {
    if (tx.gas_price <= it->second.tx.gas_price) return false;
    Pending replacement;
    replacement.gas = transaction_gas(tx, schedule_);
    replacement.tx = std::move(tx);
    replacement.submitted = now;
    it->second = std::move(replacement);
    return true;
  }
  Pending p;
  p.gas = transaction_gas(tx, schedule_);
  p.tx = std::move(tx);
  p.submitted = now;
  queue.emplace(p.tx.nonce, std::move(p));
  ++count_;
  return true;
}

bool Mempool::contains(AccountId sender, std::uint64_t nonce) const {
  const auto it = by_sender_.find(sender);
  return it != by_sender_.end() && it->second.contains(nonce);
}

std::vector<Transaction> Mempool::pack_block(std::uint64_t gas_limit) {
  std::vector<Transaction> block;
  std::uint64_t gas_used = 0;

  while (true) {
    // The eligible candidate of each sender is its lowest pending nonce;
    // pick the one with the best gas price (ties: smaller sender id —
    // sender maps iterate in id order, so first-best wins).
    auto best_sender = by_sender_.end();
    for (auto it = by_sender_.begin(); it != by_sender_.end(); ++it) {
      if (it->second.empty()) continue;
      const Pending& head = it->second.begin()->second;
      if (gas_used + head.gas > gas_limit) continue;  // does not fit
      if (best_sender == by_sender_.end() ||
          head.tx.gas_price >
              best_sender->second.begin()->second.tx.gas_price)
        best_sender = it;
    }
    if (best_sender == by_sender_.end()) break;

    auto head = best_sender->second.begin();
    gas_used += head->second.gas;
    block.push_back(std::move(head->second.tx));
    best_sender->second.erase(head);
    --count_;
    if (best_sender->second.empty()) by_sender_.erase(best_sender);
  }
  return block;
}

std::size_t Mempool::evict_older_than(util::Timestamp cutoff) {
  std::size_t evicted = 0;
  for (auto sit = by_sender_.begin(); sit != by_sender_.end();) {
    auto& queue = sit->second;
    for (auto it = queue.begin(); it != queue.end();) {
      if (it->second.submitted < cutoff) {
        it = queue.erase(it);
        ++evicted;
        --count_;
      } else {
        ++it;
      }
    }
    sit = queue.empty() ? by_sender_.erase(sit) : std::next(sit);
  }
  return evicted;
}

}  // namespace ethshard::eth
