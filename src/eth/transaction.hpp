// Transactions and their internal call traces.
//
// §II-B: "Accounts and contracts can call each other in specific ways in a
// transaction, and a transaction can lead to multiple calls to different
// accounts and contracts." A Transaction therefore carries its full call
// trace in execution order; the graph builder turns every call into a
// directed edge caller → callee.
#pragma once

#include <cstdint>
#include <vector>

#include "eth/address.hpp"
#include "eth/keccak.hpp"
#include "util/sim_time.hpp"

namespace ethshard::eth {

/// What a call does; all three create a graph edge.
enum class CallKind : std::uint8_t {
  kTransfer,        ///< plain ether transfer to an account
  kContractCall,    ///< activates a contract (message call)
  kContractCreate,  ///< deploys a new contract (callee is the new contract)
};

/// One edge-producing interaction inside a transaction.
struct Call {
  AccountId from = 0;
  AccountId to = 0;
  CallKind kind = CallKind::kTransfer;
  /// Ether moved, in wei (0 for pure message calls).
  std::uint64_t value_wei = 0;

  friend bool operator==(const Call&, const Call&) = default;
};

/// A signed transaction with its execution trace.
///
/// calls.front() is the top-level action (from == sender); subsequent
/// entries are internal calls made by contracts during execution.
struct Transaction {
  AccountId sender = 0;
  std::uint64_t nonce = 0;
  std::uint64_t gas_limit = 21000;
  std::uint64_t gas_price = 1;
  std::vector<Call> calls;

  /// True iff the trace is structurally well-formed: non-empty, the first
  /// call originates at the sender, and every internal call originates at
  /// an account already touched (sender or a previous callee) — a contract
  /// cannot act before being entered.
  bool well_formed() const;

  /// Keccak-256 over all fields; stable across runs.
  Hash256 hash() const;
};

}  // namespace ethshard::eth
