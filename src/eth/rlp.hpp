// Recursive Length Prefix (RLP) encoding — Ethereum's canonical
// serialization (Yellow Paper, Appendix B). Transactions, blocks and the
// state trie are all RLP-encoded on the wire and under the hashes; this
// implementation provides byte-exact encoding and strict decoding for
// the two RLP forms: byte strings and (arbitrarily nested) lists.
//
// Canonical rules implemented (and enforced when decoding):
//  * [0x00, 0x7f]                  single byte, encodes itself;
//  * [0x80, 0xb7] + payload        string of 0-55 bytes;
//  * [0xb8, 0xbf] + len + payload  longer string, big-endian length;
//  * [0xc0, 0xf7] + items         list with 0-55 payload bytes;
//  * [0xf8, 0xff] + len + items   longer list.
// Integers encode as big-endian byte strings without leading zeros
// (zero encodes as the empty string).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace ethshard::eth::rlp {

using Bytes = std::vector<std::uint8_t>;

/// An RLP item: either a byte string or a list of items.
struct Item {
  bool is_list = false;
  Bytes bytes;               ///< payload when !is_list
  std::vector<Item> items;   ///< children when is_list

  /// Convenience factories.
  static Item string(Bytes b);
  static Item string(std::string_view s);
  static Item integer(std::uint64_t v);
  static Item list(std::vector<Item> children);

  /// Interprets the payload as a big-endian unsigned integer.
  /// Throws util::CheckFailure on lists, >8-byte payloads, or non-
  /// canonical leading zeros.
  std::uint64_t to_integer() const;

  friend bool operator==(const Item&, const Item&);
};

/// Canonical encoding of an item.
Bytes encode(const Item& item);

/// Convenience: encode a raw byte string / an integer.
Bytes encode_string(std::string_view s);
Bytes encode_integer(std::uint64_t v);

/// Strict decoding: the buffer must contain exactly one item with no
/// trailing bytes, and every length prefix must be canonical (minimal).
/// Throws util::CheckFailure otherwise.
Item decode(const Bytes& encoded);

}  // namespace ethshard::eth::rlp
