// Gas accounting (§II-A).
//
// "At the beginning of a transaction, users have to define the maximum
// ether they are willing to pay ... Users can estimate the cost of a
// transaction from the transaction's instructions and the cost of each
// instruction." This model implements the estimation side: intrinsic
// transaction cost plus per-call costs, after the fee schedule of the
// Yellow Paper (simplified to the operations our call traces expose).
// Gas doubles as an alternative load weight for the sharding simulator
// (§IV lists computation as one of the three resources to balance).
#pragma once

#include <cstdint>
#include <functional>

#include "eth/transaction.hpp"

namespace ethshard::eth {

/// Fee schedule (Yellow Paper names, homestead-era values).
struct GasSchedule {
  std::uint64_t g_transaction = 21000;  ///< intrinsic cost of any tx
  std::uint64_t g_call = 700;           ///< CALL to an existing account
  std::uint64_t g_callvalue = 9000;     ///< surcharge when value > 0
  std::uint64_t g_newaccount = 25000;   ///< transfer to a fresh account
  std::uint64_t g_create = 32000;       ///< CREATE a contract
  std::uint64_t g_sset = 20000;         ///< storage slot 0 → non-zero
  std::uint64_t g_memory_per_call = 50; ///< flat memory/stack overhead
};

/// Gas consumed by a single call. `callee_exists` reports whether the
/// callee account existed before this call (a transfer to a fresh
/// account pays g_newaccount; creates always pay g_create + g_sset).
std::uint64_t call_gas(const Call& call, bool callee_exists,
                       const GasSchedule& schedule = {});

/// Whether an account existed before the enclosing transaction's call.
using AccountExistsFn = std::function<bool(AccountId)>;

/// Estimated gas for a whole transaction: intrinsic cost + every call in
/// its trace. `account_exists` answers existence *before* the
/// transaction; accounts created earlier in the same trace count as
/// existing for subsequent calls.
std::uint64_t transaction_gas(const Transaction& tx,
                              const AccountExistsFn& account_exists,
                              const GasSchedule& schedule = {});

/// Convenience overload: every callee assumed to pre-exist.
std::uint64_t transaction_gas(const Transaction& tx,
                              const GasSchedule& schedule = {});

/// Fee in wei: gas × gas_price (all callees assumed to pre-exist).
std::uint64_t transaction_fee(const Transaction& tx,
                              const GasSchedule& schedule = {});

}  // namespace ethshard::eth
