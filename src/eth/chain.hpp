// The canonical chain: an append-only, hash-linked sequence of blocks.
#pragma once

#include <cstdint>
#include <vector>

#include "eth/block.hpp"

namespace ethshard::eth {

/// Append-only blockchain with structural validation on append.
///
/// Invariants maintained:
///  * block numbers are consecutive starting at 0 (genesis);
///  * every block's parent_hash equals the previous block's hash;
///  * timestamps are non-decreasing.
class Chain {
 public:
  /// Appends a block after validating linkage. Throws util::CheckFailure
  /// if the block does not extend the chain.
  void append(Block block);

  std::size_t size() const { return blocks_.size(); }
  bool empty() const { return blocks_.empty(); }

  /// Precondition: number < size().
  const Block& block(std::uint64_t number) const;
  const Block& last() const;

  const std::vector<Block>& blocks() const { return blocks_; }

  /// Re-validates the whole chain from genesis (hash links, numbering,
  /// timestamp monotonicity, transaction well-formedness). Returns true
  /// iff every invariant holds. O(total transactions).
  bool validate() const;

  /// Total transactions across all blocks.
  std::uint64_t transaction_count() const { return tx_count_; }

  /// Index of the first block with timestamp >= ts (blocks are time-sorted),
  /// i.e. a lower-bound search usable for windowed replay.
  std::uint64_t first_block_at_or_after(util::Timestamp ts) const;

  /// Cached hash of block `number` (computed once at append time).
  /// Precondition: number < size().
  const Hash256& block_hash(std::uint64_t number) const;

 private:
  std::vector<Block> blocks_;
  std::vector<Hash256> hashes_;  // hashes_[i] == blocks_[i].hash(), cached
  std::uint64_t tx_count_ = 0;
};

}  // namespace ethshard::eth
