// Blocks: batches of transactions cryptographically linked into a chain.
#pragma once

#include <cstdint>
#include <vector>

#include "eth/keccak.hpp"
#include "eth/transaction.hpp"
#include "util/sim_time.hpp"

namespace ethshard::eth {

/// One block. Blocks are immutable once sealed (hash computed).
struct Block {
  std::uint64_t number = 0;
  util::Timestamp timestamp = 0;
  Hash256 parent_hash{};
  std::vector<Transaction> transactions;

  /// Keccak-256 commitment over the transaction list (a flat analogue of
  /// Ethereum's transactions-trie root).
  Hash256 transactions_root() const;

  /// Header hash: keccak(number, timestamp, parent_hash, transactions_root).
  Hash256 hash() const;
};

}  // namespace ethshard::eth
