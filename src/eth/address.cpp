#include "eth/address.hpp"

#include "util/check.hpp"

namespace ethshard::eth {

namespace {
int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Address Address::from_id(AccountId id) {
  Keccak256 h;
  h.update_u64(id);
  const Hash256 digest = h.finalize();
  Address a;
  // Low 20 bytes of the digest, as Ethereum does for contract addresses.
  for (std::size_t i = 0; i < 20; ++i) a.bytes_[i] = digest[12 + i];
  return a;
}

Address Address::from_hex(std::string_view hex) {
  if (hex.substr(0, 2) == "0x" || hex.substr(0, 2) == "0X") hex.remove_prefix(2);
  ETHSHARD_CHECK_MSG(hex.size() == 40, "expected 40 hex chars");
  Address a;
  for (std::size_t i = 0; i < 20; ++i) {
    const int hi = hex_digit(hex[2 * i]);
    const int lo = hex_digit(hex[2 * i + 1]);
    ETHSHARD_CHECK_MSG(hi >= 0 && lo >= 0, "invalid hex digit");
    a.bytes_[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return a;
}

std::string Address::to_hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out = "0x";
  out.reserve(42);
  for (std::uint8_t b : bytes_) {
    out += digits[b >> 4];
    out += digits[b & 0xF];
  }
  return out;
}

AccountId AccountRegistry::create(AccountKind kind,
                                  util::Timestamp created_at,
                                  std::uint64_t storage_slots,
                                  ContractArchetype archetype) {
  const AccountId id = accounts_.size();
  accounts_.push_back(
      AccountInfo{id, kind, created_at, storage_slots, archetype});
  if (kind == AccountKind::kContract) ++contract_count_;
  return id;
}

const AccountInfo& AccountRegistry::info(AccountId id) const {
  ETHSHARD_CHECK(contains(id));
  return accounts_[id];
}

void AccountRegistry::add_storage(AccountId id, std::uint64_t slots) {
  ETHSHARD_CHECK(contains(id));
  accounts_[id].storage_slots += slots;
}

}  // namespace ethshard::eth
