// Binary Merkle trees over Keccak-256.
//
// Ethereum commits its world state and transaction lists with Merkle
// (Patricia) tries; this is the flat binary equivalent: enough to give
// blocks verifiable state commitments and membership proofs, which the
// StateDb uses for its state_root. Odd levels duplicate the last node
// (Bitcoin-style), and inner nodes hash the concatenation of children.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "eth/keccak.hpp"

namespace ethshard::eth {

/// Root of a binary Merkle tree over `leaves`. An empty set has the
/// well-defined root keccak256("").
Hash256 merkle_root(std::span<const Hash256> leaves);

/// A sibling step in a Merkle proof.
struct ProofStep {
  Hash256 sibling;
  bool sibling_on_left = false;
};

/// Full tree with O(log n) membership proofs.
class MerkleTree {
 public:
  explicit MerkleTree(std::vector<Hash256> leaves);

  const Hash256& root() const { return levels_.back().front(); }
  std::size_t leaf_count() const { return leaf_count_; }

  /// Proof that leaf `index` is under root(). Precondition:
  /// index < leaf_count().
  std::vector<ProofStep> prove(std::size_t index) const;

  /// Verifies a proof produced by prove() (static: needs no tree).
  static bool verify(const Hash256& leaf, std::size_t index,
                     std::span<const ProofStep> proof, const Hash256& root);

 private:
  std::size_t leaf_count_;
  /// levels_[0] = leaves (padded), levels_.back() = {root}.
  std::vector<std::vector<Hash256>> levels_;
};

}  // namespace ethshard::eth
