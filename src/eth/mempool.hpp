// Transaction pool and block packing.
//
// §II-A: "Miners include transactions in a block based on their estimates
// of the transaction cost and the amount the user is willing to pay for
// the transaction." The mempool holds pending transactions, keeps each
// sender's transactions nonce-ordered (a sender's nonce-n+1 transaction
// cannot execute before nonce n), and packs blocks greedily by fee rate
// (gas price) under a block gas limit — the standard miner policy.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "eth/gas.hpp"
#include "eth/transaction.hpp"
#include "util/sim_time.hpp"

namespace ethshard::eth {

class Mempool {
 public:
  explicit Mempool(GasSchedule schedule = {}) : schedule_(schedule) {}

  /// Admits a pending transaction. Returns false (and drops it) when the
  /// trace is malformed or a transaction with the same (sender, nonce) is
  /// already pending at an equal-or-better gas price; a strictly better
  /// price replaces the old one (Ethereum's replacement rule).
  bool submit(Transaction tx, util::Timestamp now);

  /// Pending transactions across all senders.
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Whether a (sender, nonce) pair is pending.
  bool contains(AccountId sender, std::uint64_t nonce) const;

  /// Greedily packs the highest-gas-price *eligible* transactions until
  /// the next candidate would exceed `gas_limit`. Eligible = the lowest
  /// pending nonce of its sender (nonce chains never reorder). Packed
  /// transactions leave the pool. Deterministic: ties break on sender id,
  /// then nonce.
  std::vector<Transaction> pack_block(std::uint64_t gas_limit);

  /// Drops every transaction submitted before `cutoff`; returns how many.
  std::size_t evict_older_than(util::Timestamp cutoff);

 private:
  struct Pending {
    Transaction tx;
    util::Timestamp submitted = 0;
    std::uint64_t gas = 0;
  };

  GasSchedule schedule_;
  /// sender → (nonce → pending tx), nonce-sorted per sender.
  std::map<AccountId, std::map<std::uint64_t, Pending>> by_sender_;
  std::size_t count_ = 0;
};

}  // namespace ethshard::eth
