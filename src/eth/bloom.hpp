// 2048-bit bloom filters, Ethereum-style.
//
// Every Ethereum block header carries a 2048-bit logs bloom so light
// clients can skip blocks that cannot contain an address they care
// about. This is that structure: each item sets 3 bits derived from its
// Keccak-256 hash (bytes (0,1), (2,3), (4,5), each mod 2048 — the Yellow
// Paper's M3:2048 function). Used here to index the accounts a block
// touches, e.g. for shard-local filtering.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "eth/address.hpp"
#include "eth/block.hpp"
#include "eth/keccak.hpp"

namespace ethshard::eth {

class Bloom2048 {
 public:
  /// Sets the 3 bits for a byte string.
  void add(std::string_view item);
  /// Convenience: adds an address (its 20 raw bytes).
  void add(const Address& address);

  /// False ⇒ definitely absent; true ⇒ possibly present.
  bool might_contain(std::string_view item) const;
  bool might_contain(const Address& address) const;

  /// Union with another filter (a block bloom is the union of its
  /// transactions' blooms).
  void merge(const Bloom2048& other);

  /// Number of set bits (load factor diagnostics).
  std::size_t popcount() const;
  bool empty() const { return popcount() == 0; }

  const std::array<std::uint8_t, 256>& bytes() const { return bits_; }

  friend bool operator==(const Bloom2048&, const Bloom2048&) = default;

 private:
  static std::array<std::uint16_t, 3> bit_indexes(std::string_view item);
  std::array<std::uint8_t, 256> bits_{};
};

/// Bloom over every account id a block's calls touch (ids are mapped to
/// their derived Addresses, matching what a real header would index).
Bloom2048 block_address_bloom(const Block& block);

}  // namespace ethshard::eth
