#include "eth/block.hpp"

namespace ethshard::eth {

Hash256 Block::transactions_root() const {
  Keccak256 h;
  h.update_u64(transactions.size());
  for (const Transaction& tx : transactions) {
    const Hash256 th = tx.hash();
    h.update(th.data(), th.size());
  }
  return h.finalize();
}

Hash256 Block::hash() const {
  Keccak256 h;
  h.update_u64(number);
  h.update_u64(static_cast<std::uint64_t>(timestamp));
  h.update(parent_hash.data(), parent_hash.size());
  const Hash256 root = transactions_root();
  h.update(root.data(), root.size());
  return h.finalize();
}

}  // namespace ethshard::eth
