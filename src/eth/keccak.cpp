#include "eth/keccak.hpp"

#include <cstring>

#include "util/check.hpp"

namespace ethshard::eth {

namespace {

constexpr int kRounds = 24;
constexpr std::size_t kRateBytes = 136;  // Keccak-256: 1600 - 2*256 bits

constexpr std::uint64_t kRoundConstants[kRounds] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808AULL,
    0x8000000080008000ULL, 0x000000000000808BULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008AULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000AULL,
    0x000000008000808BULL, 0x800000000000008BULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800AULL, 0x800000008000000AULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL};

constexpr int kRotations[24] = {1,  3,  6,  10, 15, 21, 28, 36,
                                45, 55, 2,  14, 27, 41, 56, 8,
                                25, 43, 62, 18, 39, 61, 20, 44};

constexpr int kPiLane[24] = {10, 7,  11, 17, 18, 3,  5,  16,
                             8,  21, 24, 4,  15, 23, 19, 13,
                             12, 2,  20, 14, 22, 9,  6,  1};

inline std::uint64_t rotl64(std::uint64_t x, int n) {
  return (x << n) | (x >> (64 - n));
}

void keccak_f1600(std::array<std::uint64_t, 25>& a) {
  for (int round = 0; round < kRounds; ++round) {
    // Theta
    std::uint64_t c[5];
    for (int x = 0; x < 5; ++x)
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    for (int x = 0; x < 5; ++x) {
      const std::uint64_t d = c[(x + 4) % 5] ^ rotl64(c[(x + 1) % 5], 1);
      for (int y = 0; y < 25; y += 5) a[x + y] ^= d;
    }
    // Rho and Pi
    std::uint64_t last = a[1];
    for (int i = 0; i < 24; ++i) {
      const int j = kPiLane[i];
      const std::uint64_t tmp = a[j];
      a[j] = rotl64(last, kRotations[i]);
      last = tmp;
    }
    // Chi
    for (int y = 0; y < 25; y += 5) {
      std::uint64_t row[5];
      for (int x = 0; x < 5; ++x) row[x] = a[y + x];
      for (int x = 0; x < 5; ++x)
        a[y + x] = row[x] ^ (~row[(x + 1) % 5] & row[(x + 2) % 5]);
    }
    // Iota
    a[0] ^= kRoundConstants[round];
  }
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Keccak256::Keccak256() = default;

void Keccak256::update(const void* data, std::size_t len) {
  ETHSHARD_CHECK(!finalized_);
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    const std::size_t take = std::min(len, kRateBytes - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, p, take);
    buffer_len_ += take;
    p += take;
    len -= take;
    if (buffer_len_ == kRateBytes) absorb_block();
  }
}

void Keccak256::update(std::string_view data) {
  update(data.data(), data.size());
}

void Keccak256::update_u64(std::uint64_t v) {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
  update(bytes, sizeof(bytes));
}

void Keccak256::absorb_block() {
  for (std::size_t i = 0; i < kRateBytes / 8; ++i) {
    std::uint64_t lane = 0;
    for (int b = 7; b >= 0; --b)
      lane = (lane << 8) | buffer_[i * 8 + static_cast<std::size_t>(b)];
    state_[i] ^= lane;
  }
  keccak_f1600(state_);
  buffer_len_ = 0;
}

Hash256 Keccak256::finalize() {
  ETHSHARD_CHECK(!finalized_);
  finalized_ = true;
  // Original Keccak padding: 0x01 .. 0x80 (multi-rate pad10*1).
  std::memset(buffer_.data() + buffer_len_, 0, kRateBytes - buffer_len_);
  buffer_[buffer_len_] = 0x01;
  buffer_[kRateBytes - 1] |= 0x80;
  buffer_len_ = kRateBytes;
  absorb_block();

  Hash256 out;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::uint64_t lane = state_[i];
    for (int b = 0; b < 8; ++b)
      out[i * 8 + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(lane >> (8 * b));
  }
  return out;
}

Hash256 keccak256(std::string_view data) {
  Keccak256 h;
  h.update(data);
  return h.finalize();
}

Hash256 keccak256(const std::vector<std::uint8_t>& data) {
  Keccak256 h;
  h.update(data.data(), data.size());
  return h.finalize();
}

std::string to_hex(const Hash256& h) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (std::uint8_t b : h) {
    out += digits[b >> 4];
    out += digits[b & 0xF];
  }
  return out;
}

Hash256 hash_from_hex(std::string_view hex) {
  if (hex.substr(0, 2) == "0x" || hex.substr(0, 2) == "0X") hex.remove_prefix(2);
  ETHSHARD_CHECK_MSG(hex.size() == 64, "expected 64 hex chars");
  Hash256 out;
  for (std::size_t i = 0; i < 32; ++i) {
    const int hi = hex_digit(hex[2 * i]);
    const int lo = hex_digit(hex[2 * i + 1]);
    ETHSHARD_CHECK_MSG(hi >= 0 && lo >= 0, "invalid hex digit");
    out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return out;
}

std::uint64_t hash_prefix_u64(const Hash256& h) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | h[static_cast<std::size_t>(i)];
  return v;
}

}  // namespace ethshard::eth
