#include "eth/difficulty.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ethshard::eth {

std::uint64_t next_difficulty(std::uint64_t parent_difficulty,
                              std::uint64_t timestamp_delta,
                              std::uint64_t number,
                              const DifficultyParams& params) {
  ETHSHARD_CHECK(parent_difficulty >= params.minimum_difficulty);

  // Homestead: sigma = max(1 - delta/target, -99).
  const std::int64_t sigma = std::max<std::int64_t>(
      1 - static_cast<std::int64_t>(timestamp_delta /
                                    params.target_spacing),
      -99);
  const std::uint64_t step = parent_difficulty / params.bound_divisor;

  std::int64_t d = static_cast<std::int64_t>(parent_difficulty) +
                   sigma * static_cast<std::int64_t>(step);

  if (params.ice_age) {
    const std::uint64_t period = number / 100000;
    if (period >= 2 && period - 2 < 63)
      d += static_cast<std::int64_t>(std::uint64_t{1} << (period - 2));
  }

  return std::max<std::int64_t>(
             d, static_cast<std::int64_t>(params.minimum_difficulty));
}

}  // namespace ethshard::eth
