#include "eth/chain.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ethshard::eth {

void Chain::append(Block block) {
  if (blocks_.empty()) {
    ETHSHARD_CHECK_MSG(block.number == 0, "genesis block must have number 0");
  } else {
    const Block& prev = blocks_.back();
    ETHSHARD_CHECK_MSG(block.number == prev.number + 1,
                       "non-consecutive block number " << block.number);
    ETHSHARD_CHECK_MSG(block.parent_hash == hashes_.back(),
                       "parent hash mismatch at block " << block.number);
    ETHSHARD_CHECK_MSG(block.timestamp >= prev.timestamp,
                       "timestamp regression at block " << block.number);
  }
  tx_count_ += block.transactions.size();
  hashes_.push_back(block.hash());
  blocks_.push_back(std::move(block));
}

const Hash256& Chain::block_hash(std::uint64_t number) const {
  ETHSHARD_CHECK(number < hashes_.size());
  return hashes_[number];
}

const Block& Chain::block(std::uint64_t number) const {
  ETHSHARD_CHECK(number < blocks_.size());
  return blocks_[number];
}

const Block& Chain::last() const {
  ETHSHARD_CHECK(!blocks_.empty());
  return blocks_.back();
}

bool Chain::validate() const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const Block& b = blocks_[i];
    if (b.number != i) return false;
    if (i > 0) {
      if (b.parent_hash != blocks_[i - 1].hash()) return false;
      if (b.timestamp < blocks_[i - 1].timestamp) return false;
    }
    if (!std::all_of(b.transactions.begin(), b.transactions.end(),
                     [](const Transaction& tx) { return tx.well_formed(); }))
      return false;
  }
  return true;
}

std::uint64_t Chain::first_block_at_or_after(util::Timestamp ts) const {
  auto it = std::lower_bound(
      blocks_.begin(), blocks_.end(), ts,
      [](const Block& b, util::Timestamp t) { return b.timestamp < t; });
  return static_cast<std::uint64_t>(it - blocks_.begin());
}

}  // namespace ethshard::eth
