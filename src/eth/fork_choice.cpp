#include "eth/fork_choice.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ethshard::eth {

BlockTree::BlockTree(Block genesis) {
  ETHSHARD_CHECK_MSG(genesis.number == 0, "genesis must have number 0");
  const Hash256 hash = genesis.hash();
  Node node;
  node.block = std::move(genesis);
  node.height = 0;
  nodes_.emplace(hash, std::move(node));
  head_ = hash;
}

const BlockTree::Node& BlockTree::node(const Hash256& hash) const {
  const auto it = nodes_.find(hash);
  ETHSHARD_CHECK_MSG(it != nodes_.end(), "unknown block hash");
  return it->second;
}

bool BlockTree::insert(Block block) {
  const Hash256 hash = block.hash();
  if (nodes_.contains(hash)) return false;
  const auto parent_it = nodes_.find(block.parent_hash);
  if (parent_it == nodes_.end()) return false;
  const Node& parent = parent_it->second;
  if (block.number != parent.height + 1) return false;
  if (block.timestamp < parent.block.timestamp) return false;

  Node node;
  node.parent = block.parent_hash;
  node.height = block.number;
  node.block = std::move(block);
  const std::uint64_t height = node.height;
  nodes_.emplace(hash, std::move(node));

  // Longest chain wins; equal heights keep the incumbent unless the
  // challenger's hash is smaller (a deterministic, stake-free tie-break).
  const std::uint64_t head_h = height_of(head_);
  const bool better =
      height > head_h || (height == head_h && hash < head_);
  if (better) {
    last_reorg_ = reorg_between(head_, hash);
    head_ = hash;
  } else {
    last_reorg_ = Reorg{};
  }
  return true;
}

std::uint64_t BlockTree::height_of(const Hash256& hash) const {
  return node(hash).height;
}

const Block& BlockTree::block_of(const Hash256& hash) const {
  return node(hash).block;
}

std::vector<Hash256> BlockTree::canonical_chain() const {
  std::vector<Hash256> chain;
  Hash256 cur = head_;
  while (true) {
    chain.push_back(cur);
    const Node& n = node(cur);
    if (n.height == 0) break;
    cur = n.parent;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

bool BlockTree::is_canonical(const Hash256& hash) const {
  const Node& n = node(hash);
  // Walk down from the head to this height.
  Hash256 cur = head_;
  while (node(cur).height > n.height) cur = node(cur).parent;
  return cur == hash;
}

BlockTree::Reorg BlockTree::reorg_between(const Hash256& from,
                                          const Hash256& to) const {
  Reorg reorg;
  Hash256 a = from;
  Hash256 b = to;
  // Lift the deeper side up to equal height.
  while (node(a).height > node(b).height) {
    reorg.rolled_back.push_back(a);
    a = node(a).parent;
  }
  while (node(b).height > node(a).height) {
    reorg.applied.push_back(b);
    b = node(b).parent;
  }
  // Climb together to the common ancestor.
  while (a != b) {
    reorg.rolled_back.push_back(a);
    reorg.applied.push_back(b);
    a = node(a).parent;
    b = node(b).parent;
  }
  std::reverse(reorg.applied.begin(), reorg.applied.end());
  return reorg;
}

}  // namespace ethshard::eth
