// Difficulty adjustment — the feedback loop that keeps block times near
// the target as hash power fluctuates (Homestead rule, EIP-2), plus the
// exponential "ice age" term that forced the fork cadence visible in the
// paper's Fig. 1 timeline.
//
//   d(n) = parent_d + parent_d/2048 · max(1 − (t − t_parent)/10, −99)
//          + 2^(⌊n/100000⌋ − 2)
//
// clamped below at `minimum_difficulty`.
#pragma once

#include <cstdint>

namespace ethshard::eth {

struct DifficultyParams {
  std::uint64_t minimum_difficulty = 131072;  // Ethereum's floor (2^17)
  std::uint64_t target_spacing = 10;          // seconds per adjustment step
  std::uint64_t bound_divisor = 2048;
  /// Disable with 0 (the ice-age term dominates everything past block
  /// ~4M, so analyses often turn it off).
  bool ice_age = true;
};

/// Difficulty of the block at height `number` given its parent's
/// difficulty and the timestamp delta (seconds). Preconditions:
/// parent_difficulty >= params.minimum_difficulty.
std::uint64_t next_difficulty(std::uint64_t parent_difficulty,
                              std::uint64_t timestamp_delta,
                              std::uint64_t number,
                              const DifficultyParams& params = {});

}  // namespace ethshard::eth
