#include "eth/state.hpp"

#include <algorithm>

#include "eth/chain.hpp"
#include "eth/merkle.hpp"
#include "util/check.hpp"

namespace ethshard::eth {

namespace {
constexpr std::uint64_t kAccountRecordBytes = 96;  // id+balance+nonce+meta
constexpr std::uint64_t kStorageSlotBytes = 64;    // 32B key + 32B value
}  // namespace

AccountState& StateDb::touch(AccountId id) {
  AccountState& a = accounts_[id];
  a.exists = true;
  return a;
}

void StateDb::credit(AccountId id, std::uint64_t amount_wei) {
  touch(id).balance_wei += amount_wei;
  minted_ += amount_wei;
}

BlockApplyResult StateDb::apply(const Block& block) {
  ETHSHARD_CHECK_MSG(block.number == next_block_,
                     "blocks must be applied in order (expected "
                         << next_block_ << ", got " << block.number << ")");
  ++next_block_;

  BlockApplyResult result;
  for (const Transaction& tx : block.transactions) {
    ETHSHARD_CHECK_MSG(tx.well_formed(), "malformed transaction in block "
                                             << block.number);
    ++result.transactions;

    AccountState& sender = touch(tx.sender);
    ++sender.nonce;

    // Gas fee, charged up-front to the sender (clamped to its balance —
    // the synthetic workload is not fee-aware).
    const std::uint64_t gas = transaction_gas(
        tx, [this](AccountId id) { return exists(id); }, schedule_);
    const std::uint64_t fee =
        std::min(sender.balance_wei, gas * tx.gas_price);
    sender.balance_wei -= fee;
    fees_ += fee;
    result.gas_used += gas;
    result.fees_wei += fee;

    for (const Call& c : tx.calls) {
      ++result.calls;
      AccountState& from = touch(c.from);
      const std::uint64_t value = std::min(from.balance_wei, c.value_wei);
      if (value < c.value_wei) ++result.clamped_transfers;
      from.balance_wei -= value;

      AccountState& to = touch(c.to);
      to.balance_wei += value;
      switch (c.kind) {
        case CallKind::kTransfer:
          break;
        case CallKind::kContractCall: {
          // An activation writes one fresh storage slot (the model behind
          // the registry's add_storage growth).
          to.is_contract = true;
          const std::uint64_t slot = to.nonce++;
          to.storage[slot] = 1 + slot;
          break;
        }
        case CallKind::kContractCreate:
          to.is_contract = true;
          to.storage[0] = 1;  // init code seeds the first slot
          // Contracts start life at nonce 1 (EIP-161), which also keeps
          // activation writes clear of the seeded slot 0.
          to.nonce = std::max<std::uint64_t>(to.nonce, 1);
          break;
      }
    }
  }
  return result;
}

BlockApplyResult StateDb::apply_chain(const Chain& chain) {
  BlockApplyResult total;
  for (std::uint64_t b = next_block_; b < chain.size(); ++b) {
    const BlockApplyResult r = apply(chain.block(b));
    total.transactions += r.transactions;
    total.calls += r.calls;
    total.gas_used += r.gas_used;
    total.fees_wei += r.fees_wei;
    total.clamped_transfers += r.clamped_transfers;
  }
  return total;
}

bool StateDb::exists(AccountId id) const {
  const auto it = accounts_.find(id);
  return it != accounts_.end() && it->second.exists;
}

bool StateDb::is_contract(AccountId id) const {
  const auto it = accounts_.find(id);
  return it != accounts_.end() && it->second.is_contract;
}

std::uint64_t StateDb::balance(AccountId id) const {
  const auto it = accounts_.find(id);
  return it == accounts_.end() ? 0 : it->second.balance_wei;
}

std::uint64_t StateDb::nonce(AccountId id) const {
  const auto it = accounts_.find(id);
  return it == accounts_.end() ? 0 : it->second.nonce;
}

std::uint64_t StateDb::storage_slots(AccountId id) const {
  const auto it = accounts_.find(id);
  return it == accounts_.end() ? 0 : it->second.storage.size();
}

std::uint64_t StateDb::storage_at(AccountId id, std::uint64_t slot) const {
  const auto it = accounts_.find(id);
  if (it == accounts_.end()) return 0;
  const auto sit = it->second.storage.find(slot);
  return sit == it->second.storage.end() ? 0 : sit->second;
}

bool StateDb::check_conservation() const {
  std::uint64_t total = fees_;
  for (const auto& [id, a] : accounts_) total += a.balance_wei;
  return total == minted_;
}

Hash256 StateDb::state_root() const {
  std::vector<AccountId> ids;
  ids.reserve(accounts_.size());
  for (const auto& [id, a] : accounts_)
    if (a.exists) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  std::vector<Hash256> leaves;
  leaves.reserve(ids.size());
  for (AccountId id : ids) {
    const AccountState& a = accounts_.at(id);
    Keccak256 h;
    h.update_u64(id);
    h.update_u64(a.balance_wei);
    h.update_u64(a.nonce);
    h.update_u64(a.is_contract ? 1 : 0);
    // Commit storage as sorted (slot, value) pairs.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> slots(
        a.storage.begin(), a.storage.end());
    std::sort(slots.begin(), slots.end());
    h.update_u64(slots.size());
    for (const auto& [slot, value] : slots) {
      h.update_u64(slot);
      h.update_u64(value);
    }
    leaves.push_back(h.finalize());
  }
  return merkle_root(leaves);
}

std::uint64_t StateDb::migration_bytes(AccountId id) const {
  if (!exists(id)) return 0;
  return kAccountRecordBytes + kStorageSlotBytes * storage_slots(id);
}

}  // namespace ethshard::eth
