// World-state database: balances, nonces and contract storage.
//
// Executes the chain's transactions against an account-state model, so
// that (a) the substrate actually runs the ledger it stores, and (b) the
// sharding analysis can price vertex migration with time-accurate state
// sizes (§III: moving a contract means moving its entire storage). The
// execution semantics are the subset of Ethereum's that our call traces
// express: value transfer, contract activation (which writes storage),
// and contract creation. Gas fees are charged per the GasSchedule and
// accumulate in a fee pot, so total value is conserved and checkable.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "eth/block.hpp"
#include "eth/gas.hpp"
#include "eth/keccak.hpp"

namespace ethshard::eth {

class Chain;

/// Mutable state of one account.
struct AccountState {
  bool exists = false;
  bool is_contract = false;
  std::uint64_t balance_wei = 0;
  std::uint64_t nonce = 0;
  /// Contract storage (32-byte-slot model: slot index → value).
  std::unordered_map<std::uint64_t, std::uint64_t> storage;
};

/// Per-block execution summary.
struct BlockApplyResult {
  std::uint64_t transactions = 0;
  std::uint64_t calls = 0;
  std::uint64_t gas_used = 0;
  std::uint64_t fees_wei = 0;
  /// Transfers whose value exceeded the sender balance and were clamped
  /// (synthetic traces are not balance-aware; Ethereum would revert).
  std::uint64_t clamped_transfers = 0;
};

class StateDb {
 public:
  explicit StateDb(GasSchedule schedule = {}) : schedule_(schedule) {}

  /// Genesis/premine allocation. Creates the account if needed.
  void credit(AccountId id, std::uint64_t amount_wei);

  /// Applies one block's transactions in order. Blocks must be applied
  /// in chain order (enforced by block number).
  BlockApplyResult apply(const Block& block);

  /// Applies every block of a chain from the current height onward.
  BlockApplyResult apply_chain(const Chain& chain);

  bool exists(AccountId id) const;
  bool is_contract(AccountId id) const;
  std::uint64_t balance(AccountId id) const;
  std::uint64_t nonce(AccountId id) const;
  /// Storage slots currently held by the account (0 for non-contracts).
  std::uint64_t storage_slots(AccountId id) const;
  /// Storage slot value (0 when unset), Ethereum's zero-default semantics.
  std::uint64_t storage_at(AccountId id, std::uint64_t slot) const;

  std::uint64_t account_count() const { return accounts_.size(); }
  std::uint64_t next_block() const { return next_block_; }

  /// Wei credited via credit() since construction.
  std::uint64_t total_minted() const { return minted_; }
  /// Gas fees collected from senders (the miner pot).
  std::uint64_t total_fees() const { return fees_; }
  /// Conservation invariant: Σ balances + fees == minted. O(accounts).
  bool check_conservation() const;

  /// Merkle commitment over all existing accounts, sorted by id: the
  /// block-chain's state root in this substrate.
  Hash256 state_root() const;

  /// Bytes needed to relocate the account to another shard: a fixed
  /// account record plus 64 bytes (key+value) per storage slot — the
  /// migration cost model behind the paper's "moves" discussion.
  std::uint64_t migration_bytes(AccountId id) const;

 private:
  AccountState& touch(AccountId id);

  GasSchedule schedule_;
  std::unordered_map<AccountId, AccountState> accounts_;
  std::uint64_t next_block_ = 0;
  std::uint64_t minted_ = 0;
  std::uint64_t fees_ = 0;
};

}  // namespace ethshard::eth
