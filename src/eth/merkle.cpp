#include "eth/merkle.hpp"

#include "util/check.hpp"

namespace ethshard::eth {

namespace {

Hash256 hash_pair(const Hash256& left, const Hash256& right) {
  Keccak256 h;
  h.update(left.data(), left.size());
  h.update(right.data(), right.size());
  return h.finalize();
}

std::vector<Hash256> next_level(const std::vector<Hash256>& level) {
  std::vector<Hash256> up;
  up.reserve((level.size() + 1) / 2);
  for (std::size_t i = 0; i < level.size(); i += 2) {
    const Hash256& left = level[i];
    const Hash256& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
    up.push_back(hash_pair(left, right));
  }
  return up;
}

}  // namespace

Hash256 merkle_root(std::span<const Hash256> leaves) {
  if (leaves.empty()) return keccak256("");
  std::vector<Hash256> level(leaves.begin(), leaves.end());
  while (level.size() > 1) level = next_level(level);
  return level.front();
}

MerkleTree::MerkleTree(std::vector<Hash256> leaves)
    : leaf_count_(leaves.size()) {
  if (leaves.empty()) leaves.push_back(keccak256(""));
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1)
    levels_.push_back(next_level(levels_.back()));
}

std::vector<ProofStep> MerkleTree::prove(std::size_t index) const {
  ETHSHARD_CHECK(index < std::max<std::size_t>(leaf_count_, 1));
  std::vector<ProofStep> proof;
  std::size_t i = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& level = levels_[lvl];
    const std::size_t sib = (i % 2 == 0) ? i + 1 : i - 1;
    const Hash256& sibling =
        sib < level.size() ? level[sib] : level[i];  // duplicated last
    proof.push_back(ProofStep{sibling, /*sibling_on_left=*/i % 2 == 1});
    i /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Hash256& leaf, std::size_t index,
                        std::span<const ProofStep> proof,
                        const Hash256& root) {
  Hash256 acc = leaf;
  std::size_t i = index;
  for (const ProofStep& step : proof) {
    acc = step.sibling_on_left ? hash_pair(step.sibling, acc)
                               : hash_pair(acc, step.sibling);
    // Position parity must be consistent with the claimed side.
    if ((i % 2 == 1) != step.sibling_on_left) return false;
    i /= 2;
  }
  return acc == root;
}

}  // namespace ethshard::eth
