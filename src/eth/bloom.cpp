#include "eth/bloom.hpp"

#include <bit>

namespace ethshard::eth {

std::array<std::uint16_t, 3> Bloom2048::bit_indexes(std::string_view item) {
  const Hash256 h = keccak256(item);
  std::array<std::uint16_t, 3> idx{};
  for (int i = 0; i < 3; ++i) {
    const std::uint16_t pair = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(h[2 * i]) << 8) | h[2 * i + 1]);
    idx[static_cast<std::size_t>(i)] = pair % 2048;
  }
  return idx;
}

void Bloom2048::add(std::string_view item) {
  for (std::uint16_t bit : bit_indexes(item))
    bits_[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
}

void Bloom2048::add(const Address& address) {
  add(std::string_view(
      reinterpret_cast<const char*>(address.bytes().data()),
      address.bytes().size()));
}

bool Bloom2048::might_contain(std::string_view item) const {
  for (std::uint16_t bit : bit_indexes(item))
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
  return true;
}

bool Bloom2048::might_contain(const Address& address) const {
  return might_contain(std::string_view(
      reinterpret_cast<const char*>(address.bytes().data()),
      address.bytes().size()));
}

void Bloom2048::merge(const Bloom2048& other) {
  for (std::size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
}

std::size_t Bloom2048::popcount() const {
  std::size_t n = 0;
  for (std::uint8_t b : bits_) n += static_cast<std::size_t>(std::popcount(b));
  return n;
}

Bloom2048 block_address_bloom(const Block& block) {
  Bloom2048 bloom;
  for (const Transaction& tx : block.transactions) {
    bloom.add(Address::from_id(tx.sender));
    for (const Call& c : tx.calls) {
      bloom.add(Address::from_id(c.from));
      bloom.add(Address::from_id(c.to));
    }
  }
  return bloom;
}

}  // namespace ethshard::eth
