// Block tree and longest-chain fork choice.
//
// A real chain is not born linear: miners race, and the canonical chain
// (the one the paper's Fig. 1 events annotate) is selected by fork
// choice. This module stores competing branches as a tree, applies the
// longest-chain rule (height, deterministic hash tie-break) and computes
// the rollback/apply lists of a reorganization — what a sharded node
// would need to undo state migrations decided on an abandoned branch.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "eth/block.hpp"
#include "eth/keccak.hpp"

namespace ethshard::eth {

/// Hash functor so Hash256 can key unordered containers.
struct Hash256Hasher {
  std::size_t operator()(const Hash256& h) const {
    return static_cast<std::size_t>(hash_prefix_u64(h));
  }
};

class BlockTree {
 public:
  /// The tree is rooted at a genesis block (number 0).
  explicit BlockTree(Block genesis);

  /// Inserts a block whose parent is already known. Returns false (block
  /// dropped) when the parent is unknown, the hash is a duplicate, the
  /// number is not parent+1, or the timestamp precedes the parent's.
  bool insert(Block block);

  std::size_t size() const { return nodes_.size(); }
  bool contains(const Hash256& hash) const { return nodes_.contains(hash); }

  /// Hash of the canonical tip (longest chain; ties broken toward the
  /// lexicographically smaller hash so every node agrees).
  const Hash256& head() const { return head_; }
  std::uint64_t head_height() const { return height_of(head_); }

  /// Height (= block number) of a known block.
  std::uint64_t height_of(const Hash256& hash) const;
  /// A known block's body.
  const Block& block_of(const Hash256& hash) const;

  /// Canonical chain, genesis first.
  std::vector<Hash256> canonical_chain() const;
  /// True iff the block is on the canonical chain.
  bool is_canonical(const Hash256& hash) const;

  /// A head switch: blocks leaving the canonical chain (tip-first) and
  /// blocks joining it (ancestor-first).
  struct Reorg {
    std::vector<Hash256> rolled_back;
    std::vector<Hash256> applied;
  };

  /// The reorg that moving from `from` to `to` implies (either may be any
  /// known block; both lists empty when from == to).
  Reorg reorg_between(const Hash256& from, const Hash256& to) const;

  /// The reorg performed by the most recent successful insert() that
  /// changed the head (empty lists otherwise).
  const Reorg& last_reorg() const { return last_reorg_; }

 private:
  struct Node {
    Block block;
    Hash256 parent{};
    std::uint64_t height = 0;
  };

  const Node& node(const Hash256& hash) const;

  std::unordered_map<Hash256, Node, Hash256Hasher> nodes_;
  Hash256 head_{};
  Reorg last_reorg_;
};

}  // namespace ethshard::eth
