// Keccak-256 — the cryptographic hash used throughout Ethereum (block and
// transaction hashes, address derivation). This is the original Keccak
// padding (0x01), not NIST SHA-3 (0x06), matching what Ethereum deployed.
// Implemented from scratch; validated in tests against published vectors.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ethshard::eth {

/// A 256-bit digest.
using Hash256 = std::array<std::uint8_t, 32>;

/// Keccak-256 of a byte string.
Hash256 keccak256(std::string_view data);

/// Keccak-256 of a byte vector.
Hash256 keccak256(const std::vector<std::uint8_t>& data);

/// Lower-case hex encoding (64 chars, no 0x prefix).
std::string to_hex(const Hash256& h);

/// Parses 64 hex chars (with optional 0x prefix) into a digest.
/// Throws util::CheckFailure on malformed input.
Hash256 hash_from_hex(std::string_view hex);

/// First 8 bytes of the digest as a big-endian integer — convenient for
/// hash-based sharding and tests.
std::uint64_t hash_prefix_u64(const Hash256& h);

/// Incremental Keccak-256 hasher for composite messages (block headers).
class Keccak256 {
 public:
  Keccak256();

  /// Absorbs raw bytes.
  void update(std::string_view data);
  void update(const void* data, std::size_t len);
  /// Absorbs a 64-bit value in little-endian byte order.
  void update_u64(std::uint64_t v);

  /// Finalizes and returns the digest. The hasher must not be reused.
  Hash256 finalize();

 private:
  void absorb_block();

  std::array<std::uint64_t, 25> state_{};
  std::array<std::uint8_t, 136> buffer_{};  // rate = 1088 bits = 136 bytes
  std::size_t buffer_len_ = 0;
  bool finalized_ = false;
};

}  // namespace ethshard::eth
