#include "eth/transaction.hpp"

#include <unordered_set>

namespace ethshard::eth {

bool Transaction::well_formed() const {
  if (calls.empty()) return false;
  if (calls.front().from != sender) return false;
  std::unordered_set<AccountId> touched;
  touched.insert(sender);
  for (const Call& c : calls) {
    if (!touched.contains(c.from)) return false;
    touched.insert(c.to);
  }
  return true;
}

Hash256 Transaction::hash() const {
  Keccak256 h;
  h.update_u64(sender);
  h.update_u64(nonce);
  h.update_u64(gas_limit);
  h.update_u64(gas_price);
  h.update_u64(calls.size());
  for (const Call& c : calls) {
    h.update_u64(c.from);
    h.update_u64(c.to);
    h.update_u64(static_cast<std::uint64_t>(c.kind));
    h.update_u64(c.value_wei);
  }
  return h.finalize();
}

}  // namespace ethshard::eth
