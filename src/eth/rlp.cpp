#include "eth/rlp.hpp"

#include "util/check.hpp"

namespace ethshard::eth::rlp {

namespace {

/// Big-endian minimal byte representation of v ("" for 0).
Bytes be_bytes(std::uint64_t v) {
  Bytes out;
  while (v > 0) {
    out.insert(out.begin(), static_cast<std::uint8_t>(v & 0xFF));
    v >>= 8;
  }
  return out;
}

void append_length_prefix(Bytes& out, std::size_t len,
                          std::uint8_t short_base,
                          std::uint8_t long_base) {
  if (len <= 55) {
    out.push_back(static_cast<std::uint8_t>(short_base + len));
    return;
  }
  const Bytes len_bytes = be_bytes(len);
  out.push_back(
      static_cast<std::uint8_t>(long_base + len_bytes.size()));
  out.insert(out.end(), len_bytes.begin(), len_bytes.end());
}

struct Cursor {
  const Bytes* data;
  std::size_t pos = 0;

  std::uint8_t peek() const {
    ETHSHARD_CHECK_MSG(pos < data->size(), "rlp: truncated input");
    return (*data)[pos];
  }
  std::uint8_t take() {
    const std::uint8_t b = peek();
    ++pos;
    return b;
  }
  Bytes take_n(std::size_t n) {
    ETHSHARD_CHECK_MSG(pos + n <= data->size(), "rlp: truncated input");
    Bytes out(data->begin() + static_cast<std::ptrdiff_t>(pos),
              data->begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
    return out;
  }

  std::size_t take_long_length(std::size_t len_of_len) {
    ETHSHARD_CHECK_MSG(len_of_len >= 1 && len_of_len <= 8,
                       "rlp: bad length-of-length");
    const Bytes raw = take_n(len_of_len);
    ETHSHARD_CHECK_MSG(raw.front() != 0, "rlp: non-minimal length");
    std::size_t len = 0;
    for (std::uint8_t b : raw) len = (len << 8) | b;
    ETHSHARD_CHECK_MSG(len > 55, "rlp: long form used for short payload");
    return len;
  }
};

Item decode_item(Cursor& cur) {
  const std::uint8_t tag = cur.take();
  if (tag <= 0x7F) {
    Item item;
    item.bytes = {tag};
    return item;
  }
  if (tag <= 0xB7) {  // short string
    const std::size_t len = tag - 0x80u;
    Item item;
    item.bytes = cur.take_n(len);
    // Canonical: a 1-byte string < 0x80 must have used the single-byte
    // form.
    ETHSHARD_CHECK_MSG(!(len == 1 && item.bytes[0] <= 0x7F),
                       "rlp: non-canonical single byte");
    return item;
  }
  if (tag <= 0xBF) {  // long string
    const std::size_t len = cur.take_long_length(tag - 0xB7u);
    Item item;
    item.bytes = cur.take_n(len);
    return item;
  }
  // Lists.
  std::size_t payload_len;
  if (tag <= 0xF7) {
    payload_len = tag - 0xC0u;
  } else {
    payload_len = cur.take_long_length(tag - 0xF7u);
  }
  const std::size_t end = cur.pos + payload_len;
  ETHSHARD_CHECK_MSG(end <= cur.data->size(), "rlp: truncated list");
  Item item;
  item.is_list = true;
  while (cur.pos < end) item.items.push_back(decode_item(cur));
  ETHSHARD_CHECK_MSG(cur.pos == end, "rlp: list payload overrun");
  return item;
}

}  // namespace

bool operator==(const Item& a, const Item& b) {
  return a.is_list == b.is_list && a.bytes == b.bytes && a.items == b.items;
}

Item Item::string(Bytes b) {
  Item item;
  item.bytes = std::move(b);
  return item;
}

Item Item::string(std::string_view s) {
  Item item;
  item.bytes.assign(s.begin(), s.end());
  return item;
}

Item Item::integer(std::uint64_t v) {
  Item item;
  item.bytes = be_bytes(v);
  return item;
}

Item Item::list(std::vector<Item> children) {
  Item item;
  item.is_list = true;
  item.items = std::move(children);
  return item;
}

std::uint64_t Item::to_integer() const {
  ETHSHARD_CHECK_MSG(!is_list, "rlp: integer expected, got list");
  ETHSHARD_CHECK_MSG(bytes.size() <= 8, "rlp: integer too wide");
  ETHSHARD_CHECK_MSG(bytes.empty() || bytes.front() != 0,
                     "rlp: non-canonical integer (leading zero)");
  std::uint64_t v = 0;
  for (std::uint8_t b : bytes) v = (v << 8) | b;
  return v;
}

Bytes encode(const Item& item) {
  Bytes out;
  if (!item.is_list) {
    if (item.bytes.size() == 1 && item.bytes[0] <= 0x7F) {
      out.push_back(item.bytes[0]);
      return out;
    }
    append_length_prefix(out, item.bytes.size(), 0x80, 0xB7);
    out.insert(out.end(), item.bytes.begin(), item.bytes.end());
    return out;
  }
  Bytes payload;
  for (const Item& child : item.items) {
    const Bytes enc = encode(child);
    payload.insert(payload.end(), enc.begin(), enc.end());
  }
  append_length_prefix(out, payload.size(), 0xC0, 0xF7);
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Bytes encode_string(std::string_view s) { return encode(Item::string(s)); }

Bytes encode_integer(std::uint64_t v) { return encode(Item::integer(v)); }

Item decode(const Bytes& encoded) {
  Cursor cur{&encoded};
  Item item = decode_item(cur);
  ETHSHARD_CHECK_MSG(cur.pos == encoded.size(), "rlp: trailing bytes");
  return item;
}

}  // namespace ethshard::eth::rlp
