#include "workload/overrides.hpp"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>

#include "util/check.hpp"
#include "util/sim_time.hpp"

namespace ethshard::workload {

namespace {

double parse_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  ETHSHARD_CHECK_MSG(end != value.c_str() && *end == '\0',
                     "workload override '" << key << "': bad number '"
                                           << value << "'");
  return v;
}

std::uint64_t parse_uint(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  ETHSHARD_CHECK_MSG(end != value.c_str() && *end == '\0',
                     "workload override '" << key << "': bad integer '"
                                           << value << "'");
  return v;
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  ETHSHARD_CHECK_MSG(false, "workload override '"
                                << key << "': bad boolean '" << value
                                << "' (want true/false/1/0)");
  return false;
}

util::Timestamp parse_date(const std::string& key, const std::string& value) {
  int y = 0;
  int m = 0;
  int d = 0;
  ETHSHARD_CHECK_MSG(
      std::sscanf(value.c_str(), "%d-%d-%d", &y, &m, &d) == 3,
      "workload override '" << key << "': bad date '" << value
                            << "' (want YYYY-MM-DD)");
  return util::make_timestamp(y, m, d);
}

using Setter = std::function<void(GeneratorConfig&, const std::string&,
                                  const std::string&)>;

// One table, shared by apply and the key listing. Duration knobs carry
// their unit in the key name so a scenario file reads unambiguously.
const std::map<std::string, Setter>& setters() {
  static const std::map<std::string, Setter> table = {
      {"scale",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.scale = parse_double(k, v);
       }},
      {"seed",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.seed = parse_uint(k, v);
       }},
      {"block_interval_hours",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.block_interval = static_cast<util::Timestamp>(
             parse_double(k, v) * static_cast<double>(util::kHour));
       }},
      {"p_new_sender",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.p_new_sender = parse_double(k, v);
       }},
      {"p_contract_call_early",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.p_contract_call_early = parse_double(k, v);
       }},
      {"p_contract_call_late",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.p_contract_call_late = parse_double(k, v);
       }},
      {"p_new_recipient",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.p_new_recipient = parse_double(k, v);
       }},
      {"p_contract_create",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.p_contract_create = parse_double(k, v);
       }},
      {"p_internal_continue",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.p_internal_continue = parse_double(k, v);
       }},
      {"uniform_mix",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.uniform_mix = parse_double(k, v);
       }},
      {"attack_fraction",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.attack_fraction = parse_double(k, v);
       }},
      {"attack_dummies_per_tx",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.attack_dummies_per_tx =
             static_cast<std::uint32_t>(parse_uint(k, v));
       }},
      {"attack_via_contract",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.attack_via_contract = parse_bool(k, v);
       }},
      {"p_archetype_token",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.p_archetype_token = parse_double(k, v);
       }},
      {"p_archetype_exchange",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.p_archetype_exchange = parse_double(k, v);
       }},
      {"p_archetype_ico",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.p_archetype_ico = parse_double(k, v);
       }},
      {"ico_lifetime_days",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.ico_lifetime = static_cast<util::Timestamp>(
             parse_double(k, v) * static_cast<double>(util::kDay));
       }},
      {"p_ico_call",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.p_ico_call = parse_double(k, v);
       }},
      {"exchange_initial_popularity",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.exchange_initial_popularity =
             static_cast<std::uint32_t>(parse_uint(k, v));
       }},
      {"genesis_accounts",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.genesis_accounts = parse_uint(k, v);
       }},
      {"use_mempool",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.use_mempool = parse_bool(k, v);
       }},
      {"block_gas_limit",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.block_gas_limit = parse_uint(k, v);
       }},
      {"model.genesis",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.model.genesis = parse_date(k, v);
       }},
      {"model.attack_start",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.model.attack_start = parse_date(k, v);
       }},
      {"model.attack_end",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.model.attack_end = parse_date(k, v);
       }},
      {"model.end",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.model.end = parse_date(k, v);
       }},
      {"model.base_interactions",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.model.base_interactions = parse_double(k, v);
       }},
      {"model.exp_rate",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.model.exp_rate = parse_double(k, v);
       }},
      {"model.attack_interactions",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.model.attack_interactions = parse_double(k, v);
       }},
      {"model.post_linear_per_day",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.model.post_linear_per_day = parse_double(k, v);
       }},
      {"model.end_target",
       [](GeneratorConfig& c, const std::string& k, const std::string& v) {
         c.model.end_target = parse_double(k, v);
       }},
  };
  return table;
}

}  // namespace

void apply_generator_override(GeneratorConfig& cfg, const std::string& key,
                              const std::string& value) {
  const auto it = setters().find(key);
  if (it == setters().end()) {
    std::string known;
    for (const std::string& k : generator_override_keys()) {
      if (!known.empty()) known += ", ";
      known += k;
    }
    ETHSHARD_CHECK_MSG(false, "unknown workload override '"
                                  << key << "' (known: " << known << ")");
  }
  it->second(cfg, key, value);
}

void check_growth_timeline(const GeneratorConfig& cfg) {
  ETHSHARD_CHECK_MSG(
      cfg.model.genesis < cfg.model.attack_start &&
          cfg.model.attack_start <= cfg.model.attack_end &&
          cfg.model.attack_end < cfg.model.end,
      "workload overrides broke the growth-model timeline (need genesis "
      "< attack_start <= attack_end < end)");
}

std::vector<std::string> generator_override_keys() {
  std::vector<std::string> keys;
  keys.reserve(setters().size());
  for (const auto& [k, v] : setters()) keys.push_back(k);
  return keys;
}

}  // namespace ethshard::workload
