// Workload characterization.
//
// Quantifies the structural facts the paper's analysis rests on: how the
// three eras (pre-attack exponential, the attack, post-attack
// super-linear) differ, and how unequal vertex activity is — hubs are
// what break hashing, dormant ballast is what breaks full-graph METIS.
#pragma once

#include <cstdint>

#include "workload/generator.hpp"

namespace ethshard::workload {

/// Counts for one era of the chain's history.
struct PhaseStats {
  util::Timestamp from = 0;
  util::Timestamp to = 0;
  std::uint64_t blocks = 0;
  std::uint64_t transactions = 0;
  std::uint64_t calls = 0;
  std::uint64_t new_accounts = 0;  ///< accounts first seen in this era
};

struct WorkloadReport {
  PhaseStats pre_attack;
  PhaseStats attack;
  PhaseStats post_attack;

  /// Gini coefficient of per-vertex interaction counts, in [0, 1):
  /// 0 = all vertices equally active, →1 = all activity on a few hubs.
  double activity_gini = 0;
  /// Share of all interactions that touch the most-active 1% of vertices.
  double top1pct_share = 0;
  /// Vertices touched exactly once — the "dummy/dust" population whose
  /// ballast drives the §III balance anomaly.
  std::uint64_t single_touch_vertices = 0;
  std::uint64_t total_vertices = 0;
};

/// One pass over the chain. Phase boundaries come from the standard
/// attack-era anchors (util::attack_start_time / attack_end_time).
WorkloadReport analyze_workload(const History& history);

/// Gini coefficient of any non-negative sample set (0 for empty input or
/// an all-zero distribution). Exposed for tests.
double gini(std::vector<double> values);

}  // namespace ethshard::workload
