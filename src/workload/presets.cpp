#include "workload/presets.hpp"

#include "util/check.hpp"

namespace ethshard::workload {

std::string preset_name(Preset preset) {
  switch (preset) {
    case Preset::kPaper:
      return "paper";
    case Preset::kNoAttack:
      return "no-attack";
    case Preset::kIcoFrenzy:
      return "ico-frenzy";
    case Preset::kUniform:
      return "uniform";
    case Preset::kTransfersOnly:
      return "transfers-only";
  }
  return "?";
}

Preset preset_from_name(const std::string& name) {
  for (Preset p : kAllPresets)
    if (preset_name(p) == name) return p;
  ETHSHARD_CHECK_MSG(false, "unknown preset '" << name << "'");
  return Preset::kPaper;
}

GeneratorConfig preset_config(Preset preset, PresetOptions options) {
  GeneratorConfig cfg;
  cfg.scale = options.scale;
  cfg.seed = options.seed;

  switch (preset) {
    case Preset::kPaper:
      break;

    case Preset::kNoAttack:
      // No spam transactions and no volume spike: the attack window
      // contributes nothing beyond organic growth.
      cfg.attack_fraction = 0.0;
      cfg.model.attack_interactions = 0.0;
      break;

    case Preset::kIcoFrenzy:
      cfg.p_archetype_ico = 0.20;
      cfg.p_ico_call = 0.55;
      cfg.ico_lifetime = 2 * util::kWeek;
      break;

    case Preset::kUniform:
      // Kill preferential attachment: every endpoint choice is uniform,
      // so no hubs form and hashing's edge-cut penalty shrinks.
      cfg.uniform_mix = 1.0;
      cfg.p_archetype_exchange = 0.0;
      break;

    case Preset::kTransfersOnly:
      // A Bitcoin-shaped ledger: no contracts at all (the attack spam
      // still happens, but as direct dust transfers).
      cfg.p_contract_call_early = 0.0;
      cfg.p_contract_call_late = 0.0;
      cfg.p_contract_create = 0.0;
      cfg.p_archetype_ico = 0.0;
      cfg.p_ico_call = 0.0;
      cfg.attack_via_contract = false;
      break;
  }
  return cfg;
}

}  // namespace ethshard::workload
