// Window-bounded block iteration.
//
// The simulator's metric windows tile the chain's lifetime in fixed-width
// bins anchored at the first block's timestamp (§II: four-hour windows).
// window_spans precomputes, for a time-sorted block sequence, the
// contiguous block range falling into each *non-empty* bin, so a windowed
// consumer (the pipelined replay's aggregation stage) can walk whole
// windows without re-deriving boundaries block by block. Empty bins
// produce no span — gaps show up as jumps in window_start, mirroring how
// the serial replay loop flushes (or fast-forwards) quiet windows.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "eth/chain.hpp"
#include "util/sim_time.hpp"

namespace ethshard::workload {

/// The blocks of one non-empty metric window.
struct WindowSpan {
  /// Bin start: blocks.front().timestamp + i * width for some i >= 0.
  util::Timestamp window_start = 0;
  /// Block index range [block_begin, block_end) within the input span;
  /// every contained block has window_start <= timestamp < window_start
  /// + width.
  std::uint64_t block_begin = 0;
  std::uint64_t block_end = 0;
};

/// Bins `blocks` (time-sorted, as eth::Chain guarantees) into metric
/// windows of the given width. Returns one span per non-empty window, in
/// time order, covering every block exactly once. O(blocks).
std::vector<WindowSpan> window_spans(std::span<const eth::Block> blocks,
                                     util::Timestamp width);

}  // namespace ethshard::workload
