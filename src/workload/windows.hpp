// Window-bounded block iteration.
//
// The simulator's metric windows tile the chain's lifetime in fixed-width
// bins anchored at the first block's timestamp (§II: four-hour windows).
// window_spans precomputes, for a time-sorted block sequence, the
// contiguous block range falling into each *non-empty* bin, so a windowed
// consumer (the pipelined replay's aggregation stage) can walk whole
// windows without re-deriving boundaries block by block. Empty bins
// produce no span — gaps show up as jumps in window_start, mirroring how
// the serial replay loop flushes (or fast-forwards) quiet windows.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "eth/chain.hpp"
#include "util/sim_time.hpp"

namespace ethshard::workload {

/// The blocks of one non-empty metric window.
struct WindowSpan {
  /// Bin start: blocks.front().timestamp + i * width for some i >= 0.
  util::Timestamp window_start = 0;
  /// Block index range [block_begin, block_end) within the input span;
  /// every contained block has window_start <= timestamp < window_start
  /// + width.
  std::uint64_t block_begin = 0;
  std::uint64_t block_end = 0;
};

/// Bins `blocks` (time-sorted, as eth::Chain guarantees) into metric
/// windows of the given width. Returns one span per non-empty window, in
/// time order, covering every block exactly once. O(blocks).
std::vector<WindowSpan> window_spans(std::span<const eth::Block> blocks,
                                     util::Timestamp width);

/// One completed window from a WindowBinner: the bin's start timestamp
/// plus the blocks that fell into it (owned, in arrival order).
struct BinnedWindow {
  util::Timestamp window_start = 0;
  std::vector<eth::Block> blocks;
};

/// Incremental window_spans for pull-based block streams (BlockSource):
/// push blocks in time order and whole non-empty windows come out, binned
/// exactly as window_spans would bin them (same first-block anchor, same
/// empty-bin skipping) — the StreamingDifferential suite holds the two to
/// each other. Only the window currently accumulating is held in memory,
/// which is what keeps the pipelined replay's Stage A within a
/// one-window footprint when no materialized chain exists.
class WindowBinner {
 public:
  explicit WindowBinner(util::Timestamp width);

  /// Feeds the next block (timestamps must be non-decreasing). Returns
  /// true when this block closed the previously accumulating window,
  /// which is then moved into `completed` (its old contents replaced).
  bool push(eth::Block block, BinnedWindow& completed);

  /// End-of-stream flush: moves the trailing partial window into
  /// `completed` and returns true, or returns false when no blocks are
  /// pending. The binner is exhausted afterwards; feed a new one.
  bool finish(BinnedWindow& completed);

 private:
  util::Timestamp width_;
  util::Timestamp origin_ = 0;  // first block's timestamp (bin anchor)
  util::Timestamp start_ = 0;   // current bin's start
  util::Timestamp last_ts_ = 0;
  bool any_ = false;
  std::vector<eth::Block> current_;
};

}  // namespace ethshard::workload
