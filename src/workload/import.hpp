// Importer for real Ethereum data in the public BigQuery schema.
//
// The paper's authors extracted their trace from a geth node; today the
// easiest public source of the same data is the BigQuery dataset
// `bigquery-public-data.crypto_ethereum.traces`, whose CSV export has one
// row per message call — exactly the edge granularity §II-B needs. This
// importer converts such an export into a History (dense account ids,
// call traces grouped into transactions, hash-linked blocks), after which
// every simulator, bench and CLI command runs on real data unchanged.
//
// Accepted columns (located by header name, extra columns ignored):
//   block_number       integer, rows must be grouped by block and
//                      non-decreasing
//   block_timestamp    unix seconds, or "YYYY-MM-DD HH:MM:SS[ UTC]"
//   transaction_hash   groups rows into transactions (empty → own tx)
//   from_address       0x-hex or empty (empty/invalid rows are skipped)
//   to_address         0x-hex; empty for some creates (then skipped
//                      unless trace_type is create with an address)
//   value              decimal wei; values beyond uint64 are clamped
//   trace_type         call | create | suicide | reward | ...
//                      (reward rows are skipped; suicide maps to a
//                      transfer of the remaining balance)
#pragma once

#include <iosfwd>
#include <string>

#include "workload/generator.hpp"

namespace ethshard::workload {

struct ImportStats {
  std::uint64_t rows = 0;
  std::uint64_t imported_calls = 0;
  std::uint64_t skipped_rows = 0;
  std::uint64_t transactions = 0;
  std::uint64_t blocks = 0;
  std::uint64_t accounts = 0;  // distinct addresses seen
};

struct ImportResult {
  History history;
  ImportStats stats;
};

/// Parses a BigQuery-style traces CSV. Throws util::CheckFailure on a
/// missing required column or out-of-order blocks; malformed rows are
/// counted in stats.skipped_rows and dropped.
ImportResult import_bigquery_traces(std::istream& in);

/// File convenience; throws util::CheckFailure if the file cannot open.
ImportResult import_bigquery_traces_file(const std::string& path);

}  // namespace ethshard::workload
