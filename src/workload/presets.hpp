// Named workload scenarios.
//
// The paper's history is one trajectory; counterfactual variants isolate
// which phenomenon causes which result (e.g. run METIS on a no-attack
// chain and its dynamic-balance anomaly disappears — proving the dummy
// accounts cause it, as §III argues). Presets only adjust the generator
// configuration; everything stays deterministic under the same seed.
#pragma once

#include <string>
#include <vector>

#include "workload/generator.hpp"

namespace ethshard::workload {

enum class Preset {
  kPaper,       ///< the calibrated default (Fig. 1 shape, attack, ICOs)
  kNoAttack,    ///< the Sep/Oct-2016 dummy-account spam never happens
  kIcoFrenzy,   ///< triple crowdsale intensity in the super-linear phase
  kUniform,     ///< no preferential attachment hubs (uniform targets)
  kTransfersOnly,  ///< Bitcoin-like: no contracts, plain transfers only
};

/// All presets, for sweeps.
inline constexpr Preset kAllPresets[] = {
    Preset::kPaper, Preset::kNoAttack, Preset::kIcoFrenzy,
    Preset::kUniform, Preset::kTransfersOnly};

/// The preset's CLI/report name ("paper", "no-attack", ...).
std::string preset_name(Preset preset);

/// Parses a name produced by preset_name. Throws util::CheckFailure on an
/// unknown name.
Preset preset_from_name(const std::string& name);

/// Knobs shared by every preset. Aggregate-initialize with designated
/// initializers — `preset_config(Preset::kPaper, {.scale = 0.01})` —
/// instead of remembering positional double/uint64 order.
struct PresetOptions {
  /// Fraction of the real chain's volume (GeneratorConfig::scale).
  double scale = 0.002;
  std::uint64_t seed = 1234;
};

/// Generator configuration for a preset with the given options.
GeneratorConfig preset_config(Preset preset, PresetOptions options = {});

}  // namespace ethshard::workload
