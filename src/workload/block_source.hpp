// Pull-based block streaming — the workload→simulator seam.
//
// The paper's history spans Jul 2015–Dec 2017 (millions of accounts);
// materializing it whole before replay caps the reachable `scale` by
// memory, not by compute. BlockSource inverts the dataflow: consumers
// *pull* blocks one at a time (the codes-workload `get_next()` idiom),
// so a workload needs to hold only the block currently in flight —
// whatever produces it (a running generator, a trace file, or an
// already-materialized History for exact back-compat).
//
// Contract (every implementation):
//  * blocks arrive in chain order — consecutive numbers from 0,
//    non-decreasing timestamps, parent_hash linking to the previous
//    emitted block;
//  * the stream is single-pass: next() after end-of-stream keeps
//    returning false; there is no rewind (re-open through a
//    BlockSourceFactory instead);
//  * determinism: two sources built from the same inputs (config/seed,
//    trace bytes, History) emit bit-identical block sequences — the
//    StreamingDifferential suite holds implementations to this;
//  * info() is the metadata prologue, valid before the first pull;
//    directory() is the account/contract registry, which a streaming
//    producer can only complete once the stream is exhausted.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "eth/address.hpp"
#include "eth/chain.hpp"

namespace ethshard::workload {

/// Metadata prologue available before streaming begins.
struct SourceInfo {
  /// Human-readable origin ("generated", "materialized", "trace").
  std::string name;
  std::uint64_t seed = 0;
  /// Generator scale; 0 when not applicable (traces).
  double scale = 0;
  /// Blocks the stream will emit, 0 when unknown up front (generated and
  /// trace sources discover their length by streaming).
  std::uint64_t block_count_hint = 0;
};

/// A single-pass, pull-based stream of blocks.
class BlockSource {
 public:
  virtual ~BlockSource() = default;

  virtual const SourceInfo& info() const = 0;

  /// Fills `out` with the next block; returns false at end-of-stream
  /// (and keeps returning false thereafter, leaving `out` untouched).
  virtual bool next(eth::Block& out) = 0;

  /// Borrowed-view pull: returns the next block or nullptr at
  /// end-of-stream. The pointee stays valid only until the following
  /// next()/next_ref() call. The default buffers through next();
  /// MaterializedSource overrides it to hand out its backing storage, so
  /// replaying a held History stays copy-free.
  virtual const eth::Block* next_ref();

  /// The whole-chain escape hatch: non-null when every block already
  /// sits in memory (MaterializedSource), letting consumers that can
  /// exploit random access (the pipelined replay's window_spans path)
  /// skip per-block buffering. Null for genuinely streaming sources.
  virtual const eth::Chain* materialized_chain() const { return nullptr; }

  /// The account/contract directory describing the stream's vertices, or
  /// nullptr while it is not (yet) available. Materialized sources can
  /// serve it up front; generated and trace sources complete it only
  /// once the stream is exhausted (accounts appear as the history runs).
  virtual const eth::AccountRegistry* directory() const { return nullptr; }

 private:
  eth::Block ref_buffer_;  // backs the default next_ref()
};

/// Streams an in-memory chain — the exact-back-compat wrapper that makes
/// every History-taking call site a BlockSource call site. Zero-copy via
/// next_ref()/materialized_chain(); next() copies.
class MaterializedSource final : public BlockSource {
 public:
  /// `chain` (and `accounts`, when given) must outlive the source.
  explicit MaterializedSource(const eth::Chain& chain,
                              const eth::AccountRegistry* accounts = nullptr);

  const SourceInfo& info() const override { return info_; }
  bool next(eth::Block& out) override;
  const eth::Block* next_ref() override;
  const eth::Chain* materialized_chain() const override { return chain_; }
  const eth::AccountRegistry* directory() const override { return accounts_; }

 private:
  const eth::Chain* chain_;
  const eth::AccountRegistry* accounts_;
  SourceInfo info_;
  std::uint64_t pos_ = 0;
};

/// Re-openable stream: each open() returns a fresh source replaying the
/// same deterministic block sequence from the start. open() must be
/// thread-safe — the experiment grid opens one stream per cell, in
/// parallel, so each (method × k) cell replays the history independently
/// without ever holding it whole.
class BlockSourceFactory {
 public:
  virtual ~BlockSourceFactory() = default;
  virtual std::unique_ptr<BlockSource> open() const = 0;
};

/// Decorator splicing a quiet period into any stream: every block with
/// timestamp >= gap_start is shifted gap_length seconds into the future,
/// producing a dormancy stretch with no traffic at all — the streaming
/// analogue of with_traffic_gap (workload/generator.hpp), usable at
/// scales where the chain is never materialized. Block numbers and
/// contents are untouched; parent hashes are left as the inner source
/// emitted them (replay consumers read timestamps and transactions, not
/// hash links — re-seal through with_traffic_gap if you need a
/// validating chain). Scenario files use this for the long
/// dormancy→reactivation stress shape.
class TrafficGapSource final : public BlockSource {
 public:
  /// Takes ownership of `inner`.
  TrafficGapSource(std::unique_ptr<BlockSource> inner,
                   util::Timestamp gap_start, util::Timestamp gap_length);

  const SourceInfo& info() const override { return inner_->info(); }
  bool next(eth::Block& out) override;
  const eth::Block* next_ref() override;
  const eth::AccountRegistry* directory() const override {
    return inner_->directory();
  }

 private:
  std::unique_ptr<BlockSource> inner_;
  util::Timestamp gap_start_;
  util::Timestamp gap_length_;
  eth::Block shift_buffer_;  // backs next_ref() for shifted blocks
};

/// Factory wrapper pairing TrafficGapSource with any inner factory.
class TrafficGapSourceFactory final : public BlockSourceFactory {
 public:
  /// Takes ownership of `inner`.
  TrafficGapSourceFactory(std::unique_ptr<BlockSourceFactory> inner,
                          util::Timestamp gap_start,
                          util::Timestamp gap_length)
      : inner_(std::move(inner)),
        gap_start_(gap_start),
        gap_length_(gap_length) {}

  std::unique_ptr<BlockSource> open() const override {
    return std::make_unique<TrafficGapSource>(inner_->open(), gap_start_,
                                              gap_length_);
  }

 private:
  std::unique_ptr<BlockSourceFactory> inner_;
  util::Timestamp gap_start_;
  util::Timestamp gap_length_;
};

/// Factory over a caller-owned chain (which must outlive the factory and
/// every source it opens).
class MaterializedSourceFactory final : public BlockSourceFactory {
 public:
  explicit MaterializedSourceFactory(
      const eth::Chain& chain,
      const eth::AccountRegistry* accounts = nullptr)
      : chain_(&chain), accounts_(accounts) {}

  std::unique_ptr<BlockSource> open() const override {
    return std::make_unique<MaterializedSource>(*chain_, accounts_);
  }

 private:
  const eth::Chain* chain_;
  const eth::AccountRegistry* accounts_;
};

}  // namespace ethshard::workload
