#include "workload/import.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <unordered_map>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace ethshard::workload {

namespace {

/// Column indices resolved from the header row.
struct Columns {
  std::size_t block_number = 0;
  std::size_t block_timestamp = 0;
  std::size_t transaction_hash = 0;
  std::size_t from_address = 0;
  std::size_t to_address = 0;
  std::size_t value = 0;
  std::size_t trace_type = 0;
};

std::size_t find_column(const std::vector<std::string>& header,
                        const std::string& name) {
  const auto it = std::find(header.begin(), header.end(), name);
  ETHSHARD_CHECK_MSG(it != header.end(),
                     "traces CSV is missing column '" << name << "'");
  return static_cast<std::size_t>(it - header.begin());
}

constexpr std::size_t kNoColumn = ~std::size_t{0};

std::size_t find_column_optional(const std::vector<std::string>& header,
                                 const std::string& name) {
  const auto it = std::find(header.begin(), header.end(), name);
  return it == header.end() ? kNoColumn
                            : static_cast<std::size_t>(it - header.begin());
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

/// Unix seconds, or "YYYY-MM-DD HH:MM:SS[ UTC]".
bool parse_timestamp(const std::string& s, util::Timestamp& out) {
  std::uint64_t unix_secs = 0;
  if (parse_u64(s, unix_secs)) {
    out = static_cast<util::Timestamp>(unix_secs);
    return true;
  }
  int y = 0;
  int mo = 0;
  int d = 0;
  int h = 0;
  int mi = 0;
  int sec = 0;
  if (std::sscanf(s.c_str(), "%d-%d-%d %d:%d:%d", &y, &mo, &d, &h, &mi,
                  &sec) != 6)
    return false;
  if (mo < 1 || mo > 12 || d < 1 || d > 31) return false;
  out = util::make_timestamp(y, mo, d) + h * util::kHour +
        mi * util::kMinute + sec;
  return true;
}

/// Decimal wei, clamped to uint64 (real values can exceed 2^64).
std::uint64_t parse_value_clamped(const std::string& s) {
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return 0;
    if (v > (~std::uint64_t{0} - 9) / 10) return ~std::uint64_t{0};
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

bool is_hex_address(const std::string& s) {
  if (s.size() != 42 || s[0] != '0' || (s[1] != 'x' && s[1] != 'X'))
    return false;
  return std::all_of(s.begin() + 2, s.end(), [](char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
           (c >= 'A' && c <= 'F');
  });
}

}  // namespace

ImportResult import_bigquery_traces(std::istream& in) {
  util::CsvReader reader(in);
  std::vector<std::string> row;
  ETHSHARD_CHECK_MSG(reader.read_row(row), "empty traces CSV");

  Columns col;
  col.block_number = find_column(row, "block_number");
  col.block_timestamp = find_column(row, "block_timestamp");
  col.transaction_hash = find_column(row, "transaction_hash");
  col.from_address = find_column(row, "from_address");
  col.to_address = find_column(row, "to_address");
  col.value = find_column(row, "value");
  col.trace_type = find_column(row, "trace_type");
  // Optional: with the `input` column present, a "call" with empty
  // calldata is a plain ether transfer, not a contract activation.
  const std::size_t input_col = find_column_optional(row, "input");
  const std::size_t width = row.size();

  ImportResult result;
  ImportStats& stats = result.stats;

  std::unordered_map<std::string, eth::AccountId> ids;
  // Kind is finalized at the end: any address that was ever the target of
  // a create (or a call trace) is a contract.
  std::vector<bool> is_contract;
  std::vector<util::Timestamp> first_seen;

  eth::Block block;
  bool block_open = false;
  std::uint64_t source_block = 0;  // original chain number of `block`
  std::string open_tx_hash;

  // Blocks are renumbered densely from 0 (the source export usually
  // starts mid-chain).
  auto seal_block = [&] {
    if (!block_open || block.transactions.empty()) {
      block_open = false;
      return;
    }
    block.number = result.history.chain.size();
    if (!result.history.chain.empty())
      block.parent_hash =
          result.history.chain.block_hash(block.number - 1);
    result.history.chain.append(std::move(block));
    ++stats.blocks;
    block = eth::Block{};
    block_open = false;
  };

  auto account_of = [&](const std::string& hex,
                        util::Timestamp ts) -> eth::AccountId {
    const auto it = ids.find(hex);
    if (it != ids.end()) return it->second;
    const eth::AccountId id = ids.size();
    ids.emplace(hex, id);
    is_contract.push_back(false);
    first_seen.push_back(ts);
    return id;
  };

  while (reader.read_row(row)) {
    ++stats.rows;
    if (row.size() != width) {
      ++stats.skipped_rows;
      continue;
    }
    const std::string& type = row[col.trace_type];
    if (type == "reward") {  // miner rewards have no sender account
      ++stats.skipped_rows;
      continue;
    }

    std::uint64_t block_number = 0;
    util::Timestamp ts = 0;
    if (!parse_u64(row[col.block_number], block_number) ||
        !parse_timestamp(row[col.block_timestamp], ts) ||
        !is_hex_address(row[col.from_address]) ||
        !is_hex_address(row[col.to_address])) {
      ++stats.skipped_rows;
      continue;
    }

    if (!block_open || block_number != source_block) {
      ETHSHARD_CHECK_MSG(!block_open || block_number > source_block,
                         "traces CSV is not sorted by block_number");
      seal_block();
      source_block = block_number;
      block.timestamp = ts;
      block_open = true;
      open_tx_hash.clear();
    }

    const eth::AccountId from = account_of(row[col.from_address], ts);
    const eth::AccountId to = account_of(row[col.to_address], ts);

    eth::CallKind kind = eth::CallKind::kTransfer;
    if (type == "create") {
      kind = eth::CallKind::kContractCreate;
      is_contract[to] = true;
    } else if (type == "call") {
      const bool plain_transfer =
          input_col != kNoColumn &&
          (row[input_col].empty() || row[input_col] == "0x");
      if (!plain_transfer) {
        kind = eth::CallKind::kContractCall;
        is_contract[to] = true;
      }
    }
    // "suicide" and anything else stays a plain transfer.

    const std::string& tx_hash = row[col.transaction_hash];
    if (block.transactions.empty() || tx_hash.empty() ||
        tx_hash != open_tx_hash) {
      eth::Transaction tx;
      tx.sender = from;
      block.transactions.push_back(std::move(tx));
      open_tx_hash = tx_hash;
      ++stats.transactions;
    }
    block.transactions.back().calls.push_back(
        eth::Call{from, to, kind, parse_value_clamped(row[col.value])});
    ++stats.imported_calls;
  }
  seal_block();

  // Registry ids must be dense and in id order; is_contract/first_seen
  // are already indexed by id. (A "call" trace's callee is treated as a
  // contract — in the real export plain transfers also appear as "call",
  // so kinds are an approximation the caller may refine.)
  for (eth::AccountId id = 0; id < is_contract.size(); ++id)
    result.history.accounts.create(
        is_contract[id] ? eth::AccountKind::kContract
                        : eth::AccountKind::kExternallyOwned,
        first_seen[id]);

  stats.accounts = ids.size();
  return result;
}

ImportResult import_bigquery_traces_file(const std::string& path) {
  std::ifstream in(path);
  ETHSHARD_CHECK_MSG(in.good(), "cannot open " << path);
  return import_bigquery_traces(in);
}

}  // namespace ethshard::workload
