#include "workload/growth_model.hpp"

#include <algorithm>
#include <cmath>

namespace ethshard::workload {

double GrowthModel::cumulative_interactions(util::Timestamp t) const {
  t = std::clamp(t, genesis, end);
  const double day = static_cast<double>(util::kDay);
  auto days = [&](util::Timestamp from, util::Timestamp to) {
    return static_cast<double>(to - from) / day;
  };

  // Exponential phase.
  const double d = days(genesis, std::min(t, attack_start));
  double total = base_interactions * (std::exp(exp_rate * d) - 1.0);
  if (t <= attack_start) return total;
  const double at_attack_start = total;

  // Attack ramp (linear over the attack window). A zero-length window
  // (attack_start == attack_end — scenarios collapse the attack to a
  // point to excise it from a shortened timeline) degenerates to a step:
  // the whole attack volume lands at the boundary instead of 0/0 = NaN
  // poisoning everything after it.
  const double attack_len = days(attack_start, attack_end);
  if (attack_len > 0) {
    const double into_attack = days(attack_start, std::min(t, attack_end));
    total += attack_interactions * (into_attack / attack_len);
    if (t <= attack_end) return total;
  }
  const double at_attack_end = at_attack_start + attack_interactions;

  // Post-attack: linear + quadratic, quadratic term fixed by end_target.
  const double post_len = days(attack_end, end);
  const double linear_at_end = post_linear_per_day * post_len;
  const double quad_coeff = std::max(
      0.0,
      (end_target - at_attack_end - linear_at_end) / (post_len * post_len));
  const double dp = days(attack_end, t);
  total += post_linear_per_day * dp + quad_coeff * dp * dp;
  return total;
}

}  // namespace ethshard::workload
