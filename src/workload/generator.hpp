// Synthetic Ethereum history generator.
//
// Stands in for the real trace the authors extracted from the chain
// (their published data set is not reachable offline; see DESIGN.md §2).
// It reproduces the structural properties the paper's conclusions rest on:
//
//  * cumulative volume follows Fig. 1 (exponential → attack spike →
//    super-linear), via GrowthModel;
//  * call targets follow preferential attachment, so the graph grows the
//    hubs that make hash partitioning cut ~50% of edges at k = 2;
//  * contracts trigger internal call cascades (a transaction makes
//    multiple edges, §II-B);
//  * the Sep/Oct-2016 attack mints large numbers of dummy accounts that
//    are never touched again — the cause of the METIS dynamic-balance
//    anomaly in §III.
//
// Everything is deterministic given the seed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "eth/address.hpp"
#include "eth/chain.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "workload/block_source.hpp"
#include "workload/growth_model.hpp"

namespace ethshard::workload {

struct GeneratorConfig {
  std::uint64_t seed = 42;
  /// Fraction of the real chain's volume to synthesize. 0.01 → ~6·10^5
  /// interactions (seconds to generate and replay); 1.0 → paper scale.
  double scale = 0.01;
  GrowthModel model;
  /// One block per interval (empty intervals produce no block).
  util::Timestamp block_interval = util::kHour;

  // --- behavioural mix -------------------------------------------------
  /// P(tx sender is a brand-new account).
  double p_new_sender = 0.10;
  /// P(top-level action activates a contract), interpolated over time —
  /// DApp traffic grows as the platform matures.
  double p_contract_call_early = 0.30;
  double p_contract_call_late = 0.55;
  /// P(plain transfer goes to a brand-new account).
  double p_new_recipient = 0.28;
  /// P(top-level action deploys a contract).
  double p_contract_create = 0.012;
  /// P(an internal call continues the cascade) — cascade length is
  /// geometric with mean p/(1-p).
  double p_internal_continue = 0.45;
  /// Fraction of endpoint choices made uniformly instead of by
  /// preferential attachment (keeps the tail alive).
  double uniform_mix = 0.2;

  // --- attack phase ----------------------------------------------------
  /// Fraction of attack-window transactions that are attack spam.
  double attack_fraction = 0.85;
  /// Dummy accounts each attack transaction touches.
  std::uint32_t attack_dummies_per_tx = 20;
  /// Route attack spam through an attack contract (the historical shape);
  /// false sends the dummy transfers straight from the attacker accounts
  /// (used by contract-free workload presets).
  bool attack_via_contract = true;

  // --- contract archetypes (the 2017 application mix) -------------------
  /// P(new contract is an ERC-20-style token).
  double p_archetype_token = 0.25;
  /// P(new contract is an exchange hub — long-lived, very hot).
  double p_archetype_exchange = 0.02;
  /// P(new contract is a crowdsale/ICO), only after the attack era.
  double p_archetype_ico = 0.08;
  /// How long an ICO stays hot after creation.
  util::Timestamp ico_lifetime = 3 * util::kWeek;
  /// P(a 2017 contract activation targets a live ICO instead of the
  /// popularity pool) — models the crowdsale frenzy of the super-linear
  /// phase (traffic hotspots that die abruptly, stressing repartitioners).
  double p_ico_call = 0.30;
  /// Extra popularity-pool entries an exchange receives at creation.
  std::uint32_t exchange_initial_popularity = 40;

  /// Accounts premined at genesis (scaled).
  std::uint64_t genesis_accounts = 400;

  // --- block assembly ----------------------------------------------------
  /// Route transactions through a fee-prioritized mempool and pack blocks
  /// under `block_gas_limit` (§II-A miner behaviour). The default stuffs
  /// each interval's transactions directly into one block, which is
  /// faster and irrelevant to the graph analysis; mempool mode exists for
  /// end-to-end substrate realism.
  bool use_mempool = false;
  std::uint64_t block_gas_limit = 8'000'000;
};

/// A generated chain plus the account/contract directory describing its
/// vertices. AccountIds are dense and double as graph vertex ids.
struct History {
  eth::Chain chain;
  eth::AccountRegistry accounts;
};

/// Aggregate counts for reporting (Fig. 1 uses the time-resolved variant
/// in the bench harness).
struct HistoryStats {
  std::uint64_t accounts = 0;   // externally owned
  std::uint64_t contracts = 0;
  std::uint64_t blocks = 0;
  std::uint64_t transactions = 0;
  std::uint64_t calls = 0;  // graph edges incl. multiplicity
};

HistoryStats stats_of(const History& h);

/// Copy of `history` with a quiet period spliced in: every block at or
/// after `gap_start` is shifted `gap_length` seconds into the future, so
/// the chain contains a stretch of `gap_length` with no traffic at all.
/// Blocks are re-linked (parent hashes recomputed), so the result still
/// validates. Used to stress the simulator's empty-window fast path and
/// to model chains with long outages or pre-launch idle periods.
History with_traffic_gap(const History& history, util::Timestamp gap_start,
                         util::Timestamp gap_length);

/// Streams the synthetic history block-by-block: the generator's interval
/// loop, made resumable. Emits exactly the block sequence
/// EthereumHistoryGenerator::generate() materializes for the same config
/// (generate() is in fact implemented by draining one of these), so
/// streamed and materialized replays are bit-identical by construction —
/// the StreamingDifferential suite holds them together. Memory stays at
/// one block in flight plus the account registry and attachment pools,
/// which is what unlocks scales whose full chain would not fit.
class GeneratedSource final : public BlockSource {
 public:
  explicit GeneratedSource(GeneratorConfig cfg = {});
  ~GeneratedSource() override;

  const SourceInfo& info() const override;
  bool next(eth::Block& out) override;

  /// The registry grows while streaming; it describes every vertex only
  /// once next() has returned false.
  const eth::AccountRegistry* directory() const override;

  /// Moves the completed registry out (History assembly). Call only
  /// after end-of-stream; the source is dead afterwards.
  eth::AccountRegistry take_directory();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Re-opens a fresh deterministic GeneratedSource per open() — one
/// independent replay of the same synthetic history per experiment cell,
/// none of them ever whole in memory.
class GeneratedSourceFactory final : public BlockSourceFactory {
 public:
  explicit GeneratedSourceFactory(GeneratorConfig cfg) : cfg_(cfg) {}

  std::unique_ptr<BlockSource> open() const override {
    return std::make_unique<GeneratedSource>(cfg_);
  }

  const GeneratorConfig& config() const { return cfg_; }

 private:
  GeneratorConfig cfg_;
};

class EthereumHistoryGenerator {
 public:
  explicit EthereumHistoryGenerator(GeneratorConfig cfg = {});

  /// Generates the full history [model.genesis, model.end) by draining a
  /// GeneratedSource, so the result matches streaming replay exactly.
  History generate();

  const GeneratorConfig& config() const { return cfg_; }

 private:
  GeneratorConfig cfg_;
};

}  // namespace ethshard::workload
