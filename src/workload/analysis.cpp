#include "workload/analysis.hpp"

#include <algorithm>
#include <unordered_map>

namespace ethshard::workload {

double gini(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  double weighted = 0;
  double total = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    weighted += static_cast<double>(i + 1) * values[i];
    total += values[i];
  }
  if (total <= 0) return 0.0;
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

WorkloadReport analyze_workload(const History& history) {
  WorkloadReport report;
  const util::Timestamp attack_start = util::attack_start_time();
  const util::Timestamp attack_end = util::attack_end_time();

  report.pre_attack.to = attack_start;
  report.attack.from = attack_start;
  report.attack.to = attack_end;
  report.post_attack.from = attack_end;

  if (!history.chain.empty()) {
    report.pre_attack.from = history.chain.blocks().front().timestamp;
    report.post_attack.to = history.chain.blocks().back().timestamp + 1;
  }

  std::unordered_map<eth::AccountId, std::uint64_t> touches;
  std::vector<bool> seen;

  auto phase_of = [&](util::Timestamp ts) -> PhaseStats& {
    if (ts < attack_start) return report.pre_attack;
    if (ts < attack_end) return report.attack;
    return report.post_attack;
  };

  for (const eth::Block& block : history.chain.blocks()) {
    PhaseStats& phase = phase_of(block.timestamp);
    ++phase.blocks;
    for (const eth::Transaction& tx : block.transactions) {
      ++phase.transactions;
      for (const eth::Call& c : tx.calls) {
        ++phase.calls;
        for (const eth::AccountId id : {c.from, c.to}) {
          ++touches[id];
          if (seen.size() <= id) seen.resize(id + 1, false);
          if (!seen[id]) {
            seen[id] = true;
            ++phase.new_accounts;
          }
        }
      }
    }
  }

  report.total_vertices = touches.size();
  std::vector<double> activity;
  activity.reserve(touches.size());
  double total_touches = 0;
  for (const auto& [id, n] : touches) {
    activity.push_back(static_cast<double>(n));
    total_touches += static_cast<double>(n);
    if (n == 1) ++report.single_touch_vertices;
  }
  report.activity_gini = gini(activity);

  if (!activity.empty() && total_touches > 0) {
    std::sort(activity.begin(), activity.end(), std::greater<>());
    const std::size_t top =
        std::max<std::size_t>(1, activity.size() / 100);
    double top_sum = 0;
    for (std::size_t i = 0; i < top; ++i) top_sum += activity[i];
    report.top1pct_share = top_sum / total_touches;
  }
  return report;
}

}  // namespace ethshard::workload
