#include "workload/block_source.hpp"

namespace ethshard::workload {

const eth::Block* BlockSource::next_ref() {
  if (!next(ref_buffer_)) return nullptr;
  return &ref_buffer_;
}

MaterializedSource::MaterializedSource(const eth::Chain& chain,
                                       const eth::AccountRegistry* accounts)
    : chain_(&chain), accounts_(accounts) {
  info_.name = "materialized";
  info_.block_count_hint = chain.size();
}

bool MaterializedSource::next(eth::Block& out) {
  if (pos_ >= chain_->size()) return false;
  out = chain_->blocks()[pos_++];
  return true;
}

const eth::Block* MaterializedSource::next_ref() {
  if (pos_ >= chain_->size()) return nullptr;
  return &chain_->blocks()[pos_++];
}

}  // namespace ethshard::workload
