#include "workload/block_source.hpp"

namespace ethshard::workload {

const eth::Block* BlockSource::next_ref() {
  if (!next(ref_buffer_)) return nullptr;
  return &ref_buffer_;
}

MaterializedSource::MaterializedSource(const eth::Chain& chain,
                                       const eth::AccountRegistry* accounts)
    : chain_(&chain), accounts_(accounts) {
  info_.name = "materialized";
  info_.block_count_hint = chain.size();
}

bool MaterializedSource::next(eth::Block& out) {
  if (pos_ >= chain_->size()) return false;
  out = chain_->blocks()[pos_++];
  return true;
}

const eth::Block* MaterializedSource::next_ref() {
  if (pos_ >= chain_->size()) return nullptr;
  return &chain_->blocks()[pos_++];
}

TrafficGapSource::TrafficGapSource(std::unique_ptr<BlockSource> inner,
                                   util::Timestamp gap_start,
                                   util::Timestamp gap_length)
    : inner_(std::move(inner)),
      gap_start_(gap_start),
      gap_length_(gap_length) {}

bool TrafficGapSource::next(eth::Block& out) {
  if (!inner_->next(out)) return false;
  if (out.timestamp >= gap_start_) out.timestamp += gap_length_;
  return true;
}

const eth::Block* TrafficGapSource::next_ref() {
  const eth::Block* b = inner_->next_ref();
  if (b == nullptr) return nullptr;
  if (b->timestamp < gap_start_) return b;
  shift_buffer_ = *b;
  shift_buffer_.timestamp += gap_length_;
  return &shift_buffer_;
}

}  // namespace ethshard::workload
