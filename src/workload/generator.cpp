#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "eth/mempool.hpp"
#include "util/check.hpp"

namespace ethshard::workload {

namespace {

using eth::AccountId;
using eth::AccountKind;
using eth::Call;
using eth::CallKind;
using eth::Transaction;

/// Mutable generator state threaded through transaction synthesis.
struct GenState {
  GeneratorConfig cfg;
  util::Rng rng;
  eth::AccountRegistry registry;

  // Preferential-attachment pools: an id appears once per interaction it
  // participated in, so uniform pool sampling is activity-proportional.
  // Dummy attack accounts are deliberately never pooled. The *_distinct
  // vectors hold each id once, for the uniform-mix draws that keep the
  // popularity tail alive.
  std::vector<AccountId> account_pool;   // externally owned accounts
  std::vector<AccountId> contract_pool;  // contracts
  std::vector<AccountId> accounts_distinct;
  std::vector<AccountId> contracts_distinct;

  // Attack infrastructure, lazily created at the first attack tx.
  std::vector<AccountId> attackers;
  AccountId attack_contract = 0;
  bool attack_ready = false;

  // Live crowdsales: (contract, hot-until). Expired entries are purged
  // lazily; dead ICOs are never called again (they were deliberately not
  // pooled), leaving stale partition assignments behind.
  std::vector<std::pair<AccountId, util::Timestamp>> live_icos;

  explicit GenState(const GeneratorConfig& c) : cfg(c), rng(c.seed) {}

  AccountId new_account(util::Timestamp t, bool pooled) {
    const AccountId id =
        registry.create(AccountKind::kExternallyOwned, t, 0);
    if (pooled) {
      account_pool.push_back(id);
      accounts_distinct.push_back(id);
    }
    return id;
  }

  /// Picks the archetype for a freshly deployed contract; ICOs only
  /// appear after the attack era (the 2017 crowdsale wave).
  eth::ContractArchetype pick_archetype(util::Timestamp t) {
    if (t >= cfg.model.attack_end && rng.bernoulli(cfg.p_archetype_ico))
      return eth::ContractArchetype::kIco;
    if (rng.bernoulli(cfg.p_archetype_exchange))
      return eth::ContractArchetype::kExchange;
    if (rng.bernoulli(cfg.p_archetype_token))
      return eth::ContractArchetype::kToken;
    return eth::ContractArchetype::kGeneric;
  }

  AccountId new_contract(util::Timestamp t) {
    const eth::ContractArchetype archetype = pick_archetype(t);
    const AccountId id = registry.create(AccountKind::kContract, t,
                                         8 + rng.uniform(256), archetype);
    contracts_distinct.push_back(id);
    switch (archetype) {
      case eth::ContractArchetype::kIco:
        // Hot via the live-ICO path only; when it expires it goes silent.
        live_icos.emplace_back(
            id, t + cfg.ico_lifetime / 2 +
                    static_cast<util::Timestamp>(
                        rng.uniform(static_cast<std::uint64_t>(
                            cfg.ico_lifetime))));
        break;
      case eth::ContractArchetype::kExchange:
        for (std::uint32_t i = 0; i < cfg.exchange_initial_popularity; ++i)
          contract_pool.push_back(id);
        break;
      default:
        contract_pool.push_back(id);
        break;
    }
    return id;
  }

  /// A live crowdsale to drive traffic at, or kInvalidAccount when none.
  static constexpr AccountId kNoAccount = ~AccountId{0};
  AccountId sample_live_ico(util::Timestamp t) {
    while (!live_icos.empty()) {
      const std::size_t i = rng.uniform(live_icos.size());
      if (live_icos[i].second >= t) return live_icos[i].first;
      live_icos[i] = live_icos.back();  // expired: drop and retry
      live_icos.pop_back();
    }
    return kNoAccount;
  }

  AccountId sample_account(util::Timestamp t) {
    if (account_pool.empty()) return new_account(t, /*pooled=*/true);
    if (rng.bernoulli(cfg.uniform_mix))
      return accounts_distinct[rng.uniform(accounts_distinct.size())];
    return account_pool[rng.uniform(account_pool.size())];
  }

  AccountId sample_contract() {
    ETHSHARD_CHECK(!contract_pool.empty());
    if (rng.bernoulli(cfg.uniform_mix))
      return contracts_distinct[rng.uniform(contracts_distinct.size())];
    return contract_pool[rng.uniform(contract_pool.size())];
  }

  void touch(AccountId id) {
    const auto& info = registry.info(id);
    if (info.kind == AccountKind::kContract) {
      // ICOs stay out of the popularity pool: their traffic comes from
      // the live-ICO path and must stop dead when the sale closes.
      // Exchanges accumulate popularity faster than linearly (network
      // effects), which is what makes them the graph's dominant hubs.
      switch (info.archetype) {
        case eth::ContractArchetype::kIco:
          break;
        case eth::ContractArchetype::kExchange:
          contract_pool.insert(contract_pool.end(), 4, id);
          break;
        default:
          contract_pool.push_back(id);
          break;
      }
      registry.add_storage(id, 1);
    } else {
      account_pool.push_back(id);
    }
  }
};

double contract_call_probability(const GenState& s, util::Timestamp t) {
  const auto& m = s.cfg.model;
  const double frac =
      static_cast<double>(t - m.genesis) /
      static_cast<double>(std::max<util::Timestamp>(1, m.end - m.genesis));
  return s.cfg.p_contract_call_early +
         (s.cfg.p_contract_call_late - s.cfg.p_contract_call_early) * frac;
}

/// Builds one attack transaction: an attacker drives the attack contract,
/// which touches `attack_dummies_per_tx` freshly minted dummy accounts.
Transaction make_attack_tx(GenState& s, util::Timestamp t) {
  if (!s.attack_ready) {
    for (int i = 0; i < 3; ++i)
      s.attackers.push_back(s.new_account(t, /*pooled=*/false));
    if (s.cfg.attack_via_contract)
      s.attack_contract = s.registry.create(AccountKind::kContract, t, 4);
    s.attack_ready = true;
  }
  Transaction tx;
  tx.sender = s.attackers[s.rng.uniform(s.attackers.size())];
  tx.gas_limit = 2'000'000;
  // The historical attack drove an attack contract; contract-free
  // workloads dust dummies straight from the attacker account.
  AccountId spender = tx.sender;
  if (s.cfg.attack_via_contract) {
    tx.calls.push_back(
        Call{tx.sender, s.attack_contract, CallKind::kContractCall, 0});
    spender = s.attack_contract;
  }
  for (std::uint32_t i = 0; i < s.cfg.attack_dummies_per_tx; ++i) {
    const AccountId dummy = s.new_account(t, /*pooled=*/false);
    tx.calls.push_back(Call{spender, dummy, CallKind::kTransfer, 1});
  }
  return tx;
}

/// Builds one organic transaction (transfer, contract call cascade, or
/// contract deployment).
Transaction make_organic_tx(GenState& s, util::Timestamp t) {
  Transaction tx;
  tx.sender = s.rng.bernoulli(s.cfg.p_new_sender)
                  ? s.new_account(t, /*pooled=*/true)
                  : s.sample_account(t);
  tx.gas_price = 1 + s.rng.uniform(50);

  const double p_cc = contract_call_probability(s, t);

  if (s.rng.bernoulli(s.cfg.p_contract_create)) {
    // Deploy a new contract.
    const AccountId c = s.new_contract(t);
    tx.calls.push_back(Call{tx.sender, c, CallKind::kContractCreate, 0});
  } else if (!s.contract_pool.empty() && s.rng.bernoulli(p_cc)) {
    // Contract activation. 2017 activations often chase a live crowdsale;
    // otherwise the popularity pool decides, and the callee's archetype
    // shapes the internal cascade.
    AccountId target = GenState::kNoAccount;
    if (t >= s.cfg.model.attack_end && s.rng.bernoulli(s.cfg.p_ico_call))
      target = s.sample_live_ico(t);
    if (target == GenState::kNoAccount) target = s.sample_contract();

    tx.calls.push_back(Call{tx.sender, target, CallKind::kContractCall,
                            s.rng.uniform(10)});
    s.touch(target);

    switch (s.registry.info(target).archetype) {
      case eth::ContractArchetype::kToken: {
        // ERC-20 transfer: the token pays out to one or two accounts.
        const int payouts = 1 + static_cast<int>(s.rng.uniform(2));
        for (int i = 0; i < payouts; ++i) {
          const AccountId a = s.rng.bernoulli(s.cfg.p_new_recipient)
                                  ? s.new_account(t, /*pooled=*/true)
                                  : s.sample_account(t);
          tx.calls.push_back(
              Call{target, a, CallKind::kTransfer, 1 + s.rng.uniform(50)});
          s.touch(a);
        }
        break;
      }
      case eth::ContractArchetype::kExchange: {
        // Matching engine: fan out to several (often fresh) traders and
        // occasionally settle through a token contract.
        const int fanout = 2 + static_cast<int>(s.rng.uniform(4));
        for (int i = 0; i < fanout; ++i) {
          if (s.rng.bernoulli(0.2)) {
            const AccountId c = s.sample_contract();
            tx.calls.push_back(
                Call{target, c, CallKind::kContractCall, 0});
            s.touch(c);
          } else {
            const AccountId a = s.rng.bernoulli(0.4)
                                    ? s.new_account(t, /*pooled=*/true)
                                    : s.sample_account(t);
            tx.calls.push_back(Call{target, a, CallKind::kTransfer,
                                    1 + s.rng.uniform(500)});
            s.touch(a);
          }
        }
        break;
      }
      case eth::ContractArchetype::kIco: {
        // Contribution: ether in; sometimes a token grant or a refund.
        if (s.rng.bernoulli(0.3)) {
          const AccountId c = s.sample_contract();
          tx.calls.push_back(Call{target, c, CallKind::kContractCall, 0});
          s.touch(c);
        } else if (s.rng.bernoulli(0.2)) {
          tx.calls.push_back(
              Call{target, tx.sender, CallKind::kTransfer, 1});
        }
        break;
      }
      case eth::ContractArchetype::kGeneric: {
        AccountId frame = target;
        int depth = 0;
        while (depth < 15 && s.rng.bernoulli(s.cfg.p_internal_continue)) {
          ++depth;
          const double r = s.rng.uniform01();
          if (r < 0.05) {
            // Factory pattern: the contract deploys another contract.
            const AccountId c = s.new_contract(t);
            tx.calls.push_back(
                Call{frame, c, CallKind::kContractCreate, 0});
          } else if (r < 0.40) {
            // Payout to an account.
            const AccountId a = s.rng.bernoulli(s.cfg.p_new_recipient)
                                    ? s.new_account(t, /*pooled=*/true)
                                    : s.sample_account(t);
            tx.calls.push_back(Call{frame, a, CallKind::kTransfer,
                                    1 + s.rng.uniform(100)});
            s.touch(a);
          } else {
            // Cross-contract call; descend into the callee.
            const AccountId c = s.sample_contract();
            tx.calls.push_back(Call{frame, c, CallKind::kContractCall, 0});
            s.touch(c);
            frame = c;
          }
        }
        break;
      }
    }
  } else {
    // Plain transfer.
    const AccountId to = s.rng.bernoulli(s.cfg.p_new_recipient)
                             ? s.new_account(t, /*pooled=*/true)
                             : s.sample_account(t);
    tx.calls.push_back(
        Call{tx.sender, to, CallKind::kTransfer, 1 + s.rng.uniform(1000)});
    s.touch(to);
  }
  s.touch(tx.sender);
  return tx;
}

}  // namespace

HistoryStats stats_of(const History& h) {
  HistoryStats st;
  st.contracts = h.accounts.contract_count();
  st.accounts = h.accounts.size() - st.contracts;
  st.blocks = h.chain.size();
  st.transactions = h.chain.transaction_count();
  for (const eth::Block& b : h.chain.blocks())
    for (const eth::Transaction& tx : b.transactions)
      st.calls += tx.calls.size();
  return st;
}

History with_traffic_gap(const History& history, util::Timestamp gap_start,
                         util::Timestamp gap_length) {
  ETHSHARD_CHECK(gap_length >= 0);
  History out;
  out.accounts = history.accounts;
  for (const eth::Block& b : history.chain.blocks()) {
    eth::Block shifted = b;
    if (shifted.timestamp >= gap_start) shifted.timestamp += gap_length;
    shifted.parent_hash = out.chain.empty()
                              ? eth::Hash256{}
                              : out.chain.block_hash(out.chain.size() - 1);
    out.chain.append(std::move(shifted));
  }
  return out;
}

/// The generator's interval loop, unrolled into a resumable pull. State
/// that generate() used to keep in locals (loop clock, emitted tally,
/// mempool, nonce map, chain tail for parent links) lives here instead,
/// so next() can stop at every sealed block and pick up where it left
/// off. The transaction synthesis order — and with it every RNG draw —
/// is exactly that of the old loop.
struct GeneratedSource::Impl {
  GenState s;
  SourceInfo info;

  util::Timestamp t;        // interval-loop clock
  double emitted = 0;       // cumulative interactions (calls) so far
  std::uint64_t block_number = 0;
  eth::Hash256 last_hash{};  // parent link for the next sealed block

  eth::Mempool pool;
  std::unordered_map<AccountId, std::uint64_t> next_nonce;

  explicit Impl(const GeneratorConfig& cfg) : s(cfg), t(cfg.model.genesis) {
    ETHSHARD_CHECK(cfg.scale > 0.0);
    ETHSHARD_CHECK(cfg.block_interval > 0);
    ETHSHARD_CHECK(cfg.model.genesis < cfg.model.end);
    info.name = "generated";
    info.seed = cfg.seed;
    info.scale = cfg.scale;

    // Premine: founding accounts available from the start.
    const auto premine = std::max<std::uint64_t>(
        8, static_cast<std::uint64_t>(
               static_cast<double>(cfg.genesis_accounts) *
               std::min(1.0, cfg.scale * 100.0)));
    for (std::uint64_t i = 0; i < premine; ++i)
      s.new_account(cfg.model.genesis, /*pooled=*/true);
  }

  /// Stamps number/timestamp/parent link onto `out` and advances the
  /// chain tail. Never called with empty txs.
  void seal(eth::Block& out, util::Timestamp time,
            std::vector<Transaction> txs) {
    out = eth::Block{};
    out.number = block_number++;
    out.timestamp = time;
    out.parent_hash = last_hash;
    out.transactions = std::move(txs);
    last_hash = out.hash();
  }

  bool next(eth::Block& out) {
    const GeneratorConfig& cfg = s.cfg;
    const GrowthModel& model = cfg.model;

    while (t < model.end) {
      const util::Timestamp block_time =
          std::min<util::Timestamp>(t + cfg.block_interval, model.end);
      t += cfg.block_interval;

      const double target =
          cfg.scale * model.cumulative_interactions(block_time);
      if (target <= emitted && !(cfg.use_mempool && !pool.empty()))
        continue;

      const bool attacking = model.in_attack(block_time);
      std::vector<Transaction> created;
      while (emitted < target) {
        Transaction tx =
            (attacking && s.rng.bernoulli(cfg.attack_fraction))
                ? make_attack_tx(s, block_time)
                : make_organic_tx(s, block_time);
        emitted += static_cast<double>(tx.calls.size());
        created.push_back(std::move(tx));
      }

      if (!cfg.use_mempool) {
        if (created.empty()) continue;
        seal(out, block_time, std::move(created));
        return true;
      }

      // Miner mode: fresh transactions join the pool at their nonce
      // slot; the block is whatever the fee market fits under the gas
      // limit.
      for (Transaction& tx : created) {
        tx.nonce = next_nonce[tx.sender]++;
        pool.submit(std::move(tx), block_time);
      }
      std::vector<Transaction> packed = pool.pack_block(cfg.block_gas_limit);
      if (packed.empty()) continue;
      seal(out, block_time, std::move(packed));
      return true;
    }

    // Miner mode: drain the backlog so every created transaction lands.
    if (cfg.use_mempool && !pool.empty()) {
      std::vector<Transaction> txs = pool.pack_block(cfg.block_gas_limit);
      if (!txs.empty()) {  // nothing fits (gas limit below one tx)
        seal(out, model.end, std::move(txs));
        return true;
      }
    }
    return false;
  }
};

GeneratedSource::GeneratedSource(GeneratorConfig cfg)
    : impl_(std::make_unique<Impl>(cfg)) {}

GeneratedSource::~GeneratedSource() = default;

const SourceInfo& GeneratedSource::info() const { return impl_->info; }

bool GeneratedSource::next(eth::Block& out) { return impl_->next(out); }

const eth::AccountRegistry* GeneratedSource::directory() const {
  return &impl_->s.registry;
}

eth::AccountRegistry GeneratedSource::take_directory() {
  return std::move(impl_->s.registry);
}

EthereumHistoryGenerator::EthereumHistoryGenerator(GeneratorConfig cfg)
    : cfg_(cfg) {
  ETHSHARD_CHECK(cfg_.scale > 0.0);
  ETHSHARD_CHECK(cfg_.block_interval > 0);
  ETHSHARD_CHECK(cfg_.model.genesis < cfg_.model.end);
}

History EthereumHistoryGenerator::generate() {
  GeneratedSource source(cfg_);
  History history;
  eth::Block block;
  while (source.next(block)) history.chain.append(std::move(block));
  history.accounts = source.take_directory();
  return history;
}

}  // namespace ethshard::workload
