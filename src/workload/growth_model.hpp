// Volume calibration for the synthetic Ethereum history.
//
// The paper's Fig. 1 shows the chain's growth in vertices and edges:
// exponential from genesis (Jul 2015, ~10^4) until around October 2016
// (~10^7), a one-order-of-magnitude jump during the Sep/Oct-2016 DoS
// attack ("the number of vertices and edges increased by one order of
// magnitude"), then super-linear growth to ~6·10^7 edges by the end of
// 2017. This model reproduces that cumulative-interaction curve; the
// generator multiplies it by a scale factor so experiments fit a laptop.
#pragma once

#include "util/sim_time.hpp"

namespace ethshard::workload {

/// Piecewise cumulative-interaction model at scale 1 (the real chain).
///
///  * [genesis, attack_start): I(d) = base · (e^{rate·d} − 1)
///  * [attack_start, attack_end): + linear ramp of `attack_interactions`
///  * [attack_end, end]: + linear + quadratic growth reaching `end_target`
struct GrowthModel {
  util::Timestamp genesis = util::genesis_time();
  util::Timestamp attack_start = util::attack_start_time();
  util::Timestamp attack_end = util::attack_end_time();
  util::Timestamp end = util::study_end_time();

  /// Virtual interaction count at genesis (the exponential's scale).
  double base_interactions = 8000.0;
  /// Exponential growth rate per day; with the default base this yields
  /// ~1.3e7 cumulative interactions when the attack starts.
  double exp_rate = 0.01778;
  /// Interactions added by the attack period (dummy-account spam).
  double attack_interactions = 1.2e7;
  /// Post-attack linear term (interactions/day).
  double post_linear_per_day = 40000.0;
  /// Cumulative interactions at `end`; fixes the quadratic term.
  double end_target = 6.0e7;

  /// Cumulative interactions expected by time t (clamped to [genesis,end]).
  double cumulative_interactions(util::Timestamp t) const;

  /// True when t falls inside the attack window.
  bool in_attack(util::Timestamp t) const {
    return t >= attack_start && t < attack_end;
  }
};

}  // namespace ethshard::workload
