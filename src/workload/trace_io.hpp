// Trace serialization — the paper's "easily understandable format".
//
// The authors published their extracted Ethereum trace as plain data; this
// module writes and reads a compatible flat CSV so the real trace (or any
// other chain's) can be substituted for the synthetic history. One row per
// call:
//
//   block,timestamp,tx_index,call_index,from,to,kind,value
//
// with kind ∈ {T (ether transfer), C (contract call), X (contract
// creation)}. Account kinds are implied: any id that is ever the target of
// a C or X call is a contract, everything else is externally owned.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "workload/block_source.hpp"
#include "workload/generator.hpp"

namespace ethshard::workload {

/// Writes the full history as CSV (with a header row).
void write_trace(std::ostream& out, const History& history);

/// Streams a trace file block-by-block: rows are parsed incrementally
/// (one-row lookahead to detect block boundaries), so only the block
/// being assembled is resident — a trace much larger than memory replays
/// fine. Emits exactly the blocks read_trace() would materialize
/// (read_trace is implemented by draining one of these). The account
/// registry is accumulated row-by-row (any C/X target is a contract,
/// first_seen at first appearance) and becomes available through
/// directory() once next() has returned false. Throws
/// util::CheckFailure on malformed input, at the pull that hits it.
class TraceSource final : public BlockSource {
 public:
  /// Borrowed stream; must outlive the source.
  explicit TraceSource(std::istream& in);
  /// Opens (and owns) the file at `path`.
  explicit TraceSource(const std::string& path);
  ~TraceSource() override;

  const SourceInfo& info() const override;
  bool next(eth::Block& out) override;

  /// Null until end-of-stream — account kinds are only known once every
  /// row has been scanned.
  const eth::AccountRegistry* directory() const override;

  /// Moves the completed registry out (History assembly). Call only
  /// after end-of-stream; the source is dead afterwards.
  eth::AccountRegistry take_directory();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Re-opens the trace file per open(): each experiment cell streams its
/// own pass over the file instead of sharing one materialized History.
class TraceSourceFactory final : public BlockSourceFactory {
 public:
  explicit TraceSourceFactory(std::string path) : path_(std::move(path)) {}

  std::unique_ptr<BlockSource> open() const override {
    return std::make_unique<TraceSource>(path_);
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Parses a trace written by write_trace (or hand-assembled in the same
/// format). Reconstructs blocks (hash-linked), transactions and the
/// account registry. Throws util::CheckFailure on malformed input.
History read_trace(std::istream& in);

/// File-path conveniences; throw util::CheckFailure when the file cannot
/// be opened.
void write_trace_file(const std::string& path, const History& history);
History read_trace_file(const std::string& path);

}  // namespace ethshard::workload
