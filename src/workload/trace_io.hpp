// Trace serialization — the paper's "easily understandable format".
//
// The authors published their extracted Ethereum trace as plain data; this
// module writes and reads a compatible flat CSV so the real trace (or any
// other chain's) can be substituted for the synthetic history. One row per
// call:
//
//   block,timestamp,tx_index,call_index,from,to,kind,value
//
// with kind ∈ {T (ether transfer), C (contract call), X (contract
// creation)}. Account kinds are implied: any id that is ever the target of
// a C or X call is a contract, everything else is externally owned.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/generator.hpp"

namespace ethshard::workload {

/// Writes the full history as CSV (with a header row).
void write_trace(std::ostream& out, const History& history);

/// Parses a trace written by write_trace (or hand-assembled in the same
/// format). Reconstructs blocks (hash-linked), transactions and the
/// account registry. Throws util::CheckFailure on malformed input.
History read_trace(std::istream& in);

/// File-path conveniences; throw util::CheckFailure when the file cannot
/// be opened.
void write_trace_file(const std::string& path, const History& history);
History read_trace_file(const std::string& path);

}  // namespace ethshard::workload
