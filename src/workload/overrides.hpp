// Named generator-knob overrides — the scenario→generator composition
// hook.
//
// Scenario files (src/scenario) describe stress shapes declaratively:
// they start from a preset and then tweak individual GeneratorConfig
// knobs by name ("workload.attack_fraction = 0.95"). This is the string
// → knob mapping behind that, kept in workload/ so anything else that
// wants text-addressable generator configuration (sweep scripts, future
// CLI flags) shares one table. Unknown keys and unparsable values throw
// util::CheckFailure naming the offending token, mirroring the
// StrategyRegistry spec grammar's behaviour.
#pragma once

#include <string>
#include <vector>

#include "workload/generator.hpp"

namespace ethshard::workload {

/// Applies `key = value` to `cfg`. Keys name GeneratorConfig fields
/// ("attack_fraction", "p_new_sender", ...) or GrowthModel fields with a
/// "model." prefix ("model.attack_interactions"). Durations use unit
/// suffixes in the key ("block_interval_hours", "ico_lifetime_days");
/// time anchors ("model.genesis", "model.end", ...) take YYYY-MM-DD
/// dates. Booleans accept true/false/1/0. Throws util::CheckFailure on
/// an unknown key or a value that does not parse, naming it.
void apply_generator_override(GeneratorConfig& cfg, const std::string& key,
                              const std::string& value);

/// Every key apply_generator_override accepts, sorted — for docs and
/// error messages.
std::vector<std::string> generator_override_keys();

/// Validates the growth-model timeline (genesis < attack_start <=
/// attack_end < end). Callers run this once after applying a whole
/// override sequence — not per key, since a legal sequence may pass
/// through an illegal intermediate state ("move attack_start and
/// attack_end both before the shortened end"). Throws util::CheckFailure
/// when the ordering is broken.
void check_growth_timeline(const GeneratorConfig& cfg);

}  // namespace ethshard::workload
