#include "workload/trace_io.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <ostream>
#include <vector>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace ethshard::workload {

namespace {

char kind_code(eth::CallKind k) {
  switch (k) {
    case eth::CallKind::kTransfer:
      return 'T';
    case eth::CallKind::kContractCall:
      return 'C';
    case eth::CallKind::kContractCreate:
      return 'X';
  }
  return '?';
}

eth::CallKind kind_from_code(const std::string& s) {
  ETHSHARD_CHECK_MSG(s.size() == 1, "bad call kind '" << s << "'");
  switch (s[0]) {
    case 'T':
      return eth::CallKind::kTransfer;
    case 'C':
      return eth::CallKind::kContractCall;
    case 'X':
      return eth::CallKind::kContractCreate;
    default:
      ETHSHARD_CHECK_MSG(false, "bad call kind '" << s << "'");
  }
  return eth::CallKind::kTransfer;  // unreachable
}

std::uint64_t parse_u64(const std::string& s) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  ETHSHARD_CHECK_MSG(ec == std::errc{} && ptr == s.data() + s.size(),
                     "bad integer field '" << s << "'");
  return v;
}

struct Row {
  std::uint64_t block;
  util::Timestamp timestamp;
  std::uint64_t tx_index;
  std::uint64_t call_index;
  eth::AccountId from;
  eth::AccountId to;
  eth::CallKind kind;
  std::uint64_t value;
};

}  // namespace

void write_trace(std::ostream& out, const History& history) {
  util::CsvWriter csv(out);
  csv.write_row({"block", "timestamp", "tx_index", "call_index", "from",
                 "to", "kind", "value"});
  for (const eth::Block& b : history.chain.blocks()) {
    for (std::size_t ti = 0; ti < b.transactions.size(); ++ti) {
      const eth::Transaction& tx = b.transactions[ti];
      for (std::size_t ci = 0; ci < tx.calls.size(); ++ci) {
        const eth::Call& c = tx.calls[ci];
        const char kind[2] = {kind_code(c.kind), '\0'};
        csv.field(b.number)
            .field(static_cast<std::int64_t>(b.timestamp))
            .field(static_cast<std::uint64_t>(ti))
            .field(static_cast<std::uint64_t>(ci))
            .field(c.from)
            .field(c.to)
            .field(std::string_view(kind, 1))
            .field(c.value_wei);
        csv.end_row();
      }
    }
  }
}

/// Streaming trace parser: CSV rows in, whole blocks out, registry
/// accumulated on the side. Holds one block plus a one-row lookahead
/// (the row that revealed the block boundary) — never the row set.
struct TraceSource::Impl {
  std::ifstream owned_file;  // backing storage for the path constructor
  util::CsvReader reader;
  SourceInfo source_info;

  std::vector<std::string> fields;
  Row pending{};          // lookahead row that opened the next block
  bool have_pending = false;

  std::uint64_t blocks_emitted = 0;
  util::Timestamp last_block_ts = 0;
  eth::Hash256 last_hash{};  // parent link for the next sealed block
  bool done = false;

  // Vertex universe, discovered row by row. Kinds are only final at
  // end-of-stream (a late X/C row can turn any id into a contract), so
  // the registry is built in finalize(). Unseen ids below max_id default
  // to externally-owned with the first row's timestamp — exactly
  // read_trace's vector initialization.
  std::vector<bool> is_contract;
  std::vector<bool> seen;
  std::vector<util::Timestamp> first_seen;
  util::Timestamp first_row_ts = 0;
  bool any_row = false;
  eth::AccountRegistry registry;

  explicit Impl(std::istream& in) : reader(in) { init(); }

  explicit Impl(const std::string& path)
      : owned_file(path), reader(owned_file) {
    ETHSHARD_CHECK_MSG(owned_file.good(), "cannot open " << path);
    init();
  }

  void init() {
    source_info.name = "trace";
    // Header.
    ETHSHARD_CHECK_MSG(reader.read_row(fields), "empty trace");
    ETHSHARD_CHECK_MSG(fields.size() == 8 && fields[0] == "block",
                       "unrecognized trace header");
  }

  void note_row(const Row& r) {
    if (!any_row) {
      any_row = true;
      first_row_ts = r.timestamp;
    }
    const std::uint64_t max_id = std::max(r.from, r.to);
    if (max_id >= seen.size()) {
      is_contract.resize(max_id + 1, false);
      seen.resize(max_id + 1, false);
      first_seen.resize(max_id + 1, 0);
    }
    if (r.kind != eth::CallKind::kTransfer) is_contract[r.to] = true;
    for (const eth::AccountId id : {r.from, r.to}) {
      if (!seen[id]) {
        seen[id] = true;
        first_seen[id] = r.timestamp;
      }
    }
  }

  /// Next row from the lookahead slot or the file; false at EOF.
  bool fetch_row(Row& r) {
    if (have_pending) {
      r = pending;
      have_pending = false;
      return true;
    }
    if (!reader.read_row(fields)) return false;
    ETHSHARD_CHECK_MSG(fields.size() == 8,
                       "trace row with " << fields.size() << " fields");
    r.block = parse_u64(fields[0]);
    r.timestamp = static_cast<util::Timestamp>(parse_u64(fields[1]));
    r.tx_index = parse_u64(fields[2]);
    r.call_index = parse_u64(fields[3]);
    r.from = parse_u64(fields[4]);
    r.to = parse_u64(fields[5]);
    r.kind = kind_from_code(fields[6]);
    r.value = parse_u64(fields[7]);
    note_row(r);
    return true;
  }

  /// Builds the registry once every row has been scanned.
  void finalize() {
    done = true;
    for (std::uint64_t id = 0; id < seen.size(); ++id) {
      registry.create(is_contract[id] ? eth::AccountKind::kContract
                                      : eth::AccountKind::kExternallyOwned,
                      seen[id] ? first_seen[id] : first_row_ts);
    }
  }

  bool next(eth::Block& out) {
    if (done) return false;

    eth::Block block;
    bool block_open = false;
    Row r;
    while (fetch_row(r)) {
      if (!block_open) {
        ETHSHARD_CHECK_MSG(r.block == blocks_emitted,
                           "non-consecutive block numbers in trace");
        block.number = r.block;
        block.timestamp = r.timestamp;
        ETHSHARD_CHECK_MSG(blocks_emitted == 0 ||
                               block.timestamp >= last_block_ts,
                           "timestamp regression at block " << r.block);
        block_open = true;
      } else if (r.block != block.number) {
        ETHSHARD_CHECK_MSG(r.block > block.number,
                           "trace rows out of block order");
        pending = r;  // first row of the next block
        have_pending = true;
        break;
      }
      ETHSHARD_CHECK_MSG(r.timestamp == block.timestamp,
                         "inconsistent timestamp within block " << r.block);
      if (r.tx_index == block.transactions.size()) {
        eth::Transaction tx;
        tx.sender = r.from;
        block.transactions.push_back(std::move(tx));
      }
      ETHSHARD_CHECK_MSG(r.tx_index + 1 == block.transactions.size(),
                         "trace rows out of transaction order");
      eth::Transaction& tx = block.transactions.back();
      ETHSHARD_CHECK_MSG(r.call_index == tx.calls.size(),
                         "trace rows out of call order");
      tx.calls.push_back(eth::Call{r.from, r.to, r.kind, r.value});
    }

    if (!block_open) {
      finalize();
      return false;
    }
    block.parent_hash = last_hash;
    last_hash = block.hash();
    last_block_ts = block.timestamp;
    ++blocks_emitted;
    out = std::move(block);
    return true;
  }
};

TraceSource::TraceSource(std::istream& in)
    : impl_(std::make_unique<Impl>(in)) {}

TraceSource::TraceSource(const std::string& path)
    : impl_(std::make_unique<Impl>(path)) {}

TraceSource::~TraceSource() = default;

const SourceInfo& TraceSource::info() const { return impl_->source_info; }

bool TraceSource::next(eth::Block& out) { return impl_->next(out); }

const eth::AccountRegistry* TraceSource::directory() const {
  return impl_->done ? &impl_->registry : nullptr;
}

eth::AccountRegistry TraceSource::take_directory() {
  return std::move(impl_->registry);
}

History read_trace(std::istream& in) {
  TraceSource source(in);
  History history;
  eth::Block block;
  while (source.next(block)) history.chain.append(std::move(block));
  history.accounts = source.take_directory();
  return history;
}

void write_trace_file(const std::string& path, const History& history) {
  std::ofstream out(path);
  ETHSHARD_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  write_trace(out, history);
  ETHSHARD_CHECK_MSG(out.good(), "write failure on " << path);
}

History read_trace_file(const std::string& path) {
  std::ifstream in(path);
  ETHSHARD_CHECK_MSG(in.good(), "cannot open " << path);
  return read_trace(in);
}

}  // namespace ethshard::workload
