#include "workload/trace_io.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <ostream>
#include <vector>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace ethshard::workload {

namespace {

char kind_code(eth::CallKind k) {
  switch (k) {
    case eth::CallKind::kTransfer:
      return 'T';
    case eth::CallKind::kContractCall:
      return 'C';
    case eth::CallKind::kContractCreate:
      return 'X';
  }
  return '?';
}

eth::CallKind kind_from_code(const std::string& s) {
  ETHSHARD_CHECK_MSG(s.size() == 1, "bad call kind '" << s << "'");
  switch (s[0]) {
    case 'T':
      return eth::CallKind::kTransfer;
    case 'C':
      return eth::CallKind::kContractCall;
    case 'X':
      return eth::CallKind::kContractCreate;
    default:
      ETHSHARD_CHECK_MSG(false, "bad call kind '" << s << "'");
  }
  return eth::CallKind::kTransfer;  // unreachable
}

std::uint64_t parse_u64(const std::string& s) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  ETHSHARD_CHECK_MSG(ec == std::errc{} && ptr == s.data() + s.size(),
                     "bad integer field '" << s << "'");
  return v;
}

struct Row {
  std::uint64_t block;
  util::Timestamp timestamp;
  std::uint64_t tx_index;
  std::uint64_t call_index;
  eth::AccountId from;
  eth::AccountId to;
  eth::CallKind kind;
  std::uint64_t value;
};

}  // namespace

void write_trace(std::ostream& out, const History& history) {
  util::CsvWriter csv(out);
  csv.write_row({"block", "timestamp", "tx_index", "call_index", "from",
                 "to", "kind", "value"});
  for (const eth::Block& b : history.chain.blocks()) {
    for (std::size_t ti = 0; ti < b.transactions.size(); ++ti) {
      const eth::Transaction& tx = b.transactions[ti];
      for (std::size_t ci = 0; ci < tx.calls.size(); ++ci) {
        const eth::Call& c = tx.calls[ci];
        const char kind[2] = {kind_code(c.kind), '\0'};
        csv.field(b.number)
            .field(static_cast<std::int64_t>(b.timestamp))
            .field(static_cast<std::uint64_t>(ti))
            .field(static_cast<std::uint64_t>(ci))
            .field(c.from)
            .field(c.to)
            .field(std::string_view(kind, 1))
            .field(c.value_wei);
        csv.end_row();
      }
    }
  }
}

History read_trace(std::istream& in) {
  util::CsvReader reader(in);
  std::vector<std::string> fields;

  // Header.
  ETHSHARD_CHECK_MSG(reader.read_row(fields), "empty trace");
  ETHSHARD_CHECK_MSG(fields.size() == 8 && fields[0] == "block",
                     "unrecognized trace header");

  std::vector<Row> rows;
  while (reader.read_row(fields)) {
    ETHSHARD_CHECK_MSG(fields.size() == 8,
                       "trace row with " << fields.size() << " fields");
    Row r;
    r.block = parse_u64(fields[0]);
    r.timestamp = static_cast<util::Timestamp>(parse_u64(fields[1]));
    r.tx_index = parse_u64(fields[2]);
    r.call_index = parse_u64(fields[3]);
    r.from = parse_u64(fields[4]);
    r.to = parse_u64(fields[5]);
    r.kind = kind_from_code(fields[6]);
    r.value = parse_u64(fields[7]);
    rows.push_back(r);
  }

  // Pass 1: vertex universe — ids, kinds, first appearance.
  std::uint64_t max_id = 0;
  for (const Row& r : rows) max_id = std::max({max_id, r.from, r.to});

  History history;
  if (rows.empty()) return history;

  std::vector<bool> is_contract(max_id + 1, false);
  std::vector<util::Timestamp> first_seen(max_id + 1, rows.front().timestamp);
  std::vector<bool> seen(max_id + 1, false);
  for (const Row& r : rows) {
    if (r.kind != eth::CallKind::kTransfer) is_contract[r.to] = true;
    for (const eth::AccountId id : {r.from, r.to}) {
      if (!seen[id]) {
        seen[id] = true;
        first_seen[id] = r.timestamp;
      }
    }
  }
  for (std::uint64_t id = 0; id <= max_id; ++id) {
    history.accounts.create(is_contract[id] ? eth::AccountKind::kContract
                                            : eth::AccountKind::kExternallyOwned,
                            first_seen[id]);
  }

  // Pass 2: rebuild blocks and transactions (rows must be in order).
  eth::Block block;
  bool block_open = false;

  auto seal_block = [&] {
    if (!block_open) return;
    if (!history.chain.empty())
      block.parent_hash = history.chain.block_hash(block.number - 1);
    history.chain.append(std::move(block));
    block = eth::Block{};
  };

  for (const Row& r : rows) {
    if (!block_open || r.block != block.number) {
      ETHSHARD_CHECK_MSG(!block_open || r.block > block.number,
                         "trace rows out of block order");
      seal_block();
      ETHSHARD_CHECK_MSG(r.block == history.chain.size(),
                         "non-consecutive block numbers in trace");
      block.number = r.block;
      block.timestamp = r.timestamp;
      block_open = true;
    }
    ETHSHARD_CHECK_MSG(r.timestamp == block.timestamp,
                       "inconsistent timestamp within block " << r.block);
    if (r.tx_index == block.transactions.size()) {
      eth::Transaction tx;
      tx.sender = r.from;
      block.transactions.push_back(std::move(tx));
    }
    ETHSHARD_CHECK_MSG(r.tx_index + 1 == block.transactions.size(),
                       "trace rows out of transaction order");
    eth::Transaction& tx = block.transactions.back();
    ETHSHARD_CHECK_MSG(r.call_index == tx.calls.size(),
                       "trace rows out of call order");
    tx.calls.push_back(eth::Call{r.from, r.to, r.kind, r.value});
  }
  seal_block();
  return history;
}

void write_trace_file(const std::string& path, const History& history) {
  std::ofstream out(path);
  ETHSHARD_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  write_trace(out, history);
  ETHSHARD_CHECK_MSG(out.good(), "write failure on " << path);
}

History read_trace_file(const std::string& path) {
  std::ifstream in(path);
  ETHSHARD_CHECK_MSG(in.good(), "cannot open " << path);
  return read_trace(in);
}

}  // namespace ethshard::workload
