#include "workload/windows.hpp"

#include "util/check.hpp"

namespace ethshard::workload {

std::vector<WindowSpan> window_spans(std::span<const eth::Block> blocks,
                                     util::Timestamp width) {
  ETHSHARD_CHECK(width > 0);
  std::vector<WindowSpan> spans;
  if (blocks.empty()) return spans;

  const util::Timestamp origin = blocks.front().timestamp;
  std::uint64_t begin = 0;
  // Invariant: blocks[begin .. i) all fall into the bin that starts at
  // `start`. A block past the bin's end closes the span and opens the
  // bin it falls into (skipping empty bins entirely).
  util::Timestamp start = origin;
  for (std::uint64_t i = 0; i < blocks.size(); ++i) {
    const util::Timestamp ts = blocks[i].timestamp;
    ETHSHARD_CHECK_MSG(i == 0 || blocks[i - 1].timestamp <= ts,
                       "window_spans requires time-sorted blocks");
    if (ts >= start + width) {
      spans.push_back(WindowSpan{start, begin, i});
      start = origin + ((ts - origin) / width) * width;
      begin = i;
    }
  }
  spans.push_back(WindowSpan{start, begin, blocks.size()});
  return spans;
}

}  // namespace ethshard::workload
