#include "workload/windows.hpp"

#include "util/check.hpp"

namespace ethshard::workload {

std::vector<WindowSpan> window_spans(std::span<const eth::Block> blocks,
                                     util::Timestamp width) {
  ETHSHARD_CHECK(width > 0);
  std::vector<WindowSpan> spans;
  if (blocks.empty()) return spans;

  const util::Timestamp origin = blocks.front().timestamp;
  std::uint64_t begin = 0;
  // Invariant: blocks[begin .. i) all fall into the bin that starts at
  // `start`. A block past the bin's end closes the span and opens the
  // bin it falls into (skipping empty bins entirely).
  util::Timestamp start = origin;
  for (std::uint64_t i = 0; i < blocks.size(); ++i) {
    const util::Timestamp ts = blocks[i].timestamp;
    ETHSHARD_CHECK_MSG(i == 0 || blocks[i - 1].timestamp <= ts,
                       "window_spans requires time-sorted blocks");
    if (ts >= start + width) {
      spans.push_back(WindowSpan{start, begin, i});
      start = origin + ((ts - origin) / width) * width;
      begin = i;
    }
  }
  spans.push_back(WindowSpan{start, begin, blocks.size()});
  return spans;
}

WindowBinner::WindowBinner(util::Timestamp width) : width_(width) {
  ETHSHARD_CHECK(width_ > 0);
}

bool WindowBinner::push(eth::Block block, BinnedWindow& completed) {
  const util::Timestamp ts = block.timestamp;
  ETHSHARD_CHECK_MSG(!any_ || ts >= last_ts_,
                     "WindowBinner requires time-sorted blocks");
  bool emitted = false;
  if (!any_) {
    any_ = true;
    origin_ = ts;
    start_ = ts;
  } else if (ts >= start_ + width_) {
    completed.window_start = start_;
    completed.blocks = std::move(current_);
    current_.clear();
    // Jump straight to the bin this block falls into — empty bins emit
    // nothing, exactly like window_spans.
    start_ = origin_ + ((ts - origin_) / width_) * width_;
    emitted = true;
  }
  last_ts_ = ts;
  current_.push_back(std::move(block));
  return emitted;
}

bool WindowBinner::finish(BinnedWindow& completed) {
  if (current_.empty()) return false;
  completed.window_start = start_;
  completed.blocks = std::move(current_);
  current_.clear();
  return true;
}

}  // namespace ethshard::workload
