// Structural analysis of the blockchain graph.
//
// Connected components and degree statistics, used to sanity-check the
// synthetic workload against the real chain's known shape (a giant
// component containing almost all active vertices, a power-law-ish degree
// tail) and by the CLI's stats output.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ethshard::graph {

/// Result of a connected-components sweep.
struct Components {
  /// Component id of every vertex, dense in [0, count).
  std::vector<Vertex> component_of;
  /// Vertex count per component id.
  std::vector<std::uint64_t> sizes;

  std::uint64_t count() const { return sizes.size(); }
  /// Size of the largest component (0 for an empty graph).
  std::uint64_t largest() const;
};

/// Connected components of an undirected graph, or *weakly* connected
/// components of a directed one (arc direction ignored; for a directed
/// CSR the reverse adjacency is materialized internally, O(n + m)).
Components connected_components(const Graph& g);

/// Degree statistics (unweighted degrees). Self-contained so the graph
/// library stays dependency-free of the metrics layer.
struct DegreeStats {
  std::uint64_t min_degree = 0;
  std::uint64_t max_degree = 0;
  double mean_degree = 0;
  double median_degree = 0;
  std::uint64_t isolated = 0;  ///< degree-0 vertices
  Vertex max_degree_vertex = 0;
};

DegreeStats degree_statistics(const Graph& g);

/// K-core decomposition (undirected): core_of[v] is the largest k such
/// that v belongs to a subgraph where every vertex has degree >= k.
/// High-core vertices are the densely connected hub nucleus that
/// partitioners must split; computed with the standard peeling algorithm
/// in O(n + m).
struct CoreDecomposition {
  std::vector<std::uint64_t> core_of;
  std::uint64_t max_core = 0;
  /// Vertices with core number == max_core (the innermost nucleus).
  std::uint64_t nucleus_size = 0;
};

CoreDecomposition kcore_decomposition(const Graph& g);

/// Triangle counting / clustering.
struct ClusteringStats {
  std::uint64_t triangles = 0;  ///< distinct triangles in the graph
  /// Global clustering coefficient: 3·triangles / open-or-closed wedges,
  /// in [0, 1]; 0 when the graph has no wedge.
  double global_coefficient = 0;
};

/// Counts triangles with the rank-ordered wedge method, O(m^{3/2}) worst
/// case. Precondition: g undirected.
ClusteringStats clustering(const Graph& g);

}  // namespace ethshard::graph
