// Synthetic graph families for tests and partitioner benchmarks.
//
// These give known-structure inputs: paths and grids have known optimal
// bisections, planted-partition graphs have a known community structure a
// good partitioner must recover, and Barabási–Albert graphs reproduce the
// hub-dominated degree distribution that makes hashing cut so many edges
// on the real blockchain graph.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ethshard::graph {

/// Path 0-1-2-…-(n-1); unit weights.
Graph make_path(std::uint64_t n);

/// Cycle over n vertices; unit weights. Precondition: n >= 3.
Graph make_cycle(std::uint64_t n);

/// Complete graph K_n; unit weights.
Graph make_complete(std::uint64_t n);

/// rows×cols 4-neighbour grid; unit weights.
Graph make_grid(std::uint64_t rows, std::uint64_t cols);

/// Erdős–Rényi G(n, p); unit weights. Expected edges p·n·(n-1)/2.
Graph make_erdos_renyi(std::uint64_t n, double p, util::Rng& rng);

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `m` existing vertices chosen proportionally
/// to degree. Produces power-law hubs. Precondition: n > m >= 1.
Graph make_barabasi_albert(std::uint64_t n, std::uint64_t m, util::Rng& rng);

/// Planted partition: `k` groups of `group_size` vertices; intra-group edge
/// probability p_in, inter-group p_out (p_in >> p_out plants a clear
/// k-way community structure).
Graph make_planted_partition(std::uint64_t k, std::uint64_t group_size,
                             double p_in, double p_out, util::Rng& rng);

/// Two cliques of size n/2 joined by exactly `bridge_edges` edges — the
/// canonical minimum-bisection instance (optimal cut = bridge_edges).
/// Precondition: n >= 4 and even; bridge_edges >= 1.
Graph make_two_cliques(std::uint64_t n, std::uint64_t bridge_edges);

}  // namespace ethshard::graph
