// Graphviz DOT export — reproduces the styling of the paper's Fig. 2:
// accounts are full-line (solid) nodes, contracts dashed, arrows carry the
// interaction count when it exceeds one.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace ethshard::graph {

/// Rendering options for write_dot.
struct DotOptions {
  /// Returns true when a vertex is a smart contract (drawn dashed).
  std::function<bool(Vertex)> is_contract;
  /// Vertex label; defaults to the numeric id.
  std::function<std::string(Vertex)> label;
  /// Graph name in the DOT header.
  std::string name = "ethereum_subgraph";
  /// Suppress "1" edge labels, as the paper does ("when no weight is
  /// specified, the interaction happened once").
  bool hide_unit_weights = true;
};

/// Writes the graph in DOT format. Directed graphs use ->, undirected --
/// (with each undirected edge emitted once).
void write_dot(std::ostream& out, const Graph& g, const DotOptions& opts = {});

/// Convenience: DOT text as a string.
std::string to_dot(const Graph& g, const DotOptions& opts = {});

}  // namespace ethshard::graph
