// Incremental construction of the blockchain graph.
//
// The simulator feeds every call of every transaction into a GraphBuilder;
// parallel edges accumulate weight (§II-B: "The weight in each edge denotes
// the number of times the interaction happened") and vertex weights
// accumulate activity. Snapshots are immutable CSR Graphs.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace ethshard::graph {

/// Mutable weighted directed multigraph with O(1) amortized edge
/// accumulation. Vertex ids must stay below 2^32 (the edge key packs two
/// ids into 64 bits); the Ethereum graph through 2017 has ~5e7 vertices,
/// far below the limit.
class GraphBuilder {
 public:
  /// Adds a vertex with the given initial weight; returns its id.
  Vertex add_vertex(Weight weight = 1);

  /// Ensures vertices [0, count) exist, creating any missing ones with
  /// `default_weight`.
  void ensure_vertices(std::uint64_t count, Weight default_weight = 1);

  /// Accumulates weight onto the directed edge u→v (creating it at first
  /// use). Preconditions: both endpoints exist.
  void add_edge(Vertex u, Vertex v, Weight weight = 1);

  /// Accumulates vertex activity weight.
  void add_vertex_weight(Vertex v, Weight weight);

  std::uint64_t num_vertices() const { return vwgt_.size(); }
  /// Number of distinct directed edges (parallel edges collapsed).
  std::uint64_t num_edges() const { return edge_weight_.size(); }
  /// Sum of all accumulated edge weights (= number of interactions).
  Weight total_edge_weight() const { return total_edge_weight_; }

  bool has_edge(Vertex u, Vertex v) const;
  /// Accumulated weight of u→v; 0 if absent.
  Weight edge_weight(Vertex u, Vertex v) const;
  Weight vertex_weight(Vertex v) const { return vwgt_[v]; }

  /// Visits every distinct directed edge as f(u, v, accumulated_weight).
  /// Order is unspecified. O(m).
  template <typename F>
  void for_each_edge(F&& f) const {
    for (Vertex u = 0; u < out_.size(); ++u)
      for (Vertex v : out_[u]) f(u, v, edge_weight_.at(key(u, v)));
  }

  /// Immutable directed snapshot (CSR). O(n + m).
  Graph build_directed() const;

  /// Immutable symmetrized snapshot: arc weights u→v and v→u merge into
  /// one undirected edge; self-loops dropped. This is the form consumed
  /// by partitioners. O(n + m).
  Graph build_undirected() const;

  void clear();

 private:
  static std::uint64_t key(Vertex u, Vertex v);

  std::vector<Weight> vwgt_;
  std::vector<std::vector<Vertex>> out_;          // distinct out-neighbors
  std::unordered_map<std::uint64_t, Weight> edge_weight_;
  Weight total_edge_weight_ = 0;
};

}  // namespace ethshard::graph
