// Incremental construction of the blockchain graph.
//
// The simulator feeds every call of every transaction into a GraphBuilder;
// parallel edges accumulate weight (§II-B: "The weight in each edge denotes
// the number of times the interaction happened") and vertex weights
// accumulate activity. Snapshots are immutable CSR Graphs.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "util/check.hpp"

namespace ethshard::graph {

/// What a single add_edge call created (beyond accumulating weight).
/// Lets callers that track distinct-edge counts skip their own hash
/// lookups: `new_undirected_edge` is true exactly when the unordered pair
/// {u, v} had never interacted before (always false for self-loops, which
/// the undirected view drops).
struct EdgeInsert {
  bool new_directed_edge = false;
  bool new_undirected_edge = false;
};

/// One pre-aggregated pair of directed edge weights in the builder's
/// canonical orientation: u <= v, `fwd` is the accumulated u→v weight
/// (and the full weight of a self-loop when u == v), `rev` is v→u.
/// This is exactly the builder's internal pair-map entry, so a batch of
/// deltas applies with one hash probe per *pair* instead of one per call
/// — the bulk entry point behind the simulator's two-stage window replay.
struct PairDelta {
  Vertex u = 0;
  Vertex v = 0;
  Weight fwd = 0;
  Weight rev = 0;
};

/// Mutable weighted directed multigraph with O(1) amortized edge
/// accumulation. Vertex ids must stay below 2^32 (the edge key packs two
/// ids into 64 bits); the Ethereum graph through 2017 has ~5e7 vertices,
/// far below the limit.
///
/// Both directions of a pair share one hash entry keyed by the canonical
/// (min, max) orientation, so accumulating an edge costs a single probe
/// and snapshots need no per-edge probes at all: the build methods walk
/// the pair map once (the canonical key encodes both endpoints) and rely
/// on Graph::from_csr's arc sort for deterministic output.
///
/// Per-vertex adjacency is opt-in: a builder constructed with
/// `track_und_neighbors = true` (the default) additionally keeps each
/// vertex's distinct undirected neighbors as a live list, which
/// `undirected_neighbors` exposes for O(deg) incremental metric
/// maintenance. Builders that only ever need whole-graph snapshots (the
/// simulator's per-window activity graph) pass false and skip the two
/// random-access list appends per new pair on the ingest hot path.
class GraphBuilder {
 public:
  explicit GraphBuilder(bool track_und_neighbors = true)
      : track_und_(track_und_neighbors) {}

  /// Adds a vertex with the given initial weight; returns its id.
  Vertex add_vertex(Weight weight = 1);

  /// Ensures vertices [0, count) exist, creating any missing ones with
  /// `default_weight`.
  void ensure_vertices(std::uint64_t count, Weight default_weight = 1);

  /// Accumulates weight onto the directed edge u→v (creating it at first
  /// use). Preconditions: both endpoints exist, weight > 0.
  EdgeInsert add_edge(Vertex u, Vertex v, Weight weight = 1);

  /// Accumulates vertex activity weight.
  void add_vertex_weight(Vertex v, Weight weight);

  /// Applies a batch of pre-aggregated pair deltas — equivalent to the
  /// add_edge calls the batch summarizes, in any order, but with a single
  /// hash probe per distinct pair. `on_new_undirected(u, v)` fires for
  /// each pair {u, v} (u < v) that had never interacted before, at the
  /// moment add_edge would have reported new_undirected_edge, so callers
  /// maintaining distinct/cut counts stay exact. Preconditions per delta:
  /// canonical orientation (u <= v), both endpoints exist, fwd + rev > 0,
  /// and rev == 0 for self-loops (a self-loop's whole weight is fwd).
  template <typename OnNewUndirected>
  void apply_pair_deltas(std::span<const PairDelta> deltas,
                         OnNewUndirected&& on_new_undirected) {
    for (const PairDelta& d : deltas) {
      ETHSHARD_CHECK(d.u <= d.v && d.v < vwgt_.size());
      ETHSHARD_CHECK(d.fwd + d.rev > 0);
      ETHSHARD_CHECK(d.u != d.v || d.rev == 0);
      PairWeights& pw = pair_weight_[key(d.u, d.v)];
      if (d.u != d.v && pw.fwd == 0 && pw.rev == 0) {
        if (track_und_) {
          und_[d.u].push_back(d.v);
          und_[d.v].push_back(d.u);
        }
        ++num_und_edges_;
        on_new_undirected(d.u, d.v);
      }
      if (d.fwd > 0 && pw.fwd == 0) ++num_dir_edges_;
      if (d.rev > 0 && pw.rev == 0) ++num_dir_edges_;
      pw.fwd += d.fwd;
      pw.rev += d.rev;
      total_edge_weight_ += d.fwd + d.rev;
    }
  }

  /// Batched form of the callback overload: indices (into `deltas`) of
  /// the pairs that were new undirected edges are collected into
  /// `new_undirected` (cleared first; pass nullptr when not needed), so
  /// the caller can classify the — typically few — new pairs in its own
  /// tight loop after the bulk apply instead of through a callback in the
  /// middle of it. Same preconditions as above.
  void apply_pair_deltas(std::span<const PairDelta> deltas,
                         std::vector<std::uint32_t>* new_undirected = nullptr) {
    if (new_undirected != nullptr) new_undirected->clear();
    for (std::size_t i = 0; i < deltas.size(); ++i) {
      const PairDelta& d = deltas[i];
      ETHSHARD_CHECK(d.u <= d.v && d.v < vwgt_.size());
      ETHSHARD_CHECK(d.fwd + d.rev > 0);
      ETHSHARD_CHECK(d.u != d.v || d.rev == 0);
      PairWeights& pw = pair_weight_[key(d.u, d.v)];
      if (d.u != d.v && pw.fwd == 0 && pw.rev == 0) {
        if (track_und_) {
          und_[d.u].push_back(d.v);
          und_[d.v].push_back(d.u);
        }
        ++num_und_edges_;
        if (new_undirected != nullptr)
          new_undirected->push_back(static_cast<std::uint32_t>(i));
      }
      if (d.fwd > 0 && pw.fwd == 0) ++num_dir_edges_;
      if (d.rev > 0 && pw.rev == 0) ++num_dir_edges_;
      pw.fwd += d.fwd;
      pw.rev += d.rev;
      total_edge_weight_ += d.fwd + d.rev;
    }
  }

  std::uint64_t num_vertices() const { return vwgt_.size(); }
  /// Number of distinct directed edges (parallel edges collapsed).
  std::uint64_t num_edges() const { return num_dir_edges_; }
  /// Number of distinct undirected non-loop edges — the |E| of the
  /// symmetrized view (the static edge-cut denominator).
  std::uint64_t num_undirected_edges() const { return num_und_edges_; }
  /// Sum of all accumulated edge weights (= number of interactions).
  Weight total_edge_weight() const { return total_edge_weight_; }

  bool has_edge(Vertex u, Vertex v) const;
  /// Accumulated weight of u→v; 0 if absent.
  Weight edge_weight(Vertex u, Vertex v) const;
  Weight vertex_weight(Vertex v) const { return vwgt_[v]; }

  /// Distinct non-loop neighbors of v in the symmetrized view, in
  /// insertion order. Valid until the next mutating call. Requires
  /// track_und_neighbors. (Weights live in the shared pair map; use
  /// edge_weight / the build methods.)
  std::span<const Vertex> undirected_neighbors(Vertex v) const;

  /// Visits every distinct directed edge as f(u, v, accumulated_weight).
  /// Order is unspecified. O(m).
  template <typename F>
  void for_each_edge(F&& f) const {
    for (const auto& [packed, pw] : pair_weight_) {
      const Vertex lo = packed >> 32;
      const Vertex hi = packed & 0xffffffffu;
      if (pw.fwd > 0) f(lo, hi, pw.fwd);
      if (pw.rev > 0) f(hi, lo, pw.rev);
    }
  }

  /// Immutable directed snapshot (CSR). O(n + m).
  Graph build_directed() const;

  /// Immutable symmetrized snapshot: arc weights u→v and v→u merge into
  /// one undirected edge; self-loops dropped. This is the form consumed
  /// by partitioners. O(n + m), no hash probes.
  Graph build_undirected() const;

  /// Symmetrized snapshot induced on `vertices` (old ids; duplicates are
  /// a precondition violation): arcs to vertices outside the set are
  /// dropped, ids are renumbered to [0, vertices.size()) in the given
  /// order, vertex weights are carried over. `old_to_new` is caller-owned
  /// scratch so repeated calls do not reallocate; it must contain only
  /// Graph::kInvalid entries on entry (any size — it grows on demand) and
  /// is restored to that state before returning.
  /// O(vertices.size() + distinct pairs in the builder).
  Graph build_undirected_induced(std::span<const Vertex> vertices,
                                 std::vector<Vertex>& old_to_new) const;

  /// Drops every edge and resets all vertex weights to `default_weight`,
  /// keeping the vertex count *and* per-vertex list capacity — the cheap
  /// way to start a fresh activity window without reallocating adjacency
  /// for every known vertex.
  void reset_edges(Weight default_vertex_weight = 0);

  void clear();

 private:
  /// Both directions of the pair (min, max): fwd = min→max (and the full
  /// weight of a self-loop), rev = max→min.
  struct PairWeights {
    Weight fwd = 0;
    Weight rev = 0;
  };

  static std::uint64_t key(Vertex u, Vertex v);
  const PairWeights* find_pair(Vertex u, Vertex v) const;

  bool track_und_;
  std::vector<Weight> vwgt_;
  std::vector<std::vector<Vertex>> und_;  // distinct undirected neighbors
  std::unordered_map<std::uint64_t, PairWeights> pair_weight_;
  Weight total_edge_weight_ = 0;
  std::uint64_t num_dir_edges_ = 0;
  std::uint64_t num_und_edges_ = 0;
};

}  // namespace ethshard::graph
