#include "graph/graph.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/check.hpp"

namespace ethshard::graph {

Graph Graph::from_adjacency(std::vector<std::vector<Arc>> adjacency,
                            std::vector<Weight> vertex_weights,
                            bool directed) {
  const std::uint64_t n = adjacency.size();
  ETHSHARD_CHECK(vertex_weights.size() == n);

  Graph g;
  g.directed_ = directed;
  g.vwgt_ = std::move(vertex_weights);
  g.xadj_.resize(n + 1, 0);

  std::uint64_t arcs = 0;
  for (std::uint64_t v = 0; v < n; ++v) {
    arcs += adjacency[v].size();
    g.xadj_[v + 1] = arcs;
  }
  g.adj_.reserve(arcs);
  for (std::uint64_t v = 0; v < n; ++v) {
    auto& list = adjacency[v];
    std::sort(list.begin(), list.end(),
              [](const Arc& a, const Arc& b) { return a.to < b.to; });
    for (const Arc& a : list) {
      ETHSHARD_CHECK_MSG(a.to < n, "arc target out of range");
      g.adj_.push_back(a);
      g.total_adjwgt_ += a.weight;
    }
  }
  for (Weight w : g.vwgt_) g.total_vwgt_ += w;
  return g;
}

Graph Graph::from_csr(std::vector<std::uint64_t> xadj, std::vector<Arc> adj,
                      std::vector<Weight> vertex_weights, bool directed) {
  ETHSHARD_CHECK(!xadj.empty());
  const std::uint64_t n = xadj.size() - 1;
  ETHSHARD_CHECK(vertex_weights.size() == n);
  ETHSHARD_CHECK(xadj.front() == 0 && xadj.back() == adj.size());

  Graph g;
  g.directed_ = directed;
  g.xadj_ = std::move(xadj);
  g.adj_ = std::move(adj);
  g.vwgt_ = std::move(vertex_weights);
  for (std::uint64_t v = 0; v < n; ++v) {
    ETHSHARD_CHECK(g.xadj_[v] <= g.xadj_[v + 1]);
    auto* begin = g.adj_.data() + g.xadj_[v];
    auto* end = g.adj_.data() + g.xadj_[v + 1];
    std::sort(begin, end,
              [](const Arc& a, const Arc& b) { return a.to < b.to; });
  }
  for (const Arc& a : g.adj_) {
    ETHSHARD_CHECK_MSG(a.to < n, "arc target out of range");
    g.total_adjwgt_ += a.weight;
  }
  for (Weight w : g.vwgt_) g.total_vwgt_ += w;
  return g;
}

Weight Graph::weighted_degree(Vertex v) const {
  Weight sum = 0;
  for (const Arc& a : neighbors(v)) sum += a.weight;
  return sum;
}

Graph Graph::to_undirected() const {
  const std::uint64_t n = num_vertices();
  // Accumulate combined weights in per-vertex hash maps keyed by the
  // smaller endpoint to merge u→v with v→u.
  std::vector<std::vector<Arc>> adjacency(n);
  {
    std::vector<std::unordered_map<Vertex, Weight>> acc(n);
    for (Vertex u = 0; u < n; ++u) {
      for (const Arc& a : neighbors(u)) {
        if (a.to == u) continue;  // drop self-loops
        const Vertex lo = std::min(u, a.to);
        const Vertex hi = std::max(u, a.to);
        acc[lo][hi] += a.weight;
      }
    }
    for (Vertex lo = 0; lo < n; ++lo) {
      for (const auto& [hi, w] : acc[lo]) {
        adjacency[lo].push_back(Arc{hi, w});
        adjacency[hi].push_back(Arc{lo, w});
      }
    }
  }
  return from_adjacency(std::move(adjacency), vwgt_, /*directed=*/false);
}

Graph Graph::induced_subgraph(std::span<const Vertex> vertices,
                              std::vector<Vertex>* old_to_new) const {
  const std::uint64_t n = num_vertices();
  std::vector<Vertex> map(n, kInvalid);
  for (std::uint64_t i = 0; i < vertices.size(); ++i) {
    const Vertex v = vertices[i];
    ETHSHARD_CHECK_MSG(v < n, "subgraph vertex out of range");
    ETHSHARD_CHECK_MSG(map[v] == kInvalid, "duplicate subgraph vertex");
    map[v] = i;
  }

  std::vector<std::vector<Arc>> adjacency(vertices.size());
  std::vector<Weight> weights(vertices.size());
  for (std::uint64_t i = 0; i < vertices.size(); ++i) {
    const Vertex old = vertices[i];
    weights[i] = vwgt_[old];
    for (const Arc& a : neighbors(old)) {
      const Vertex nv = map[a.to];
      if (nv != kInvalid) adjacency[i].push_back(Arc{nv, a.weight});
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return from_adjacency(std::move(adjacency), std::move(weights), directed_);
}

bool Graph::check_symmetric() const {
  if (directed_) return false;
  const std::uint64_t n = num_vertices();
  for (Vertex u = 0; u < n; ++u) {
    for (const Arc& a : neighbors(u)) {
      if (a.to == u) return false;  // self-loop
      // Arcs are sorted by target; binary-search the reverse arc.
      const auto nb = neighbors(a.to);
      auto it = std::lower_bound(
          nb.begin(), nb.end(), u,
          [](const Arc& arc, Vertex v) { return arc.to < v; });
      if (it == nb.end() || it->to != u || it->weight != a.weight)
        return false;
    }
  }
  return true;
}

}  // namespace ethshard::graph
