#include "graph/dot.hpp"

#include <ostream>
#include <sstream>

namespace ethshard::graph {

void write_dot(std::ostream& out, const Graph& g, const DotOptions& opts) {
  const bool directed = g.directed();
  out << (directed ? "digraph " : "graph ") << opts.name << " {\n";
  out << "  node [shape=ellipse];\n";

  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    out << "  v" << v << " [label=\""
        << (opts.label ? opts.label(v) : std::to_string(v)) << '"';
    if (opts.is_contract && opts.is_contract(v)) out << ", style=dashed";
    out << "];\n";
  }

  const char* arrow = directed ? " -> " : " -- ";
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (const Arc& a : g.neighbors(v)) {
      if (!directed && a.to < v) continue;  // emit undirected edges once
      out << "  v" << v << arrow << 'v' << a.to;
      if (!(opts.hide_unit_weights && a.weight == 1))
        out << " [label=\"" << a.weight << "\"]";
      out << ";\n";
    }
  }
  out << "}\n";
}

std::string to_dot(const Graph& g, const DotOptions& opts) {
  std::ostringstream os;
  write_dot(os, g, opts);
  return os.str();
}

}  // namespace ethshard::graph
