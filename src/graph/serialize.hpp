// Binary graph snapshots.
//
// A paper-scale cumulative graph takes minutes to rebuild from the trace;
// this module saves/loads the CSR arrays directly (little-endian, with a
// magic header and structural validation on load), so repeated analyses
// start from a snapshot. Format:
//
//   "ESGR" u32_version u8_directed u64_n u64_arcs
//   xadj[n+1] · arcs{to,weight}[arcs] · vwgt[n]     (all u64)
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace ethshard::graph {

/// Writes the graph's CSR representation. The stream must be binary.
void save_graph(std::ostream& out, const Graph& g);

/// Reads a graph written by save_graph. Throws util::CheckFailure on a
/// bad magic/version, truncation, or structurally invalid arrays.
Graph load_graph(std::istream& in);

/// File conveniences; throw util::CheckFailure when the file cannot open.
void save_graph_file(const std::string& path, const Graph& g);
Graph load_graph_file(const std::string& path);

}  // namespace ethshard::graph
