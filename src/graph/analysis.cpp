#include "graph/analysis.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ethshard::graph {

std::uint64_t Components::largest() const {
  std::uint64_t best = 0;
  for (std::uint64_t s : sizes) best = std::max(best, s);
  return best;
}

Components connected_components(const Graph& g) {
  const std::uint64_t n = g.num_vertices();
  Components result;
  result.component_of.assign(n, Graph::kInvalid);

  // For directed graphs, arcs only go one way in the CSR; weak
  // connectivity needs the reverse arcs too.
  std::vector<std::vector<Vertex>> reverse;
  if (g.directed()) {
    reverse.resize(n);
    for (Vertex v = 0; v < n; ++v)
      for (const Arc& a : g.neighbors(v)) reverse[a.to].push_back(v);
  }

  std::vector<Vertex> stack;
  for (Vertex start = 0; start < n; ++start) {
    if (result.component_of[start] != Graph::kInvalid) continue;
    const Vertex comp = result.sizes.size();
    result.sizes.push_back(0);
    stack.push_back(start);
    result.component_of[start] = comp;
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      ++result.sizes[comp];
      auto visit = [&](Vertex u) {
        if (result.component_of[u] == Graph::kInvalid) {
          result.component_of[u] = comp;
          stack.push_back(u);
        }
      };
      for (const Arc& a : g.neighbors(v)) visit(a.to);
      if (g.directed())
        for (Vertex u : reverse[v]) visit(u);
    }
  }
  return result;
}

CoreDecomposition kcore_decomposition(const Graph& g) {
  ETHSHARD_CHECK(!g.directed());
  const std::uint64_t n = g.num_vertices();
  CoreDecomposition result;
  result.core_of.assign(n, 0);
  if (n == 0) return result;

  // Peeling with bucket sort by current degree (Batagelj–Zaveršnik).
  std::uint64_t max_degree = 0;
  std::vector<std::uint64_t> degree(n);
  for (Vertex v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }

  std::vector<std::uint64_t> bucket_start(max_degree + 2, 0);
  for (Vertex v = 0; v < n; ++v) ++bucket_start[degree[v] + 1];
  for (std::size_t d = 1; d < bucket_start.size(); ++d)
    bucket_start[d] += bucket_start[d - 1];

  std::vector<Vertex> order(n);        // vertices sorted by degree
  std::vector<std::uint64_t> pos(n);   // position of v in `order`
  {
    std::vector<std::uint64_t> fill(bucket_start.begin(),
                                    bucket_start.end() - 1);
    for (Vertex v = 0; v < n; ++v) {
      pos[v] = fill[degree[v]]++;
      order[pos[v]] = v;
    }
  }

  for (std::uint64_t i = 0; i < n; ++i) {
    const Vertex v = order[i];
    result.core_of[v] = degree[v];
    for (const Arc& a : g.neighbors(v)) {
      const Vertex u = a.to;
      if (degree[u] <= degree[v]) continue;
      // Swap u with the first vertex of its degree bucket, then shrink.
      const std::uint64_t du = degree[u];
      const std::uint64_t head = bucket_start[du];
      const Vertex w = order[head];
      std::swap(order[pos[u]], order[head]);
      std::swap(pos[u], pos[w]);
      ++bucket_start[du];
      --degree[u];
    }
  }

  for (Vertex v = 0; v < n; ++v)
    result.max_core = std::max(result.max_core, result.core_of[v]);
  for (Vertex v = 0; v < n; ++v)
    if (result.core_of[v] == result.max_core) ++result.nucleus_size;
  return result;
}

ClusteringStats clustering(const Graph& g) {
  const std::uint64_t n = g.num_vertices();
  ClusteringStats stats;
  if (n == 0) return stats;
  ETHSHARD_CHECK(!g.directed());

  // Orient each edge from lower-(degree, id) to higher; each triangle is
  // counted exactly once at its lowest-ranked vertex.
  auto rank_less = [&](Vertex a, Vertex b) {
    const std::uint64_t da = g.degree(a);
    const std::uint64_t db = g.degree(b);
    return da < db || (da == db && a < b);
  };

  std::vector<std::vector<Vertex>> forward(n);
  for (Vertex v = 0; v < n; ++v)
    for (const Arc& a : g.neighbors(v))
      if (rank_less(v, a.to)) forward[v].push_back(a.to);

  std::vector<std::uint64_t> mark(n, 0);
  std::uint64_t stamp = 0;
  std::uint64_t wedges = 0;
  for (Vertex v = 0; v < n; ++v) {
    const std::uint64_t d = g.degree(v);
    wedges += d * (d - 1) / 2;
    ++stamp;
    for (Vertex u : forward[v]) mark[u] = stamp;
    for (Vertex u : forward[v])
      for (Vertex w : forward[u])
        if (mark[w] == stamp) ++stats.triangles;
  }
  if (wedges > 0)
    stats.global_coefficient =
        3.0 * static_cast<double>(stats.triangles) /
        static_cast<double>(wedges);
  return stats;
}

DegreeStats degree_statistics(const Graph& g) {
  DegreeStats stats;
  const std::uint64_t n = g.num_vertices();
  if (n == 0) return stats;

  std::vector<std::uint64_t> degrees;
  degrees.reserve(n);
  double total = 0;
  stats.min_degree = ~std::uint64_t{0};
  for (Vertex v = 0; v < n; ++v) {
    const std::uint64_t d = g.degree(v);
    degrees.push_back(d);
    total += static_cast<double>(d);
    if (d == 0) ++stats.isolated;
    stats.min_degree = std::min(stats.min_degree, d);
    if (d > stats.max_degree) {
      stats.max_degree = d;
      stats.max_degree_vertex = v;
    }
  }
  stats.mean_degree = total / static_cast<double>(n);
  std::sort(degrees.begin(), degrees.end());
  stats.median_degree =
      n % 2 == 1 ? static_cast<double>(degrees[n / 2])
                 : (static_cast<double>(degrees[n / 2 - 1]) +
                    static_cast<double>(degrees[n / 2])) /
                       2.0;
  return stats;
}

}  // namespace ethshard::graph
