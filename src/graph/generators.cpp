#include "graph/generators.hpp"

#include <algorithm>
#include <vector>

#include "graph/builder.hpp"
#include "util/check.hpp"

namespace ethshard::graph {

namespace {
/// Builds an undirected graph from an edge list with unit vertex weights.
Graph from_edges(std::uint64_t n,
                 const std::vector<std::pair<Vertex, Vertex>>& edges) {
  GraphBuilder b;
  b.ensure_vertices(n, 1);
  for (auto [u, v] : edges) b.add_edge(u, v, 1);
  return b.build_undirected();
}
}  // namespace

Graph make_path(std::uint64_t n) {
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (std::uint64_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return from_edges(n, edges);
}

Graph make_cycle(std::uint64_t n) {
  ETHSHARD_CHECK(n >= 3);
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (std::uint64_t i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return from_edges(n, edges);
}

Graph make_complete(std::uint64_t n) {
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (std::uint64_t i = 0; i < n; ++i)
    for (std::uint64_t j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  return from_edges(n, edges);
}

Graph make_grid(std::uint64_t rows, std::uint64_t cols) {
  std::vector<std::pair<Vertex, Vertex>> edges;
  auto id = [cols](std::uint64_t r, std::uint64_t c) { return r * cols + c; };
  for (std::uint64_t r = 0; r < rows; ++r) {
    for (std::uint64_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return from_edges(rows * cols, edges);
}

Graph make_erdos_renyi(std::uint64_t n, double p, util::Rng& rng) {
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (std::uint64_t i = 0; i < n; ++i)
    for (std::uint64_t j = i + 1; j < n; ++j)
      if (rng.bernoulli(p)) edges.emplace_back(i, j);
  return from_edges(n, edges);
}

Graph make_barabasi_albert(std::uint64_t n, std::uint64_t m, util::Rng& rng) {
  ETHSHARD_CHECK(m >= 1 && n > m);
  std::vector<std::pair<Vertex, Vertex>> edges;
  // Endpoint pool: each vertex appears once per incident edge, so sampling
  // uniformly from the pool is degree-proportional sampling.
  std::vector<Vertex> pool;

  // Seed: clique over the first m+1 vertices.
  for (std::uint64_t i = 0; i <= m; ++i) {
    for (std::uint64_t j = i + 1; j <= m; ++j) {
      edges.emplace_back(i, j);
      pool.push_back(i);
      pool.push_back(j);
    }
  }
  for (std::uint64_t v = m + 1; v < n; ++v) {
    std::vector<Vertex> targets;
    while (targets.size() < m) {
      const Vertex t = pool[rng.uniform(pool.size())];
      if (std::find(targets.begin(), targets.end(), t) == targets.end())
        targets.push_back(t);
    }
    for (Vertex t : targets) {
      edges.emplace_back(v, t);
      pool.push_back(v);
      pool.push_back(t);
    }
  }
  return from_edges(n, edges);
}

Graph make_planted_partition(std::uint64_t k, std::uint64_t group_size,
                             double p_in, double p_out, util::Rng& rng) {
  const std::uint64_t n = k * group_size;
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = i + 1; j < n; ++j) {
      const bool same = (i / group_size) == (j / group_size);
      if (rng.bernoulli(same ? p_in : p_out)) edges.emplace_back(i, j);
    }
  }
  return from_edges(n, edges);
}

Graph make_two_cliques(std::uint64_t n, std::uint64_t bridge_edges) {
  ETHSHARD_CHECK(n >= 4 && n % 2 == 0 && bridge_edges >= 1);
  const std::uint64_t half = n / 2;
  ETHSHARD_CHECK_MSG(bridge_edges <= half, "at most n/2 distinct bridges");
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (std::uint64_t i = 0; i < half; ++i)
    for (std::uint64_t j = i + 1; j < half; ++j) {
      edges.emplace_back(i, j);
      edges.emplace_back(half + i, half + j);
    }
  for (std::uint64_t b = 0; b < bridge_edges; ++b)
    edges.emplace_back(b % half, half + (b % half));
  return from_edges(n, edges);
}

}  // namespace ethshard::graph
