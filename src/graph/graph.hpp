// Immutable weighted graph in compressed-sparse-row form.
//
// This is the representation consumed by all partitioners and metric
// calculators. The blockchain graph of §II-B is directed (caller →
// callee); partitioning operates on its symmetrized (undirected) view,
// exactly as METIS consumes an undirected graph. Parallel edges are
// collapsed with accumulated weights by the builder, so edge weight =
// interaction frequency, and vertex weight = activity, matching the
// paper's "dynamic" metrics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ethshard::graph {

/// Vertex identifier; dense in [0, n).
using Vertex = std::uint64_t;
/// Weight type for vertices and edges (interaction counts).
using Weight = std::uint64_t;

/// One outgoing arc in an adjacency list.
struct Arc {
  Vertex to = 0;
  Weight weight = 1;

  friend bool operator==(const Arc&, const Arc&) = default;
};

/// Immutable CSR graph. Construct through GraphBuilder or the static
/// factory; all accessors are O(1) or return contiguous spans.
class Graph {
 public:
  Graph() = default;

  /// Builds from per-vertex adjacency. `directed` records whether arcs are
  /// one-directional; undirected graphs must already store each edge in
  /// both endpoints' lists (the builder takes care of this).
  static Graph from_adjacency(std::vector<std::vector<Arc>> adjacency,
                              std::vector<Weight> vertex_weights,
                              bool directed);

  /// Zero-copy factory from prebuilt CSR arrays: xadj has n+1 offsets into
  /// adj. Arc lists are sorted in place per vertex. This is the fast path
  /// used by GraphBuilder for large graphs.
  static Graph from_csr(std::vector<std::uint64_t> xadj, std::vector<Arc> adj,
                        std::vector<Weight> vertex_weights, bool directed);

  /// Number of vertices.
  std::uint64_t num_vertices() const {
    return xadj_.empty() ? 0 : xadj_.size() - 1;
  }

  /// Number of logical edges: arcs for a directed graph, arc-pairs for an
  /// undirected one (each undirected edge is stored twice).
  std::uint64_t num_edges() const {
    const std::uint64_t arcs = adj_.size();
    return directed_ ? arcs : arcs / 2;
  }

  bool directed() const { return directed_; }
  bool empty() const { return num_vertices() == 0; }

  /// Outgoing arcs of v (all incident arcs when undirected).
  std::span<const Arc> neighbors(Vertex v) const {
    return {adj_.data() + xadj_[v], adj_.data() + xadj_[v + 1]};
  }

  std::uint64_t degree(Vertex v) const { return xadj_[v + 1] - xadj_[v]; }

  Weight vertex_weight(Vertex v) const { return vwgt_[v]; }
  const std::vector<Weight>& vertex_weights() const { return vwgt_; }

  /// Sum of all vertex weights.
  Weight total_vertex_weight() const { return total_vwgt_; }

  /// Sum of logical edge weights (each undirected edge counted once).
  Weight total_edge_weight() const {
    return directed_ ? total_adjwgt_ : total_adjwgt_ / 2;
  }

  /// Sum of the weights of arcs incident to v.
  Weight weighted_degree(Vertex v) const;

  /// Symmetrized copy: for every arc u→v a single undirected edge {u,v}
  /// carries the summed weight of u→v and v→u. Self-loops are dropped
  /// (they can never be cut). Vertex weights are preserved.
  Graph to_undirected() const;

  /// Induced subgraph on `vertices` (old vertex ids, need not be sorted;
  /// duplicates are a precondition violation). `old_to_new`, if non-null,
  /// receives a mapping table sized num_vertices() with kInvalid for
  /// excluded vertices. Edge and vertex weights are preserved.
  static constexpr Vertex kInvalid = ~Vertex{0};
  Graph induced_subgraph(std::span<const Vertex> vertices,
                         std::vector<Vertex>* old_to_new = nullptr) const;

  /// True iff an undirected graph's arc lists are consistent (every arc
  /// has a reverse with equal weight) and no self-loops exist. Used by
  /// tests and debug assertions; O(m log m).
  bool check_symmetric() const;

  /// Structural equality: same CSR arrays, weights and directedness.
  /// Arc lists are sorted by the factories, so two graphs with the same
  /// edge set compare equal regardless of insertion order.
  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  std::vector<std::uint64_t> xadj_;  // size n+1
  std::vector<Arc> adj_;             // arcs, grouped by source
  std::vector<Weight> vwgt_;         // size n
  Weight total_vwgt_ = 0;
  Weight total_adjwgt_ = 0;
  bool directed_ = true;
};

}  // namespace ethshard::graph
