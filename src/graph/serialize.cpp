#include "graph/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "util/check.hpp"

namespace ethshard::graph {

namespace {

constexpr char kMagic[4] = {'E', 'S', 'G', 'R'};
constexpr std::uint32_t kVersion = 1;

void put_u32(std::ostream& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, sizeof(buf));
}

void put_u64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, sizeof(buf));
}

std::uint32_t get_u32(std::istream& in) {
  unsigned char buf[4];
  in.read(reinterpret_cast<char*>(buf), sizeof(buf));
  ETHSHARD_CHECK_MSG(in.good(), "graph snapshot truncated");
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | buf[i];
  return v;
}

std::uint64_t get_u64(std::istream& in) {
  unsigned char buf[8];
  in.read(reinterpret_cast<char*>(buf), sizeof(buf));
  ETHSHARD_CHECK_MSG(in.good(), "graph snapshot truncated");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | buf[i];
  return v;
}

}  // namespace

void save_graph(std::ostream& out, const Graph& g) {
  out.write(kMagic, sizeof(kMagic));
  put_u32(out, kVersion);
  out.put(g.directed() ? 1 : 0);
  const std::uint64_t n = g.num_vertices();
  std::uint64_t arcs = 0;
  for (Vertex v = 0; v < n; ++v) arcs += g.degree(v);
  put_u64(out, n);
  put_u64(out, arcs);

  std::uint64_t offset = 0;
  put_u64(out, 0);
  for (Vertex v = 0; v < n; ++v) {
    offset += g.degree(v);
    put_u64(out, offset);
  }
  for (Vertex v = 0; v < n; ++v) {
    for (const Arc& a : g.neighbors(v)) {
      put_u64(out, a.to);
      put_u64(out, a.weight);
    }
  }
  for (Vertex v = 0; v < n; ++v) put_u64(out, g.vertex_weight(v));
  ETHSHARD_CHECK_MSG(out.good(), "graph snapshot write failed");
}

Graph load_graph(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  ETHSHARD_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 4) == 0,
                     "not a graph snapshot (bad magic)");
  const std::uint32_t version = get_u32(in);
  ETHSHARD_CHECK_MSG(version == kVersion,
                     "unsupported snapshot version " << version);
  const int directed_byte = in.get();
  ETHSHARD_CHECK_MSG(directed_byte == 0 || directed_byte == 1,
                     "corrupt snapshot (directed flag)");
  const std::uint64_t n = get_u64(in);
  const std::uint64_t arcs = get_u64(in);

  std::vector<std::uint64_t> xadj(n + 1);
  for (auto& x : xadj) x = get_u64(in);
  ETHSHARD_CHECK_MSG(xadj.front() == 0 && xadj.back() == arcs,
                     "corrupt snapshot (offsets)");

  std::vector<Arc> adj(arcs);
  for (Arc& a : adj) {
    a.to = get_u64(in);
    a.weight = get_u64(in);
  }
  std::vector<Weight> vwgt(n);
  for (Weight& w : vwgt) w = get_u64(in);

  return Graph::from_csr(std::move(xadj), std::move(adj), std::move(vwgt),
                         directed_byte == 1);
}

void save_graph_file(const std::string& path, const Graph& g) {
  std::ofstream out(path, std::ios::binary);
  ETHSHARD_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  save_graph(out, g);
}

Graph load_graph_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ETHSHARD_CHECK_MSG(in.good(), "cannot open " << path);
  return load_graph(in);
}

}  // namespace ethshard::graph
