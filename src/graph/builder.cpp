#include "graph/builder.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ethshard::graph {

namespace {
constexpr std::uint64_t kIdLimit = std::uint64_t{1} << 32;
constexpr std::uint64_t kLoMask = 0xffffffffu;
}

std::uint64_t GraphBuilder::key(Vertex u, Vertex v) {
  return (u << 32) | v;
}

const GraphBuilder::PairWeights* GraphBuilder::find_pair(Vertex u,
                                                         Vertex v) const {
  const auto it = pair_weight_.find(key(std::min(u, v), std::max(u, v)));
  return it == pair_weight_.end() ? nullptr : &it->second;
}

Vertex GraphBuilder::add_vertex(Weight weight) {
  const Vertex id = vwgt_.size();
  ETHSHARD_CHECK_MSG(id < kIdLimit, "vertex id space exhausted");
  vwgt_.push_back(weight);
  if (track_und_) und_.emplace_back();
  return id;
}

void GraphBuilder::ensure_vertices(std::uint64_t count, Weight default_weight) {
  while (vwgt_.size() < count) add_vertex(default_weight);
}

EdgeInsert GraphBuilder::add_edge(Vertex u, Vertex v, Weight weight) {
  ETHSHARD_CHECK(u < vwgt_.size() && v < vwgt_.size());
  ETHSHARD_CHECK(weight > 0);
  const Vertex lo = std::min(u, v);
  const Vertex hi = std::max(u, v);
  PairWeights& pw = pair_weight_[key(lo, hi)];  // the single hash probe

  EdgeInsert ins;
  if (u != v && pw.fwd == 0 && pw.rev == 0) {
    if (track_und_) {
      und_[u].push_back(v);
      und_[v].push_back(u);
    }
    ++num_und_edges_;
    ins.new_undirected_edge = true;
  }
  Weight& dir = (u == lo) ? pw.fwd : pw.rev;
  if (dir == 0) {
    ++num_dir_edges_;
    ins.new_directed_edge = true;
  }
  dir += weight;
  total_edge_weight_ += weight;
  return ins;
}

void GraphBuilder::add_vertex_weight(Vertex v, Weight weight) {
  ETHSHARD_CHECK(v < vwgt_.size());
  vwgt_[v] += weight;
}

bool GraphBuilder::has_edge(Vertex u, Vertex v) const {
  return edge_weight(u, v) > 0;
}

Weight GraphBuilder::edge_weight(Vertex u, Vertex v) const {
  const PairWeights* pw = find_pair(u, v);
  if (pw == nullptr) return 0;
  return (u <= v) ? pw->fwd : pw->rev;
}

std::span<const Vertex> GraphBuilder::undirected_neighbors(Vertex v) const {
  ETHSHARD_CHECK_MSG(track_und_,
                     "builder constructed without neighbor tracking");
  return {und_[v].data(), und_[v].size()};
}

Graph GraphBuilder::build_directed() const {
  const std::uint64_t n = vwgt_.size();
  std::vector<std::uint64_t> deg(n, 0);
  for (const auto& [packed, pw] : pair_weight_) {
    if (pw.fwd > 0) ++deg[packed >> 32];
    if (pw.rev > 0) ++deg[packed & kLoMask];
  }

  std::vector<std::uint64_t> xadj(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) xadj[v + 1] = xadj[v] + deg[v];

  std::vector<Arc> adj(xadj[n]);
  std::vector<std::uint64_t> fill(xadj.begin(), xadj.end() - 1);
  for (const auto& [packed, pw] : pair_weight_) {
    const Vertex lo = packed >> 32;
    const Vertex hi = packed & kLoMask;
    if (pw.fwd > 0) adj[fill[lo]++] = Arc{hi, pw.fwd};
    if (pw.rev > 0) adj[fill[hi]++] = Arc{lo, pw.rev};
  }
  // from_csr sorts each arc list, so the snapshot does not depend on the
  // pair map's iteration order.
  return Graph::from_csr(std::move(xadj), std::move(adj), vwgt_,
                         /*directed=*/true);
}

Graph GraphBuilder::build_undirected() const {
  const std::uint64_t n = vwgt_.size();
  std::vector<std::uint64_t> deg(n, 0);
  for (const auto& [packed, pw] : pair_weight_) {
    const Vertex lo = packed >> 32;
    const Vertex hi = packed & kLoMask;
    if (lo == hi) continue;  // self-loops dropped from the symmetrized view
    ++deg[lo];
    ++deg[hi];
  }

  std::vector<std::uint64_t> xadj(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) xadj[v + 1] = xadj[v] + deg[v];

  std::vector<Arc> adj(xadj[n]);
  std::vector<std::uint64_t> fill(xadj.begin(), xadj.end() - 1);
  for (const auto& [packed, pw] : pair_weight_) {
    const Vertex lo = packed >> 32;
    const Vertex hi = packed & kLoMask;
    if (lo == hi) continue;
    const Weight w = pw.fwd + pw.rev;
    adj[fill[lo]++] = Arc{hi, w};
    adj[fill[hi]++] = Arc{lo, w};
  }
  return Graph::from_csr(std::move(xadj), std::move(adj), vwgt_,
                         /*directed=*/false);
}

Graph GraphBuilder::build_undirected_induced(
    std::span<const Vertex> vertices, std::vector<Vertex>& old_to_new) const {
  if (old_to_new.size() < vwgt_.size())
    old_to_new.resize(vwgt_.size(), Graph::kInvalid);
  for (std::uint64_t i = 0; i < vertices.size(); ++i) {
    const Vertex v = vertices[i];
    ETHSHARD_CHECK(v < vwgt_.size());
    ETHSHARD_CHECK_MSG(old_to_new[v] == Graph::kInvalid,
                       "duplicate vertex or dirty scratch");
    old_to_new[v] = i;
  }

  const std::uint64_t sub_n = vertices.size();
  std::vector<std::uint64_t> deg(sub_n, 0);
  for (const auto& [packed, pw] : pair_weight_) {
    const Vertex lo = packed >> 32;
    const Vertex hi = packed & kLoMask;
    if (lo == hi) continue;
    const Vertex nl = old_to_new[lo];
    const Vertex nh = old_to_new[hi];
    if (nl == Graph::kInvalid || nh == Graph::kInvalid) continue;
    ++deg[nl];
    ++deg[nh];
  }

  std::vector<std::uint64_t> xadj(sub_n + 1, 0);
  for (std::uint64_t i = 0; i < sub_n; ++i) xadj[i + 1] = xadj[i] + deg[i];

  std::vector<Arc> adj(xadj[sub_n]);
  std::vector<Weight> vw(sub_n);
  for (std::uint64_t i = 0; i < sub_n; ++i) vw[i] = vwgt_[vertices[i]];
  std::vector<std::uint64_t> fill(xadj.begin(), xadj.end() - 1);
  for (const auto& [packed, pw] : pair_weight_) {
    const Vertex lo = packed >> 32;
    const Vertex hi = packed & kLoMask;
    if (lo == hi) continue;
    const Vertex nl = old_to_new[lo];
    const Vertex nh = old_to_new[hi];
    if (nl == Graph::kInvalid || nh == Graph::kInvalid) continue;
    const Weight w = pw.fwd + pw.rev;
    adj[fill[nl]++] = Arc{nh, w};
    adj[fill[nh]++] = Arc{nl, w};
  }

  for (Vertex v : vertices) old_to_new[v] = Graph::kInvalid;
  return Graph::from_csr(std::move(xadj), std::move(adj), std::move(vw),
                         /*directed=*/false);
}

void GraphBuilder::reset_edges(Weight default_vertex_weight) {
  std::fill(vwgt_.begin(), vwgt_.end(), default_vertex_weight);
  for (auto& list : und_) list.clear();
  pair_weight_.clear();
  total_edge_weight_ = 0;
  num_dir_edges_ = 0;
  num_und_edges_ = 0;
}

void GraphBuilder::clear() {
  vwgt_.clear();
  und_.clear();
  pair_weight_.clear();
  total_edge_weight_ = 0;
  num_dir_edges_ = 0;
  num_und_edges_ = 0;
}

}  // namespace ethshard::graph
