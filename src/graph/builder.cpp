#include "graph/builder.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ethshard::graph {

namespace {
constexpr std::uint64_t kIdLimit = std::uint64_t{1} << 32;
}

std::uint64_t GraphBuilder::key(Vertex u, Vertex v) {
  return (u << 32) | v;
}

Vertex GraphBuilder::add_vertex(Weight weight) {
  const Vertex id = vwgt_.size();
  ETHSHARD_CHECK_MSG(id < kIdLimit, "vertex id space exhausted");
  vwgt_.push_back(weight);
  out_.emplace_back();
  return id;
}

void GraphBuilder::ensure_vertices(std::uint64_t count, Weight default_weight) {
  while (vwgt_.size() < count) add_vertex(default_weight);
}

void GraphBuilder::add_edge(Vertex u, Vertex v, Weight weight) {
  ETHSHARD_CHECK(u < vwgt_.size() && v < vwgt_.size());
  auto [it, inserted] = edge_weight_.try_emplace(key(u, v), weight);
  if (inserted) {
    out_[u].push_back(v);
  } else {
    it->second += weight;
  }
  total_edge_weight_ += weight;
}

void GraphBuilder::add_vertex_weight(Vertex v, Weight weight) {
  ETHSHARD_CHECK(v < vwgt_.size());
  vwgt_[v] += weight;
}

bool GraphBuilder::has_edge(Vertex u, Vertex v) const {
  return edge_weight_.contains(key(u, v));
}

Weight GraphBuilder::edge_weight(Vertex u, Vertex v) const {
  auto it = edge_weight_.find(key(u, v));
  return it == edge_weight_.end() ? 0 : it->second;
}

Graph GraphBuilder::build_directed() const {
  const std::uint64_t n = vwgt_.size();
  std::vector<std::uint64_t> xadj(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) xadj[v + 1] = xadj[v] + out_[v].size();

  std::vector<Arc> adj(xadj[n]);
  for (Vertex v = 0; v < n; ++v) {
    std::uint64_t pos = xadj[v];
    for (Vertex w : out_[v])
      adj[pos++] = Arc{w, edge_weight_.at(key(v, w))};
  }
  return Graph::from_csr(std::move(xadj), std::move(adj), vwgt_,
                         /*directed=*/true);
}

Graph GraphBuilder::build_undirected() const {
  const std::uint64_t n = vwgt_.size();
  // First pass: undirected degree of every vertex (self-loops dropped;
  // an edge present in both directions contributes once per endpoint).
  std::vector<std::uint64_t> deg(n, 0);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v : out_[u]) {
      if (v == u) continue;
      // Count {u,v} only from the canonical direction to avoid doubles
      // when both u→v and v→u exist.
      if (u < v || !has_edge(v, u)) {
        ++deg[u];
        ++deg[v];
      }
    }
  }
  std::vector<std::uint64_t> xadj(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) xadj[v + 1] = xadj[v] + deg[v];

  std::vector<Arc> adj(xadj[n]);
  std::vector<std::uint64_t> fill = xadj;  // next write position per vertex
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v : out_[u]) {
      if (v == u) continue;
      if (u < v || !has_edge(v, u)) {
        const Weight w = edge_weight_.at(key(u, v)) + edge_weight(v, u);
        adj[fill[u]++] = Arc{v, w};
        adj[fill[v]++] = Arc{u, w};
      }
    }
  }
  return Graph::from_csr(std::move(xadj), std::move(adj), vwgt_,
                         /*directed=*/false);
}

void GraphBuilder::clear() {
  vwgt_.clear();
  out_.clear();
  edge_weight_.clear();
  total_edge_weight_ = 0;
}

}  // namespace ethshard::graph
