#include "util/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "util/check.hpp"

namespace ethshard::util {

namespace {

std::atomic<const ParallelTelemetryHooks*> g_telemetry{nullptr};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

void set_parallel_telemetry(const ParallelTelemetryHooks* hooks) {
  g_telemetry.store(hooks, std::memory_order_release);
}

const ParallelTelemetryHooks* parallel_telemetry() {
  return g_telemetry.load(std::memory_order_acquire);
}

std::size_t default_thread_count() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (count == 0) return;
  if (threads == 0) threads = default_thread_count();
  threads = std::min(threads, count);

  // Telemetry never influences scheduling — workers pull from the same
  // atomic cursor whether or not a hook table is installed, so recording
  // cannot perturb deterministic (chunk-decomposed) callers.
  const ParallelTelemetryHooks* tel = parallel_telemetry();

  if (threads == 1) {
    if (tel != nullptr) {
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < count; ++i) fn(i);
      tel->add_count("pool/dispatches", 1);
      tel->add_count("pool/tasks", count);
      tel->record_hist("pool/task_wait_ms", 0.0);
      tel->record_hist("pool/task_run_ms", ms_since(start));
      return;
    }
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  const auto dispatch_start = std::chrono::steady_clock::now();
  std::atomic<std::size_t> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<bool> abort{false};

  auto worker = [&](std::size_t worker_index) {
    // Wait = spawn latency: dispatch entry to this worker's first pull.
    // Run = the worker's whole busy stretch. One histogram sample each
    // per worker keeps the per-task loop free of clock queries.
    const auto worker_start = std::chrono::steady_clock::now();
    if (tel != nullptr && tel->on_worker_start != nullptr)
      tel->on_worker_start(worker_index);
    if (tel != nullptr)
      tel->record_hist(
          "pool/task_wait_ms",
          std::chrono::duration<double, std::milli>(worker_start -
                                                    dispatch_start)
              .count());
    std::size_t executed = 0;
    while (!abort.load(std::memory_order_relaxed)) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        fn(i);
        ++executed;
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        abort.store(true, std::memory_order_relaxed);
        break;
      }
    }
    if (tel != nullptr) {
      tel->record_hist("pool/task_run_ms", ms_since(worker_start));
      tel->add_count("pool/tasks", executed);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (std::thread& t : pool) t.join();
  if (tel != nullptr) {
    tel->add_count("pool/dispatches", 1);
    tel->add_count("pool/workers", threads);
  }
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t chunk_count(std::size_t count, std::size_t grain) {
  ETHSHARD_CHECK(grain > 0);
  return (count + grain - 1) / grain;
}

void parallel_for_chunked(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    std::size_t threads) {
  const std::size_t chunks = chunk_count(count, grain);
  parallel_for(
      chunks,
      [&](std::size_t c) {
        const std::size_t begin = c * grain;
        const std::size_t end = std::min(count, begin + grain);
        fn(c, begin, end);
      },
      threads);
}

std::uint64_t exclusive_prefix_sum(std::span<std::uint64_t> values,
                                   std::size_t threads) {
  constexpr std::size_t kGrain = 1 << 14;
  const std::size_t n = values.size();
  if (n <= kGrain || threads == 1) {
    std::uint64_t total = 0;
    for (std::uint64_t& v : values) {
      const std::uint64_t x = v;
      v = total;
      total += x;
    }
    return total;
  }

  const std::size_t chunks = chunk_count(n, kGrain);
  std::vector<std::uint64_t> chunk_sums(chunks, 0);
  parallel_for_chunked(
      n, kGrain,
      [&](std::size_t c, std::size_t begin, std::size_t end) {
        std::uint64_t sum = 0;
        for (std::size_t i = begin; i < end; ++i) sum += values[i];
        chunk_sums[c] = sum;
      },
      threads);
  const std::uint64_t total = exclusive_prefix_sum(chunk_sums, 1);
  parallel_for_chunked(
      n, kGrain,
      [&](std::size_t c, std::size_t begin, std::size_t end) {
        std::uint64_t running = chunk_sums[c];
        for (std::size_t i = begin; i < end; ++i) {
          const std::uint64_t x = values[i];
          values[i] = running;
          running += x;
        }
      },
      threads);
  return total;
}

std::size_t cap_nested_threads(std::size_t requested, std::size_t outer) {
  const std::size_t budget = default_thread_count();
  if (outer == 0) outer = budget;
  outer = std::max<std::size_t>(1, std::min(outer, budget));
  const std::size_t per_caller = std::max<std::size_t>(1, budget / outer);
  if (requested == 0) return per_caller;
  return std::min(requested, per_caller);
}

}  // namespace ethshard::util
