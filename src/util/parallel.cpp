#include "util/parallel.hpp"

#include <algorithm>
#include <mutex>

namespace ethshard::util {

std::size_t default_thread_count() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (count == 0) return;
  if (threads == 0) threads = default_thread_count();
  threads = std::min(threads, count);

  if (threads == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<bool> abort{false};

  auto worker = [&] {
    while (!abort.load(std::memory_order_relaxed)) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ethshard::util
