// Non-cryptographic hashing utilities.
//
// These back the Hashing partitioner (the paper's baseline shard(v) =
// hash(id(v)) mod k) and hash-combining for composite keys. Keccak-256,
// the cryptographic hash used by the blockchain substrate, lives in
// eth/keccak.hpp.
#pragma once

#include <cstdint>
#include <string_view>

namespace ethshard::util {

/// 64-bit FNV-1a over a byte string.
std::uint64_t fnv1a64(std::string_view bytes);

/// MurmurHash3 fmix64 finalizer — a fast, well-mixed permutation of a
/// 64-bit value. This is what the Hashing partitioner applies to vertex
/// ids before the modulo, so consecutive ids do not land in consecutive
/// shards.
std::uint64_t mix64(std::uint64_t x);

/// Boost-style hash combining.
inline std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return seed ^ (mix64(value) + 0x9E3779B97F4A7C15ULL + (seed << 6) +
                 (seed >> 2));
}

}  // namespace ethshard::util
