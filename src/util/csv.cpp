#include "util/csv.hpp"

#include <istream>
#include <ostream>

namespace ethshard::util {

namespace {
bool needs_quoting(std::string_view v) {
  return v.find_first_of(",\"\n\r") != std::string_view::npos;
}

void write_field(std::ostream& out, std::string_view v) {
  if (!needs_quoting(v)) {
    out << v;
    return;
  }
  out << '"';
  for (char c : v) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}
}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (const auto& f : fields) field(f);
  end_row();
}

CsvWriter& CsvWriter::field(std::string_view v) {
  sep();
  write_field(*out_, v);
  return *this;
}

CsvWriter& CsvWriter::field(std::uint64_t v) {
  sep();
  *out_ << v;
  return *this;
}

CsvWriter& CsvWriter::field(std::int64_t v) {
  sep();
  *out_ << v;
  return *this;
}

CsvWriter& CsvWriter::field(double v) {
  sep();
  *out_ << v;
  return *this;
}

void CsvWriter::end_row() {
  *out_ << '\n';
  at_row_start_ = true;
}

void CsvWriter::sep() {
  if (!at_row_start_) *out_ << ',';
  at_row_start_ = false;
}

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

bool CsvReader::read_row(std::vector<std::string>& fields) {
  std::string line;
  while (std::getline(*in_, line)) {
    if (line.empty() || (line.size() == 1 && line[0] == '\r')) continue;
    fields = parse_csv_line(line);
    return true;
  }
  return false;
}

}  // namespace ethshard::util
