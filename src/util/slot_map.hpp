// Epoch-cleared open-addressing hash map for hot aggregation loops.
//
// The window aggregator (core/window_aggregator.cpp) probes a
// pair-or-vertex → slot-index map a couple of times per call, clears it
// once per window, and never erases individual keys. std::unordered_map
// is a poor fit for that shape: every insert allocates a node, every
// probe chases a bucket chain, and clear() walks and frees all of them.
// SlotMap is the purpose-built replacement — flat power-of-two storage,
// linear probing, and an epoch stamp per slot so clear() is a counter
// bump instead of a sweep. Inserts amortize to O(1) with no per-entry
// allocation; rehash copies only live (current-epoch) slots.
//
// Not a general map: u64 keys, u32 values, no erase, and the caller must
// keep the map alive across windows to profit from the retained
// capacity. Single-threaded (each pipeline shard owns its own).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace ethshard::util {

class SlotMap {
 public:
  explicit SlotMap(std::size_t initial_capacity = 64) {
    std::size_t cap = 16;
    while (cap < initial_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  /// Forgets every entry in O(1) (slots from earlier epochs read as
  /// empty). Capacity is retained.
  void clear() {
    ++epoch_;
    size_ = 0;
    if (epoch_ == 0) {  // stamp wraparound: hard-reset so stale slots
      for (Slot& s : slots_) s.epoch = 0;  // cannot alias the new epoch
      epoch_ = 1;
    }
  }

  /// Inserts key → value unless key is present; returns the slot's value
  /// reference and whether this call inserted it. The reference is valid
  /// until the next try_emplace (which may rehash) or clear.
  std::pair<std::uint32_t&, bool> try_emplace(std::uint64_t key,
                                              std::uint32_t value) {
    if ((size_ + 1) * 8 > slots_.size() * 7) grow();
    std::size_t i = index_of(key);
    while (true) {
      Slot& s = slots_[i];
      if (s.epoch != epoch_) {
        s.key = key;
        s.epoch = epoch_;
        s.value = value;
        ++size_;
        return {s.value, true};
      }
      if (s.key == key) return {s.value, false};
      i = (i + 1) & mask_;
    }
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t epoch = 0;  // slot is live iff epoch matches the map's
    std::uint32_t value = 0;
  };

  /// 64-bit finalizer (splitmix64's mixing function) — pair keys are two
  /// packed 32-bit ids, so low-bit-only hashing would cluster badly.
  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  std::size_t index_of(std::uint64_t key) const {
    return static_cast<std::size_t>(mix(key)) & mask_;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.epoch != epoch_) continue;
      std::size_t i = index_of(s.key);
      while (slots_[i].epoch == epoch_) i = (i + 1) & mask_;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::uint32_t epoch_ = 1;  // 0 marks never-used slots
};

}  // namespace ethshard::util
