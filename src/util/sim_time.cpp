#include "util/sim_time.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace ethshard::util {

std::int64_t days_from_civil(int y, int m, int d) {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(d) - 1;                                     // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilDate civil_from_days(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);         // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;            // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);         // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                              // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                      // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));    // [1, 12]
  return CivilDate{static_cast<int>(y + (m <= 2)), static_cast<int>(m),
                   static_cast<int>(d)};
}

Timestamp make_timestamp(int year, int month, int day) {
  ETHSHARD_CHECK(month >= 1 && month <= 12);
  ETHSHARD_CHECK(day >= 1 && day <= 31);
  return days_from_civil(year, month, day) * kDay;
}

CivilDate to_civil(Timestamp ts) {
  std::int64_t days = ts / kDay;
  if (ts < 0 && ts % kDay != 0) --days;
  return civil_from_days(days);
}

Timestamp month_floor(Timestamp ts) {
  const CivilDate c = to_civil(ts);
  return make_timestamp(c.year, c.month, 1);
}

Timestamp add_months(Timestamp ts, int n) {
  const CivilDate c = to_civil(ts);
  int idx = c.year * 12 + (c.month - 1) + n;
  int y = idx / 12;
  int m = idx % 12;
  if (m < 0) {
    m += 12;
    --y;
  }
  return make_timestamp(y, m + 1, 1);
}

std::string month_label(Timestamp ts) {
  const CivilDate c = to_civil(ts);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d.%02d", c.month, c.year % 100);
  return buf;
}

std::string date_label(Timestamp ts) {
  const CivilDate c = to_civil(ts);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

Timestamp genesis_time() { return make_timestamp(2015, 7, 30); }
Timestamp attack_start_time() { return make_timestamp(2016, 9, 18); }
Timestamp attack_end_time() { return make_timestamp(2016, 10, 25); }
Timestamp study_end_time() { return make_timestamp(2018, 1, 1); }

}  // namespace ethshard::util
