#include "util/hash.hpp"

namespace ethshard::util {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace ethshard::util
