// Minimal RFC-4180-style CSV reading and writing.
//
// Used by the trace I/O module (paper-compatible trace files) and by the
// benchmark harnesses when dumping figure data series.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ethshard::util {

/// Streams rows to an std::ostream, quoting fields when needed.
class CsvWriter {
 public:
  /// The stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes one row; fields containing commas, quotes or newlines are quoted.
  void write_row(const std::vector<std::string>& fields);

  // Convenience field-by-field interface.
  CsvWriter& field(std::string_view v);
  CsvWriter& field(std::uint64_t v);
  CsvWriter& field(std::int64_t v);
  CsvWriter& field(double v);
  /// Terminates the current row.
  void end_row();

 private:
  void sep();
  std::ostream* out_;
  bool at_row_start_ = true;
};

/// Parses one CSV line into fields (handles quoted fields with embedded
/// commas and doubled quotes). Newlines inside quoted fields are not
/// supported — trace files never contain them.
std::vector<std::string> parse_csv_line(std::string_view line);

/// Reads rows from a stream, skipping empty lines.
class CsvReader {
 public:
  explicit CsvReader(std::istream& in) : in_(&in) {}

  /// Reads the next row into `fields`; returns false at end of stream.
  bool read_row(std::vector<std::string>& fields);

 private:
  std::istream* in_;
};

}  // namespace ethshard::util
