// Minimal command-line flag parsing for the CLI tool and benches.
//
// Supports "--name value" and "--name=value" long flags plus positional
// arguments, typed accessors with defaults, and unknown-flag detection.
// Deliberately tiny — no external dependency.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ethshard::util {

class ArgParser {
 public:
  /// Parses argv (excluding argv[0]). Throws CheckFailure on a malformed
  /// flag (e.g. "--name" at the end with no value).
  ArgParser(int argc, const char* const* argv);

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& name) const;

  /// Typed accessors; return `fallback` when the flag is absent. Throw
  /// CheckFailure when present but unparsable.
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  std::uint64_t get_uint(const std::string& name,
                         std::uint64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  /// "--flag" with no value, "--flag true|false|1|0".
  bool get_bool(const std::string& name, bool fallback) const;

  /// Flags that were parsed but never queried — typo detection for mains
  /// that call this after reading everything they support.
  std::vector<std::string> unused() const;

 private:
  std::optional<std::string> raw(const std::string& name) const;

  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> queried_;
};

}  // namespace ethshard::util
