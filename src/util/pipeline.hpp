// Bounded producer/consumer handoff for pipelined replay.
//
// The simulator's pipelined window replay runs a background worker that
// aggregates window W+1 while the main thread applies window W (see
// core/window_aggregator.hpp). BoundedQueue is the channel between them:
// a mutex+condvar FIFO with a hard capacity (backpressure keeps the
// producer at most `capacity` windows ahead, bounding memory), explicit
// close semantics, and producer-error propagation so an exception thrown
// while aggregating surfaces on the consumer instead of vanishing on a
// detached thread.
//
// Deliberately simple — no lock-free tricks. The payloads are whole
// window tables (thousands of calls each), so the per-item cost of a
// mutex is noise, and the straightforward implementation is trivially
// TSan-clean (this queue is the first cross-thread handoff on the
// simulator's hot path; tools/ci_sanitize.sh races it on every run).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <utility>

#include "util/check.hpp"

namespace ethshard::util {

/// Profiling taps for one BoundedQueue. The obs layer links against util
/// (not the other way round), so the simulator installs an obs-backed
/// observer when tracing is on; with none installed the queue takes no
/// clock readings and pays one pointer check per operation.
///
/// Callbacks fire on the pushing/popping thread, outside the queue lock,
/// once per successfully transferred item; implementations must be
/// thread-safe across the two sides. `depth` is the occupancy just after
/// the operation (including/excluding the item, respectively); `wait_ms`
/// is how long the caller blocked (0 when the queue had room / an item).
struct QueueObserver {
  virtual ~QueueObserver() = default;
  virtual void on_push(std::size_t depth, double wait_ms) = 0;
  virtual void on_pop(std::size_t depth, double wait_ms) = 0;
};

/// Blocking bounded FIFO between one producer and one consumer thread.
/// (Multiple producers/consumers would be correct too; the simulator only
/// needs 1:1.)
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    ETHSHARD_CHECK_MSG(capacity_ > 0, "BoundedQueue needs capacity >= 1");
  }

  /// Installs (or, with nullptr, removes) the profiling taps. Install
  /// before the producer/consumer threads start; the observer must
  /// outlive every push/pop made while installed.
  void set_observer(QueueObserver* observer) { observer_ = observer; }

  /// Blocks while the queue is full. Returns false — dropping `value` —
  /// when the queue was closed (consumer gave up); the producer should
  /// stop producing.
  bool push(T value) {
    double wait_ms = 0;
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.size() >= capacity_ && !closed_) {
      ++push_waits_;
      wait_ms = timed_wait(lock, not_full_, [&] {
        return items_.size() < capacity_ || closed_;
      });
    }
    if (closed_) return false;
    items_.push_back(std::move(value));
    const std::size_t depth = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    if (observer_ != nullptr) observer_->on_push(depth, wait_ms);
    return true;
  }

  /// Blocks while the queue is empty and open. Returns the next item;
  /// std::nullopt once the queue is closed and drained. Rethrows the
  /// producer's exception (see fail) once the items before it are drained.
  std::optional<T> pop() {
    double wait_ms = 0;
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty() && !closed_) {
      ++pop_waits_;
      wait_ms =
          timed_wait(lock, not_empty_,
                     [&] { return !items_.empty() || closed_; });
    }
    if (items_.empty()) {
      if (error_) {
        std::exception_ptr err = error_;
        error_ = nullptr;
        throw_with_lock_released(std::move(lock), err);
      }
      return std::nullopt;
    }
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    const std::size_t depth = items_.size();
    lock.unlock();
    not_full_.notify_one();
    if (observer_ != nullptr) observer_->on_pop(depth, wait_ms);
    return out;
  }

  /// Idempotent. Wakes every waiter; subsequent push() returns false and
  /// pop() drains the remaining items exactly once, then returns
  /// std::nullopt. Safe to call while a producer is blocked in push() at
  /// capacity: closed_ flips under the queue mutex and not_full_ is
  /// notified after, so the blocked push's wait predicate
  /// (`... || closed_`) re-evaluates true and push returns false instead
  /// of sleeping forever. tests/util_test.cpp pins both behaviours.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Producer-side error escape hatch: records the exception and closes.
  /// The consumer's pop() rethrows it after draining earlier items.
  void fail(std::exception_ptr error) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::move(error);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Times push() found the queue full / pop() found it empty — the
  /// pipeline's backpressure and prefetch-stall signals. Single-threaded
  /// reads only (call after the producer and consumer are done, or from
  /// the respective owning side).
  std::uint64_t push_waits() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return push_waits_;
  }
  std::uint64_t pop_waits() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return pop_waits_;
  }

 private:
  [[noreturn]] static void throw_with_lock_released(
      std::unique_lock<std::mutex> lock, std::exception_ptr err) {
    lock.unlock();
    std::rethrow_exception(err);
  }

  /// Waits on `cv` until `ready`; reads the clock only when an observer
  /// is installed, so unobserved queues keep the original wait path.
  template <typename Pred>
  double timed_wait(std::unique_lock<std::mutex>& lock,
                    std::condition_variable& cv, Pred ready) {
    if (observer_ == nullptr) {
      cv.wait(lock, ready);
      return 0;
    }
    const auto start = std::chrono::steady_clock::now();
    cv.wait(lock, ready);
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  }

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
  std::exception_ptr error_;
  std::uint64_t push_waits_ = 0;
  std::uint64_t pop_waits_ = 0;
  QueueObserver* observer_ = nullptr;
};

}  // namespace ethshard::util
