// Simulation time model.
//
// The paper's experiments are organized on a civil-time grid: the chain
// runs from 30 July 2015 to the end of 2017, metrics are sampled in
// four-hour windows, repartitioning happens every two weeks, and figures
// are labelled by month. Timestamps are unix seconds (UTC); civil-date
// conversion uses Howard Hinnant's days_from_civil algorithm so no
// timezone database is needed.
#pragma once

#include <cstdint>
#include <string>

namespace ethshard::util {

/// Unix timestamp in seconds (UTC).
using Timestamp = std::int64_t;

inline constexpr Timestamp kMinute = 60;
inline constexpr Timestamp kHour = 60 * kMinute;
inline constexpr Timestamp kDay = 24 * kHour;
inline constexpr Timestamp kWeek = 7 * kDay;
/// The paper's metric sampling window ("each data point corresponds to a
/// four-hour window").
inline constexpr Timestamp kMetricWindow = 4 * kHour;
/// The paper's periodic repartitioning interval ("every two weeks").
inline constexpr Timestamp kRepartitionPeriod = 2 * kWeek;

/// Civil (proleptic Gregorian) date.
struct CivilDate {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31

  friend bool operator==(const CivilDate&, const CivilDate&) = default;
};

/// Days since the unix epoch for a civil date (valid far beyond our range).
std::int64_t days_from_civil(int year, int month, int day);

/// Inverse of days_from_civil.
CivilDate civil_from_days(std::int64_t days);

/// Timestamp at 00:00:00 UTC of the given civil date.
Timestamp make_timestamp(int year, int month, int day);

/// Civil date containing the timestamp.
CivilDate to_civil(Timestamp ts);

/// Timestamp truncated to the first instant of its month.
Timestamp month_floor(Timestamp ts);

/// First instant of the month `n` months after the month containing ts.
Timestamp add_months(Timestamp ts, int n);

/// "MM.YY" label as used on the paper's x axes (e.g. "07.15").
std::string month_label(Timestamp ts);

/// "YYYY-MM-DD" ISO date.
std::string date_label(Timestamp ts);

// Chain-history anchors used throughout the reproduction (all UTC).
/// Ethereum mainnet genesis: 30 July 2015.
Timestamp genesis_time();
/// Start of the DoS-attack period modelled after Sep/Oct 2016.
Timestamp attack_start_time();
/// End of the DoS-attack period.
Timestamp attack_end_time();
/// End of the study: 31 December 2017 (exclusive end: 1 Jan 2018).
Timestamp study_end_time();

}  // namespace ethshard::util
