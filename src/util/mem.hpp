// Process resident-memory probes.
//
// The streaming BlockSource work makes memory a first-class measured
// quantity: per-window telemetry carries the resident set, the CLI can
// enforce a budget (--max-rss-mb), and perf_snapshot records a peak per
// bench entry. These helpers read Linux /proc/self/status (VmRSS/VmHWM);
// on other platforms they degrade to 0 / best-effort getrusage, and
// callers treat 0 as "unavailable" rather than an error.
#pragma once

#include <cstdint>

namespace ethshard::util {

/// Current resident set size in bytes (VmRSS), 0 when unavailable.
std::uint64_t current_rss_bytes();

/// Peak resident set size in bytes (VmHWM — the high-water mark since
/// process start or the last reset_peak_rss()), 0 when unavailable.
std::uint64_t peak_rss_bytes();

/// Resets the kernel's peak-RSS high-water mark to the current resident
/// set (Linux: writes "5" to /proc/self/clear_refs), so successive
/// measurements bracket individual phases instead of reporting one
/// process-lifetime maximum. Returns false when unsupported.
bool reset_peak_rss();

/// CPU time consumed by the calling thread so far, in milliseconds; 0
/// when the platform has no per-thread CPU clock. Unlike a wall clock,
/// deltas of this are immune to preemption — on an oversubscribed host
/// they measure only the work the thread actually did, which is what
/// makes the replay pipeline's serial-vs-pipelined probe honest there
/// (see core/simulator.cpp run_pipelined).
double thread_cpu_ms();

}  // namespace ethshard::util
