// Minimal data parallelism for embarrassingly parallel work.
//
// The figure harnesses run dozens of independent simulations (method × k
// grids); parallel_map fans them out over a fixed number of threads while
// keeping results in input order. No work stealing, no dependencies —
// just an atomic cursor over an index range.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ethshard::util {

/// Hardware concurrency with a sane floor (the API never returns 0).
std::size_t default_thread_count();

/// Applies fn(index) for every index in [0, count) across `threads`
/// workers (0 → default_thread_count()). Blocks until done. The first
/// exception thrown by any worker is rethrown on the caller after all
/// workers stop picking up new work.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

/// Maps fn over inputs in parallel; results keep input order. R only
/// needs to be movable — each worker constructs its result in place in a
/// per-slot std::optional, so no default constructor is required.
template <typename T, typename F>
auto parallel_map(const std::vector<T>& inputs, F&& fn,
                  std::size_t threads = 0)
    -> std::vector<std::invoke_result_t<F&, const T&>> {
  using R = std::invoke_result_t<F&, const T&>;
  std::vector<std::optional<R>> slots(inputs.size());
  parallel_for(
      inputs.size(),
      [&](std::size_t i) { slots[i].emplace(fn(inputs[i])); }, threads);
  std::vector<R> results;
  results.reserve(inputs.size());
  for (std::optional<R>& slot : slots) results.push_back(std::move(*slot));
  return results;
}

}  // namespace ethshard::util
