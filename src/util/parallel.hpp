// Minimal data parallelism for embarrassingly parallel work.
//
// The figure harnesses run dozens of independent simulations (method × k
// grids); parallel_map fans them out over a fixed number of threads while
// keeping results in input order. No work stealing, no dependencies —
// just an atomic cursor over an index range.
//
// The chunked primitives below additionally support *deterministic*
// parallel algorithms (the mt-MLKP partitioner): the decomposition into
// chunks is a pure function of the problem size and the grain — never of
// the thread count — so per-chunk results can be combined in chunk order
// to give output that is bit-identical regardless of how many threads ran.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ethshard::util {

/// Hardware concurrency with a sane floor (the API never returns 0).
std::size_t default_thread_count();

/// Telemetry hooks for the parallel runtime. The obs layer links against
/// util (not the other way round), so it installs these callbacks when
/// metrics recording is switched on; with no table installed the runtime
/// records nothing and pays one relaxed atomic load per dispatch.
///
/// Both callbacks are invoked concurrently from worker threads and must
/// be thread-safe. The installed table must outlive every parallel call
/// made while it is installed (obs uses a static table).
struct ParallelTelemetryHooks {
  void (*record_hist)(const char* name, double value);
  void (*add_count)(const char* name, std::uint64_t delta);
  /// Called once from each pool worker thread as it starts (the trace
  /// layer names the worker's timeline lane from it). May be null.
  void (*on_worker_start)(std::size_t worker_index);
};

/// Atomically installs (or, with nullptr, clears) the hook table.
void set_parallel_telemetry(const ParallelTelemetryHooks* hooks);
const ParallelTelemetryHooks* parallel_telemetry();

/// Applies fn(index) for every index in [0, count) across `threads`
/// workers (0 → default_thread_count()). Blocks until done. The first
/// exception thrown by any worker is rethrown on the caller after all
/// workers stop picking up new work.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

/// Number of chunks parallel_for_chunked will use for `count` items at
/// `grain` items per chunk: ceil(count / grain), independent of threads.
std::size_t chunk_count(std::size_t count, std::size_t grain);

/// Splits [0, count) into chunk_count(count, grain) contiguous ranges and
/// applies fn(chunk_index, begin, end) to each, across `threads` workers.
/// The decomposition depends only on (count, grain), so a per-chunk output
/// buffer indexed by chunk_index, concatenated in chunk order, is
/// identical for every thread count. Precondition: grain > 0.
void parallel_for_chunked(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    std::size_t threads = 0);

/// Deterministic parallel reduction: chunk_fn(begin, end) produces one
/// partial per chunk; partials are combined with `combine` serially in
/// chunk order (so even non-associative-in-practice combiners like
/// floating-point addition give thread-count-independent results).
template <typename T, typename ChunkFn, typename Combine>
T parallel_reduce(std::size_t count, std::size_t grain, T init,
                  ChunkFn&& chunk_fn, Combine&& combine,
                  std::size_t threads = 0) {
  const std::size_t chunks = chunk_count(count, grain);
  std::vector<std::optional<T>> partials(chunks);
  parallel_for_chunked(
      count, grain,
      [&](std::size_t c, std::size_t begin, std::size_t end) {
        partials[c].emplace(chunk_fn(begin, end));
      },
      threads);
  T acc = std::move(init);
  for (std::optional<T>& p : partials) acc = combine(std::move(acc), *p);
  return acc;
}

/// In-place exclusive prefix sum over `values`; returns the total (the
/// inclusive sum of the original contents). values[i] becomes the sum of
/// the original values[0..i). Deterministic and thread-count independent
/// (chunk sums are scanned serially in chunk order).
std::uint64_t exclusive_prefix_sum(std::span<std::uint64_t> values,
                                   std::size_t threads = 0);

/// Caps an inner (nested) parallelism request against `outer` concurrent
/// callers so outer × inner never exceeds default_thread_count().
/// `requested` == 0 means "use whatever budget is left"; `outer` == 0
/// means the caller itself uses the full hardware budget. Never returns 0.
std::size_t cap_nested_threads(std::size_t requested, std::size_t outer);

/// Maps fn over inputs in parallel; results keep input order. R only
/// needs to be movable — each worker constructs its result in place in a
/// per-slot std::optional, so no default constructor is required.
template <typename T, typename F>
auto parallel_map(const std::vector<T>& inputs, F&& fn,
                  std::size_t threads = 0)
    -> std::vector<std::invoke_result_t<F&, const T&>> {
  using R = std::invoke_result_t<F&, const T&>;
  std::vector<std::optional<R>> slots(inputs.size());
  parallel_for(
      inputs.size(),
      [&](std::size_t i) { slots[i].emplace(fn(inputs[i])); }, threads);
  std::vector<R> results;
  results.reserve(inputs.size());
  for (std::optional<R>& slot : slots) results.push_back(std::move(*slot));
  return results;
}

}  // namespace ethshard::util
