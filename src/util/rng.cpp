#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ethshard::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  ETHSHARD_CHECK(bound > 0);
  // Lemire's unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  ETHSHARD_CHECK(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double rate) {
  ETHSHARD_CHECK(rate > 0);
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation, adequate for synthetic workload volumes.
    const double u1 = std::max(uniform01(), 1e-300);
    const double u2 = uniform01();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * 3.14159265358979323846 * u2);
    const double v = mean + std::sqrt(mean) * z;
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(v));
  }
  // Knuth's multiplication method.
  const double limit = std::exp(-mean);
  std::uint64_t k = 0;
  double prod = uniform01();
  while (prod > limit) {
    ++k;
    prod *= uniform01();
  }
  return k;
}

std::uint64_t Rng::geometric(double p) {
  ETHSHARD_CHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    ETHSHARD_CHECK(w >= 0);
    total += w;
  }
  ETHSHARD_CHECK(total > 0);
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0) return i;
  }
  return weights.size() - 1;  // numeric edge: all mass consumed
}

Rng Rng::fork() { return Rng(next()); }

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  ETHSHARD_CHECK(n >= 1);
  ETHSHARD_CHECK(s >= 0);
  cdf_.resize(n);
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform01();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace ethshard::util
