#include "util/args.hpp"

#include <charconv>

#include "util/check.hpp"

namespace ethshard::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--flag value" unless the next token is another flag (then it is a
    // boolean switch).
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[i + 1];
      ++i;
    } else {
      flags_[body] = "";
    }
  }
}

std::optional<std::string> ArgParser::raw(const std::string& name) const {
  queried_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

bool ArgParser::has(const std::string& name) const {
  return raw(name).has_value();
}

std::string ArgParser::get(const std::string& name,
                           const std::string& fallback) const {
  return raw(name).value_or(fallback);
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  std::int64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(v->data(), v->data() + v->size(), out);
  ETHSHARD_CHECK_MSG(ec == std::errc{} && ptr == v->data() + v->size(),
                     "flag --" << name << ": bad integer '" << *v << "'");
  return out;
}

std::uint64_t ArgParser::get_uint(const std::string& name,
                                  std::uint64_t fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(v->data(), v->data() + v->size(), out);
  ETHSHARD_CHECK_MSG(ec == std::errc{} && ptr == v->data() + v->size(),
                     "flag --" << name << ": bad integer '" << *v << "'");
  return out;
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  ETHSHARD_CHECK_MSG(!v->empty(), "flag --" << name << ": empty value");
  char* end = nullptr;
  const double out = std::strtod(v->c_str(), &end);
  ETHSHARD_CHECK_MSG(end == v->c_str() + v->size(),
                     "flag --" << name << ": bad number '" << *v << "'");
  return out;
}

bool ArgParser::get_bool(const std::string& name, bool fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  if (v->empty() || *v == "true" || *v == "1") return true;
  if (*v == "false" || *v == "0") return false;
  ETHSHARD_CHECK_MSG(false, "flag --" << name << ": bad boolean '" << *v
                                      << "'");
  return fallback;
}

std::vector<std::string> ArgParser::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : flags_)
    if (!queried_.contains(name)) out.push_back(name);
  return out;
}

}  // namespace ethshard::util
