#include "util/mem.hpp"

#include <cstdio>
#include <cstring>
#include <ctime>

#if !defined(__linux__)
#include <sys/resource.h>
#endif

namespace ethshard::util {

namespace {

#if defined(__linux__)
// Value of a "Key:   N kB" line in /proc/self/status, in bytes; 0 when
// the key is absent or the file cannot be read.
std::uint64_t status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const std::size_t key_len = std::strlen(key);
  char line[256];
  std::uint64_t bytes = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':')
      continue;
    unsigned long long kb = 0;
    if (std::sscanf(line + key_len + 1, "%llu", &kb) == 1)
      bytes = static_cast<std::uint64_t>(kb) * 1024;
    break;
  }
  std::fclose(f);
  return bytes;
}
#endif

}  // namespace

std::uint64_t current_rss_bytes() {
#if defined(__linux__)
  return status_kb("VmRSS");
#else
  return 0;
#endif
}

std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  return status_kb("VmHWM");
#else
  // ru_maxrss is kilobytes on Linux and bytes on macOS; this branch only
  // compiles off-Linux, where BSD semantics (bytes) do not apply either —
  // report kilobytes-as-per-POSIX and accept the approximation.
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
}

double thread_cpu_ms() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) / 1e6;
#else
  return 0;
#endif
}

bool reset_peak_rss() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return std::fclose(f) == 0 && ok;
#else
  return false;
#endif
}

}  // namespace ethshard::util
