// Lightweight runtime checking helpers.
//
// ETHSHARD_CHECK is used for precondition/invariant validation in library
// code. Violations throw std::logic_error (they indicate a programming
// error, not an environmental failure), carrying the failed expression and
// source location.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ethshard::util {

/// Thrown when a library precondition or internal invariant is violated.
class CheckFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}
}  // namespace detail

}  // namespace ethshard::util

/// Validate a condition; throws ethshard::util::CheckFailure on violation.
#define ETHSHARD_CHECK(expr)                                                \
  do {                                                                      \
    if (!(expr))                                                            \
      ::ethshard::util::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

/// Validate a condition with an explanatory message (streamed-in string).
#define ETHSHARD_CHECK_MSG(expr, msg)                                       \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream os_;                                               \
      os_ << msg;                                                           \
      ::ethshard::util::detail::check_failed(#expr, __FILE__, __LINE__,     \
                                             os_.str());                    \
    }                                                                       \
  } while (0)
