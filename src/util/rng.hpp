// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (workload generation, randomized
// partitioners, probabilistic vertex migration) take an explicit Rng so that
// every experiment is reproducible from a single seed. The generator is
// xoshiro256** seeded via splitmix64, which is fast, high-quality and has a
// stable, documented output sequence (unlike std::mt19937 + distributions,
// whose std:: distribution outputs are implementation-defined).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace ethshard::util {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator with explicit, portable output sequences.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0xE7583A2D1C90F147ULL);

  /// Raw 64-bit output.
  std::uint64_t next();

  // Standard UniformRandomBitGenerator interface so the generator can be
  // used with std::shuffle and friends.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given rate (mean = 1/rate).
  /// Precondition: rate > 0.
  double exponential(double rate);

  /// Poisson-distributed count with the given mean. Uses Knuth's method for
  /// small means and a normal approximation (rounded, clamped at 0) for
  /// mean > 64, which is accurate enough for workload synthesis.
  std::uint64_t poisson(double mean);

  /// Geometric count of failures before first success; p in (0, 1].
  std::uint64_t geometric(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Precondition: at least one weight is positive; weights are >= 0.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of an index-addressable container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Forks an independent generator stream (seeded from this one).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_;
};

/// Zipf(s, n) sampler over ranks {0, .., n-1} via inverse-CDF on a
/// precomputed table. Rank 0 is the most popular. Used for skewed
/// (power-law-like) popularity in workload generation.
class ZipfSampler {
 public:
  /// Precondition: n >= 1, s >= 0. s == 0 degenerates to uniform.
  ZipfSampler(std::size_t n, double s);

  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace ethshard::util
