#include "scenario/invariants.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/check.hpp"

namespace ethshard::scenario {

namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

class BalanceInvariant final : public Invariant {
 public:
  BalanceInvariant(double max_balance, std::uint64_t min_interactions)
      : max_(max_balance), min_interactions_(min_interactions) {}

  void on_window(const core::WindowTelemetry& w) override {
    if (!w.recorded || w.interactions == 0) return;
    if (w.interactions < min_interactions_) return;
    if (w.dynamic_balance > worst_) {
      worst_ = w.dynamic_balance;
      worst_window_ = static_cast<std::int64_t>(w.window_start);
    }
  }

  InvariantVerdict verdict() const override {
    InvariantVerdict v;
    v.kind = "balance";
    v.name = "dynamic_balance <= " + fmt(max_) + " (windows with >= " +
             std::to_string(min_interactions_) + " calls)";
    v.observed = worst_;
    v.threshold = max_;
    v.window_start = worst_window_;
    v.pass = worst_ <= max_;
    if (!v.pass)
      v.detail = "dynamic balance " + fmt(worst_) + " exceeded " +
                 fmt(max_) + " in the window starting at " +
                 std::to_string(worst_window_);
    return v;
  }

 private:
  double max_;
  std::uint64_t min_interactions_;
  double worst_ = 0;  // balance >= 1 on any traffic window
  std::int64_t worst_window_ = -1;
};

class ChurnInvariant final : public Invariant {
 public:
  explicit ChurnInvariant(double max_fraction) : max_(max_fraction) {}

  void on_window(const core::WindowTelemetry& w) override {
    window_moves_ += w.moves;
  }

  void on_run_end(const core::SimulationResult& r) override {
    ended_ = true;
    total_moves_ = r.total_moves;
    vertices_ = r.vertices;
  }

  InvariantVerdict verdict() const override {
    InvariantVerdict v;
    v.kind = "churn";
    v.name = "total_moves <= " + fmt(max_) + " * vertices";
    v.threshold = max_;
    if (!ended_) {
      v.pass = false;
      v.detail = "run ended without a final result";
      return v;
    }
    const double denom =
        vertices_ == 0 ? 1.0 : static_cast<double>(vertices_);
    v.observed = static_cast<double>(total_moves_) / denom;
    v.pass = v.observed <= max_;
    if (!v.pass)
      v.detail = std::to_string(total_moves_) + " moves over " +
                 std::to_string(vertices_) + " vertices (" +
                 fmt(v.observed) + " > " + fmt(max_) + ")";
    return v;
  }

 private:
  double max_;
  std::uint64_t window_moves_ = 0;
  std::uint64_t total_moves_ = 0;
  std::uint64_t vertices_ = 0;
  bool ended_ = false;
};

class RepartitionTimeInvariant final : public Invariant {
 public:
  explicit RepartitionTimeInvariant(double max_ms) : max_(max_ms) {}

  void on_window(const core::WindowTelemetry& w) override {
    if (!w.repartition) return;
    ++repartitions_;
    if (w.partitioner_ms > worst_) {
      worst_ = w.partitioner_ms;
      worst_window_ = static_cast<std::int64_t>(w.window_start);
    }
  }

  InvariantVerdict verdict() const override {
    InvariantVerdict v;
    v.kind = "repartition_time";
    v.name = "partitioner_ms <= " + fmt(max_);
    v.observed = worst_;
    v.threshold = max_;
    v.window_start = worst_window_;
    v.pass = worst_ <= max_;
    if (!v.pass)
      v.detail = "repartition took " + fmt(worst_) +
                 " ms (bound " + fmt(max_) + " ms) at window " +
                 std::to_string(worst_window_);
    return v;
  }

 private:
  double max_;
  double worst_ = 0;
  std::uint64_t repartitions_ = 0;
  std::int64_t worst_window_ = -1;
};

// The sink serializes doubles with %.6f (core/telemetry.cpp), so a
// golden value carries at most 5e-7 rounding error; anything past 1e-6
// is genuine drift, not serialization noise.
constexpr double kGoldenTolerance = 1.0e-6;

class DriftInvariant final : public Invariant {
 public:
  DriftInvariant(const std::string& golden_jsonl, std::string label)
      : label_(std::move(label)) {
    std::stringstream ss(golden_jsonl);
    std::string line;
    while (std::getline(ss, line)) {
      if (line.empty()) continue;
      golden_.push_back(parse_telemetry_line(line));
    }
  }

  void on_window(const core::WindowTelemetry& w) override {
    const std::uint64_t i = seen_++;
    if (!detail_.empty()) return;  // first divergence wins
    if (i >= golden_.size()) {
      fail(w.window_start, "stream has more windows than the golden (" +
                               std::to_string(golden_.size()) + ")");
      return;
    }
    const core::WindowTelemetry& g = golden_[i];
    check_exact(w, "window_start", w.window_start, g.window_start);
    check_exact(w, "window_end", w.window_end, g.window_end);
    check_exact(w, "interactions", w.interactions, g.interactions);
    check_exact(w, "recorded", static_cast<std::uint64_t>(w.recorded),
                static_cast<std::uint64_t>(g.recorded));
    check_exact(w, "repartition",
                static_cast<std::uint64_t>(w.repartition),
                static_cast<std::uint64_t>(g.repartition));
    check_exact(w, "moves", w.moves, g.moves);
    check_exact(w, "moved_state_units", w.moved_state_units,
                g.moved_state_units);
    check_close(w, "dynamic_edge_cut", w.dynamic_edge_cut,
                g.dynamic_edge_cut);
    check_close(w, "dynamic_balance", w.dynamic_balance, g.dynamic_balance);
    check_close(w, "static_edge_cut", w.static_edge_cut, g.static_edge_cut);
    check_close(w, "static_balance", w.static_balance, g.static_balance);
  }

  void on_run_end(const core::SimulationResult&) override {
    if (detail_.empty() && seen_ != golden_.size())
      detail_ = "stream ended after " + std::to_string(seen_) +
                " windows; golden has " + std::to_string(golden_.size());
  }

  InvariantVerdict verdict() const override {
    InvariantVerdict v;
    v.kind = "drift";
    v.name = "telemetry matches golden " + label_;
    v.observed = worst_deviation_;
    v.threshold = kGoldenTolerance;
    v.window_start = fail_window_;
    v.pass = detail_.empty();
    v.detail = detail_;
    return v;
  }

 private:
  void fail(std::uint64_t window_start, const std::string& why) {
    if (!detail_.empty()) return;
    fail_window_ = static_cast<std::int64_t>(window_start);
    detail_ = why;
  }

  void check_exact(const core::WindowTelemetry& w, const char* field,
                   std::uint64_t got, std::uint64_t want) {
    if (got == want) return;
    fail(w.window_start, std::string(field) + " drifted: got " +
                             std::to_string(got) + ", golden " +
                             std::to_string(want) + " (window " +
                             std::to_string(w.window_start) + ")");
  }

  void check_close(const core::WindowTelemetry& w, const char* field,
                   double got, double want) {
    const double dev = std::abs(got - want);
    if (dev > worst_deviation_) worst_deviation_ = dev;
    if (dev <= kGoldenTolerance) return;
    fail(w.window_start, std::string(field) + " drifted: got " + fmt(got) +
                             ", golden " + fmt(want) + " (|Δ| " +
                             fmt(dev) + " > " + fmt(kGoldenTolerance) +
                             ", window " + std::to_string(w.window_start) +
                             ")");
  }

  std::string label_;
  std::vector<core::WindowTelemetry> golden_;
  std::uint64_t seen_ = 0;
  double worst_deviation_ = 0;
  std::int64_t fail_window_ = -1;
  std::string detail_;
};

class SanityInvariant final : public Invariant {
 public:
  explicit SanityInvariant(bool expect_full_stream)
      : expect_full_stream_(expect_full_stream) {}

  void on_window(const core::WindowTelemetry& w) override {
    ++windows_;
    interaction_sum_ += w.interactions;
    move_sum_ += w.moves;
    check(w, w.window_end > w.window_start, "window_end <= window_start");
    check(w, !have_prev_ || w.window_start >= prev_end_,
          "window overlaps its predecessor (clock went backwards)");
    check(w, w.dynamic_edge_cut >= 0.0 && w.dynamic_edge_cut <= 1.0,
          "dynamic_edge_cut outside [0,1]");
    check(w, w.static_edge_cut >= 0.0 && w.static_edge_cut <= 1.0,
          "static_edge_cut outside [0,1]");
    // Eq. 2 balance is max over mean — >= 1 whenever any load exists.
    check(w, w.interactions == 0 || w.dynamic_balance >= 1.0 - 1e-9,
          "dynamic_balance below 1 on a traffic window");
    check(w, w.static_balance >= 1.0 - 1e-9, "static_balance below 1");
    check(w, w.window_wall_ms >= 0.0, "negative window_wall_ms");
    check(w, w.partitioner_ms >= 0.0, "negative partitioner_ms");
    check(w, w.repartition || (w.moves == 0 && w.moved_state_units == 0 &&
                               w.partitioner_ms == 0.0),
          "moves/cost reported without a repartition");
    check(w, w.moved_state_units >= w.moves,
          "moved_state_units below moves (each move carries >= 1 unit)");
    check(w, w.recorded || w.interactions == 0,
          "unrecorded window claims interactions");
    prev_end_ = w.window_end;
    have_prev_ = true;
  }

  void on_run_end(const core::SimulationResult& r) override {
    ended_ = true;
    if (expect_full_stream_) {
      // Every executed call lands in exactly one window, so the stream's
      // interaction sum must reproduce the run total (cut <= total calls
      // is then implied by the per-window [0,1] fraction checks).
      if (interaction_sum_ != r.interactions)
        record_failure(-1, "window interactions sum to " +
                               std::to_string(interaction_sum_) +
                               " but the run executed " +
                               std::to_string(r.interactions));
      if (move_sum_ > r.total_moves)
        record_failure(-1, "window moves sum to " +
                               std::to_string(move_sum_) +
                               " exceeding the run total " +
                               std::to_string(r.total_moves));
    }
    if (r.executed_cross_shard_fraction < 0.0 ||
        r.executed_cross_shard_fraction > 1.0)
      record_failure(-1, "executed_cross_shard_fraction outside [0,1]");
  }

  InvariantVerdict verdict() const override {
    InvariantVerdict v;
    v.kind = "sanity";
    v.name = "window stream well-formed";
    v.observed = static_cast<double>(violations_);
    v.threshold = 0;
    v.window_start = fail_window_;
    v.pass = violations_ == 0 && ended_;
    v.detail = detail_;
    if (!ended_ && v.detail.empty())
      v.detail = "run ended without a final result";
    return v;
  }

 private:
  void check(const core::WindowTelemetry& w, bool ok, const char* why) {
    if (ok) return;
    record_failure(static_cast<std::int64_t>(w.window_start), why);
  }

  void record_failure(std::int64_t window, const std::string& why) {
    ++violations_;
    if (!detail_.empty()) return;  // keep the first, count the rest
    fail_window_ = window;
    detail_ = why;
    if (window >= 0) detail_ += " (window " + std::to_string(window) + ")";
  }

  bool expect_full_stream_;
  std::uint64_t windows_ = 0;
  std::uint64_t interaction_sum_ = 0;
  std::uint64_t move_sum_ = 0;
  std::uint64_t prev_end_ = 0;
  bool have_prev_ = false;
  bool ended_ = false;
  std::uint64_t violations_ = 0;
  std::int64_t fail_window_ = -1;
  std::string detail_;
};

}  // namespace

std::unique_ptr<Invariant> make_balance_invariant(
    double max_balance, std::uint64_t min_interactions) {
  return std::make_unique<BalanceInvariant>(max_balance, min_interactions);
}

std::unique_ptr<Invariant> make_churn_invariant(double max_fraction) {
  return std::make_unique<ChurnInvariant>(max_fraction);
}

std::unique_ptr<Invariant> make_repartition_time_invariant(double max_ms) {
  return std::make_unique<RepartitionTimeInvariant>(max_ms);
}

std::unique_ptr<Invariant> make_drift_invariant(
    const std::string& golden_jsonl, const std::string& golden_label) {
  return std::make_unique<DriftInvariant>(golden_jsonl, golden_label);
}

std::unique_ptr<Invariant> make_sanity_invariant(bool expect_full_stream) {
  return std::make_unique<SanityInvariant>(expect_full_stream);
}

core::WindowTelemetry parse_telemetry_line(const std::string& line) {
  // The sink's schema is flat with string-free values, so a positional
  // key scan is a full parser for it. Numbers parse with strtod; bools
  // match the literal tokens.
  auto find_value = [&line](const char* key) -> std::string {
    const std::string needle = std::string("\"") + key + "\": ";
    const std::size_t at = line.find(needle);
    ETHSHARD_CHECK_MSG(at != std::string::npos,
                       "telemetry line lacks \"" << key << "\": " << line);
    std::size_t i = at + needle.size();
    std::size_t end = i;
    while (end < line.size() && line[end] != ',' && line[end] != '}')
      ++end;
    return line.substr(i, end - i);
  };
  auto num = [&](const char* key) -> double {
    const std::string v = find_value(key);
    char* end = nullptr;
    const double d = std::strtod(v.c_str(), &end);
    ETHSHARD_CHECK_MSG(end != v.c_str() && *end == '\0',
                       "telemetry field " << key << " is not a number: '"
                                          << v << "'");
    return d;
  };
  auto boolean = [&](const char* key) -> bool {
    const std::string v = find_value(key);
    if (v == "true") return true;
    if (v == "false") return false;
    ETHSHARD_CHECK_MSG(false, "telemetry field " << key
                                                 << " is not a bool: '"
                                                 << v << "'");
    return false;
  };

  core::WindowTelemetry w;
  w.window_start = static_cast<std::uint64_t>(num("window_start"));
  w.window_end = static_cast<std::uint64_t>(num("window_end"));
  w.interactions = static_cast<std::uint64_t>(num("interactions"));
  w.recorded = boolean("recorded");
  w.dynamic_edge_cut = num("dynamic_edge_cut");
  w.dynamic_balance = num("dynamic_balance");
  w.static_edge_cut = num("static_edge_cut");
  w.static_balance = num("static_balance");
  w.window_wall_ms = num("window_wall_ms");
  w.repartition = boolean("repartition");
  w.partitioner_ms = num("partitioner_ms");
  w.moves = static_cast<std::uint64_t>(num("moves"));
  w.moved_state_units = static_cast<std::uint64_t>(num("moved_state_units"));
  w.rss_mb = num("rss_mb");
  w.peak_rss_mb = num("peak_rss_mb");
  return w;
}

}  // namespace ethshard::scenario
