// Machine-checked invariants over the per-window telemetry stream.
//
// Each invariant watches the simulator's WindowTelemetry records as they
// flush (core::TelemetryConsumer — nothing is materialized) plus the
// final SimulationResult, and renders a verdict: pass/fail, the worst
// value observed, the threshold it was held to, and the window where the
// worst case happened — the RFC-0006 "invariants harness" shape
// (SNIPPETS.md §3). The InvariantSet fans one telemetry stream out to
// all of a run's invariants; runner.cpp builds the set a Scenario's
// thresholds ask for.
//
// The five kinds:
//   balance           recorded traffic windows keep dynamic_balance <=
//                     threshold (Eq. 2 — the METIS dormant-account
//                     pitfall trips exactly this)
//   churn             total moves (repartition + online) <= threshold x
//                     final vertex count — bounded reshuffling under
//                     churn
//   repartition_time  every repartition's wall-clock compute cost stays
//                     under the threshold in ms
//   drift             the telemetry stream matches a committed golden
//                     JSONL record-for-record (integers exactly, doubles
//                     to golden precision) — no silent metric drift
//   sanity            the stream is well-formed: monotone non-overlapping
//                     window clock, cuts in [0,1], balances >= 1,
//                     non-negative loads/costs, moves only at
//                     repartitions, window interactions summing to the
//                     run total
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "core/telemetry.hpp"

namespace ethshard::scenario {

/// One invariant's outcome, ready for the JSON report.
struct InvariantVerdict {
  std::string kind;   ///< "balance", "churn", "repartition_time", ...
  std::string name;   ///< human label including the threshold
  bool pass = true;
  double observed = 0;   ///< worst value seen (kind-specific meaning)
  double threshold = 0;
  /// First/worst violation description; empty on pass.
  std::string detail;
  /// window_start of the worst-case window, -1 when not applicable.
  std::int64_t window_start = -1;
};

/// Streaming evaluator: fed every window in order, then the final
/// result, then asked for its verdict.
class Invariant {
 public:
  virtual ~Invariant() = default;
  virtual void on_window(const core::WindowTelemetry& w) = 0;
  virtual void on_run_end(const core::SimulationResult& r) { (void)r; }
  virtual InvariantVerdict verdict() const = 0;
};

/// dynamic_balance <= max_balance on every recorded window carrying at
/// least `min_interactions` calls. The floor keeps the bound meaningful:
/// a near-empty window trivially lands its one call on one shard, which
/// saturates Eq. 2 at k without saying anything about the partitioning
/// (the pitfalls show up under *load*, not in the quiet tail).
std::unique_ptr<Invariant> make_balance_invariant(
    double max_balance, std::uint64_t min_interactions = 1);

/// result.total_moves <= max_fraction * result.vertices.
std::unique_ptr<Invariant> make_churn_invariant(double max_fraction);

/// partitioner_ms <= max_ms at every repartition.
std::unique_ptr<Invariant> make_repartition_time_invariant(double max_ms);

/// Stream must match `golden_jsonl` (TelemetrySink lines) record for
/// record: integer/bool fields exactly, double fields to the sink's
/// serialized precision (wall-clock and rss fields ignored — they are
/// measurements, not results). `golden_label` names the source in
/// verdict details. Throws util::CheckFailure on unparsable golden text.
std::unique_ptr<Invariant> make_drift_invariant(
    const std::string& golden_jsonl, const std::string& golden_label);

/// Well-formedness of the stream itself; `expect_full_stream` enables
/// the run-end interaction-sum cross-check (valid only when every window
/// was observed, i.e. the consumer was attached for the whole run).
std::unique_ptr<Invariant> make_sanity_invariant(
    bool expect_full_stream = true);

/// Fans one telemetry stream out to a run's invariants and collects
/// their verdicts. Non-owning users attach it as SimulatorConfig::consumer.
class InvariantSet final : public core::TelemetryConsumer {
 public:
  void add(std::unique_ptr<Invariant> inv) {
    invariants_.push_back(std::move(inv));
  }
  bool empty() const { return invariants_.empty(); }
  std::size_t size() const { return invariants_.size(); }
  std::uint64_t windows_seen() const { return windows_seen_; }

  void on_window(const core::WindowTelemetry& w) override {
    ++windows_seen_;
    for (auto& inv : invariants_) inv->on_window(w);
  }
  void on_run_end(const core::SimulationResult& r) {
    for (auto& inv : invariants_) inv->on_run_end(r);
  }
  std::vector<InvariantVerdict> verdicts() const {
    std::vector<InvariantVerdict> out;
    out.reserve(invariants_.size());
    for (const auto& inv : invariants_) out.push_back(inv->verdict());
    return out;
  }

 private:
  std::vector<std::unique_ptr<Invariant>> invariants_;
  std::uint64_t windows_seen_ = 0;
};

/// Parses one TelemetrySink JSONL line back into a WindowTelemetry (the
/// drift invariant's golden reader; also used by tests). Throws
/// util::CheckFailure when a schema field is missing or malformed.
core::WindowTelemetry parse_telemetry_line(const std::string& line);

}  // namespace ethshard::scenario
