#include "scenario/runner.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "core/simulator.hpp"
#include "core/strategy_registry.hpp"
#include "core/telemetry.hpp"
#include "scenario/invariants.hpp"
#include "util/check.hpp"
#include "util/mem.hpp"
#include "workload/block_source.hpp"
#include "workload/generator.hpp"

namespace ethshard::scenario {

namespace {

/// Flattens a registry spec into a filename-safe token.
std::string sanitize_spec(const std::string& spec) {
  std::string out;
  out.reserve(spec.size());
  for (const char c : spec) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.';
    out += keep ? c : '_';
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  ETHSHARD_CHECK_MSG(in.good(), "cannot open golden file "
                                    << path
                                    << " (run scenario_runner "
                                       "--update-golden to regenerate)");
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

Scenario with_overrides(const Scenario& scenario,
                        const RunnerOptions& options) {
  Scenario s = scenario;
  for (const auto& [key, value] : options.overrides)
    apply_scenario_setting(s, key, value);
  return s;
}

}  // namespace

std::string golden_path(const Scenario& scenario, const std::string& spec) {
  ETHSHARD_CHECK_MSG(!scenario.drift_golden.empty(),
                     "scenario '" << scenario.name
                                  << "' has no invariant.drift_golden");
  std::filesystem::path dir =
      scenario.file.empty()
          ? std::filesystem::path(".")
          : std::filesystem::path(scenario.file).parent_path();
  if (dir.empty()) dir = ".";
  return (dir / scenario.drift_golden / (sanitize_spec(spec) + ".jsonl"))
      .string();
}

StrategyRunReport run_strategy(const Scenario& scenario,
                               const std::string& spec,
                               const RunnerOptions& options) {
  // Build the workload stream exactly as the scenario describes it.
  workload::GeneratorConfig gcfg = generator_config(scenario);
  gcfg.scale *= options.scale_mult;
  std::unique_ptr<workload::BlockSourceFactory> factory =
      std::make_unique<workload::GeneratedSourceFactory>(gcfg);
  if (scenario.gap_days > 0) {
    ETHSHARD_CHECK_MSG(scenario.gap_start > 0,
                       "scenario '" << scenario.name
                                    << "' sets gap_days without gap_start");
    factory = std::make_unique<workload::TrafficGapSourceFactory>(
        std::move(factory), scenario.gap_start,
        static_cast<util::Timestamp>(scenario.gap_days *
                                     static_cast<double>(util::kDay)));
  }

  core::StrategyBuild build = core::StrategyRegistry::global().make_build(
      spec, scenario.strategy_seed, options.default_threads);

  // The scenario's invariants, evaluated streamingly off the telemetry
  // consumer hook. Drift only checks at the golden's own scale — a
  // scale-multiplied run is a different stream by construction.
  InvariantSet set;
  if (scenario.balance_max)
    set.add(make_balance_invariant(*scenario.balance_max,
                                   scenario.balance_min_interactions));
  if (scenario.move_fraction_max)
    set.add(make_churn_invariant(*scenario.move_fraction_max));
  if (scenario.repartition_ms_max)
    set.add(make_repartition_time_invariant(*scenario.repartition_ms_max));
  const bool check_drift = !scenario.drift_golden.empty() &&
                           !options.update_golden &&
                           options.scale_mult == 1.0;
  if (check_drift) {
    const std::string path = golden_path(scenario, spec);
    set.add(make_drift_invariant(read_file(path), path));
  }
  if (scenario.sanity) set.add(make_sanity_invariant());

  std::unique_ptr<core::TelemetrySink> sink;
  if (options.update_golden && !scenario.drift_golden.empty()) {
    const std::string path = golden_path(scenario, spec);
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path());
    sink = core::TelemetrySink::open(path);
  }

  core::SimulatorConfig cfg;
  cfg.k = scenario.shards;
  cfg.metric_window = scenario.metric_window;
  cfg.load_model = scenario.load_model;
  cfg.telemetry = sink.get();
  cfg.consumer = &set;
  cfg.replay_threads = build.replay_threads;
  cfg.queue_capacity = build.queue_capacity;
  cfg.aggregation_shards = build.aggregation_shards;

  // Bracket the replay with a peak-RSS reset so the reported high-water
  // mark is attributable to this (scenario, strategy) cell alone.
  util::reset_peak_rss();
  const auto t0 = std::chrono::steady_clock::now();
  std::unique_ptr<workload::BlockSource> source = factory->open();
  core::ShardingSimulator sim(*source, *build.strategy, cfg);
  const core::SimulationResult result = sim.run();
  set.on_run_end(result);
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t peak_rss = util::peak_rss_bytes();

  StrategyRunReport run;
  run.strategy = spec;
  run.windows = set.windows_seen();
  run.interactions = result.interactions;
  run.total_moves = result.total_moves;
  run.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t1 - t0)
          .count();
  run.peak_rss_mb = static_cast<double>(peak_rss) / (1024.0 * 1024.0);
  run.invariants = set.verdicts();
  return run;
}

ScenarioReport run_scenario(const Scenario& scenario,
                            const RunnerOptions& options) {
  const Scenario s = with_overrides(scenario, options);
  ScenarioReport report;
  report.name = s.name;
  report.file = s.file;
  report.description = s.description;
  for (const auto& spec : s.strategies)
    report.runs.push_back(run_strategy(s, spec, options));
  return report;
}

Report run_matrix(const std::vector<Scenario>& scenarios,
                  const RunnerOptions& options) {
  Report report;
  for (const auto& s : scenarios)
    report.scenarios.push_back(run_scenario(s, options));
  return report;
}

}  // namespace ethshard::scenario
