// Executes scenarios: workload stream → simulator → streaming invariant
// evaluation → Report.
//
// For every scenario × strategy spec the runner opens a fresh
// BlockSource (GeneratedSourceFactory, wrapped in TrafficGapSourceFactory
// when the scenario splices a dormancy gap), builds the strategy from the
// registry, attaches the scenario's InvariantSet as the simulator's
// telemetry consumer, replays, and collects verdicts. Nothing is
// materialized: the invariants see each window as it flushes and the
// report keeps only per-run aggregates.
//
// Golden maintenance: update_golden re-runs the matrix with a
// TelemetrySink teed into each run and (over)writes
// <scenario dir>/<drift_golden>/<sanitized spec>.jsonl — the files the
// drift invariant later holds runs to. Runs under scale_mult != 1 skip
// the drift invariant (a different scale is a different stream, not a
// regression).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "scenario/report.hpp"
#include "scenario/scenario.hpp"

namespace ethshard::scenario {

struct RunnerOptions {
  /// Write drift goldens instead of checking them.
  bool update_golden = false;
  /// Multiplies every scenario's generator scale (CI small-scale knob).
  /// Values != 1 disable the drift invariant.
  double scale_mult = 1.0;
  /// Extra "key = value" settings applied to every scenario after its
  /// file parses — the CLI's --override flag. Same keys as the file
  /// grammar, so thresholds can be tightened from the command line.
  std::vector<std::pair<std::string, std::string>> overrides;
  /// Partitioner threads handed to the strategy registry (1 = serial;
  /// MLKP partitions are bit-identical across thread counts).
  std::size_t default_threads = 1;
};

/// Replays one scenario against one strategy spec. Throws
/// util::CheckFailure on configuration errors (unknown spec, missing
/// golden file); invariant *violations* are reported, not thrown.
/// `options.overrides` are NOT applied here — run_scenario folds them
/// into the scenario before delegating.
StrategyRunReport run_strategy(const Scenario& scenario,
                               const std::string& spec,
                               const RunnerOptions& options = {});

/// Replays one scenario against every strategy it lists.
ScenarioReport run_scenario(const Scenario& scenario,
                            const RunnerOptions& options = {});

/// The full matrix.
Report run_matrix(const std::vector<Scenario>& scenarios,
                  const RunnerOptions& options = {});

/// The golden JSONL path for (scenario, spec): resolves drift_golden
/// relative to the scenario file's directory and flattens the spec into
/// a filename ("tr-metis:cut_floor=0.25" → "tr-metis_cut_floor_0.25").
std::string golden_path(const Scenario& scenario, const std::string& spec);

}  // namespace ethshard::scenario
