// The CI-parsable verdict: one schema-versioned JSON document per
// runner invocation.
//
// The report is the machine contract between the scenario harness and
// whatever gates on it (ctest scripts via cmake's string(JSON), the CI
// workflow via jq). Schema, version 1:
//
//   {"schema_version": 1,
//    "pass": bool,                       // AND over every strategy run
//    "totals": {"scenarios": N, "strategy_runs": N, "invariants": N,
//               "violations": N,
//               "invariant_kinds": ["balance", ...]},   // sorted, distinct
//    "scenarios": [
//      {"name": s, "file": s, "description": s, "pass": bool,
//       "runs": [
//         {"strategy": s, "pass": bool, "windows": N, "interactions": N,
//          "total_moves": N, "wall_ms": f, "peak_rss_mb": f,
//          "invariants": [
//            {"kind": s, "name": s, "pass": bool, "observed": f,
//             "threshold": f, "window_start": n, "detail": s}, ...]},
//        ...]},
//     ...]}
//
// Consumers must ignore unknown keys; additions bump nothing, renames
// and removals bump schema_version.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "scenario/invariants.hpp"

namespace ethshard::scenario {

inline constexpr int kReportSchemaVersion = 1;

/// One (scenario, strategy spec) replay and its invariant verdicts.
struct StrategyRunReport {
  std::string strategy;  ///< the registry spec string, verbatim
  std::uint64_t windows = 0;       ///< telemetry windows observed
  std::uint64_t interactions = 0;  ///< replayed interactions
  std::uint64_t total_moves = 0;
  double wall_ms = 0;  ///< wall-clock of the whole replay
  /// Process RSS high-water mark over this run (util::reset_peak_rss
  /// brackets it per run; 0 when the platform cannot measure it).
  double peak_rss_mb = 0;
  std::vector<InvariantVerdict> invariants;

  bool pass() const {
    for (const auto& v : invariants)
      if (!v.pass) return false;
    return true;
  }
};

/// One scenario's runs across every strategy spec it lists.
struct ScenarioReport {
  std::string name;
  std::string file;
  std::string description;
  std::vector<StrategyRunReport> runs;

  bool pass() const {
    for (const auto& r : runs)
      if (!r.pass()) return false;
    return true;
  }
};

/// The whole matrix.
struct Report {
  std::vector<ScenarioReport> scenarios;

  bool pass() const {
    for (const auto& s : scenarios)
      if (!s.pass()) return false;
    return true;
  }
};

/// Serializes the schema above (pretty-printed, stable key order).
void write_report_json(const Report& report, std::ostream& out);
std::string report_json(const Report& report);

}  // namespace ethshard::scenario
