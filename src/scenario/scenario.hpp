// Declarative stress scenarios — the paper's pitfalls as checked-in
// files.
//
// The paper's argument is that partitioning schemes which look fine on
// average workloads fall over under specific stress shapes: load spikes
// (the Sep/Oct-2016 DoS attack), hot-contract flash crowds (the 2017
// crowdsale frenzy), account churn, retry storms, long dormancy followed
// by reactivation. A Scenario names one such shape declaratively — a
// workload preset plus generator-knob overrides, the simulator settings
// to replay it under, the strategy specs to replay it against, and the
// machine-checked invariants the run must satisfy (src/scenario/
// invariants.hpp). scenarios/*.scn files in the repo root are the
// checked-in matrix; the runner (src/scenario/runner.hpp,
// tools/scenario_runner) turns them into a CI-parsable verdict.
//
// File grammar: one "key = value" per line, '#' starts a comment, blank
// lines ignored. Keys:
//
//   name, description        identity (name defaults to the file stem)
//   preset                   workload preset (paper, no-attack, ...)
//   scale, seed              generator volume fraction and seed
//   shards                   simulator shard count k
//   load_model               calls | gas
//   metric_window_hours      evaluation window width (default 4)
//   strategies               comma-separated registry specs; default =
//                            the paper's five families
//   strategy_seed            default_seed handed to the registry (7)
//   workload.<knob>          generator override, applied after the
//                            preset (workload/overrides.hpp keys)
//   gap_start                YYYY-MM-DD: splice a traffic gap in front
//   gap_days                 of every block at/after gap_start
//   invariant.balance_max          dynamic balance bound
//   invariant.balance_min_interactions  balance-bound traffic floor (50)
//   invariant.move_fraction_max    total moves / final vertices bound
//   invariant.repartition_ms_max   per-repartition wall-time bound
//   invariant.sanity               true (default) | false
//   invariant.drift_golden         golden-JSONL directory, relative to
//                                  the scenario file
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/simulator.hpp"
#include "util/sim_time.hpp"
#include "workload/presets.hpp"

namespace ethshard::scenario {

struct Scenario {
  std::string name;
  std::string description;
  /// Path the scenario was parsed from ("" for in-memory scenarios);
  /// drift_golden resolves relative to its directory.
  std::string file;

  workload::Preset preset = workload::Preset::kPaper;
  double scale = 0.001;
  std::uint64_t seed = 1234;
  /// Overrides applied to the preset's GeneratorConfig, in file order.
  std::vector<std::pair<std::string, std::string>> workload_overrides;

  std::uint32_t shards = 4;
  core::LoadModel load_model = core::LoadModel::kCalls;
  util::Timestamp metric_window = util::kMetricWindow;

  /// Strategy registry specs to replay against. Defaults to the paper's
  /// five method families.
  std::vector<std::string> strategies = {"hashing", "kl", "metis",
                                         "r-metis", "tr-metis"};
  std::uint64_t strategy_seed = 7;

  /// Dormancy splice: when gap_days > 0, every block at/after gap_start
  /// is shifted that far into the future (workload::TrafficGapSource).
  util::Timestamp gap_start = 0;
  double gap_days = 0;

  // Invariant thresholds; an absent optional disables that invariant.
  std::optional<double> balance_max;
  /// Windows below this call count are exempt from the balance bound
  /// (near-empty windows trivially saturate Eq. 2 at k).
  std::uint64_t balance_min_interactions = 50;
  std::optional<double> move_fraction_max;
  std::optional<double> repartition_ms_max;
  bool sanity = true;
  /// Golden directory (one <strategy>.jsonl per spec) for the drift
  /// invariant; empty disables it.
  std::string drift_golden;
};

/// Applies one "key = value" setting to `s`. The same entry point serves
/// the file parser and the runner's --override flag, so anything a file
/// can say, a command line can tighten. Throws util::CheckFailure on an
/// unknown key or unparsable value, naming it.
void apply_scenario_setting(Scenario& s, const std::string& key,
                            const std::string& value);

/// Parses the file grammar above. `name_hint` seeds the scenario name
/// when the text has no "name =" line (the runner passes the file stem).
Scenario parse_scenario_text(const std::string& text,
                             const std::string& name_hint);

/// Reads and parses `path`; records it as Scenario::file.
Scenario load_scenario_file(const std::string& path);

/// The fully composed generator configuration: preset → scale/seed →
/// workload overrides, in that order.
workload::GeneratorConfig generator_config(const Scenario& s);

}  // namespace ethshard::scenario
