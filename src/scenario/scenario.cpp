#include "scenario/scenario.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/check.hpp"
#include "workload/overrides.hpp"

namespace ethshard::scenario {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

double parse_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  ETHSHARD_CHECK_MSG(end != value.c_str() && *end == '\0',
                     "scenario key '" << key << "': bad number '" << value
                                      << "'");
  return v;
}

std::uint64_t parse_uint(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  ETHSHARD_CHECK_MSG(end != value.c_str() && *end == '\0',
                     "scenario key '" << key << "': bad integer '" << value
                                      << "'");
  return v;
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  ETHSHARD_CHECK_MSG(false, "scenario key '" << key << "': bad boolean '"
                                             << value << "'");
  return false;
}

util::Timestamp parse_date(const std::string& key, const std::string& value) {
  int y = 0;
  int m = 0;
  int d = 0;
  ETHSHARD_CHECK_MSG(
      std::sscanf(value.c_str(), "%d-%d-%d", &y, &m, &d) == 3,
      "scenario key '" << key << "': bad date '" << value
                       << "' (want YYYY-MM-DD)");
  return util::make_timestamp(y, m, d);
}

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> out;
  std::stringstream ss(value);
  std::string token;
  while (std::getline(ss, token, ',')) {
    token = trim(token);
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

}  // namespace

void apply_scenario_setting(Scenario& s, const std::string& key,
                            const std::string& value) {
  if (key.rfind("workload.", 0) == 0) {
    const std::string knob = key.substr(9);
    // Validate eagerly so a typo fails at parse time, not mid-matrix; the
    // runner re-applies the list onto the real preset config in order.
    workload::GeneratorConfig probe;
    workload::apply_generator_override(probe, knob, value);
    s.workload_overrides.emplace_back(knob, value);
    return;
  }
  if (key == "name") {
    s.name = value;
  } else if (key == "description") {
    s.description = value;
  } else if (key == "preset") {
    s.preset = workload::preset_from_name(value);
  } else if (key == "scale") {
    s.scale = parse_double(key, value);
    ETHSHARD_CHECK_MSG(s.scale > 0, "scenario scale must be positive");
  } else if (key == "seed") {
    s.seed = parse_uint(key, value);
  } else if (key == "shards") {
    s.shards = static_cast<std::uint32_t>(parse_uint(key, value));
    ETHSHARD_CHECK_MSG(s.shards >= 2, "scenario shards must be >= 2");
  } else if (key == "load_model") {
    if (value == "calls") {
      s.load_model = core::LoadModel::kCalls;
    } else if (value == "gas") {
      s.load_model = core::LoadModel::kGas;
    } else {
      ETHSHARD_CHECK_MSG(false, "scenario load_model '"
                                    << value << "' (want calls or gas)");
    }
  } else if (key == "metric_window_hours") {
    const double hours = parse_double(key, value);
    ETHSHARD_CHECK_MSG(hours > 0, "metric_window_hours must be positive");
    s.metric_window = static_cast<util::Timestamp>(
        hours * static_cast<double>(util::kHour));
  } else if (key == "strategies") {
    s.strategies = split_list(value);
    ETHSHARD_CHECK_MSG(!s.strategies.empty(),
                       "scenario strategies list is empty");
  } else if (key == "strategy_seed") {
    s.strategy_seed = parse_uint(key, value);
  } else if (key == "gap_start") {
    s.gap_start = parse_date(key, value);
  } else if (key == "gap_days") {
    s.gap_days = parse_double(key, value);
    ETHSHARD_CHECK_MSG(s.gap_days >= 0, "gap_days must be >= 0");
  } else if (key == "invariant.balance_max") {
    s.balance_max = parse_double(key, value);
  } else if (key == "invariant.balance_min_interactions") {
    s.balance_min_interactions = parse_uint(key, value);
  } else if (key == "invariant.move_fraction_max") {
    s.move_fraction_max = parse_double(key, value);
  } else if (key == "invariant.repartition_ms_max") {
    s.repartition_ms_max = parse_double(key, value);
  } else if (key == "invariant.sanity") {
    s.sanity = parse_bool(key, value);
  } else if (key == "invariant.drift_golden") {
    s.drift_golden = value;
  } else {
    ETHSHARD_CHECK_MSG(false, "unknown scenario key '" << key << "'");
  }
}

Scenario parse_scenario_text(const std::string& text,
                             const std::string& name_hint) {
  Scenario s;
  s.name = name_hint;
  std::stringstream ss(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(ss, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    ETHSHARD_CHECK_MSG(eq != std::string::npos,
                       "scenario line " << lineno << " has no '=': \""
                                        << line << "\"");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    ETHSHARD_CHECK_MSG(!key.empty(),
                       "scenario line " << lineno << " has an empty key");
    apply_scenario_setting(s, key, value);
  }
  ETHSHARD_CHECK_MSG(!s.name.empty(), "scenario has no name");
  return s;
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  ETHSHARD_CHECK_MSG(in.good(), "cannot open scenario file " << path);
  std::stringstream buf;
  buf << in.rdbuf();
  // File stem as the default name: "scenarios/dos_spike.scn" → "dos_spike".
  std::string stem = path;
  const std::size_t slash = stem.find_last_of("/\\");
  if (slash != std::string::npos) stem = stem.substr(slash + 1);
  const std::size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos && dot > 0) stem = stem.substr(0, dot);
  Scenario s = parse_scenario_text(buf.str(), stem);
  s.file = path;
  return s;
}

workload::GeneratorConfig generator_config(const Scenario& s) {
  workload::GeneratorConfig cfg = workload::preset_config(
      s.preset, {.scale = s.scale, .seed = s.seed});
  for (const auto& [key, value] : s.workload_overrides)
    workload::apply_generator_override(cfg, key, value);
  workload::check_growth_timeline(cfg);
  return cfg;
}

}  // namespace ethshard::scenario
