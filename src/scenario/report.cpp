#include "scenario/report.hpp"

#include <cstdio>
#include <ostream>
#include <set>
#include <sstream>

namespace ethshard::scenario {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

const char* bool_str(bool b) { return b ? "true" : "false"; }

void write_verdict(const InvariantVerdict& v, std::ostream& out,
                   const char* indent) {
  out << indent << "{\"kind\": \"" << json_escape(v.kind) << "\", \"name\": \""
      << json_escape(v.name) << "\", \"pass\": " << bool_str(v.pass)
      << ", \"observed\": " << fmt_double(v.observed)
      << ", \"threshold\": " << fmt_double(v.threshold)
      << ", \"window_start\": " << v.window_start << ", \"detail\": \""
      << json_escape(v.detail) << "\"}";
}

}  // namespace

void write_report_json(const Report& report, std::ostream& out) {
  std::uint64_t runs = 0;
  std::uint64_t invariants = 0;
  std::uint64_t violations = 0;
  std::set<std::string> kinds;
  for (const auto& s : report.scenarios) {
    runs += s.runs.size();
    for (const auto& r : s.runs) {
      invariants += r.invariants.size();
      for (const auto& v : r.invariants) {
        kinds.insert(v.kind);
        if (!v.pass) ++violations;
      }
    }
  }

  out << "{\n";
  out << "  \"schema_version\": " << kReportSchemaVersion << ",\n";
  out << "  \"pass\": " << bool_str(report.pass()) << ",\n";
  out << "  \"totals\": {\"scenarios\": " << report.scenarios.size()
      << ", \"strategy_runs\": " << runs << ", \"invariants\": " << invariants
      << ", \"violations\": " << violations << ", \"invariant_kinds\": [";
  bool first = true;
  for (const auto& k : kinds) {
    if (!first) out << ", ";
    first = false;
    out << '"' << json_escape(k) << '"';
  }
  out << "]},\n";
  out << "  \"scenarios\": [";
  for (std::size_t i = 0; i < report.scenarios.size(); ++i) {
    const auto& s = report.scenarios[i];
    out << (i ? ",\n" : "\n");
    out << "    {\"name\": \"" << json_escape(s.name) << "\", \"file\": \""
        << json_escape(s.file) << "\", \"description\": \""
        << json_escape(s.description) << "\", \"pass\": " << bool_str(s.pass())
        << ",\n";
    out << "     \"runs\": [";
    for (std::size_t j = 0; j < s.runs.size(); ++j) {
      const auto& r = s.runs[j];
      out << (j ? ",\n" : "\n");
      out << "       {\"strategy\": \"" << json_escape(r.strategy)
          << "\", \"pass\": " << bool_str(r.pass())
          << ", \"windows\": " << r.windows
          << ", \"interactions\": " << r.interactions
          << ", \"total_moves\": " << r.total_moves
          << ", \"wall_ms\": " << fmt_double(r.wall_ms)
          << ", \"peak_rss_mb\": " << fmt_double(r.peak_rss_mb) << ",\n";
      out << "        \"invariants\": [";
      for (std::size_t m = 0; m < r.invariants.size(); ++m) {
        out << (m ? ",\n" : "\n");
        write_verdict(r.invariants[m], out, "          ");
      }
      out << (r.invariants.empty() ? "]" : "\n        ]") << "}";
    }
    out << (s.runs.empty() ? "]" : "\n     ]") << "}";
  }
  out << (report.scenarios.empty() ? "]" : "\n  ]") << "\n}\n";
}

std::string report_json(const Report& report) {
  std::ostringstream ss;
  write_report_json(report, ss);
  return ss.str();
}

}  // namespace ethshard::scenario
