#include "partition/recursive_bisection.hpp"

#include "partition/initial_bisection.hpp"

namespace ethshard::partition {

Partition recursive_bisection_ggg(const graph::Graph& g, std::uint32_t k,
                                  const FmConfig& fm, int tries,
                                  util::Rng& rng) {
  auto bisect = [&fm, tries](const graph::Graph& sub, double frac,
                             util::Rng& r) {
    return initial_bisection(sub, frac, fm, tries, r);
  };
  return recursive_bisection(g, k, bisect, rng);
}

}  // namespace ethshard::partition
