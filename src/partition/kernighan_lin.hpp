// Classic Kernighan–Lin partitioner [9].
//
// Bisection: random balanced initial assignment improved by KL/FM passes;
// k-way by recursive bisection. This is the textbook algorithm; the
// paper's *online* "KL" sharding strategy (distributed, with the
// probability-matrix oracle, after Facebook's balanced label propagation
// [10]) is in blp.hpp and uses the same move-gain machinery.
#pragma once

#include "partition/fm.hpp"
#include "partition/partitioner.hpp"
#include "util/rng.hpp"

namespace ethshard::partition {

struct KlConfig {
  /// Allowed relative side overweight.
  double imbalance = 0.03;
  /// KL/FM improvement passes per bisection.
  int max_passes = 8;
  /// Independent random restarts per bisection; best cut wins.
  int tries = 2;
  std::uint64_t seed = 1;
};

/// Random balanced 2-way split: vertices are shuffled and greedily packed
/// toward the target split by weight. Exposed for tests.
Partition random_balanced_bisection(const graph::Graph& g,
                                    double target_left_frac, util::Rng& rng);

class KernighanLinPartitioner final : public Partitioner {
 public:
  explicit KernighanLinPartitioner(KlConfig cfg = {}) : cfg_(cfg) {}

  /// Accepts directed graphs (symmetrized internally) or undirected ones.
  Partition partition(const graph::Graph& g, std::uint32_t k) override;

  std::string name() const override { return "KL"; }

 private:
  KlConfig cfg_;
};

}  // namespace ethshard::partition
