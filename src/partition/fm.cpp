#include "partition/fm.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "util/check.hpp"

namespace ethshard::partition {

namespace {

struct PqEntry {
  std::int64_t gain;
  graph::Vertex v;
  std::uint64_t stamp;

  bool operator<(const PqEntry& o) const { return gain < o.gain; }
};

/// Excess weight above a side's cap (0 when feasible).
inline std::uint64_t excess(std::uint64_t w, std::uint64_t cap) {
  return w > cap ? w - cap : 0;
}

}  // namespace

graph::Weight fm_refine_bisection(const graph::Graph& g, Partition& p,
                                  double target_left_frac,
                                  const FmConfig& cfg, util::Rng& rng) {
  ETHSHARD_CHECK(!g.directed());
  ETHSHARD_CHECK(p.k() == 2);
  ETHSHARD_CHECK(g.num_vertices() == p.size());
  ETHSHARD_CHECK(target_left_frac > 0.0 && target_left_frac < 1.0);

  const std::uint64_t n = g.num_vertices();
  if (n == 0) return 0;

  std::vector<std::uint8_t> side(n);
  std::uint64_t weight[2] = {0, 0};
  std::uint64_t count[2] = {0, 0};
  graph::Weight max_vwgt = 0;
  for (graph::Vertex v = 0; v < n; ++v) {
    const ShardId s = p.shard_of(v);
    ETHSHARD_CHECK_MSG(s == 0 || s == 1, "bisection refinement needs k=2");
    side[v] = static_cast<std::uint8_t>(s);
    weight[s] += g.vertex_weight(v);
    ++count[s];
    max_vwgt = std::max(max_vwgt, g.vertex_weight(v));
  }
  const double total = static_cast<double>(weight[0] + weight[1]);
  // Caps never drop below the heaviest vertex, or a hub-dominated graph
  // could not be refined at all.
  const std::uint64_t cap[2] = {
      std::max<std::uint64_t>(
          static_cast<std::uint64_t>(
              std::ceil(target_left_frac * total * (1.0 + cfg.imbalance))),
          max_vwgt),
      std::max<std::uint64_t>(
          static_cast<std::uint64_t>(std::ceil(
              (1.0 - target_left_frac) * total * (1.0 + cfg.imbalance))),
          max_vwgt)};

  std::vector<std::int64_t> gain(n);
  std::vector<std::uint64_t> version(n);
  std::vector<std::uint8_t> locked(n);
  std::vector<graph::Vertex> move_log;
  move_log.reserve(n);

  auto compute_gain = [&](graph::Vertex v) {
    std::int64_t ext = 0;
    std::int64_t internal = 0;
    for (const graph::Arc& a : g.neighbors(v)) {
      if (side[a.to] == side[v])
        internal += static_cast<std::int64_t>(a.weight);
      else
        ext += static_cast<std::int64_t>(a.weight);
    }
    return ext - internal;
  };

  auto infeasibility = [&] {
    return excess(weight[0], cap[0]) + excess(weight[1], cap[1]);
  };

  for (int pass = 0; pass < cfg.max_passes; ++pass) {
    std::fill(locked.begin(), locked.end(), std::uint8_t{0});
    move_log.clear();

    // One queue per side (classic FM): when one side's best move is
    // blocked by the balance constraint, the other side's queue still
    // serves moves, and the blocked entry is NOT consumed — it becomes
    // feasible again as soon as the counter-move frees capacity.
    std::priority_queue<PqEntry> pq[2];
    // Randomized insertion order breaks gain ties differently per pass.
    std::vector<graph::Vertex> order(n);
    for (graph::Vertex v = 0; v < n; ++v) order[v] = v;
    rng.shuffle(order);
    for (graph::Vertex v : order) {
      gain[v] = compute_gain(v);
      ++version[v];
      pq[side[v]].push(PqEntry{gain[v], v, version[v]});
    }

    std::int64_t cum_gain = 0;
    // Best prefix: lexicographically lowest (infeasibility, -cum_gain).
    std::uint64_t best_infeas = infeasibility();
    std::int64_t best_gain = 0;
    std::size_t best_len = 0;

    while (true) {
      // Valid top of each side's queue (lazy deletion of stale entries).
      PqEntry tops[2] = {};
      bool have[2] = {false, false};
      for (int s = 0; s < 2; ++s) {
        while (!pq[s].empty()) {
          const PqEntry e = pq[s].top();
          if (e.stamp != version[e.v] || locked[e.v] || side[e.v] != s) {
            pq[s].pop();
            continue;
          }
          tops[s] = e;
          have[s] = true;
          break;
        }
      }
      if (!have[0] && !have[1]) break;

      // Pick the higher-gain feasible move.
      const std::uint64_t before = infeasibility();
      int chosen = -1;
      for (int s = 0; s < 2; ++s) {
        if (!have[s]) continue;
        const graph::Weight w = g.vertex_weight(tops[s].v);
        if (count[s] <= 1) continue;  // never empty a side
        const std::uint64_t after =
            excess(weight[s] - w, cap[s]) +
            excess(weight[1 - s] + w, cap[1 - s]);
        if (after > before) continue;
        if (chosen < 0 || tops[s].gain > tops[chosen].gain) chosen = s;
      }
      if (chosen < 0) break;  // both sides blocked: pass is over

      pq[chosen].pop();
      const graph::Vertex v = tops[chosen].v;
      const std::uint8_t s = static_cast<std::uint8_t>(chosen);
      const std::uint8_t t = 1 - s;
      const graph::Weight w = g.vertex_weight(v);

      // Apply the move.
      side[v] = t;
      weight[s] -= w;
      weight[t] += w;
      --count[s];
      ++count[t];
      locked[v] = 1;
      cum_gain += gain[v];
      move_log.push_back(v);

      for (const graph::Arc& a : g.neighbors(v)) {
        const graph::Vertex u = a.to;
        if (locked[u]) continue;
        // v left u's side: u's edge to v flipped internal<->external.
        if (side[u] == s)
          gain[u] += 2 * static_cast<std::int64_t>(a.weight);
        else
          gain[u] -= 2 * static_cast<std::int64_t>(a.weight);
        ++version[u];
        pq[side[u]].push(PqEntry{gain[u], u, version[u]});
      }
      gain[v] = -gain[v];

      const std::uint64_t inf_now = infeasibility();
      if (inf_now < best_infeas ||
          (inf_now == best_infeas && cum_gain > best_gain)) {
        best_infeas = inf_now;
        best_gain = cum_gain;
        best_len = move_log.size();
      }
    }

    // Roll back to the best prefix.
    for (std::size_t i = move_log.size(); i > best_len; --i) {
      const graph::Vertex v = move_log[i - 1];
      const std::uint8_t t = side[v];
      const std::uint8_t s = 1 - t;
      side[v] = s;
      weight[t] -= g.vertex_weight(v);
      weight[s] += g.vertex_weight(v);
      --count[t];
      ++count[s];
    }

    if (best_len == 0) break;  // pass achieved nothing
  }

  for (graph::Vertex v = 0; v < n; ++v) p.assign(v, side[v]);
  return edge_cut_weight(g, p);
}

}  // namespace ethshard::partition
