#include "partition/parallel_match.hpp"

#include <atomic>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/parallel.hpp"

namespace ethshard::partition {

namespace {

constexpr graph::Vertex kNone = graph::Graph::kInvalid;

// Chunk grain for all sweeps: a pure constant, so the chunk decomposition
// (and with it every per-chunk buffer) is independent of the thread count.
constexpr std::size_t kGrain = 4096;

// More rounds sharpen the matching but each costs a full sweep; the
// coarsening driver's stall check absorbs whatever residue is left.
constexpr int kMaxRounds = 8;

/// Symmetric per-edge score: both endpoints compute the same value for
/// the shared edge, which (with the index tie-break) rules out preference
/// cycles longer than 2.
std::uint64_t edge_hash(std::uint64_t salt, int round, graph::Vertex u,
                        graph::Vertex v) {
  const graph::Vertex lo = u < v ? u : v;
  const graph::Vertex hi = u < v ? v : u;
  std::uint64_t h = salt ^ util::mix64(static_cast<std::uint64_t>(round) + 1);
  h = util::hash_combine(h, lo);
  h = util::hash_combine(h, hi);
  // hash_combine's seed diffusion is too weak to push a low-bit salt
  // difference into the high bits that decide `<` comparisons; the
  // finalizer restores full avalanche so every salt reshuffles ties.
  return util::mix64(h);
}

}  // namespace

std::vector<graph::Vertex> parallel_matching(const graph::Graph& g,
                                             MatchingScheme scheme,
                                             std::uint64_t salt,
                                             std::size_t threads) {
  ETHSHARD_CHECK(!g.directed());
  const std::uint64_t n = g.num_vertices();
  std::vector<graph::Vertex> match(n, kNone);
  if (n == 0) return match;

  std::vector<graph::Vertex> pref(n, kNone);
  std::vector<std::atomic<graph::Vertex>> claim(n);

#if ETHSHARD_OBS_ENABLED
  // Contention telemetry, aggregated with relaxed atomics and flushed as
  // plain counters after the rounds complete. Counting never feeds back
  // into matching decisions, so thread-invariance is untouched; the
  // recorded *values* legitimately vary with scheduling (a CAS retry is
  // a race observation), so tests must not pin them across thread counts.
  std::atomic<std::uint64_t> obs_cas_retries{0};
  std::atomic<std::uint64_t> obs_claim_conflicts{0};
  std::uint64_t obs_rounds = 0;
  std::uint64_t obs_proposals = 0;
  std::uint64_t obs_paired = 0;
#endif

  for (int round = 0; round < kMaxRounds; ++round) {
    // Pass 1: preferences, a pure function of the round-start state.
    std::atomic<std::uint64_t> proposals{0};
    util::parallel_for_chunked(
        n, kGrain,
        [&](std::size_t, std::size_t begin, std::size_t end) {
          std::uint64_t local = 0;
          for (graph::Vertex v = begin; v < end; ++v) {
            pref[v] = kNone;
            claim[v].store(kNone, std::memory_order_relaxed);
            if (match[v] != kNone) continue;
            graph::Vertex best = kNone;
            graph::Weight best_w = 0;
            std::uint64_t best_h = 0;
            for (const graph::Arc& a : g.neighbors(v)) {
              if (a.to == v || match[a.to] != kNone) continue;
              const graph::Weight w =
                  scheme == MatchingScheme::kHeavyEdge ? a.weight : 1;
              const std::uint64_t h = edge_hash(salt, round, v, a.to);
              const bool better =
                  best == kNone || w > best_w ||
                  (w == best_w &&
                   (h < best_h || (h == best_h && a.to < best)));
              if (better) {
                best = a.to;
                best_w = w;
                best_h = h;
              }
            }
            pref[v] = best;
            if (best != kNone) ++local;
          }
          proposals.fetch_add(local, std::memory_order_relaxed);
        },
        threads);
    if (proposals.load(std::memory_order_relaxed) == 0) break;
#if ETHSHARD_OBS_ENABLED
    ++obs_rounds;
    obs_proposals += proposals.load(std::memory_order_relaxed);
#endif

    // Pass 2: CAS min-claim — the lowest-index proposer wins each target,
    // whatever order the CAS attempts land in.
    util::parallel_for_chunked(
        n, kGrain,
        [&](std::size_t, std::size_t begin, std::size_t end) {
#if ETHSHARD_OBS_ENABLED
          std::uint64_t local_retries = 0;
          std::uint64_t local_conflicts = 0;
#endif
          for (graph::Vertex v = begin; v < end; ++v) {
            const graph::Vertex u = pref[v];
            if (u == kNone) continue;
            graph::Vertex cur = claim[u].load(std::memory_order_relaxed);
#if ETHSHARD_OBS_ENABLED
            if (cur != kNone) ++local_conflicts;  // someone claimed first
#endif
            while (v < cur &&
                   !claim[u].compare_exchange_weak(
                       cur, v, std::memory_order_relaxed)) {
#if ETHSHARD_OBS_ENABLED
              ++local_retries;
#endif
            }
          }
#if ETHSHARD_OBS_ENABLED
          if (local_retries != 0)
            obs_cas_retries.fetch_add(local_retries,
                                      std::memory_order_relaxed);
          if (local_conflicts != 0)
            obs_claim_conflicts.fetch_add(local_conflicts,
                                          std::memory_order_relaxed);
#endif
        },
        threads);

    // Pass 3: pair formation. (v, u=pref[v]) pairs iff v won u's claim
    // and either the claims are mutual (the smaller index writes) or u's
    // own proposal lost (second chance; u pairs nowhere else, so the
    // writes below touch each vertex at most once).
    std::atomic<std::uint64_t> paired{0};
    util::parallel_for_chunked(
        n, kGrain,
        [&](std::size_t, std::size_t begin, std::size_t end) {
          std::uint64_t local = 0;
          for (graph::Vertex v = begin; v < end; ++v) {
            const graph::Vertex u = pref[v];
            if (u == kNone) continue;
            if (claim[u].load(std::memory_order_relaxed) != v) continue;
            bool take = false;
            if (claim[v].load(std::memory_order_relaxed) == u) {
              take = v < u;  // mutual: one writer
            } else {
              const graph::Vertex w = pref[u];
              const bool u_won =
                  w != kNone &&
                  claim[w].load(std::memory_order_relaxed) == u;
              take = !u_won;
            }
            if (take) {
              match[v] = u;
              match[u] = v;
              ++local;
            }
          }
          paired.fetch_add(local, std::memory_order_relaxed);
        },
        threads);
#if ETHSHARD_OBS_ENABLED
    obs_paired += paired.load(std::memory_order_relaxed);
#endif
    if (paired.load(std::memory_order_relaxed) == 0) break;
  }

#if ETHSHARD_OBS_ENABLED
  ETHSHARD_OBS_COUNT("pmatch/invocations", 1);
  ETHSHARD_OBS_COUNT("pmatch/rounds", obs_rounds);
  ETHSHARD_OBS_COUNT("pmatch/proposals", obs_proposals);
  ETHSHARD_OBS_COUNT("pmatch/paired", 2 * obs_paired);  // vertices matched
  ETHSHARD_OBS_COUNT("pmatch/claim_conflicts",
                     obs_claim_conflicts.load(std::memory_order_relaxed));
  ETHSHARD_OBS_COUNT("pmatch/cas_retries",
                     obs_cas_retries.load(std::memory_order_relaxed));
  ETHSHARD_OBS_HIST("pmatch/vertices", n);
#endif

  // Leftovers coarsen as singletons.
  util::parallel_for_chunked(
      n, kGrain,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (graph::Vertex v = begin; v < end; ++v)
          if (match[v] == kNone) match[v] = v;
      },
      threads);
  return match;
}

}  // namespace ethshard::partition
