// Initial bisection of the coarsest graph.
//
// Greedy graph growing (METIS's GGGP): grow one side from a random seed
// vertex, always absorbing the frontier vertex with the highest gain,
// until the side reaches its target weight; polish with FM. Several
// independent attempts are made and the best (feasible, then lowest-cut)
// result wins.
#pragma once

#include "graph/graph.hpp"
#include "partition/fm.hpp"
#include "partition/types.hpp"
#include "util/rng.hpp"

namespace ethshard::partition {

/// One greedy-growing attempt (no FM polish); exposed for testing.
/// Preconditions: g undirected, non-empty; 0 < target_left_frac < 1.
Partition greedy_grow_bisection(const graph::Graph& g,
                                double target_left_frac, util::Rng& rng);

/// Best-of-`tries` greedy growing, each polished with FM refinement.
/// Returns a complete 2-way partition.
Partition initial_bisection(const graph::Graph& g, double target_left_frac,
                            const FmConfig& fm, int tries, util::Rng& rng);

}  // namespace ethshard::partition
