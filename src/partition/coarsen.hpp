// Multilevel coarsening via vertex matching and contraction.
//
// The first phase of the Karypis–Kumar multilevel scheme (the paper's
// METIS, citation [11]): repeatedly match pairs of adjacent vertices and
// contract them, producing a hierarchy of progressively smaller graphs
// that preserve the cut structure (contracted edge weights accumulate, so
// a cut in a coarse graph has exactly the same weight in the fine graph).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ethshard::partition {

/// How matching partners are chosen.
enum class MatchingScheme {
  kHeavyEdge,  ///< prefer the heaviest incident edge (METIS's HEM)
  kRandom,     ///< any unmatched neighbour (ablation baseline)
};

/// One level of the hierarchy: the contracted graph plus the projection
/// map from the finer level's vertices to this level's vertices.
struct CoarseLevel {
  graph::Graph graph;
  std::vector<graph::Vertex> fine_to_coarse;
};

/// Matches and contracts once. Unmatched vertices survive as singletons.
/// Coarse vertex weights are sums of their constituents; parallel coarse
/// edges merge with summed weights; intra-pair edges vanish.
/// Precondition: g undirected.
CoarseLevel coarsen_once(const graph::Graph& g, MatchingScheme scheme,
                         util::Rng& rng);

/// Builds the full hierarchy, stopping when the coarsest graph has at most
/// `target_vertices` vertices or a round shrinks the graph by less than
/// ~5% (matching has stalled, e.g. on a star graph).
/// levels.front() is one step coarser than g; levels.back() is coarsest.
std::vector<CoarseLevel> coarsen(const graph::Graph& g,
                                 std::uint64_t target_vertices,
                                 MatchingScheme scheme, util::Rng& rng);

/// Deterministic parallel coarsening (mt-MLKP): parallel_matching +
/// parallel_contract per level, with the same target/stall stopping rule
/// as `coarsen`. Draws exactly one tie-break salt from `rng` per level
/// attempt, so the RNG stream advance — like the hierarchy itself — is
/// bit-identical for every `threads` value (0 = hardware concurrency).
std::vector<CoarseLevel> coarsen_mt(const graph::Graph& g,
                                    std::uint64_t target_vertices,
                                    MatchingScheme scheme, util::Rng& rng,
                                    std::size_t threads);

}  // namespace ethshard::partition
