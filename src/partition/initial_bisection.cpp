#include "partition/initial_bisection.hpp"

#include <cmath>
#include <queue>
#include <vector>

#include "util/check.hpp"

namespace ethshard::partition {

Partition greedy_grow_bisection(const graph::Graph& g,
                                double target_left_frac, util::Rng& rng) {
  ETHSHARD_CHECK(!g.directed());
  const std::uint64_t n = g.num_vertices();
  ETHSHARD_CHECK(n >= 1);
  ETHSHARD_CHECK(target_left_frac > 0.0 && target_left_frac < 1.0);

  // Everything starts on side 1; we grow side 0. A graph with all-zero
  // vertex weights is grown by vertex count instead.
  Partition p(n, 2, /*init=*/1);
  const bool unit_weights = g.total_vertex_weight() == 0;
  auto vertex_weight = [&](graph::Vertex v) -> graph::Weight {
    return unit_weights ? 1 : g.vertex_weight(v);
  };
  const double target_weight =
      target_left_frac *
      static_cast<double>(unit_weights ? n : g.total_vertex_weight());

  struct Entry {
    std::int64_t gain;
    graph::Vertex v;
    std::uint64_t stamp;
    bool operator<(const Entry& o) const { return gain < o.gain; }
  };

  std::vector<std::int64_t> gain(n, 0);
  std::vector<std::uint64_t> version(n, 0);
  std::vector<std::uint8_t> in_region(n, 0);
  std::vector<std::uint8_t> in_frontier(n, 0);
  std::priority_queue<Entry> pq;

  std::uint64_t grown_weight = 0;
  std::uint64_t grown_count = 0;

  auto add_to_region = [&](graph::Vertex v) {
    in_region[v] = 1;
    p.assign(v, 0);
    grown_weight += vertex_weight(v);
    ++grown_count;
    for (const graph::Arc& a : g.neighbors(v)) {
      const graph::Vertex u = a.to;
      if (in_region[u]) continue;
      // Invariant: gain(u) = region_edges(u) - outside_edges(u)
      //                    = 2 · region_edges(u) - weighted_degree(u).
      if (!in_frontier[u]) {
        gain[u] = -static_cast<std::int64_t>(g.weighted_degree(u));
        in_frontier[u] = 1;
      }
      // Absorbing v moved edge (u,v) from outside to region.
      gain[u] += 2 * static_cast<std::int64_t>(a.weight);
      ++version[u];
      pq.push(Entry{gain[u], u, version[u]});
    }
  };

  // Grow until the target weight is reached, but always leave at least one
  // vertex on side 1.
  while (static_cast<double>(grown_weight) < target_weight &&
         grown_count + 1 < n) {
    graph::Vertex pick = graph::Graph::kInvalid;
    while (!pq.empty()) {
      const Entry e = pq.top();
      pq.pop();
      if (e.stamp == version[e.v] && !in_region[e.v]) {
        pick = e.v;
        break;
      }
    }
    if (pick == graph::Graph::kInvalid) {
      // Disconnected remainder: restart from a random unvisited vertex.
      graph::Vertex v = static_cast<graph::Vertex>(rng.uniform(n));
      while (in_region[v]) v = (v + 1) % n;
      pick = v;
    }
    add_to_region(pick);
  }
  return p;
}

Partition initial_bisection(const graph::Graph& g, double target_left_frac,
                            const FmConfig& fm, int tries, util::Rng& rng) {
  ETHSHARD_CHECK(tries >= 1);
  Partition best;
  graph::Weight best_cut = 0;
  bool have_best = false;
  for (int attempt = 0; attempt < tries; ++attempt) {
    Partition p = greedy_grow_bisection(g, target_left_frac, rng);
    const graph::Weight cut = fm_refine_bisection(g, p, target_left_frac,
                                                  fm, rng);
    if (!have_best || cut < best_cut) {
      best = std::move(p);
      best_cut = cut;
      have_best = true;
    }
  }
  return best;
}

}  // namespace ethshard::partition
