#include "partition/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "partition/recursive_bisection.hpp"
#include "util/check.hpp"

namespace ethshard::partition {

namespace {

/// Removes the component along the all-ones direction and normalizes.
void orthonormalize(std::vector<double>& x) {
  const double n = static_cast<double>(x.size());
  const double mean =
      std::accumulate(x.begin(), x.end(), 0.0) / std::max(n, 1.0);
  double norm = 0;
  for (double& v : x) {
    v -= mean;
    norm += v * v;
  }
  norm = std::sqrt(norm);
  if (norm > 0)
    for (double& v : x) v /= norm;
}

}  // namespace

std::vector<double> fiedler_vector(const graph::Graph& g,
                                   const SpectralConfig& cfg) {
  ETHSHARD_CHECK(!g.directed());
  const std::uint64_t n = g.num_vertices();
  ETHSHARD_CHECK(n >= 2);

  // Shift: M = cI - L has the Fiedler direction as its dominant
  // eigenvector within the subspace orthogonal to 1. c bounds L's
  // spectrum: c = 2 · max weighted degree.
  double shift = 0;
  for (graph::Vertex v = 0; v < n; ++v)
    shift = std::max(shift, static_cast<double>(g.weighted_degree(v)));
  shift = 2.0 * std::max(shift, 1.0);

  util::Rng rng(cfg.seed);
  std::vector<double> x(n);
  for (double& v : x) v = rng.uniform01() - 0.5;
  orthonormalize(x);

  std::vector<double> next(n);
  for (int it = 0; it < cfg.iterations; ++it) {
    // next = (shift·I − L)·x = shift·x − D·x + W·x
    for (graph::Vertex v = 0; v < n; ++v) {
      double acc =
          (shift - static_cast<double>(g.weighted_degree(v))) * x[v];
      for (const graph::Arc& a : g.neighbors(v))
        acc += static_cast<double>(a.weight) * x[a.to];
      next[v] = acc;
    }
    orthonormalize(next);
    double delta = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      const double d = next[i] - x[i];
      delta += d * d;
    }
    x.swap(next);
    if (std::sqrt(delta) < cfg.tolerance) break;
  }
  return x;
}

Partition SpectralPartitioner::partition(const graph::Graph& input,
                                         std::uint32_t k) {
  ETHSHARD_CHECK(k >= 1);
  const graph::Graph undirected_storage =
      input.directed() ? input.to_undirected() : graph::Graph{};
  const graph::Graph& g = input.directed() ? undirected_storage : input;

  const std::uint64_t n = g.num_vertices();
  if (k == 1 || n == 0) return Partition(n, k, 0);
  if (n <= k) {
    Partition p(n, k);
    for (graph::Vertex v = 0; v < n; ++v)
      p.assign(v, static_cast<ShardId>(v % k));
    return p;
  }

  util::Rng rng(cfg_.seed);
  const FmConfig fm{cfg_.imbalance, 8};
  auto bisect = [this, &fm](const graph::Graph& sub, double frac,
                            util::Rng& r) {
    const std::uint64_t sn = sub.num_vertices();
    Partition p(sn, 2, 1);
    if (sn >= 2) {
      SpectralConfig cfg = cfg_;
      cfg.seed = r.next();
      const std::vector<double> fiedler = fiedler_vector(sub, cfg);

      // Sort by Fiedler value; take the smallest prefix reaching the
      // target weight fraction.
      std::vector<graph::Vertex> order(sn);
      std::iota(order.begin(), order.end(), graph::Vertex{0});
      std::sort(order.begin(), order.end(),
                [&](graph::Vertex a, graph::Vertex b) {
                  return fiedler[a] < fiedler[b];
                });
      const bool unit = sub.total_vertex_weight() == 0;
      const double total = static_cast<double>(
          unit ? sn : sub.total_vertex_weight());
      double acc = 0;
      std::uint64_t taken = 0;
      for (graph::Vertex v : order) {
        if (acc >= frac * total || taken + 1 >= sn) break;
        p.assign(v, 0);
        acc += static_cast<double>(unit ? 1 : sub.vertex_weight(v));
        ++taken;
      }
    }
    if (cfg_.fm_polish) fm_refine_bisection(sub, p, frac, fm, r);
    return p;
  };
  return recursive_bisection(g, k, bisect, rng);
}

}  // namespace ethshard::partition
