#include "partition/hash_partitioner.hpp"

#include "util/check.hpp"
#include "util/hash.hpp"

namespace ethshard::partition {

ShardId HashPartitioner::shard_of(graph::Vertex id, std::uint32_t k) const {
  ETHSHARD_CHECK(k >= 1);
  return static_cast<ShardId>(util::mix64(id ^ salt_) % k);
}

Partition HashPartitioner::partition(const graph::Graph& g, std::uint32_t k) {
  Partition p(g.num_vertices(), k);
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v)
    p.assign(v, shard_of(v, k));
  return p;
}

}  // namespace ethshard::partition
