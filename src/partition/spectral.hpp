// Spectral bisection.
//
// The classical eigenvector method: split along the median of the Fiedler
// vector (the eigenvector of the graph Laplacian's second-smallest
// eigenvalue), computed with shifted power iteration and deflation
// against the constant vector. Completes the library's baseline spectrum
// — stateless (hashing) / streaming (LDG, Fennel) / local-search (KL) /
// multilevel (MLKP) / spectral — for the microbenchmark comparisons.
#pragma once

#include <vector>

#include "partition/fm.hpp"
#include "partition/partitioner.hpp"
#include "util/rng.hpp"

namespace ethshard::partition {

struct SpectralConfig {
  /// Power-iteration steps for the Fiedler vector.
  int iterations = 300;
  /// Early-exit when the iterate moves less than this (L2, normalized).
  double tolerance = 1e-9;
  /// Polish the spectral split with FM (recommended: the median split
  /// ignores edge weights near the cut line).
  bool fm_polish = true;
  double imbalance = 0.03;
  std::uint64_t seed = 1;
};

/// Approximate Fiedler vector of the (weighted) Laplacian of g.
/// Precondition: g undirected, num_vertices() >= 2. Exposed for tests.
std::vector<double> fiedler_vector(const graph::Graph& g,
                                   const SpectralConfig& cfg);

class SpectralPartitioner final : public Partitioner {
 public:
  explicit SpectralPartitioner(SpectralConfig cfg = {}) : cfg_(cfg) {}

  /// k-way by recursive spectral bisection; accepts directed input
  /// (symmetrized internally).
  Partition partition(const graph::Graph& g, std::uint32_t k) override;

  std::string name() const override { return "Spectral"; }

 private:
  SpectralConfig cfg_;
};

}  // namespace ethshard::partition
