// Fiduccia–Mattheyses-style 2-way refinement.
//
// This is the move-based local refinement engine underlying both the
// Kernighan–Lin partitioner and the multilevel partitioner (initial
// bisection polish + uncoarsening refinement). Vertices move one at a
// time between the two sides in best-gain order under a balance
// constraint; each pass keeps the best prefix of its move sequence
// (allowing escapes from shallow local minima, the classic KL/FM idea).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "partition/types.hpp"
#include "util/rng.hpp"

namespace ethshard::partition {

/// Tuning knobs for 2-way FM refinement.
struct FmConfig {
  /// Allowed relative overweight of either side: side weight may reach
  /// target · total · (1 + imbalance). METIS's default tolerance is 3%.
  double imbalance = 0.03;
  /// Maximum refinement passes; a pass that improves nothing stops early.
  int max_passes = 8;
};

/// Refines a complete 2-way partition of `g` in place.
///
/// `target_left_frac` is the desired fraction of total vertex weight on
/// shard 0 (0.5 for a plain bisection; other values arise in recursive
/// bisection for non-power-of-two k).
///
/// A side's weight cap is never below the heaviest single vertex, so a
/// graph with one dominant vertex remains refinable.
///
/// Preconditions: g undirected; p.k() == 2; p complete.
/// Returns the resulting edge-cut weight.
graph::Weight fm_refine_bisection(const graph::Graph& g, Partition& p,
                                  double target_left_frac,
                                  const FmConfig& cfg, util::Rng& rng);

}  // namespace ethshard::partition
