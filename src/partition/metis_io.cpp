#include "partition/metis_io.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace ethshard::partition {

namespace {

/// Next non-comment line; false at EOF. Empty lines are returned when
/// `allow_empty` (a vertex with no neighbours has an empty line in the
/// METIS format) and skipped otherwise.
bool next_line(std::istream& in, std::string& line,
               bool allow_empty = false) {
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i < line.size() && line[i] == '%') continue;  // comment
    if (i == line.size() && !allow_empty) continue;   // blank
    return true;
  }
  return false;
}

std::vector<std::uint64_t> parse_numbers(const std::string& line) {
  std::vector<std::uint64_t> out;
  std::istringstream is(line);
  std::uint64_t v;
  while (is >> v) out.push_back(v);
  ETHSHARD_CHECK_MSG(is.eof(), "metis: non-numeric token in '" << line
                                                               << "'");
  return out;
}

}  // namespace

void write_metis_graph(std::ostream& out, const graph::Graph& g) {
  ETHSHARD_CHECK(!g.directed());
  out << "% written by ethshard (fmt=11: vertex+edge weights)\n";
  out << g.num_vertices() << ' ' << g.num_edges() << " 11\n";
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    out << g.vertex_weight(v);
    for (const graph::Arc& a : g.neighbors(v))
      out << ' ' << (a.to + 1) << ' ' << a.weight;
    out << '\n';
  }
}

graph::Graph read_metis_graph(std::istream& in) {
  std::string line;
  ETHSHARD_CHECK_MSG(next_line(in, line), "metis: empty graph file");
  const auto header = parse_numbers(line);
  ETHSHARD_CHECK_MSG(header.size() >= 2 && header.size() <= 3,
                     "metis: bad header");
  const std::uint64_t n = header[0];
  const std::uint64_t m = header[1];
  const std::uint64_t fmt = header.size() == 3 ? header[2] : 0;
  ETHSHARD_CHECK_MSG(fmt == 0 || fmt == 1 || fmt == 10 || fmt == 11,
                     "metis: unsupported fmt " << fmt);
  const bool has_vwgt = fmt >= 10;
  const bool has_ewgt = (fmt % 10) == 1;

  std::vector<std::vector<graph::Arc>> adjacency(n);
  std::vector<graph::Weight> vwgt(n, 1);

  for (std::uint64_t v = 0; v < n; ++v) {
    ETHSHARD_CHECK_MSG(next_line(in, line, /*allow_empty=*/true),
                       "metis: truncated at vertex " << v + 1);
    const auto nums = parse_numbers(line);
    std::size_t i = 0;
    if (has_vwgt) {
      ETHSHARD_CHECK_MSG(!nums.empty(), "metis: missing vertex weight");
      vwgt[v] = nums[i++];
    }
    while (i < nums.size()) {
      const std::uint64_t neighbor = nums[i++];
      ETHSHARD_CHECK_MSG(neighbor >= 1 && neighbor <= n,
                         "metis: neighbor index out of range");
      graph::Weight w = 1;
      if (has_ewgt) {
        ETHSHARD_CHECK_MSG(i < nums.size(),
                           "metis: dangling edge weight");
        w = nums[i++];
      }
      adjacency[v].push_back(graph::Arc{neighbor - 1, w});
    }
  }

  graph::Graph g = graph::Graph::from_adjacency(std::move(adjacency),
                                                std::move(vwgt),
                                                /*directed=*/false);
  ETHSHARD_CHECK_MSG(g.num_edges() == m,
                     "metis: header claims " << m << " edges, file lists "
                                             << g.num_edges());
  ETHSHARD_CHECK_MSG(g.check_symmetric(),
                     "metis: adjacency is not symmetric");
  return g;
}

Partition read_metis_partition(std::istream& in,
                               std::uint64_t num_vertices,
                               std::uint32_t k) {
  Partition p(num_vertices, k);
  std::string line;
  std::uint64_t v = 0;
  while (next_line(in, line)) {
    ETHSHARD_CHECK_MSG(v < num_vertices, "metis: too many partition lines");
    const auto nums = parse_numbers(line);
    ETHSHARD_CHECK_MSG(nums.size() == 1, "metis: bad partition line");
    ETHSHARD_CHECK_MSG(nums[0] < k, "metis: shard id out of range");
    p.assign(v++, static_cast<ShardId>(nums[0]));
  }
  ETHSHARD_CHECK_MSG(v == num_vertices,
                     "metis: expected " << num_vertices
                                        << " partition lines, got " << v);
  return p;
}

void write_metis_partition(std::ostream& out, const Partition& p) {
  for (graph::Vertex v = 0; v < p.size(); ++v) {
    ETHSHARD_CHECK_MSG(p.shard_of(v) != kUnassigned,
                       "metis: partition has unassigned vertices");
    out << p.shard_of(v) << '\n';
  }
}

}  // namespace ethshard::partition
