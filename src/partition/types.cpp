#include "partition/types.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ethshard::partition {

Partition::Partition(std::uint64_t n, std::uint32_t k, ShardId init)
    : assign_(n, init), k_(k) {
  ETHSHARD_CHECK(k >= 1);
  ETHSHARD_CHECK(init == kUnassigned || init < k);
}

void Partition::assign(graph::Vertex v, ShardId s) {
  ETHSHARD_CHECK(v < assign_.size());
  ETHSHARD_CHECK(s == kUnassigned || s < k_);
  assign_[v] = s;
}

graph::Vertex Partition::append(ShardId s) {
  ETHSHARD_CHECK(s == kUnassigned || s < k_);
  assign_.push_back(s);
  return assign_.size() - 1;
}

bool Partition::is_complete() const {
  return std::all_of(assign_.begin(), assign_.end(),
                     [](ShardId s) { return s != kUnassigned; });
}

std::vector<std::uint64_t> Partition::shard_sizes() const {
  std::vector<std::uint64_t> sizes(k_, 0);
  for (ShardId s : assign_)
    if (s != kUnassigned) ++sizes[s];
  return sizes;
}

std::vector<graph::Weight> Partition::shard_weights(
    const graph::Graph& g) const {
  ETHSHARD_CHECK(g.num_vertices() == assign_.size());
  std::vector<graph::Weight> weights(k_, 0);
  for (graph::Vertex v = 0; v < assign_.size(); ++v)
    if (assign_[v] != kUnassigned) weights[assign_[v]] += g.vertex_weight(v);
  return weights;
}

graph::Weight edge_cut_weight(const graph::Graph& g, const Partition& p) {
  ETHSHARD_CHECK(g.num_vertices() == p.size());
  graph::Weight cut = 0;
  for (graph::Vertex u = 0; u < g.num_vertices(); ++u) {
    const ShardId su = p.shard_of(u);
    if (su == kUnassigned) continue;
    for (const graph::Arc& a : g.neighbors(u)) {
      const ShardId sv = p.shard_of(a.to);
      if (sv == kUnassigned || sv == su) continue;
      if (g.directed() || u < a.to) cut += a.weight;
    }
  }
  return cut;
}

std::uint64_t edge_cut_count(const graph::Graph& g, const Partition& p) {
  ETHSHARD_CHECK(g.num_vertices() == p.size());
  std::uint64_t cut = 0;
  for (graph::Vertex u = 0; u < g.num_vertices(); ++u) {
    const ShardId su = p.shard_of(u);
    if (su == kUnassigned) continue;
    for (const graph::Arc& a : g.neighbors(u)) {
      const ShardId sv = p.shard_of(a.to);
      if (sv == kUnassigned || sv == su) continue;
      if (g.directed() || u < a.to) ++cut;
    }
  }
  return cut;
}

void align_partition_labels(const Partition& reference, Partition* target) {
  ETHSHARD_CHECK(target != nullptr);
  ETHSHARD_CHECK(reference.k() == target->k());
  const std::uint32_t k = target->k();
  if (k <= 1) return;

  const std::uint64_t n = std::min(reference.size(), target->size());
  std::vector<std::uint64_t> overlap(static_cast<std::size_t>(k) * k, 0);
  for (graph::Vertex v = 0; v < n; ++v) {
    const ShardId a = target->shard_of(v);
    const ShardId b = reference.shard_of(v);
    if (a == kUnassigned || b == kUnassigned) continue;
    ++overlap[static_cast<std::size_t>(a) * k + b];
  }

  // Greedy maximum-overlap matching: repeatedly fix the (new, old) pair
  // with the largest shared population.
  std::vector<ShardId> rename(k, kUnassigned);
  std::vector<bool> old_used(k, false);
  for (std::uint32_t round = 0; round < k; ++round) {
    std::uint64_t best = 0;
    std::uint32_t bi = k;
    std::uint32_t bj = k;
    for (std::uint32_t i = 0; i < k; ++i) {
      if (rename[i] != kUnassigned) continue;
      for (std::uint32_t j = 0; j < k; ++j) {
        if (old_used[j]) continue;
        const std::uint64_t o = overlap[static_cast<std::size_t>(i) * k + j];
        if (bi == k || o > best) {
          best = o;
          bi = i;
          bj = j;
        }
      }
    }
    if (bi == k) break;
    rename[bi] = bj;
    old_used[bj] = true;
  }

  for (graph::Vertex v = 0; v < target->size(); ++v) {
    const ShardId s = target->shard_of(v);
    if (s != kUnassigned) target->assign(v, rename[s]);
  }
}

std::uint64_t count_moves(const Partition& before, const Partition& after) {
  const std::uint64_t n = std::min(before.size(), after.size());
  std::uint64_t moves = 0;
  for (graph::Vertex v = 0; v < n; ++v) {
    const ShardId a = before.shard_of(v);
    const ShardId b = after.shard_of(v);
    if (a != kUnassigned && b != kUnassigned && a != b) ++moves;
  }
  return moves;
}

}  // namespace ethshard::partition
