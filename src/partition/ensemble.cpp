#include "partition/ensemble.hpp"

#include "util/check.hpp"

namespace ethshard::partition {

EnsemblePartitioner::EnsemblePartitioner(
    std::function<std::unique_ptr<Partitioner>(std::uint64_t)> factory,
    int tries, std::uint64_t base_seed)
    : factory_(std::move(factory)), tries_(tries), base_seed_(base_seed) {
  ETHSHARD_CHECK(tries_ >= 1);
  ETHSHARD_CHECK(static_cast<bool>(factory_));
}

Partition EnsemblePartitioner::partition(const graph::Graph& input,
                                         std::uint32_t k) {
  const graph::Graph undirected_storage =
      input.directed() ? input.to_undirected() : graph::Graph{};
  const graph::Graph& g = input.directed() ? undirected_storage : input;

  Partition best;
  bool have = false;
  for (int attempt = 0; attempt < tries_; ++attempt) {
    const std::unique_ptr<Partitioner> inner =
        factory_(base_seed_ + static_cast<std::uint64_t>(attempt));
    ETHSHARD_CHECK(inner != nullptr);
    Partition p = inner->partition(g, k);
    const graph::Weight cut = edge_cut_weight(g, p);
    if (!have || cut < last_best_cut_) {
      best = std::move(p);
      last_best_cut_ = cut;
      have = true;
    }
  }
  return best;
}

}  // namespace ethshard::partition
