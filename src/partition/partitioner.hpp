// Abstract interface implemented by every partitioning method.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "partition/types.hpp"

namespace ethshard::partition {

/// A graph partitioner: maps an (undirected, weighted) graph to a complete
/// assignment of its vertices to k shards.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Computes a complete k-way partition of g.
  /// Preconditions: k >= 1; g is the symmetrized blockchain graph (or any
  /// undirected weighted graph).
  virtual Partition partition(const graph::Graph& g, std::uint32_t k) = 0;

  /// Human-readable method name (used in reports and figures).
  virtual std::string name() const = 0;
};

}  // namespace ethshard::partition
