// Recursive bisection: k-way partitioning by repeated 2-way splits.
//
// Used to compute the initial k-way partition of the coarsest graph in
// the multilevel scheme, and standalone by the Kernighan–Lin partitioner.
// Non-power-of-two k is handled with proportional weight targets
// (splitting k into ⌈k/2⌉ and ⌊k/2⌋).
#pragma once

#include "graph/graph.hpp"
#include "partition/fm.hpp"
#include "partition/types.hpp"
#include "util/rng.hpp"

namespace ethshard::partition {

/// Computes a complete k-way partition of `g` by recursive bisection,
/// each split made with `bisect` — a callable
/// Partition(const graph::Graph&, double target_left_frac, util::Rng&)
/// returning a complete 2-way partition.
template <typename Bisector>
Partition recursive_bisection(const graph::Graph& g, std::uint32_t k,
                              Bisector&& bisect, util::Rng& rng) {
  Partition result(g.num_vertices(), k, /*init=*/0);
  if (k <= 1 || g.num_vertices() == 0) return result;

  const std::uint32_t k_left = (k + 1) / 2;
  const std::uint32_t k_right = k - k_left;
  const double frac = static_cast<double>(k_left) / static_cast<double>(k);

  const Partition split = bisect(g, frac, rng);

  std::vector<graph::Vertex> left;
  std::vector<graph::Vertex> right;
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v)
    (split.shard_of(v) == 0 ? left : right).push_back(v);

  if (k_left > 1 && !left.empty()) {
    const graph::Graph sub = g.induced_subgraph(left);
    const Partition sp =
        recursive_bisection(sub, k_left, bisect, rng);
    for (std::size_t i = 0; i < left.size(); ++i)
      result.assign(left[i], sp.shard_of(i));
  } else {
    for (graph::Vertex v : left) result.assign(v, 0);
  }

  if (k_right > 1 && !right.empty()) {
    const graph::Graph sub = g.induced_subgraph(right);
    const Partition sp =
        recursive_bisection(sub, k_right, bisect, rng);
    for (std::size_t i = 0; i < right.size(); ++i)
      result.assign(right[i], k_left + sp.shard_of(i));
  } else {
    for (graph::Vertex v : right) result.assign(v, k_left);
  }
  return result;
}

/// Recursive bisection using greedy-graph-growing + FM at every split.
Partition recursive_bisection_ggg(const graph::Graph& g, std::uint32_t k,
                                  const FmConfig& fm, int tries,
                                  util::Rng& rng);

}  // namespace ethshard::partition
