// Streaming (single-pass) graph partitioners.
//
// The paper's online placement rule (§II-C: put a new account on the
// shard where most of its transaction peers live, tie-break on balance)
// is a degenerate streaming heuristic. These are the two standard
// full-strength versions from the literature, useful as additional
// baselines between hashing (stateless) and multilevel (offline):
//
//  * LDG (Linear Deterministic Greedy), Stanton & Kliot 2012:
//      argmax_i |N(v) ∩ P_i| · (1 − |P_i|/C)
//  * Fennel, Tsourakakis et al. 2014:
//      argmax_i |N(v) ∩ P_i| − α·γ/2 · |P_i|^{γ−1}
//
// Vertices arrive in id order (the blockchain's creation order); only
// already-assigned neighbours contribute, exactly as in a real stream.
#pragma once

#include "partition/partitioner.hpp"

namespace ethshard::partition {

struct LdgConfig {
  /// Capacity factor: each shard holds at most slack·n/k vertices.
  double balance_slack = 1.1;
};

class LdgPartitioner final : public Partitioner {
 public:
  explicit LdgPartitioner(LdgConfig cfg = {}) : cfg_(cfg) {}

  Partition partition(const graph::Graph& g, std::uint32_t k) override;
  std::string name() const override { return "LDG"; }

 private:
  LdgConfig cfg_;
};

struct FennelConfig {
  /// Load-cost exponent γ (> 1); the paper's recommended 1.5.
  double gamma = 1.5;
  /// Capacity factor, as in LDG.
  double balance_slack = 1.1;
  /// Interpolation constant α; 0 → the authors' default
  /// α = √k · m / n^{3/2}.
  double alpha = 0;
};

class FennelPartitioner final : public Partitioner {
 public:
  explicit FennelPartitioner(FennelConfig cfg = {}) : cfg_(cfg) {}

  Partition partition(const graph::Graph& g, std::uint32_t k) override;
  std::string name() const override { return "Fennel"; }

 private:
  FennelConfig cfg_;
};

}  // namespace ethshard::partition
