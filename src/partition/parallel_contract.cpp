#include "partition/parallel_contract.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace ethshard::partition {

namespace {

// Fixed grain: the chunk decomposition (and the per-chunk edge buffers)
// must depend only on the coarse vertex count, never on the thread count.
constexpr std::size_t kGrain = 2048;

}  // namespace

CoarseLevel parallel_contract(const graph::Graph& g,
                              const std::vector<graph::Vertex>& match,
                              std::size_t threads) {
  ETHSHARD_CHECK(!g.directed());
  const std::uint64_t n = g.num_vertices();
  ETHSHARD_CHECK(match.size() == n);

  // The smaller endpoint of each pair owns the coarse id; ids are dense
  // in owner order (an exclusive prefix sum over owner flags).
  std::vector<std::uint64_t> ids(n);
  util::parallel_for_chunked(
      n, kGrain,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (graph::Vertex v = begin; v < end; ++v)
          ids[v] = v <= match[v] ? 1 : 0;
      },
      threads);
  const std::uint64_t cn = util::exclusive_prefix_sum(ids, threads);

  std::vector<graph::Vertex> fine_to_coarse(n);
  std::vector<graph::Vertex> owners(cn);
  util::parallel_for_chunked(
      n, kGrain,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (graph::Vertex v = begin; v < end; ++v) {
          if (v <= match[v]) {
            fine_to_coarse[v] = ids[v];
            owners[ids[v]] = v;
          } else {
            fine_to_coarse[v] = ids[match[v]];
          }
        }
      },
      threads);

  std::vector<graph::Weight> cvwgt(cn);
  util::parallel_for_chunked(
      cn, kGrain,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::uint64_t c = begin; c < end; ++c) {
          const graph::Vertex v = owners[c];
          const graph::Vertex u = match[v];
          cvwgt[c] =
              g.vertex_weight(v) + (u != v ? g.vertex_weight(u) : 0);
        }
      },
      threads);

  // Gather each coarse vertex's arcs into per-chunk buffers (merged and
  // sorted per vertex), then lay them out contiguously via prefix sums.
  const std::size_t chunks = util::chunk_count(cn, kGrain);
  std::vector<std::vector<graph::Arc>> buffers(chunks);
  std::vector<std::uint64_t> xadj(cn + 1, 0);
  util::parallel_for_chunked(
      cn, kGrain,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        std::vector<graph::Arc>& buf = buffers[chunk];
        std::vector<graph::Arc> scratch;
        for (std::uint64_t c = begin; c < end; ++c) {
          scratch.clear();
          const graph::Vertex v = owners[c];
          const graph::Vertex u = match[v];
          auto gather = [&](graph::Vertex x) {
            for (const graph::Arc& a : g.neighbors(x)) {
              const graph::Vertex cv = fine_to_coarse[a.to];
              if (cv == c) continue;  // intra-pair or self-loop: vanishes
              scratch.push_back(graph::Arc{cv, a.weight});
            }
          };
          gather(v);
          if (u != v) gather(u);
          std::sort(scratch.begin(), scratch.end(),
                    [](const graph::Arc& a, const graph::Arc& b) {
                      return a.to < b.to;
                    });
          std::uint64_t deg = 0;
          for (std::size_t i = 0; i < scratch.size();) {
            graph::Arc merged = scratch[i];
            for (++i; i < scratch.size() && scratch[i].to == merged.to; ++i)
              merged.weight += scratch[i].weight;
            buf.push_back(merged);
            ++deg;
          }
          xadj[c] = deg;
        }
      },
      threads);

  const std::uint64_t total_arcs = util::exclusive_prefix_sum(xadj, threads);
  std::vector<graph::Arc> adj(total_arcs);
  util::parallel_for_chunked(
      cn, kGrain,
      [&](std::size_t chunk, std::size_t begin, std::size_t) {
        std::copy(buffers[chunk].begin(), buffers[chunk].end(),
                  adj.begin() + static_cast<std::ptrdiff_t>(xadj[begin]));
      },
      threads);

  CoarseLevel level;
  level.graph = graph::Graph::from_csr(std::move(xadj), std::move(adj),
                                       std::move(cvwgt), /*directed=*/false);
  level.fine_to_coarse = std::move(fine_to_coarse);
  return level;
}

}  // namespace ethshard::partition
