#include "partition/blp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace ethshard::partition {

namespace {

struct Candidate {
  graph::Vertex v;
  std::int64_t gain;
  graph::Weight weight;  // balance weight of v (>= 1 so quotas make progress)
};

}  // namespace

BlpStats BalancedLabelPropagation::refine(const graph::Graph& g,
                                          Partition& p) {
  ETHSHARD_CHECK(!g.directed());
  ETHSHARD_CHECK(g.num_vertices() == p.size());
  ETHSHARD_CHECK(p.is_complete());
  ETHSHARD_OBS_TIMER("blp/refine_ms");
  ETHSHARD_OBS_SPAN("blp");
  ETHSHARD_OBS_COUNT("blp/invocations", 1);

  const std::uint64_t n = g.num_vertices();
  const std::uint32_t k = p.k();
  util::Rng rng(cfg_.seed);

  BlpStats stats;
  stats.cut_before = edge_cut_weight(g, p);
  stats.cut_after = stats.cut_before;
  if (n == 0 || k <= 1) return stats;

  // Balance weight: vertex activity, floored at 1 so inactive vertices
  // still consume quota and the exchange terminates.
  auto bal_weight = [&](graph::Vertex v) -> graph::Weight {
    return std::max<graph::Weight>(g.vertex_weight(v), 1);
  };

  std::vector<graph::Weight> shard_weight(k, 0);
  for (graph::Vertex v = 0; v < n; ++v)
    shard_weight[p.shard_of(v)] += bal_weight(v);
  const double target = 0.0 + static_cast<double>(std::accumulate(
                                  shard_weight.begin(), shard_weight.end(),
                                  graph::Weight{0})) /
                                  static_cast<double>(k);

  // Scratch for per-vertex shard connectivity (stamped lazy reset).
  std::vector<graph::Weight> conn(k, 0);
  std::vector<std::uint64_t> conn_stamp(k, 0);
  std::uint64_t stamp = 0;

  for (int round = 0; round < cfg_.rounds; ++round) {
    ++stats.rounds_run;

    // Phase 1 (each shard, locally): pick move candidates with positive
    // gain and their preferred destination.
    std::vector<std::vector<Candidate>> want(
        static_cast<std::size_t>(k) * k);
    for (graph::Vertex v = 0; v < n; ++v) {
      const ShardId cur = p.shard_of(v);
      ++stamp;
      bool boundary = false;
      for (const graph::Arc& a : g.neighbors(v)) {
        const ShardId s = p.shard_of(a.to);
        if (conn_stamp[s] != stamp) {
          conn_stamp[s] = stamp;
          conn[s] = 0;
        }
        conn[s] += a.weight;
        if (s != cur) boundary = true;
      }
      if (!boundary) continue;
      const graph::Weight conn_cur =
          conn_stamp[cur] == stamp ? conn[cur] : 0;

      ShardId best = cur;
      std::int64_t best_gain = 0;
      for (const graph::Arc& a : g.neighbors(v)) {
        const ShardId t = p.shard_of(a.to);
        if (t == cur) continue;
        const std::int64_t gain = static_cast<std::int64_t>(conn[t]) -
                                  static_cast<std::int64_t>(conn_cur);
        if (gain > best_gain) {
          best = t;
          best_gain = gain;
        }
      }
      if (best == cur) continue;
      want[static_cast<std::size_t>(cur) * k + best].push_back(
          Candidate{v, best_gain, bal_weight(v)});
    }

    // Phase 2 (oracle): per ordered pair (s,t), the movable weight is the
    // pairwise-matched mass plus a rebalancing allowance toward
    // underloaded shards.
    std::vector<double> mass(static_cast<std::size_t>(k) * k, 0);
    for (std::uint32_t s = 0; s < k; ++s)
      for (std::uint32_t t = 0; t < k; ++t)
        for (const Candidate& c :
             want[static_cast<std::size_t>(s) * k + t])
          mass[static_cast<std::size_t>(s) * k + t] +=
              static_cast<double>(c.weight);

    std::vector<double> quota(static_cast<std::size_t>(k) * k, 0);
    for (std::uint32_t s = 0; s < k; ++s) {
      for (std::uint32_t t = 0; t < k; ++t) {
        if (s == t) continue;
        const double m_st = mass[static_cast<std::size_t>(s) * k + t];
        const double m_ts = mass[static_cast<std::size_t>(t) * k + s];
        const double over_s = std::max(
            0.0, static_cast<double>(shard_weight[s]) - target);
        const double under_t = std::max(
            0.0, target - static_cast<double>(shard_weight[t]));
        quota[static_cast<std::size_t>(s) * k + t] =
            std::min(m_st, m_ts) +
            cfg_.rebalance * std::min(over_s, under_t);
      }
    }

    // Phase 3 (each shard): exchange vertices within quota.
    std::uint64_t moved_this_round = 0;
    std::vector<std::pair<graph::Vertex, ShardId>> moves;
    for (std::uint32_t s = 0; s < k; ++s) {
      for (std::uint32_t t = 0; t < k; ++t) {
        if (s == t) continue;
        auto& cands = want[static_cast<std::size_t>(s) * k + t];
        if (cands.empty()) continue;
        const double q = quota[static_cast<std::size_t>(s) * k + t];
        if (q <= 0) continue;
        if (cfg_.probabilistic) {
          const double m = mass[static_cast<std::size_t>(s) * k + t];
          const double prob = std::min(1.0, q / m);
          for (const Candidate& c : cands)
            if (rng.bernoulli(prob)) moves.emplace_back(c.v, t);
        } else {
          std::sort(cands.begin(), cands.end(),
                    [](const Candidate& a, const Candidate& b) {
                      return a.gain > b.gain;
                    });
          double used = 0;
          for (const Candidate& c : cands) {
            if (used + static_cast<double>(c.weight) > q) break;
            used += static_cast<double>(c.weight);
            moves.emplace_back(c.v, t);
          }
        }
      }
    }
    for (auto [v, t] : moves) {
      const ShardId cur = p.shard_of(v);
      shard_weight[cur] -= bal_weight(v);
      shard_weight[t] += bal_weight(v);
      p.assign(v, t);
      ++moved_this_round;
    }
    stats.moved += moved_this_round;
    if (moved_this_round == 0) break;
  }

  stats.cut_after = edge_cut_weight(g, p);
  ETHSHARD_OBS_COUNT("blp/rounds", static_cast<std::uint64_t>(stats.rounds_run));
  ETHSHARD_OBS_COUNT("blp/moved", stats.moved);
  return stats;
}

}  // namespace ethshard::partition
