// METIS file-format interoperability.
//
// The paper partitions with the real METIS binary. This module writes our
// graphs in METIS's .graph format (so `gpmetis graph.metis k` can be run
// on them unmodified) and reads both .graph files and the .part.k output
// files METIS produces — letting anyone cross-check MlkpPartitioner
// against the original implementation on identical inputs.
//
// Format (METIS 5.x manual §4.5): first non-comment line "n m [fmt]",
// fmt ∈ {"0","1","10","11"} for (vertex weights?, edge weights?); then n
// lines, line i listing vertex i's [weight] and its "neighbor weight"
// pairs with 1-based neighbor indices. '%' starts a comment line.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"
#include "partition/types.hpp"

namespace ethshard::partition {

/// Writes an undirected graph in METIS .graph format, including vertex
/// and edge weights (fmt=11). Precondition: g undirected.
void write_metis_graph(std::ostream& out, const graph::Graph& g);

/// Parses a METIS .graph file (fmt 0/1/10/11; no multi-constraint
/// ncon). Validates symmetry of the listed adjacency. Throws
/// util::CheckFailure on malformed input.
graph::Graph read_metis_graph(std::istream& in);

/// Reads a METIS partition file (one 0-based shard id per line, one line
/// per vertex). `k` = number of shards the file was produced for; ids
/// must lie in [0, k). Throws util::CheckFailure on malformed input or a
/// vertex-count mismatch.
Partition read_metis_partition(std::istream& in, std::uint64_t num_vertices,
                               std::uint32_t k);

/// Writes a partition in METIS .part format.
void write_metis_partition(std::ostream& out, const Partition& p);

}  // namespace ethshard::partition
