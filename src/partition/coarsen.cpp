#include "partition/coarsen.hpp"

#include <unordered_map>

#include "obs/obs.hpp"
#include "partition/parallel_contract.hpp"
#include "partition/parallel_match.hpp"
#include "util/check.hpp"

namespace ethshard::partition {

CoarseLevel coarsen_once(const graph::Graph& g, MatchingScheme scheme,
                         util::Rng& rng) {
  ETHSHARD_CHECK(!g.directed());
  const std::uint64_t n = g.num_vertices();

  constexpr graph::Vertex kUnmatched = graph::Graph::kInvalid;
  std::vector<graph::Vertex> match(n, kUnmatched);

  std::vector<graph::Vertex> order(n);
  for (graph::Vertex v = 0; v < n; ++v) order[v] = v;
  rng.shuffle(order);

  for (graph::Vertex v : order) {
    if (match[v] != kUnmatched) continue;
    graph::Vertex partner = v;  // default: singleton
    if (scheme == MatchingScheme::kHeavyEdge) {
      graph::Weight best = 0;
      for (const graph::Arc& a : g.neighbors(v)) {
        if (match[a.to] != kUnmatched || a.to == v) continue;
        if (a.weight > best) {
          best = a.weight;
          partner = a.to;
        }
      }
    } else {
      // Reservoir-sample one unmatched neighbour.
      std::uint64_t seen = 0;
      for (const graph::Arc& a : g.neighbors(v)) {
        if (match[a.to] != kUnmatched || a.to == v) continue;
        ++seen;
        if (rng.uniform(seen) == 0) partner = a.to;
      }
    }
    match[v] = partner;
    match[partner] = v;  // self-match when partner == v
  }

  // Number coarse vertices: the smaller endpoint of each pair owns the id.
  std::vector<graph::Vertex> fine_to_coarse(n, kUnmatched);
  graph::Vertex next = 0;
  for (graph::Vertex v = 0; v < n; ++v) {
    if (fine_to_coarse[v] != kUnmatched) continue;
    fine_to_coarse[v] = next;
    fine_to_coarse[match[v]] = next;  // no-op for singletons
    ++next;
  }
  const std::uint64_t cn = next;

  // Aggregate coarse vertex weights and edges.
  std::vector<graph::Weight> cvwgt(cn, 0);
  for (graph::Vertex v = 0; v < n; ++v)
    cvwgt[fine_to_coarse[v]] += g.vertex_weight(v);

  std::unordered_map<std::uint64_t, graph::Weight> cedges;
  for (graph::Vertex v = 0; v < n; ++v) {
    const graph::Vertex cu = fine_to_coarse[v];
    for (const graph::Arc& a : g.neighbors(v)) {
      if (a.to <= v) continue;  // each undirected edge once
      const graph::Vertex cv = fine_to_coarse[a.to];
      if (cu == cv) continue;  // contracted away
      const graph::Vertex lo = std::min(cu, cv);
      const graph::Vertex hi = std::max(cu, cv);
      cedges[(lo << 32) | hi] += a.weight;
    }
  }

  // Build CSR for the coarse graph.
  std::vector<std::uint64_t> deg(cn, 0);
  for (const auto& [key, w] : cedges) {
    ++deg[key >> 32];
    ++deg[key & 0xFFFFFFFFULL];
  }
  std::vector<std::uint64_t> xadj(cn + 1, 0);
  for (std::uint64_t v = 0; v < cn; ++v) xadj[v + 1] = xadj[v] + deg[v];
  std::vector<graph::Arc> adj(xadj[cn]);
  std::vector<std::uint64_t> fill = xadj;
  for (const auto& [key, w] : cedges) {
    const graph::Vertex lo = key >> 32;
    const graph::Vertex hi = key & 0xFFFFFFFFULL;
    adj[fill[lo]++] = graph::Arc{hi, w};
    adj[fill[hi]++] = graph::Arc{lo, w};
  }

  CoarseLevel level;
  level.graph = graph::Graph::from_csr(std::move(xadj), std::move(adj),
                                       std::move(cvwgt), /*directed=*/false);
  level.fine_to_coarse = std::move(fine_to_coarse);
  return level;
}

std::vector<CoarseLevel> coarsen(const graph::Graph& g,
                                 std::uint64_t target_vertices,
                                 MatchingScheme scheme, util::Rng& rng) {
  std::vector<CoarseLevel> levels;
  const graph::Graph* cur = &g;
  while (cur->num_vertices() > target_vertices) {
    CoarseLevel next = coarsen_once(*cur, scheme, rng);
    // Matching stalls (e.g. star graphs) → stop rather than loop forever.
    if (next.graph.num_vertices() >
        static_cast<std::uint64_t>(0.95 * static_cast<double>(
                                              cur->num_vertices())))
      break;
    levels.push_back(std::move(next));
    cur = &levels.back().graph;
  }
  return levels;
}

std::vector<CoarseLevel> coarsen_mt(const graph::Graph& g,
                                    std::uint64_t target_vertices,
                                    MatchingScheme scheme, util::Rng& rng,
                                    std::size_t threads) {
  std::vector<CoarseLevel> levels;
  const graph::Graph* cur = &g;
  while (cur->num_vertices() > target_vertices) {
    ETHSHARD_OBS_SPAN("level");
    const std::uint64_t fine_n = cur->num_vertices();
    ETHSHARD_OBS_HIST("mlkp/level_vertices", fine_n);
    const std::uint64_t salt = rng.next();
    std::vector<graph::Vertex> match;
    {
      ETHSHARD_OBS_TIMER("mlkp/match_ms");
      ETHSHARD_OBS_SPAN("match");
      match = parallel_matching(*cur, scheme, salt, threads);
    }
    CoarseLevel next;
    {
      ETHSHARD_OBS_TIMER("mlkp/contract_ms");
      ETHSHARD_OBS_SPAN("contract");
      next = parallel_contract(*cur, match, threads);
    }
    // Shrink factor of this level; a value near 1 means matching stalled.
    ETHSHARD_OBS_HIST("mlkp/level_shrink",
                      static_cast<double>(next.graph.num_vertices()) /
                          static_cast<double>(fine_n));
    // Matching stalls (e.g. star graphs) → stop rather than loop forever.
    if (next.graph.num_vertices() >
        static_cast<std::uint64_t>(0.95 * static_cast<double>(
                                              cur->num_vertices())))
      break;
    levels.push_back(std::move(next));
    cur = &levels.back().graph;
  }
  ETHSHARD_OBS_COUNT("mlkp/coarsen_levels", levels.size());
  return levels;
}

}  // namespace ethshard::partition
