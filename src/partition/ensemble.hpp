// Best-of-N ensemble partitioner.
//
// Randomized partitioners (multilevel, KL, spectral with random starts)
// have run-to-run variance; the cheapest quality boost is to run several
// seeds and keep the lowest cut among balanced results — how METIS users
// invoke it in practice for publication numbers.
#pragma once

#include <functional>
#include <memory>

#include "partition/partitioner.hpp"

namespace ethshard::partition {

class EnsemblePartitioner final : public Partitioner {
 public:
  /// Builds a fresh inner partitioner for each attempt: `factory(seed)`
  /// is called with seeds base_seed, base_seed+1, …, base_seed+tries−1.
  /// Preconditions: tries >= 1, factory non-null.
  EnsemblePartitioner(
      std::function<std::unique_ptr<Partitioner>(std::uint64_t seed)>
          factory,
      int tries = 4, std::uint64_t base_seed = 1);

  Partition partition(const graph::Graph& g, std::uint32_t k) override;
  std::string name() const override { return "Ensemble"; }

  /// Cut weight of the winning attempt from the last partition() call.
  graph::Weight last_best_cut() const { return last_best_cut_; }

 private:
  std::function<std::unique_ptr<Partitioner>(std::uint64_t)> factory_;
  int tries_;
  std::uint64_t base_seed_;
  graph::Weight last_best_cut_ = 0;
};

}  // namespace ethshard::partition
