// Deterministic parallel matching for multilevel coarsening (mt-MLKP).
//
// Round-based handshake matching with CAS-claimed vertices. Each round:
//
//   1. every unmatched vertex v computes its preferred unmatched
//      neighbour pref[v] from the round-start state — heaviest incident
//      edge first, ties broken by a salted symmetric edge hash and then
//      by the smaller vertex index (so both endpoints rank the shared
//      edge identically);
//   2. v CAS-claims pref[v]; concurrent claimants race, but the CAS loop
//      implements a min-reduction, so the *lowest-index* proposer wins
//      regardless of scheduling;
//   3. pairs form from mutually-claiming vertices, plus claim winners
//      whose target's own proposal failed (a second chance that keeps
//      the matching near-maximal without conflicts).
//
// Every step is either a pure function of the round-start state or an
// order-independent min-reduction, so for a fixed (graph, scheme, salt)
// the matching is bit-identical for every thread count — the invariance
// the mt-MLKP test suite leans on. Because preferences follow a shared
// total order on edges (weight desc, hash asc, index asc), the
// preference graph has no cycles longer than 2, which guarantees at
// least one pair forms whenever any proposal exists, so the round loop
// terminates.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "partition/coarsen.hpp"

namespace ethshard::partition {

/// Computes a matching of `g` (undirected, no self-loop partners):
/// match[v] == u and match[u] == v for a matched pair, match[v] == v for
/// a singleton. `salt` randomizes tie-breaks between equal-weight edges
/// (draw it from the partitioner RNG once per level). Deterministic for
/// fixed (g, scheme, salt) regardless of `threads` (0 = hardware).
std::vector<graph::Vertex> parallel_matching(const graph::Graph& g,
                                             MatchingScheme scheme,
                                             std::uint64_t salt,
                                             std::size_t threads);

}  // namespace ethshard::partition
