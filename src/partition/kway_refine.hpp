// Greedy k-way boundary refinement.
//
// The uncoarsening-phase refinement of the multilevel scheme: boundary
// vertices greedily move to the neighbouring shard with the strongest
// connectivity when the move reduces the cut (or keeps it equal while
// improving balance) and respects the weight cap. This is the k-way
// analogue of FM used by kMETIS.
#pragma once

#include "graph/graph.hpp"
#include "partition/types.hpp"
#include "util/rng.hpp"

namespace ethshard::partition {

struct KwayRefineConfig {
  /// Allowed relative overweight of a shard versus perfect balance.
  double imbalance = 0.03;
  /// Maximum passes over the boundary; stops early when a pass moves
  /// nothing.
  int max_passes = 8;
  /// Also accept zero-gain moves that strictly improve balance.
  bool balance_moves = true;
};

/// Refines a complete k-way partition in place; returns the resulting
/// edge-cut weight. Preconditions: g undirected; p complete;
/// p.size() == g.num_vertices().
graph::Weight kway_refine(const graph::Graph& g, Partition& p,
                          const KwayRefineConfig& cfg, util::Rng& rng);

/// Deterministic parallel variant (mt-MLKP): each pass proposes boundary
/// moves in parallel against the pass-start state (fixed-grain chunks, so
/// the proposal list is thread-count independent), then applies them
/// serially in ascending vertex order with gains recomputed against the
/// live state — same acceptance rules as `kway_refine`, but no RNG: the
/// result depends only on (g, p, cfg), never on `threads` (0 = hardware).
graph::Weight kway_refine_mt(const graph::Graph& g, Partition& p,
                             const KwayRefineConfig& cfg,
                             std::size_t threads);

}  // namespace ethshard::partition
