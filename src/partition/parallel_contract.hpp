// Deterministic parallel graph contraction (mt-MLKP coarsening phase 2).
//
// Given a matching, builds the coarse graph: each matched pair (and each
// singleton) becomes one coarse vertex owned by its smaller endpoint;
// coarse vertex weights are constituent sums; parallel coarse edges merge
// with summed weights; intra-pair edges vanish — identical semantics to
// the serial coarsen_once.
//
// Parallelism is by fixed-grain chunks of coarse vertices: each chunk
// gathers its vertices' arcs into a private buffer (sorted and merged per
// coarse vertex), degrees turn into CSR offsets via an exclusive prefix
// sum, and a second pass copies every chunk's buffer into its contiguous
// CSR slice. The chunk decomposition depends only on the coarse vertex
// count, so the output is bit-identical for every thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "partition/coarsen.hpp"

namespace ethshard::partition {

/// Contracts `g` along `match` (as produced by parallel_matching:
/// involution with match[v] == v for singletons). Returns the coarse
/// graph plus the fine→coarse projection map. Deterministic for fixed
/// (g, match) regardless of `threads` (0 = hardware).
CoarseLevel parallel_contract(const graph::Graph& g,
                              const std::vector<graph::Vertex>& match,
                              std::size_t threads);

}  // namespace ethshard::partition
