// Partition quality reporting.
//
// Collects the standard quality measures for a k-way partition in one
// pass: edge-cut (count and weight), balance, boundary size and the
// total communication volume (for each vertex, the number of *distinct*
// remote shards among its neighbours — the bandwidth a shard pays to
// keep remote replicas consistent, METIS's "totalv" objective and the
// bandwidth component of the paper's §IV resource discussion).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "partition/types.hpp"

namespace ethshard::partition {

struct QualityReport {
  std::uint32_t k = 0;
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;

  /// Cut edges (count) and their weight.
  std::uint64_t cut_edges = 0;
  graph::Weight cut_weight = 0;
  /// Eq. 1, unweighted and weighted.
  double edge_cut_fraction = 0;
  double weighted_cut_fraction = 0;

  /// Eq. 2 on counts and on vertex weights.
  double balance = 1;
  double weighted_balance = 1;

  /// Vertices with at least one neighbour on another shard.
  std::uint64_t boundary_vertices = 0;
  /// Σ_v |{shards(N(v))} \ {shard(v)}| — METIS's total communication
  /// volume.
  std::uint64_t communication_volume = 0;

  std::vector<std::uint64_t> shard_sizes;
  std::vector<graph::Weight> shard_weights;
};

/// Computes the full report in O(n + m·log k̃) (k̃ = distinct adjacent
/// shards per vertex). Preconditions: g undirected; p complete;
/// p.size() == g.num_vertices().
QualityReport evaluate_partition(const graph::Graph& g, const Partition& p);

/// Multi-line human-readable rendering.
std::string to_string(const QualityReport& report);

}  // namespace ethshard::partition
