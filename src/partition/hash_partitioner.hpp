// Hashing — the paper's baseline: shard(v) = hash(id(v)) mod k.
//
// "A straightforward way to partition the graph is to hash the vertex
// unique identifier and use the result (modulo the total number of shards
// k) to determine the shard the vertex belongs to." (§II-C)
//
// Because the shard depends on the id alone, repartitioning never moves a
// vertex, static balance is near-perfect, and edge-cut approaches
// (k-1)/k for unrelated endpoints.
#pragma once

#include "partition/partitioner.hpp"

namespace ethshard::partition {

class HashPartitioner final : public Partitioner {
 public:
  /// `salt` perturbs the hash so that independent repetitions of an
  /// experiment get independent assignments.
  explicit HashPartitioner(std::uint64_t salt = 0) : salt_(salt) {}

  Partition partition(const graph::Graph& g, std::uint32_t k) override;
  std::string name() const override { return "Hashing"; }

  /// The shard of a single vertex id — usable without a graph (the
  /// assignment is id-local). Precondition: k >= 1.
  ShardId shard_of(graph::Vertex id, std::uint32_t k) const;

 private:
  std::uint64_t salt_;
};

}  // namespace ethshard::partition
