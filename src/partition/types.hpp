// Partition assignment type shared by all partitioning methods.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace ethshard::partition {

/// Shard (partition block) identifier, 0-based.
using ShardId = std::uint32_t;

/// Marker for a vertex not yet assigned to any shard.
inline constexpr ShardId kUnassigned = ~ShardId{0};

/// An assignment of vertices to k shards. Vertices may be temporarily
/// unassigned while a partition is being constructed; most consumers
/// require is_complete().
class Partition {
 public:
  Partition() = default;

  /// n vertices, k shards, all vertices initialized to `init`.
  Partition(std::uint64_t n, std::uint32_t k, ShardId init = kUnassigned);

  std::uint32_t k() const { return k_; }
  std::uint64_t size() const { return assign_.size(); }

  ShardId shard_of(graph::Vertex v) const { return assign_[v]; }

  /// Assigns v to shard s. Precondition: s < k() or s == kUnassigned.
  void assign(graph::Vertex v, ShardId s);

  /// Appends a new vertex with the given shard; returns its index.
  /// Used by the simulator as accounts are created over time.
  graph::Vertex append(ShardId s);

  bool is_complete() const;

  /// Number of vertices per shard (unassigned vertices excluded).
  std::vector<std::uint64_t> shard_sizes() const;

  /// Sum of graph vertex weights per shard. Precondition:
  /// g.num_vertices() == size().
  std::vector<graph::Weight> shard_weights(const graph::Graph& g) const;

  const std::vector<ShardId>& assignments() const { return assign_; }

  friend bool operator==(const Partition&, const Partition&) = default;

 private:
  std::vector<ShardId> assign_;
  std::uint32_t k_ = 0;
};

/// Sum of the weights of edges whose endpoints lie in different shards
/// (each undirected edge counted once; for a directed graph each arc
/// counts). Unassigned endpoints never contribute.
graph::Weight edge_cut_weight(const graph::Graph& g, const Partition& p);

/// Number of cut edges (ignoring weights), same conventions as above.
std::uint64_t edge_cut_count(const graph::Graph& g, const Partition& p);

/// Number of vertices whose shard differs between two assignments over the
/// common prefix (the paper's "moves" metric; `after` may contain newer
/// vertices that did not exist before, which cannot have moved).
std::uint64_t count_moves(const Partition& before, const Partition& after);

/// Renames `target`'s shard labels to maximize agreement with `reference`
/// (greedy assignment on the k×k overlap matrix over the common prefix).
/// Partition *structure* is untouched — only label names change — so
/// edge-cut and balance are invariant; the moves metric stops charging for
/// pure label permutations between successive from-scratch partitionings.
/// Preconditions: reference.k() == target->k().
void align_partition_labels(const Partition& reference, Partition* target);

}  // namespace ethshard::partition
