// Multilevel k-way partitioner (MLKP) — the library's METIS stand-in.
//
// Implements the Karypis–Kumar multilevel scheme the paper uses through
// METIS [11]: (1) coarsen with heavy-edge matching, (2) partition the
// coarsest graph by recursive bisection (greedy graph growing + FM),
// (3) uncoarsen, refining with greedy k-way boundary moves at each level.
// Like METIS, it minimizes edge-cut under a balance constraint and does
// NOT try to minimize vertex movement between successive invocations —
// the very pitfall the paper measures.
#pragma once

#include <cstdint>

#include "partition/coarsen.hpp"
#include "partition/fm.hpp"
#include "partition/kway_refine.hpp"
#include "partition/partitioner.hpp"
#include "util/rng.hpp"

namespace ethshard::partition {

struct MlkpConfig {
  /// Allowed relative shard overweight (METIS default ~3%).
  double imbalance = 0.03;
  /// Stop coarsening at this many vertices; 0 = auto (max(30·k, 120)).
  std::uint64_t coarsen_to = 0;
  /// Matching scheme during coarsening (heavy-edge, or random for the
  /// ablation benchmark).
  MatchingScheme matching = MatchingScheme::kHeavyEdge;
  /// Independent greedy-growing attempts per bisection.
  int init_tries = 4;
  /// FM / k-way refinement passes.
  int refine_passes = 8;
  /// Disable uncoarsening refinement entirely (ablation switch; the
  /// coarsest-level partition is only projected).
  bool refine = true;
  /// RNG seed; same seed + same graph → same partition.
  std::uint64_t seed = 1;
  /// Worker threads for the parallel phases (matching, contraction,
  /// projection, k-way refinement): 1 = run them inline, 0 = hardware
  /// concurrency. The resulting partition is bit-identical for every
  /// value — mt-MLKP is deterministic by construction (see DESIGN.md).
  std::size_t threads = 1;
};

class MlkpPartitioner final : public Partitioner {
 public:
  explicit MlkpPartitioner(MlkpConfig cfg = {}) : cfg_(cfg) {}

  /// Accepts directed graphs (symmetrized internally) or undirected ones.
  Partition partition(const graph::Graph& g, std::uint32_t k) override;

  std::string name() const override { return "MLKP"; }

  const MlkpConfig& config() const { return cfg_; }

 private:
  MlkpConfig cfg_;
};

}  // namespace ethshard::partition
