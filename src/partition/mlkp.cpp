#include "partition/mlkp.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "partition/recursive_bisection.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace ethshard::partition {

Partition MlkpPartitioner::partition(const graph::Graph& input,
                                     std::uint32_t k) {
  ETHSHARD_CHECK(k >= 1);
  const graph::Graph undirected_storage =
      input.directed() ? input.to_undirected() : graph::Graph{};
  const graph::Graph& g = input.directed() ? undirected_storage : input;

  const std::uint64_t n = g.num_vertices();
  if (k == 1 || n == 0) return Partition(n, k, 0);
  if (n <= k) {
    // Degenerate: one vertex per shard, round-robin for the remainder.
    Partition p(n, k);
    for (graph::Vertex v = 0; v < n; ++v)
      p.assign(v, static_cast<ShardId>(v % k));
    return p;
  }

  ETHSHARD_OBS_SPAN("mlkp");
  ETHSHARD_OBS_COUNT("mlkp/invocations", 1);
  ETHSHARD_OBS_COUNT("mlkp/vertices", n);
  const std::size_t threads =
      cfg_.threads == 0 ? util::default_thread_count() : cfg_.threads;
  ETHSHARD_OBS_GAUGE("mlkp/threads", static_cast<double>(threads));

  util::Rng rng(cfg_.seed);
  const std::uint64_t coarsen_to =
      cfg_.coarsen_to != 0
          ? cfg_.coarsen_to
          : std::max<std::uint64_t>(30ULL * k, 120ULL);

  std::vector<CoarseLevel> levels;
  {
    ETHSHARD_OBS_TIMER("mlkp/coarsen_ms");
    ETHSHARD_OBS_SPAN("coarsen");
    levels = coarsen_mt(g, coarsen_to, cfg_.matching, rng, threads);
  }

  const graph::Graph& coarsest = levels.empty() ? g : levels.back().graph;

  const FmConfig fm{cfg_.imbalance, cfg_.refine_passes};
  const KwayRefineConfig kcfg{cfg_.imbalance, cfg_.refine_passes,
                              /*balance_moves=*/true};
  Partition part;
  {
    ETHSHARD_OBS_TIMER("mlkp/initial_ms");
    ETHSHARD_OBS_SPAN("initial");
    part = recursive_bisection_ggg(coarsest, k, fm, cfg_.init_tries, rng);
    if (cfg_.refine && !levels.empty())
      kway_refine_mt(coarsest, part, kcfg, threads);
  }

  // Uncoarsen: project through the hierarchy, refining at each level.
  // Projection writes disjoint slots per vertex, so a chunked sweep is
  // race-free and (being a pure function of `part`) thread-invariant.
  {
    ETHSHARD_OBS_TIMER("mlkp/refine_ms");
    ETHSHARD_OBS_SPAN("refine");
    for (std::size_t i = levels.size(); i-- > 0;) {
      const graph::Graph& finer = (i == 0) ? g : levels[i - 1].graph;
      const std::vector<graph::Vertex>& map = levels[i].fine_to_coarse;
      Partition fine_part(finer.num_vertices(), k);
      {
        ETHSHARD_OBS_TIMER("mlkp/project_ms");
        util::parallel_for_chunked(
            finer.num_vertices(), 4096,
            [&](std::size_t, std::size_t begin, std::size_t end) {
              for (graph::Vertex v = begin; v < end; ++v)
                fine_part.assign(v, part.shard_of(map[v]));
            },
            threads);
      }
      part = std::move(fine_part);
      if (cfg_.refine) kway_refine_mt(finer, part, kcfg, threads);
    }

    if (levels.empty() && cfg_.refine) kway_refine_mt(g, part, kcfg, threads);
  }

  ETHSHARD_CHECK(part.is_complete());
  return part;
}

}  // namespace ethshard::partition
