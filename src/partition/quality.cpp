#include "partition/quality.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace ethshard::partition {

QualityReport evaluate_partition(const graph::Graph& g, const Partition& p) {
  ETHSHARD_CHECK(!g.directed());
  ETHSHARD_CHECK(g.num_vertices() == p.size());
  ETHSHARD_CHECK(p.is_complete());

  QualityReport r;
  r.k = p.k();
  r.vertices = g.num_vertices();
  r.edges = g.num_edges();
  r.shard_sizes = p.shard_sizes();
  r.shard_weights = p.shard_weights(g);

  std::vector<ShardId> adjacent;  // distinct remote shards of one vertex
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    const ShardId sv = p.shard_of(v);
    adjacent.clear();
    for (const graph::Arc& a : g.neighbors(v)) {
      const ShardId su = p.shard_of(a.to);
      if (su != sv) {
        adjacent.push_back(su);
        if (v < a.to) {  // each undirected edge once
          ++r.cut_edges;
          r.cut_weight += a.weight;
        }
      }
    }
    if (!adjacent.empty()) {
      ++r.boundary_vertices;
      std::sort(adjacent.begin(), adjacent.end());
      r.communication_volume += static_cast<std::uint64_t>(
          std::unique(adjacent.begin(), adjacent.end()) - adjacent.begin());
    }
  }

  if (r.edges > 0) {
    r.edge_cut_fraction = static_cast<double>(r.cut_edges) /
                          static_cast<double>(r.edges);
    r.weighted_cut_fraction =
        static_cast<double>(r.cut_weight) /
        static_cast<double>(g.total_edge_weight());
  }

  std::uint64_t max_size = 0;
  graph::Weight max_weight = 0;
  graph::Weight total_weight = 0;
  for (std::uint32_t s = 0; s < r.k; ++s) {
    max_size = std::max(max_size, r.shard_sizes[s]);
    max_weight = std::max(max_weight, r.shard_weights[s]);
    total_weight += r.shard_weights[s];
  }
  if (r.vertices > 0)
    r.balance = static_cast<double>(max_size) * r.k /
                static_cast<double>(r.vertices);
  if (total_weight > 0)
    r.weighted_balance = static_cast<double>(max_weight) * r.k /
                         static_cast<double>(total_weight);
  return r;
}

std::string to_string(const QualityReport& r) {
  std::ostringstream os;
  os << "partition: k=" << r.k << " n=" << r.vertices << " m=" << r.edges
     << "\n";
  os << "  edge-cut: " << r.cut_edges << " edges (" << r.edge_cut_fraction
     << "), weight " << r.cut_weight << " (" << r.weighted_cut_fraction
     << ")\n";
  os << "  balance: " << r.balance << " (weighted " << r.weighted_balance
     << ")\n";
  os << "  boundary vertices: " << r.boundary_vertices
     << ", communication volume: " << r.communication_volume << "\n";
  os << "  shard sizes:";
  for (std::uint64_t s : r.shard_sizes) os << ' ' << s;
  os << "\n";
  return os.str();
}

}  // namespace ethshard::partition
