#include "partition/kernighan_lin.hpp"

#include "partition/recursive_bisection.hpp"
#include "util/check.hpp"

namespace ethshard::partition {

Partition random_balanced_bisection(const graph::Graph& g,
                                    double target_left_frac, util::Rng& rng) {
  ETHSHARD_CHECK(target_left_frac > 0.0 && target_left_frac < 1.0);
  const std::uint64_t n = g.num_vertices();
  Partition p(n, 2, /*init=*/1);
  if (n == 0) return p;

  const bool unit_weights = g.total_vertex_weight() == 0;
  const double total =
      static_cast<double>(unit_weights ? n : g.total_vertex_weight());
  const double target = target_left_frac * total;

  std::vector<graph::Vertex> order(n);
  for (graph::Vertex v = 0; v < n; ++v) order[v] = v;
  rng.shuffle(order);

  double acc = 0;
  std::uint64_t taken = 0;
  for (graph::Vertex v : order) {
    if (acc >= target || taken + 1 >= n) break;
    p.assign(v, 0);
    acc += static_cast<double>(unit_weights ? 1 : g.vertex_weight(v));
    ++taken;
  }
  return p;
}

Partition KernighanLinPartitioner::partition(const graph::Graph& input,
                                             std::uint32_t k) {
  ETHSHARD_CHECK(k >= 1);
  const graph::Graph undirected_storage =
      input.directed() ? input.to_undirected() : graph::Graph{};
  const graph::Graph& g = input.directed() ? undirected_storage : input;

  const std::uint64_t n = g.num_vertices();
  if (k == 1 || n == 0) return Partition(n, k, 0);
  if (n <= k) {
    Partition p(n, k);
    for (graph::Vertex v = 0; v < n; ++v)
      p.assign(v, static_cast<ShardId>(v % k));
    return p;
  }

  util::Rng rng(cfg_.seed);
  const FmConfig fm{cfg_.imbalance, cfg_.max_passes};
  auto bisect = [this, &fm](const graph::Graph& sub, double frac,
                            util::Rng& r) {
    Partition best;
    graph::Weight best_cut = 0;
    bool have = false;
    for (int t = 0; t < cfg_.tries; ++t) {
      Partition p = random_balanced_bisection(sub, frac, r);
      const graph::Weight cut = fm_refine_bisection(sub, p, frac, fm, r);
      if (!have || cut < best_cut) {
        best = std::move(p);
        best_cut = cut;
        have = true;
      }
    }
    return best;
  };
  return recursive_bisection(g, k, bisect, rng);
}

}  // namespace ethshard::partition
