// Balanced label propagation — the paper's distributed "KL" strategy.
//
// §II-C: "each shard identifies vertices that if moved to other shards
// would minimize edge-cuts. Each shard sends to an oracle the selected
// vertices and with the information from all shards the oracle computes a
// k×k probability matrix. The oracle calculates the probability that each
// shard should move its selected vertices to the other shards so that at
// the end shards remain balanced. The oracle then sends the matrix to all
// the shards, which exchange vertices with each other based on the
// probability matrix." This follows Facebook's balanced label propagation
// for Apache Giraph (the paper's citation [10]).
//
// Unlike the multilevel partitioner this is an *incremental* method: it
// refines an existing assignment against the recent activity graph, which
// is why the paper's KL keeps shards dynamically balanced but converges
// only to local minima.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "partition/types.hpp"
#include "util/rng.hpp"

namespace ethshard::partition {

struct BlpConfig {
  /// Propagation rounds per invocation.
  int rounds = 4;
  /// Fraction of pairwise weight imbalance the oracle may additionally
  /// stream from an overloaded to an underloaded shard (0 = strictly
  /// balance-preserving pairwise exchange).
  double rebalance = 0.5;
  /// true → every candidate moves with probability quota/candidate-mass
  /// (the paper's literal probability matrix); false → the highest-gain
  /// candidates move until the quota is filled (deterministic variant,
  /// usually slightly better cuts).
  bool probabilistic = false;
  std::uint64_t seed = 1;
};

/// Per-invocation outcome, for the paper's "moves" accounting.
struct BlpStats {
  std::uint64_t moved = 0;
  graph::Weight cut_before = 0;
  graph::Weight cut_after = 0;
  int rounds_run = 0;
};

class BalancedLabelPropagation {
 public:
  explicit BalancedLabelPropagation(BlpConfig cfg = {}) : cfg_(cfg) {}

  /// Refines `p` in place against the (undirected, weighted) activity
  /// graph g. Preconditions: p complete; p.size() == g.num_vertices().
  BlpStats refine(const graph::Graph& g, Partition& p);

  const BlpConfig& config() const { return cfg_; }

 private:
  BlpConfig cfg_;
};

}  // namespace ethshard::partition
