#include "partition/kway_refine.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace ethshard::partition {

graph::Weight kway_refine(const graph::Graph& g, Partition& p,
                          const KwayRefineConfig& cfg, util::Rng& rng) {
  ETHSHARD_CHECK(!g.directed());
  ETHSHARD_CHECK(g.num_vertices() == p.size());
  const std::uint64_t n = g.num_vertices();
  const std::uint32_t k = p.k();
  if (n == 0 || k <= 1) return edge_cut_weight(g, p);

  std::vector<graph::Weight> weight = p.shard_weights(g);
  std::vector<std::uint64_t> count = p.shard_sizes();

  graph::Weight max_vwgt = 0;
  for (graph::Vertex v = 0; v < n; ++v)
    max_vwgt = std::max(max_vwgt, g.vertex_weight(v));
  const std::uint64_t cap = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(
          std::ceil(static_cast<double>(g.total_vertex_weight()) /
                    static_cast<double>(k) * (1.0 + cfg.imbalance))),
      max_vwgt);

  std::vector<graph::Vertex> order(n);
  for (graph::Vertex v = 0; v < n; ++v) order[v] = v;

  // Scratch: connectivity of the current vertex to each shard. Reset lazily
  // with a version stamp to avoid an O(k) clear per vertex.
  std::vector<graph::Weight> conn(k, 0);
  std::vector<std::uint64_t> conn_stamp(k, 0);
  std::uint64_t stamp = 0;

  for (int pass = 0; pass < cfg.max_passes; ++pass) {
    rng.shuffle(order);
    std::uint64_t moved = 0;

    for (graph::Vertex v : order) {
      const ShardId cur = p.shard_of(v);
      const graph::Weight wv = g.vertex_weight(v);
      if (count[cur] <= 1) continue;  // never empty a shard

      ++stamp;
      bool boundary = false;
      for (const graph::Arc& a : g.neighbors(v)) {
        const ShardId s = p.shard_of(a.to);
        if (conn_stamp[s] != stamp) {
          conn_stamp[s] = stamp;
          conn[s] = 0;
        }
        conn[s] += a.weight;
        if (s != cur) boundary = true;
      }
      if (!boundary) continue;

      const graph::Weight conn_cur =
          conn_stamp[cur] == stamp ? conn[cur] : 0;

      ShardId best = cur;
      std::int64_t best_gain = 0;
      std::uint64_t best_weight = weight[cur];
      for (const graph::Arc& a : g.neighbors(v)) {
        const ShardId t = p.shard_of(a.to);
        if (t == cur) continue;
        if (weight[t] + wv > cap) continue;
        const std::int64_t gain = static_cast<std::int64_t>(conn[t]) -
                                  static_cast<std::int64_t>(conn_cur);
        const bool better =
            gain > best_gain ||
            (cfg.balance_moves && gain == best_gain &&
             weight[t] + wv < best_weight && weight[t] + wv < weight[cur]);
        if (better) {
          best = t;
          best_gain = gain;
          best_weight = weight[t] + wv;
        }
      }
      if (best == cur) continue;

      p.assign(v, best);
      weight[cur] -= wv;
      weight[best] += wv;
      --count[cur];
      ++count[best];
      ++moved;
    }
    if (moved == 0) break;
  }
  return edge_cut_weight(g, p);
}

}  // namespace ethshard::partition
