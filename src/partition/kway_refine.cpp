#include "partition/kway_refine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace ethshard::partition {

graph::Weight kway_refine(const graph::Graph& g, Partition& p,
                          const KwayRefineConfig& cfg, util::Rng& rng) {
  ETHSHARD_CHECK(!g.directed());
  ETHSHARD_CHECK(g.num_vertices() == p.size());
  const std::uint64_t n = g.num_vertices();
  const std::uint32_t k = p.k();
  if (n == 0 || k <= 1) return edge_cut_weight(g, p);

  std::vector<graph::Weight> weight = p.shard_weights(g);
  std::vector<std::uint64_t> count = p.shard_sizes();

  graph::Weight max_vwgt = 0;
  for (graph::Vertex v = 0; v < n; ++v)
    max_vwgt = std::max(max_vwgt, g.vertex_weight(v));
  const std::uint64_t cap = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(
          std::ceil(static_cast<double>(g.total_vertex_weight()) /
                    static_cast<double>(k) * (1.0 + cfg.imbalance))),
      max_vwgt);

  std::vector<graph::Vertex> order(n);
  for (graph::Vertex v = 0; v < n; ++v) order[v] = v;

  // Scratch: connectivity of the current vertex to each shard. Reset lazily
  // with a version stamp to avoid an O(k) clear per vertex.
  std::vector<graph::Weight> conn(k, 0);
  std::vector<std::uint64_t> conn_stamp(k, 0);
  std::uint64_t stamp = 0;

  for (int pass = 0; pass < cfg.max_passes; ++pass) {
    rng.shuffle(order);
    std::uint64_t moved = 0;

    for (graph::Vertex v : order) {
      const ShardId cur = p.shard_of(v);
      const graph::Weight wv = g.vertex_weight(v);
      if (count[cur] <= 1) continue;  // never empty a shard

      ++stamp;
      bool boundary = false;
      for (const graph::Arc& a : g.neighbors(v)) {
        const ShardId s = p.shard_of(a.to);
        if (conn_stamp[s] != stamp) {
          conn_stamp[s] = stamp;
          conn[s] = 0;
        }
        conn[s] += a.weight;
        if (s != cur) boundary = true;
      }
      if (!boundary) continue;

      const graph::Weight conn_cur =
          conn_stamp[cur] == stamp ? conn[cur] : 0;

      ShardId best = cur;
      std::int64_t best_gain = 0;
      std::uint64_t best_weight = weight[cur];
      for (const graph::Arc& a : g.neighbors(v)) {
        const ShardId t = p.shard_of(a.to);
        if (t == cur) continue;
        if (weight[t] + wv > cap) continue;
        const std::int64_t gain = static_cast<std::int64_t>(conn[t]) -
                                  static_cast<std::int64_t>(conn_cur);
        const bool better =
            gain > best_gain ||
            (cfg.balance_moves && gain == best_gain &&
             weight[t] + wv < best_weight && weight[t] + wv < weight[cur]);
        if (better) {
          best = t;
          best_gain = gain;
          best_weight = weight[t] + wv;
        }
      }
      if (best == cur) continue;

      p.assign(v, best);
      weight[cur] -= wv;
      weight[best] += wv;
      --count[cur];
      ++count[best];
      ++moved;
    }
    if (moved == 0) break;
  }
  return edge_cut_weight(g, p);
}

graph::Weight kway_refine_mt(const graph::Graph& g, Partition& p,
                             const KwayRefineConfig& cfg,
                             std::size_t threads) {
  ETHSHARD_CHECK(!g.directed());
  ETHSHARD_CHECK(g.num_vertices() == p.size());
  const std::uint64_t n = g.num_vertices();
  const std::uint32_t k = p.k();
  if (n == 0 || k <= 1) return edge_cut_weight(g, p);

  ETHSHARD_OBS_TIMER("mlkp/kway_refine_ms");
  ETHSHARD_OBS_SPAN("kway_refine");
  ETHSHARD_OBS_HIST("kway/vertices", n);

  std::vector<graph::Weight> weight = p.shard_weights(g);
  std::vector<std::uint64_t> count = p.shard_sizes();

  graph::Weight max_vwgt = 0;
  for (graph::Vertex v = 0; v < n; ++v)
    max_vwgt = std::max(max_vwgt, g.vertex_weight(v));
  const std::uint64_t cap = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(
          std::ceil(static_cast<double>(g.total_vertex_weight()) /
                    static_cast<double>(k) * (1.0 + cfg.imbalance))),
      max_vwgt);

  // Fixed grain: the chunk decomposition — and hence each per-chunk
  // proposal buffer — depends only on n, never on the thread count.
  constexpr std::size_t kGrain = 1024;
  const std::size_t chunks = util::chunk_count(n, kGrain);
  std::vector<std::vector<std::pair<graph::Vertex, ShardId>>> proposals(
      chunks);

  // Serial-apply scratch: connectivity of the current vertex to each
  // shard, reset lazily with a version stamp.
  std::vector<graph::Weight> conn(k, 0);
  std::vector<std::uint64_t> conn_stamp(k, 0);
  std::uint64_t stamp = 0;

  for (int pass = 0; pass < cfg.max_passes; ++pass) {
    // Proposal phase: against the pass-start assignment and shard state.
    util::parallel_for_chunked(
        n, kGrain,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          std::vector<std::pair<graph::Vertex, ShardId>>& out =
              proposals[chunk];
          out.clear();
          std::vector<graph::Weight> local_conn(k, 0);
          std::vector<std::uint32_t> local_stamp(k, 0);
          std::uint32_t local_tick = 0;
          for (graph::Vertex v = begin; v < end; ++v) {
            const ShardId cur = p.shard_of(v);
            const graph::Weight wv = g.vertex_weight(v);
            if (count[cur] <= 1) continue;  // never empty a shard

            ++local_tick;
            bool boundary = false;
            for (const graph::Arc& a : g.neighbors(v)) {
              const ShardId s = p.shard_of(a.to);
              if (local_stamp[s] != local_tick) {
                local_stamp[s] = local_tick;
                local_conn[s] = 0;
              }
              local_conn[s] += a.weight;
              if (s != cur) boundary = true;
            }
            if (!boundary) continue;

            const graph::Weight conn_cur =
                local_stamp[cur] == local_tick ? local_conn[cur] : 0;

            ShardId best = cur;
            std::int64_t best_gain = 0;
            std::uint64_t best_weight = weight[cur];
            for (const graph::Arc& a : g.neighbors(v)) {
              const ShardId t = p.shard_of(a.to);
              if (t == cur) continue;
              if (weight[t] + wv > cap) continue;
              const std::int64_t gain =
                  static_cast<std::int64_t>(local_conn[t]) -
                  static_cast<std::int64_t>(conn_cur);
              const bool better =
                  gain > best_gain ||
                  (cfg.balance_moves && gain == best_gain &&
                   weight[t] + wv < best_weight &&
                   weight[t] + wv < weight[cur]);
              if (better) {
                best = t;
                best_gain = gain;
                best_weight = weight[t] + wv;
              }
            }
            if (best != cur) out.emplace_back(v, best);
          }
        },
        threads);

    // Apply phase: serial, in ascending vertex order (chunk order ==
    // index order), revalidating each move against the live state.
    std::uint64_t moved = 0;
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
      for (const auto& [v, t] : proposals[chunk]) {
        const ShardId cur = p.shard_of(v);
        if (cur == t) continue;
        const graph::Weight wv = g.vertex_weight(v);
        if (count[cur] <= 1) continue;
        if (weight[t] + wv > cap) continue;

        ++stamp;
        for (const graph::Arc& a : g.neighbors(v)) {
          const ShardId s = p.shard_of(a.to);
          if (conn_stamp[s] != stamp) {
            conn_stamp[s] = stamp;
            conn[s] = 0;
          }
          conn[s] += a.weight;
        }
        const graph::Weight conn_cur =
            conn_stamp[cur] == stamp ? conn[cur] : 0;
        const graph::Weight conn_t = conn_stamp[t] == stamp ? conn[t] : 0;
        const std::int64_t gain = static_cast<std::int64_t>(conn_t) -
                                  static_cast<std::int64_t>(conn_cur);
        const bool accept =
            gain > 0 || (cfg.balance_moves && gain == 0 &&
                         weight[t] + wv < weight[cur]);
        if (!accept) continue;

        p.assign(v, t);
        weight[cur] -= wv;
        weight[t] += wv;
        --count[cur];
        ++count[t];
        ++moved;
      }
    }
    ETHSHARD_OBS_COUNT("kway/passes", 1);
    std::uint64_t proposed = 0;
    for (const auto& chunk_proposals : proposals)
      proposed += chunk_proposals.size();
    ETHSHARD_OBS_COUNT("kway/proposed", proposed);
    ETHSHARD_OBS_COUNT("kway/applied", moved);
    if (moved == 0) break;
  }
  return edge_cut_weight(g, p);
}

}  // namespace ethshard::partition
