#include "partition/streaming.hpp"

#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace ethshard::partition {

namespace {

/// Shared single-pass driver: `score(neighbour_weight, shard_size)` ranks
/// candidate shards; shards at `capacity` are skipped (unless all are,
/// in which case the least-loaded wins).
template <typename Score>
Partition stream_partition(const graph::Graph& input, std::uint32_t k,
                           double balance_slack, Score&& score) {
  ETHSHARD_CHECK(k >= 1);
  const graph::Graph undirected_storage =
      input.directed() ? input.to_undirected() : graph::Graph{};
  const graph::Graph& g = input.directed() ? undirected_storage : input;

  const std::uint64_t n = g.num_vertices();
  Partition p(n, k);
  if (n == 0) return p;
  if (k == 1) {
    for (graph::Vertex v = 0; v < n; ++v) p.assign(v, 0);
    return p;
  }

  const double capacity = std::max(
      1.0, balance_slack * static_cast<double>(n) / static_cast<double>(k));
  std::vector<std::uint64_t> size(k, 0);
  std::vector<graph::Weight> conn(k, 0);

  for (graph::Vertex v = 0; v < n; ++v) {
    std::fill(conn.begin(), conn.end(), 0);
    for (const graph::Arc& a : g.neighbors(v)) {
      if (a.to >= v) continue;  // stream order: only earlier vertices
      const ShardId s = p.shard_of(a.to);
      if (s != kUnassigned) conn[s] += a.weight;
    }

    ShardId best = kUnassigned;
    double best_score = 0;
    for (std::uint32_t s = 0; s < k; ++s) {
      if (static_cast<double>(size[s]) >= capacity) continue;
      const double sc = score(conn[s], size[s]);
      if (best == kUnassigned || sc > best_score) {
        best = s;
        best_score = sc;
      }
    }
    if (best == kUnassigned) {
      // All shards at capacity (can happen with tiny n·slack): least-loaded.
      best = 0;
      for (std::uint32_t s = 1; s < k; ++s)
        if (size[s] < size[best]) best = s;
    }
    p.assign(v, best);
    ++size[best];
  }
  return p;
}

}  // namespace

Partition LdgPartitioner::partition(const graph::Graph& g, std::uint32_t k) {
  const double capacity =
      std::max(1.0, cfg_.balance_slack *
                        static_cast<double>(g.num_vertices()) /
                        std::max(1u, k));
  return stream_partition(
      g, k, cfg_.balance_slack,
      [capacity](graph::Weight conn, std::uint64_t size) {
        return static_cast<double>(conn) *
               (1.0 - static_cast<double>(size) / capacity);
      });
}

Partition FennelPartitioner::partition(const graph::Graph& g,
                                       std::uint32_t k) {
  const double n = std::max<double>(1.0, static_cast<double>(g.num_vertices()));
  const double m = static_cast<double>(g.num_edges());
  const double alpha =
      cfg_.alpha > 0
          ? cfg_.alpha
          : std::sqrt(static_cast<double>(k)) * m / std::pow(n, 1.5);
  const double gamma = cfg_.gamma;
  return stream_partition(
      g, k, cfg_.balance_slack,
      [alpha, gamma](graph::Weight conn, std::uint64_t size) {
        return static_cast<double>(conn) -
               alpha * gamma / 2.0 *
                   std::pow(static_cast<double>(size),
                            gamma - 1.0);
      });
}

}  // namespace ethshard::partition
