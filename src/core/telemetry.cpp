#include "core/telemetry.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/check.hpp"

namespace ethshard::core {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

TelemetrySink::TelemetrySink(std::ostream& out) : out_(&out) {}

std::unique_ptr<TelemetrySink> TelemetrySink::open(
    const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path);
  ETHSHARD_CHECK_MSG(file->good(), "cannot open " << path);
  auto sink = std::make_unique<TelemetrySink>(*file);
  sink->owned_ = std::move(file);
  return sink;
}

void TelemetrySink::write_window(const WindowTelemetry& w) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostream& out = *out_;
  out << "{\"v\": 1"
      << ", \"seq\": " << seq_
      << ", \"window_start\": " << w.window_start
      << ", \"window_end\": " << w.window_end
      << ", \"interactions\": " << w.interactions
      << ", \"recorded\": " << (w.recorded ? "true" : "false")
      << ", \"dynamic_edge_cut\": " << fmt_double(w.dynamic_edge_cut)
      << ", \"dynamic_balance\": " << fmt_double(w.dynamic_balance)
      << ", \"static_edge_cut\": " << fmt_double(w.static_edge_cut)
      << ", \"static_balance\": " << fmt_double(w.static_balance)
      << ", \"window_wall_ms\": " << fmt_double(w.window_wall_ms)
      << ", \"repartition\": " << (w.repartition ? "true" : "false")
      << ", \"partitioner_ms\": " << fmt_double(w.partitioner_ms)
      << ", \"moves\": " << w.moves
      << ", \"moved_state_units\": " << w.moved_state_units
      << ", \"rss_mb\": " << fmt_double(w.rss_mb)
      << ", \"peak_rss_mb\": " << fmt_double(w.peak_rss_mb) << "}\n";
  out.flush();  // one window per multi-hour interval: tail-ability > IO
  ++seq_;
}

std::uint64_t TelemetrySink::records_written() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

}  // namespace ethshard::core
