#include "core/experiment.hpp"

#include <cstdio>
#include <sstream>

#include "metrics/metrics.hpp"
#include "util/parallel.hpp"

namespace ethshard::core {

std::vector<ExperimentRun> run_experiment(const workload::History& history,
                                          const ExperimentConfig& config) {
  struct Cell {
    Method method;
    std::uint32_t k;
  };
  std::vector<Cell> cells;
  for (Method m : config.methods)
    for (std::uint32_t k : config.shard_counts) cells.push_back({m, k});

  return util::parallel_map(
      cells,
      [&](const Cell& cell) {
        const auto strategy = make_strategy(cell.method, config.seed);
        SimulatorConfig sim_cfg;
        sim_cfg.k = cell.k;
        sim_cfg.load_model = config.load_model;
        ShardingSimulator sim(history, *strategy, sim_cfg);

        ExperimentRun run;
        run.method = cell.method;
        run.k = cell.k;
        run.result = sim.run();

        std::vector<double> cuts;
        std::vector<double> balances;
        for (const WindowSample& w : run.result.windows) {
          cuts.push_back(w.dynamic_edge_cut);
          balances.push_back(w.dynamic_balance);
        }
        run.dynamic_edge_cut = metrics::summarize(std::move(cuts));
        run.dynamic_balance = metrics::summarize(std::move(balances));
        run.normalized_balance_median = metrics::normalized_balance(
            run.dynamic_balance.median, cell.k);
        run.throughput = summarize_throughput(run.result);
        return run;
      },
      config.threads);
}

std::string comparison_table(const std::vector<ExperimentRun>& runs) {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-9s %3s %11s %11s %9s %10s %12s %8s\n", "method", "k",
                "dynCut(med)", "dynBal(med)", "normBal", "speedup",
                "moves", "reparts");
  os << line;
  for (const ExperimentRun& r : runs) {
    std::snprintf(line, sizeof(line),
                  "%-9s %3u %11.4f %11.4f %9.4f %10.3f %12llu %8zu\n",
                  method_name(r.method).c_str(), r.k,
                  r.dynamic_edge_cut.median, r.dynamic_balance.median,
                  r.normalized_balance_median,
                  r.throughput.mean_speedup,
                  static_cast<unsigned long long>(r.result.total_moves),
                  r.result.repartitions.size());
    os << line;
  }
  return os.str();
}

}  // namespace ethshard::core
