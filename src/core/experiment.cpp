#include "core/experiment.hpp"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "metrics/metrics.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace ethshard::core {

std::vector<std::string> ExperimentConfig::validate() const {
  std::vector<std::string> problems;
  if (methods.empty())
    problems.push_back(
        "methods is empty — list at least one Method (e.g. kAllMethods)");
  if (shard_counts.empty())
    problems.push_back(
        "shard_counts is empty — list at least one shard count (k >= 1)");
  for (std::uint32_t k : shard_counts)
    if (k < 1) {
      problems.push_back("shard_counts contains k=0 — every k must be >= 1");
      break;
    }
  // A grid never needs more workers than cells; a four-digit thread count
  // is a unit mix-up (milliseconds? shard count?), not a real request.
  if (threads > 1024)
    problems.push_back(
        "threads = " + std::to_string(threads) +
        " is not plausible — use 0 for hardware concurrency");
  if (partitioner_threads > 1024)
    problems.push_back(
        "partitioner_threads = " + std::to_string(partitioner_threads) +
        " is not plausible — use 0 to auto-fit the remaining hardware "
        "budget or 1 for a serial partitioner");
  if (replay_threads > 1024)
    problems.push_back(
        "replay_threads = " + std::to_string(replay_threads) +
        " is not plausible — use 0 for hardware concurrency or 1 for "
        "serial replay");
  // Explicitly requesting more total threads than the machine has is a
  // contradiction, not a tuning choice: one of the two knobs must give.
  if (threads != 0 && threads <= 1024 && partitioner_threads > 1 &&
      partitioner_threads <= 1024 &&
      threads * partitioner_threads > util::default_thread_count())
    problems.push_back(
        "threads × partitioner_threads = " + std::to_string(threads) +
        " × " + std::to_string(partitioner_threads) + " exceeds the " +
        std::to_string(util::default_thread_count()) +
        " hardware threads — lower one, or set partitioner_threads=0 to "
        "auto-fit the budget left by the grid workers");
  return problems;
}

std::vector<ExperimentRun> run_experiment(
    const workload::BlockSourceFactory& sources,
    const ExperimentConfig& config) {
  const std::vector<std::string> problems = config.validate();
  if (!problems.empty()) {
    std::ostringstream os;
    os << "invalid ExperimentConfig:";
    for (const std::string& p : problems) os << "\n  - " << p;
    ETHSHARD_CHECK_MSG(false, os.str());
  }

  struct Cell {
    Method method;
    std::uint32_t k;
  };
  std::vector<Cell> cells;
  for (Method m : config.methods)
    for (std::uint32_t k : config.shard_counts) cells.push_back({m, k});

  // Observability for the grid: each cell records into its own registry
  // (redirected for the worker thread's duration) so ExperimentRun can
  // carry a per-cell snapshot; totals also fold into the registry the
  // caller was writing to.
  obs::Registry& parent_registry = obs::current();
  const auto grid_start = std::chrono::steady_clock::now();

  // Cap nested parallelism: with `workers` cells in flight, each cell's
  // partitioner gets at most its share of the hardware budget, so
  // grid-threads × partitioner-threads never oversubscribes the machine.
  // mt-MLKP is thread-count invariant, so capping never changes results.
  const std::size_t workers =
      std::min(config.threads == 0 ? util::default_thread_count()
                                   : config.threads,
               cells.size());
  const std::size_t cell_partitioner_threads =
      util::cap_nested_threads(config.partitioner_threads, workers);
  // Same budget rule for the replay pipeline's aggregator thread; capped
  // to 1, a cell falls back to bit-identical serial replay.
  const std::size_t cell_replay_threads =
      util::cap_nested_threads(config.replay_threads, workers);

  auto runs = util::parallel_map(
      cells,
      [&](const Cell& cell) {
        const auto cell_start = std::chrono::steady_clock::now();
        const double queue_wait_ms =
            std::chrono::duration<double, std::milli>(cell_start -
                                                      grid_start)
                .count();

        obs::Registry cell_registry;
        ExperimentRun run;
        {
          const obs::ScopedRegistry scope(cell_registry);
          ETHSHARD_OBS_TIMER("experiment/cell_ms");
          ETHSHARD_OBS_RECORD_MS("experiment/queue_wait_ms", queue_wait_ms);

          const auto strategy = make_strategy(cell.method, config.seed,
                                              cell_partitioner_threads);
          SimulatorConfig sim_cfg;
          sim_cfg.k = cell.k;
          sim_cfg.load_model = config.load_model;
          sim_cfg.replay_threads = cell_replay_threads;
          const std::unique_ptr<workload::BlockSource> source =
              sources.open();
          ShardingSimulator sim(*source, *strategy, sim_cfg);

          run.method = cell.method;
          run.k = cell.k;
          run.result = sim.run();

          std::vector<double> cuts;
          std::vector<double> balances;
          for (const WindowSample& w : run.result.windows) {
            cuts.push_back(w.dynamic_edge_cut);
            balances.push_back(w.dynamic_balance);
          }
          run.dynamic_edge_cut = metrics::summarize(std::move(cuts));
          run.dynamic_balance = metrics::summarize(std::move(balances));
          run.normalized_balance_median = metrics::normalized_balance(
              run.dynamic_balance.median, cell.k);
          run.throughput = summarize_throughput(run.result);
        }
        run.cell_wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - cell_start)
                .count();
        run.queue_wait_ms = queue_wait_ms;
        if (obs::enabled()) {
          run.metrics = cell_registry.snapshot();
          parent_registry.absorb(run.metrics);
        }
        return run;
      },
      config.threads);

  if (obs::enabled()) {
    const double grid_wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - grid_start)
            .count();
    double busy_ms = 0;
    for (const ExperimentRun& r : runs) busy_ms += r.cell_wall_ms;
    const obs::ScopedRegistry scope(parent_registry);
    ETHSHARD_OBS_GAUGE("experiment/threads",
                       static_cast<double>(workers));
    ETHSHARD_OBS_GAUGE("experiment/partitioner_threads",
                       static_cast<double>(cell_partitioner_threads));
    ETHSHARD_OBS_GAUGE("experiment/replay_threads",
                       static_cast<double>(cell_replay_threads));
    ETHSHARD_OBS_GAUGE("experiment/grid_wall_ms", grid_wall_ms);
    ETHSHARD_OBS_GAUGE(
        "experiment/thread_utilization",
        grid_wall_ms <= 0
            ? 0.0
            : busy_ms / (grid_wall_ms * static_cast<double>(workers)));
  }
  return runs;
}

std::vector<ExperimentRun> run_experiment(const workload::History& history,
                                          const ExperimentConfig& config) {
  const workload::MaterializedSourceFactory sources(history.chain,
                                                    &history.accounts);
  return run_experiment(sources, config);
}

std::string comparison_table(const std::vector<ExperimentRun>& runs) {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-9s %3s %11s %11s %9s %10s %12s %8s %10s\n", "method",
                "k", "dynCut(med)", "dynBal(med)", "normBal", "speedup",
                "moves", "reparts", "cellMs");
  os << line;
  for (const ExperimentRun& r : runs) {
    std::snprintf(line, sizeof(line),
                  "%-9s %3u %11.4f %11.4f %9.4f %10.3f %12llu %8zu %10.1f\n",
                  method_name(r.method).c_str(), r.k,
                  r.dynamic_edge_cut.median, r.dynamic_balance.median,
                  r.normalized_balance_median,
                  r.throughput.mean_speedup,
                  static_cast<unsigned long long>(r.result.total_moves),
                  r.result.repartitions.size(), r.cell_wall_ms);
    os << line;
  }
  return os.str();
}

}  // namespace ethshard::core
