// Stage A of the two-stage window replay: partition-independent
// aggregation of one metric window's blocks into a flat, canonically
// ordered table.
//
// Within a window, the only partition-dependent work the simulator does
// per call is classifying it by its endpoints' shards — and a vertex's
// shard cannot change between its placement and the window's flush (the
// paper's five methods migrate nothing mid-window; repartitions happen
// only at flush boundaries). Everything else — which pairs interacted and
// how often, how much load each vertex accrued under either LoadModel,
// which transactions introduce never-seen vertices and with which peers —
// depends only on the trace prefix. WindowAggregator computes exactly
// that part once per window, so Stage B (ShardingSimulator::
// apply_window_table) can replay placements in trace order and then
// account the whole window in one vectorized pass over the table,
// bit-identically to the per-call serial loop. Because the table is
// partition-independent, a background worker can aggregate window W+1
// while the simulator is still applying/flushing window W (see
// SimulatorConfig::replay_threads).
//
// Sharded aggregation (SimulatorConfig::aggregation_shards, DESIGN.md
// §6d): a window's block span splits into up to `shards` contiguous
// sub-ranges that aggregate independently — in parallel when the
// hardware allows — into per-shard scratch tables, which then merge
// deterministically on the calling thread. Pair and load entries merge
// by summing (associative integer accumulation over sorted locals, so
// the k-way merge reproduces the unsharded sort exactly); placement
// detection, which is inherently sequential, is handled by
// over-approximation: each shard flags a transaction as a placement
// *candidate* iff any involved vertex was unseen at window start (the
// shared seen-set is read-only during the parallel phase), and the
// sequential merge replays candidates in trace order against the live
// seen-set, which reproduces serial first-appearance detection exactly.
// The resulting table is therefore bit-identical for every shard count.
//
// Threading note: aggregate() runs on the pipeline's producer thread in
// pipelined mode, whose thread-local observability registry may differ
// from the simulation's (core/experiment.cpp scopes a registry per
// experiment cell). This translation unit therefore uses no ETHSHARD_OBS_*
// macros; the consumer records WindowTable::aggregate_ms instead.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "eth/chain.hpp"
#include "graph/builder.hpp"
#include "util/sim_time.hpp"
#include "util/slot_map.hpp"
#include "workload/windows.hpp"

namespace ethshard::core {

/// One transaction that introduces at least one never-seen vertex, with
/// the deduplicated involved list (sender first, then call endpoints in
/// trace order) Stage B needs to replay the serial placement loop
/// exactly: which of them are new, and each one's peer shards, fall out
/// of the partition state at replay time.
struct PlacementRecord {
  /// Block timestamp — env.now() while the serial loop placed this
  /// transaction's vertices.
  util::Timestamp ts = 0;
  /// Range [begin, end) into WindowTable::placement_vertices.
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
};

/// The partition-independent digest of one metric window. All vectors
/// are canonically sorted (pairs by (u, v), loads by vertex), so the
/// table — and everything Stage B derives from it — is independent of
/// hash-map iteration order, shard count and thread interleaving.
struct WindowTable {
  util::Timestamp window_start = 0;
  util::Timestamp first_block_ts = 0;
  util::Timestamp last_block_ts = 0;
  /// All calls in the window, including self-calls.
  std::uint64_t total_calls = 0;
  /// Calls whose caller and callee are the same account.
  std::uint64_t self_calls = 0;
  /// Deduplicated per-pair call weights in the builder's canonical
  /// orientation (u <= v; self-loops carry their weight in fwd). A
  /// non-loop pair's serial interaction count is fwd + rev.
  std::vector<graph::PairDelta> pairs;
  /// Per-vertex window activity as three parallel columns sorted by
  /// vertex: Stage B reads the vertex ids plus exactly one weight column
  /// (picked once per window by LoadModel), so the load it never uses
  /// stays out of the hot loop's cache lines.
  std::vector<graph::Vertex> load_vertices;
  /// Σ 1 per call the vertex participates in (LoadModel::kCalls); a
  /// self-call counts once.
  std::vector<graph::Weight> load_calls;
  /// Σ (1 + call_gas/1000) over the same calls (LoadModel::kGas).
  std::vector<graph::Weight> load_gas;
  /// Flat storage for the PlacementRecord ranges.
  std::vector<graph::Vertex> placement_vertices;
  std::vector<PlacementRecord> placements;
  /// Wall-clock cost of building this table (producer-side; recorded to
  /// obs by the consumer).
  double aggregate_ms = 0;
  /// CPU cost of building this table: per-shard scan CPU summed across
  /// shards plus the merge — what one thread doing the whole aggregation
  /// would have spent. The auto probe's serial estimate uses this rather
  /// than aggregate_ms because wall time is inflated by preemption when
  /// producer and consumer share cores (0 when the platform lacks a
  /// per-thread CPU clock, which reads as "serial is free" and biases
  /// auto toward the safe serial fallback).
  double aggregate_cpu_ms = 0;
};

/// Streaming aggregator. Windows must be fed in trace order through one
/// aggregator instance: first-appearance detection (which drives the
/// placement records) is a sequential property of the whole prefix,
/// which is why the pipeline has exactly one producer.
class WindowAggregator {
 public:
  /// `shards` = maximum sub-ranges each window's block span splits into
  /// (clamped to the window's block count; 0 behaves as 1). The table is
  /// bit-identical for every value — shards only trade merge overhead
  /// for parallel scan time.
  explicit WindowAggregator(std::size_t shards = 1);

  /// Builds the table for one window span of `blocks` (the same span the
  /// simulator will apply). Spans must arrive in order, without gaps.
  WindowTable aggregate(std::span<const eth::Block> blocks,
                        const workload::WindowSpan& span);

  /// Same, over a WindowBinner-produced window (the streaming path, where
  /// no whole-chain span exists). Windows must arrive in order here too.
  WindowTable aggregate(const workload::BinnedWindow& window);

 private:
  /// Per-vertex load entry local to one shard's scan; the merge writes
  /// the final table's SoA columns, so only the scratch stays AoS (which
  /// keeps the per-shard canonical sort a single std::sort).
  struct LocalLoad {
    graph::Vertex v = 0;
    graph::Weight calls = 0;
    graph::Weight gas = 0;
  };

  /// One sub-range's private aggregation state. Retained across windows
  /// so the flat maps keep their capacity.
  struct ShardScratch {
    util::SlotMap pair_slot;  // packed (u << 32 | v), u <= v → pairs index
    util::SlotMap load_slot;  // vertex → loads index
    util::SlotMap tx_slot;    // per-transaction involved dedup
    std::vector<graph::PairDelta> pairs;
    std::vector<LocalLoad> loads;
    /// Flat involved lists of the shard's placement candidates.
    std::vector<graph::Vertex> cand_vertices;
    std::vector<PlacementRecord> cands;
    std::uint64_t total_calls = 0;
    std::uint64_t self_calls = 0;
  };

  WindowTable aggregate_blocks(std::span<const eth::Block> window_blocks,
                               util::Timestamp window_start);

  /// Scans one contiguous sub-range into `sc`. Reads seen_ but never
  /// writes it, so any number of scans may run concurrently.
  void scan_span(std::span<const eth::Block> blocks, ShardScratch& sc) const;

  /// Sequential deterministic merge of scratch_[0..shard_count) into
  /// `table`: k-way sum-merge of sorted pairs/loads, candidate placement
  /// filtering against (and update of) the live seen_ set.
  void merge_scratches(std::size_t shard_count, WindowTable& table);

  std::size_t shards_ = 1;
  std::vector<ShardScratch> scratch_;
  /// Per-shard scan CPU times for the window in flight (each slot is
  /// written by exactly one scan, read after the parallel phase).
  std::vector<double> scan_cpu_ms_;
  /// First-ever appearance across the whole history prefix. Only
  /// merge_scratches mutates it; scan_span reads it as the window-start
  /// snapshot.
  std::vector<bool> seen_;
  /// k-way merge cursors (merge_scratches scratch).
  std::vector<std::size_t> merge_pos_;
};

}  // namespace ethshard::core
