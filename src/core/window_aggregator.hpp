// Stage A of the two-stage window replay: partition-independent
// aggregation of one metric window's blocks into a flat, canonically
// ordered table.
//
// Within a window, the only partition-dependent work the simulator does
// per call is classifying it by its endpoints' shards — and a vertex's
// shard cannot change between its placement and the window's flush (the
// paper's five methods migrate nothing mid-window; repartitions happen
// only at flush boundaries). Everything else — which pairs interacted and
// how often, how much load each vertex accrued under either LoadModel,
// which transactions introduce never-seen vertices and with which peers —
// depends only on the trace prefix. WindowAggregator computes exactly
// that part once per window, so Stage B (ShardingSimulator::
// apply_window_table) can replay placements in trace order and then
// account the whole window in one vectorized pass over the table,
// bit-identically to the per-call serial loop. Because the table is
// partition-independent, a background worker can aggregate window W+1
// while the simulator is still applying/flushing window W (see
// SimulatorConfig::replay_threads).
//
// Threading note: aggregate() runs on the pipeline's producer thread in
// pipelined mode, whose thread-local observability registry may differ
// from the simulation's (core/experiment.cpp scopes a registry per
// experiment cell). This translation unit therefore uses no ETHSHARD_OBS_*
// macros; the consumer records WindowTable::aggregate_ms instead.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "eth/chain.hpp"
#include "graph/builder.hpp"
#include "util/sim_time.hpp"
#include "workload/windows.hpp"

namespace ethshard::core {

/// Activity accrued by one vertex over one window, under both load
/// models (SimulatorConfig picks one; both are partition-independent, so
/// the aggregation computes them side by side for free).
struct VertexWindowLoad {
  graph::Vertex v = 0;
  /// Σ 1 per call the vertex participates in (LoadModel::kCalls); a
  /// self-call counts once.
  graph::Weight calls = 0;
  /// Σ (1 + call_gas/1000) over the same calls (LoadModel::kGas).
  graph::Weight gas = 0;
};

/// One transaction that introduces at least one never-seen vertex, with
/// the deduplicated involved list (sender first, then call endpoints in
/// trace order) Stage B needs to replay the serial placement loop
/// exactly: which of them are new, and each one's peer shards, fall out
/// of the partition state at replay time.
struct PlacementRecord {
  /// Block timestamp — env.now() while the serial loop placed this
  /// transaction's vertices.
  util::Timestamp ts = 0;
  /// Range [begin, end) into WindowTable::placement_vertices.
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
};

/// The partition-independent digest of one metric window. All vectors
/// are canonically sorted (pairs by (u, v), loads by v), so the table —
/// and everything Stage B derives from it — is independent of hash-map
/// iteration order.
struct WindowTable {
  util::Timestamp window_start = 0;
  util::Timestamp first_block_ts = 0;
  util::Timestamp last_block_ts = 0;
  /// All calls in the window, including self-calls.
  std::uint64_t total_calls = 0;
  /// Calls whose caller and callee are the same account.
  std::uint64_t self_calls = 0;
  /// Deduplicated per-pair call weights in the builder's canonical
  /// orientation (u <= v; self-loops carry their weight in fwd). A
  /// non-loop pair's serial interaction count is fwd + rev.
  std::vector<graph::PairDelta> pairs;
  std::vector<VertexWindowLoad> loads;
  /// Flat storage for the PlacementRecord ranges.
  std::vector<graph::Vertex> placement_vertices;
  std::vector<PlacementRecord> placements;
  /// Wall-clock cost of building this table (producer-side; recorded to
  /// obs by the consumer).
  double aggregate_ms = 0;
};

/// Streaming aggregator. Windows must be fed in trace order through one
/// aggregator instance: first-appearance detection (which drives the
/// placement records) is a sequential property of the whole prefix,
/// which is why the pipeline has exactly one producer.
class WindowAggregator {
 public:
  WindowAggregator() = default;

  /// Builds the table for one window span of `blocks` (the same span the
  /// simulator will apply). Spans must arrive in order, without gaps.
  WindowTable aggregate(std::span<const eth::Block> blocks,
                        const workload::WindowSpan& span);

  /// Same, over a WindowBinner-produced window (the streaming path, where
  /// no whole-chain span exists). Windows must arrive in order here too.
  WindowTable aggregate(const workload::BinnedWindow& window);

 private:
  WindowTable aggregate_blocks(std::span<const eth::Block> window_blocks,
                               util::Timestamp window_start);

  /// packed (u << 32 | v), canonical u <= v → index into table.pairs.
  std::unordered_map<std::uint64_t, std::uint32_t> pair_slot_;
  /// vertex → index into table.loads.
  std::unordered_map<std::uint64_t, std::uint32_t> load_slot_;
  /// First-ever appearance across the whole history prefix.
  std::vector<bool> seen_;
  /// Per-transaction involved-dedup stamps (grown on demand, epoch-
  /// stamped so no per-transaction clearing is needed).
  std::vector<std::uint64_t> tx_stamp_;
  std::uint64_t tx_epoch_ = 0;
  std::vector<graph::Vertex> involved_;
};

}  // namespace ethshard::core
