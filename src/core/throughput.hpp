// Throughput model: what the paper's metrics imply for performance.
//
// §I: "If the partitioning is such that most application requests can be
// executed within a single shard and the load among shards is balanced,
// then performance scales with the number of shards. … if the
// application state is poorly partitioned, overall system performance
// will most likely decrease, instead of increase, due to the overhead of
// multi-shard requests."
//
// This module turns a simulation's per-window dynamic edge-cut and
// dynamic balance into that statement's arithmetic. Model: every shard
// processes `capacity` work units per window; an intra-shard interaction
// costs 1 unit, a cross-shard one costs `cross_cost` units (coordination,
// e.g. two-phase commit legs). The system drains a window's workload at
// the pace of its most loaded shard, so with load share balance/k on the
// hottest shard:
//
//   speedup(k) = k / (balance · (1 + (cross_cost − 1) · cross_fraction))
//
// normalized so a single unsharded node has speedup 1. speedup < 1 is the
// paper's pitfall: sharding made things worse.
#pragma once

#include <cstdint>

#include "core/simulator.hpp"

namespace ethshard::core {

struct ThroughputModel {
  /// Work units a cross-shard interaction costs (>= 1); an intra-shard
  /// one costs exactly 1. Two-phase coordination typically lands around
  /// 3 (prepare + commit on two shards vs one local execution).
  double cross_cost = 3.0;
};

/// Speedup over an unsharded node for one window's observed metrics.
/// Preconditions: k >= 1, dynamic_balance >= 1, cross fraction in [0,1].
double window_speedup(double dynamic_edge_cut, double dynamic_balance,
                      std::uint32_t k, const ThroughputModel& model = {});

/// Aggregate over a simulation: interaction-weighted mean speedup plus
/// the share of windows where sharding was a net loss (speedup < 1).
struct ThroughputSummary {
  double mean_speedup = 1;
  double worst_speedup = 1;
  double best_speedup = 1;
  /// Fraction of (non-empty) windows with speedup < 1 — how often the
  /// paper's pitfall bites.
  double loss_fraction = 0;
  std::size_t windows = 0;
};

ThroughputSummary summarize_throughput(const SimulationResult& result,
                                       const ThroughputModel& model = {});

}  // namespace ethshard::core
