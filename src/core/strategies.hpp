// The paper's five partitioning methods (§II-C) as sharding strategies.
//
//   Hashing   — shard(v) = hash(id) mod k; never repartitions.
//   KL        — periodic balanced label propagation on the activity
//               window (distributed Kernighan–Lin with the probability-
//               matrix oracle).
//   METIS     — periodic multilevel partitioning of the full cumulative
//               graph (unit vertex weights, frequency edge weights).
//   R-METIS   — periodic multilevel partitioning of the *reduced* graph:
//               only vertices/interactions since the last repartition.
//               (Called P-METIS in the paper's figures.)
//   TR-METIS  — R-METIS triggered by thresholds on dynamic edge-cut and
//               dynamic balance instead of a fixed period.
#pragma once

#include <memory>

#include "core/strategy.hpp"
#include "partition/blp.hpp"
#include "partition/mlkp.hpp"

namespace ethshard::core {

/// The paper's baseline. Zero moves by construction.
class HashStrategy final : public ShardingStrategy {
 public:
  explicit HashStrategy(std::uint64_t salt = 0) : salt_(salt) {}

  std::string name() const override { return "Hashing"; }
  partition::ShardId place(graph::Vertex v,
                           std::span<const partition::ShardId> peers,
                           const SimulatorEnv& env) override;
  bool should_repartition(const WindowSnapshot&, const SimulatorEnv&) override {
    return false;
  }
  util::Timestamp no_repartition_before(util::Timestamp) const override {
    return kNeverOnEmpty;
  }
  bool supports_batched_replay() const override { return true; }
  partition::Partition compute_partition(const SimulatorEnv& env) override;

 private:
  std::uint64_t salt_;
};

/// Distributed Kernighan–Lin (balanced label propagation). The system
/// bootstraps from hashing; every period the shards exchange gain-positive
/// vertices under the oracle's balance-preserving probability matrix.
class KlStrategy final : public ShardingStrategy {
 public:
  explicit KlStrategy(
      util::Timestamp period = util::kRepartitionPeriod,
      partition::BlpConfig blp = {}, std::uint64_t salt = 0)
      : period_(period), blp_(blp), salt_(salt) {}

  std::string name() const override { return "KL"; }
  partition::ShardId place(graph::Vertex v,
                           std::span<const partition::ShardId> peers,
                           const SimulatorEnv& env) override;
  bool should_repartition(const WindowSnapshot& snapshot,
                          const SimulatorEnv& env) override;
  util::Timestamp no_repartition_before(
      util::Timestamp last_repartition) const override {
    return last_repartition + period_;
  }
  bool supports_batched_replay() const override { return true; }
  partition::Partition compute_partition(const SimulatorEnv& env) override;

 private:
  util::Timestamp period_;
  partition::BlpConfig blp_;
  std::uint64_t salt_;
  std::uint64_t invocation_ = 0;
};

/// Full-graph multilevel repartitioning every `period` — the paper's
/// METIS method, including its pitfall: nothing ties successive runs
/// together, so vertices slosh between shards wholesale.
class FullGraphMlkpStrategy final : public ShardingStrategy {
 public:
  explicit FullGraphMlkpStrategy(
      util::Timestamp period = util::kRepartitionPeriod,
      partition::MlkpConfig mlkp = {})
      : period_(period), mlkp_(mlkp) {}

  std::string name() const override { return "METIS"; }
  partition::ShardId place(graph::Vertex v,
                           std::span<const partition::ShardId> peers,
                           const SimulatorEnv& env) override;
  bool should_repartition(const WindowSnapshot& snapshot,
                          const SimulatorEnv& env) override;
  util::Timestamp no_repartition_before(
      util::Timestamp last_repartition) const override {
    return last_repartition + period_;
  }
  bool supports_batched_replay() const override { return true; }
  partition::Partition compute_partition(const SimulatorEnv& env) override;

  const partition::MlkpConfig& mlkp_config() const { return mlkp_; }

 private:
  util::Timestamp period_;
  partition::MlkpConfig mlkp_;
  std::uint64_t invocation_ = 0;
};

/// Reduced-graph multilevel repartitioning: only the vertices active since
/// the last repartition are repartitioned; dormant vertices (e.g. the
/// attack's dummy accounts) stay put and stop distorting balance.
class WindowMlkpStrategy final : public ShardingStrategy {
 public:
  explicit WindowMlkpStrategy(
      util::Timestamp period = util::kRepartitionPeriod,
      partition::MlkpConfig mlkp = {})
      : period_(period), mlkp_(mlkp) {}

  std::string name() const override { return "R-METIS"; }
  partition::ShardId place(graph::Vertex v,
                           std::span<const partition::ShardId> peers,
                           const SimulatorEnv& env) override;
  bool should_repartition(const WindowSnapshot& snapshot,
                          const SimulatorEnv& env) override;
  util::Timestamp no_repartition_before(
      util::Timestamp last_repartition) const override {
    return last_repartition + period_;
  }
  bool supports_batched_replay() const override { return true; }
  partition::Partition compute_partition(const SimulatorEnv& env) override;

  const partition::MlkpConfig& mlkp_config() const { return mlkp_; }

 private:
  util::Timestamp period_;
  partition::MlkpConfig mlkp_;
  std::uint64_t invocation_ = 0;
};

/// Trigger configuration for ThresholdMlkpStrategy (namespace-scope so it
/// can serve as a defaulted constructor argument).
struct TrMetisThresholds {
  /// No repartition while cut/balance stay under these floors.
  double cut_floor = 0.30;
  double balance_floor = 1.30;
  /// Degradation over the post-repartition baseline that triggers.
  double cut_margin = 0.12;
  double balance_margin = 0.40;
  /// Minimum spacing between repartitions.
  util::Timestamp min_gap = 2 * util::kDay;
  /// Windows with fewer interactions carry no signal (quiet hours).
  std::uint64_t min_interactions = 8;
  /// Smoothing factor for the exponentially weighted moving average of
  /// the window metrics (per busy window); 1 = no smoothing.
  double ewma_alpha = 0.25;
  /// Consecutive busy windows the smoothed metrics must stay above the
  /// trigger before a repartition fires (debounces 4-hour noise).
  int violations_required = 6;
};

/// Threshold-triggered R-METIS: repartitions only when the observed
/// dynamic edge-cut or dynamic balance degrades past its trigger level,
/// avoiding unnecessary repartitions and hence moves.
///
/// The trigger levels are *adaptive*: after each repartition, the first
/// busy window's metrics become the baseline, and a repartition fires
/// only when the current window exceeds baseline + margin (never below
/// the absolute floors — §III: "We adjust thresholds ... in such a way
/// that the performance does not diverge much from [R-METIS]").
class ThresholdMlkpStrategy final : public ShardingStrategy {
 public:
  using Thresholds = TrMetisThresholds;

  explicit ThresholdMlkpStrategy(Thresholds thresholds = {},
                                 partition::MlkpConfig mlkp = {})
      : thresholds_(thresholds), mlkp_(mlkp) {}

  std::string name() const override { return "TR-METIS"; }
  partition::ShardId place(graph::Vertex v,
                           std::span<const partition::ShardId> peers,
                           const SimulatorEnv& env) override;
  bool should_repartition(const WindowSnapshot& snapshot,
                          const SimulatorEnv& env) override;
  util::Timestamp no_repartition_before(util::Timestamp) const override {
    // Windows below min_interactions return early without touching the
    // trigger state, so skipping empty ones is exact; with the threshold
    // at 0 an empty window feeds the EWMA and must be consulted.
    return thresholds_.min_interactions > 0 ? kNeverOnEmpty : kAlwaysConsult;
  }
  bool supports_batched_replay() const override { return true; }
  partition::Partition compute_partition(const SimulatorEnv& env) override;

  const Thresholds& thresholds() const { return thresholds_; }
  const partition::MlkpConfig& mlkp_config() const { return mlkp_; }

 private:
  Thresholds thresholds_;
  partition::MlkpConfig mlkp_;
  std::uint64_t invocation_ = 0;
  bool have_baseline_ = false;
  double baseline_cut_ = 0;
  double baseline_balance_ = 1;
  double ewma_cut_ = 0;
  double ewma_balance_ = 1;
  int violations_ = 0;
};

/// State-movement execution — the paper's §I class (b) for multi-shard
/// requests ("moving the necessary state to one shard that will execute
/// the request locally", citation [5]: Dynamic Scalable SMR). Whenever a
/// transaction spans shards, every participant migrates to the majority
/// shard, so repeated interactions become single-shard at the price of
/// continuous state movement (§IV's bandwidth/storage warning). Not one
/// of the paper's five evaluated methods; provided for the comparison in
/// bench/ablation_state_movement.
class DsmStrategy final : public ShardingStrategy {
 public:
  DsmStrategy() = default;

  std::string name() const override { return "DSM"; }
  partition::ShardId place(graph::Vertex v,
                           std::span<const partition::ShardId> peers,
                           const SimulatorEnv& env) override;
  bool should_repartition(const WindowSnapshot&, const SimulatorEnv&) override {
    return false;
  }
  util::Timestamp no_repartition_before(util::Timestamp) const override {
    return kNeverOnEmpty;
  }
  partition::Partition compute_partition(const SimulatorEnv& env) override {
    return env.current_partition();
  }
  /// Migrates online through on_transaction, which batched replay never
  /// invokes — DSM must stay on the serial path (inherited default, made
  /// explicit here because it is load-bearing).
  bool supports_batched_replay() const override { return false; }
  void on_transaction(std::span<const graph::Vertex> involved,
                      const SimulatorEnv& env,
                      MigrationSink& sink) override;
};

/// Identifier for make_strategy.
enum class Method {
  kHashing,
  kKl,
  kMetis,
  kRMetis,
  kTrMetis,
};

/// All five methods, in the paper's order.
inline constexpr Method kAllMethods[] = {Method::kHashing, Method::kKl,
                                         Method::kMetis, Method::kRMetis,
                                         Method::kTrMetis};

/// Factory with the paper's defaults (two-week period, 4-shard-tolerant
/// thresholds). `seed` perturbs any randomized component;
/// `partitioner_threads` sets MlkpConfig::threads for the MLKP-backed
/// methods (1 = serial; results are identical for every thread count).
std::unique_ptr<ShardingStrategy> make_strategy(
    Method method, std::uint64_t seed = 1,
    std::size_t partitioner_threads = 1);

/// The method's figure label ("Hashing", "KL", "METIS", "R-METIS",
/// "TR-METIS").
std::string method_name(Method method);

}  // namespace ethshard::core
