#include "core/strategy_registry.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

#include "core/strategies.hpp"
#include "util/check.hpp"
#include "util/sim_time.hpp"

namespace ethshard::core {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string trim(std::string_view s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string_view::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return std::string(s.substr(b, e - b + 1));
}

/// Shared by the periodic strategies: repartition period in (fractional)
/// days, defaulting to the paper's two weeks.
util::Timestamp read_period(SpecReader& r) {
  const double days = r.get_double(
      "period_days",
      static_cast<double>(util::kRepartitionPeriod) / util::kDay);
  ETHSHARD_CHECK_MSG(days > 0, "strategy '" + r.name() +
                                   "': period_days must be > 0");
  return static_cast<util::Timestamp>(days * util::kDay);
}

partition::MlkpConfig read_mlkp(SpecReader& r) {
  partition::MlkpConfig cfg;
  cfg.seed = r.seed();
  cfg.imbalance = r.get_double("imbalance", cfg.imbalance);
  cfg.coarsen_to = r.get_uint("coarsen_to", cfg.coarsen_to);
  cfg.init_tries = r.get_int("init_tries", cfg.init_tries);
  cfg.refine_passes = r.get_int("refine_passes", cfg.refine_passes);
  cfg.refine = r.get_bool("refine", cfg.refine);
  cfg.threads = static_cast<std::size_t>(
      r.get_uint("threads", r.default_threads()));
  ETHSHARD_CHECK_MSG(cfg.threads <= 1024,
                     "strategy '" + r.name() + "': threads = " +
                         std::to_string(cfg.threads) +
                         " is not plausible — use 0 for hardware "
                         "concurrency or 1 for serial");
  const std::string matching = r.get_string(
      "matching",
      cfg.matching == partition::MatchingScheme::kHeavyEdge ? "heavy-edge"
                                                            : "random");
  if (matching == "heavy-edge") {
    cfg.matching = partition::MatchingScheme::kHeavyEdge;
  } else if (matching == "random") {
    cfg.matching = partition::MatchingScheme::kRandom;
  } else {
    ETHSHARD_CHECK_MSG(false, "strategy '" + r.name() +
                                  "': matching must be 'heavy-edge' or "
                                  "'random', got '" +
                                  matching + "'");
  }
  return cfg;
}

void register_builtins(StrategyRegistry& reg) {
  reg.add("hashing", {}, [](SpecReader& r) -> std::unique_ptr<ShardingStrategy> {
    return std::make_unique<HashStrategy>(r.seed());
  });

  reg.add("kl", {}, [](SpecReader& r) -> std::unique_ptr<ShardingStrategy> {
    const util::Timestamp period = read_period(r);
    partition::BlpConfig blp;
    blp.seed = r.seed();
    blp.rounds = r.get_int("rounds", blp.rounds);
    blp.rebalance = r.get_double("rebalance", blp.rebalance);
    blp.probabilistic = r.get_bool("probabilistic", blp.probabilistic);
    return std::make_unique<KlStrategy>(period, blp, r.seed());
  });

  reg.add("metis", {}, [](SpecReader& r) -> std::unique_ptr<ShardingStrategy> {
    const util::Timestamp period = read_period(r);
    return std::make_unique<FullGraphMlkpStrategy>(period, read_mlkp(r));
  });

  // "P-METIS" is what the paper's figures call the reduced/windowed
  // variant; the strategy itself reports "R-METIS" either way.
  reg.add("r-metis", {"p-metis"},
          [](SpecReader& r) -> std::unique_ptr<ShardingStrategy> {
            const util::Timestamp period = read_period(r);
            return std::make_unique<WindowMlkpStrategy>(period, read_mlkp(r));
          });

  reg.add("tr-metis", {},
          [](SpecReader& r) -> std::unique_ptr<ShardingStrategy> {
            TrMetisThresholds t;
            t.cut_floor = r.get_double("cut_floor", t.cut_floor);
            t.balance_floor = r.get_double("balance_floor", t.balance_floor);
            t.cut_margin = r.get_double("cut_margin", t.cut_margin);
            t.balance_margin =
                r.get_double("balance_margin", t.balance_margin);
            const double gap_days = r.get_double(
                "min_gap_days",
                static_cast<double>(t.min_gap) / util::kDay);
            ETHSHARD_CHECK_MSG(gap_days >= 0,
                               "strategy 'tr-metis': min_gap_days must be "
                               ">= 0");
            t.min_gap = static_cast<util::Timestamp>(gap_days * util::kDay);
            t.min_interactions =
                r.get_uint("min_interactions", t.min_interactions);
            t.ewma_alpha = r.get_double("ewma_alpha", t.ewma_alpha);
            t.violations_required =
                r.get_int("violations_required", t.violations_required);
            return std::make_unique<ThresholdMlkpStrategy>(t, read_mlkp(r));
          });

  reg.add("dsm", {}, [](SpecReader&) -> std::unique_ptr<ShardingStrategy> {
    return std::make_unique<DsmStrategy>();
  });
}

}  // namespace

StrategySpec parse_strategy_spec(std::string_view spec) {
  StrategySpec out;
  const auto colon = spec.find(':');
  out.name = lower(trim(spec.substr(0, colon)));
  ETHSHARD_CHECK_MSG(!out.name.empty(),
                     "strategy spec '" + std::string(spec) +
                         "' has an empty name");
  if (colon == std::string_view::npos) return out;

  std::string params(spec.substr(colon + 1));
  std::istringstream is(params);
  std::string token;
  while (std::getline(is, token, ',')) {
    if (trim(token).empty()) continue;
    const auto eq = token.find('=');
    ETHSHARD_CHECK_MSG(eq != std::string::npos,
                       "strategy spec parameter '" + trim(token) +
                           "' is not of the form key=value");
    const std::string key = lower(trim(token.substr(0, eq)));
    const std::string value = trim(token.substr(eq + 1));
    ETHSHARD_CHECK_MSG(!key.empty(), "strategy spec parameter '" +
                                         trim(token) + "' has an empty key");
    for (const auto& [k, v] : out.params)
      ETHSHARD_CHECK_MSG(k != key, "strategy spec repeats key '" + key + "'");
    out.params.emplace_back(key, value);
  }
  return out;
}

SpecReader::SpecReader(const StrategySpec& spec, std::uint64_t default_seed,
                       std::size_t default_threads)
    : spec_(spec), seed_(default_seed), default_threads_(default_threads) {
  seed_ = get_uint("seed", default_seed);
}

const std::string* SpecReader::raw(const std::string& key) {
  for (const auto& [k, v] : spec_.params)
    if (k == key) {
      consumed_.insert(key);
      return &v;
    }
  return nullptr;
}

std::string SpecReader::get_string(const std::string& key,
                                   const std::string& fallback) {
  const std::string* v = raw(key);
  return v ? lower(*v) : fallback;
}

double SpecReader::get_double(const std::string& key, double fallback) {
  const std::string* v = raw(key);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  ETHSHARD_CHECK_MSG(end != v->c_str() && *end == '\0',
                     "strategy '" + spec_.name + "': key '" + key +
                         "' expects a number, got '" + *v + "'");
  return parsed;
}

std::uint64_t SpecReader::get_uint(const std::string& key,
                                   std::uint64_t fallback) {
  const std::string* v = raw(key);
  if (!v) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v->c_str(), &end, 10);
  ETHSHARD_CHECK_MSG(end != v->c_str() && *end == '\0' &&
                         v->find('-') == std::string::npos,
                     "strategy '" + spec_.name + "': key '" + key +
                         "' expects a non-negative integer, got '" + *v +
                         "'");
  return parsed;
}

int SpecReader::get_int(const std::string& key, int fallback) {
  const std::string* v = raw(key);
  if (!v) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v->c_str(), &end, 10);
  ETHSHARD_CHECK_MSG(end != v->c_str() && *end == '\0',
                     "strategy '" + spec_.name + "': key '" + key +
                         "' expects an integer, got '" + *v + "'");
  return static_cast<int>(parsed);
}

bool SpecReader::get_bool(const std::string& key, bool fallback) {
  const std::string* v = raw(key);
  if (!v) return fallback;
  const std::string s = lower(*v);
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  ETHSHARD_CHECK_MSG(false, "strategy '" + spec_.name + "': key '" + key +
                                "' expects a boolean, got '" + *v + "'");
  return fallback;
}

void SpecReader::finish() const {
  for (const auto& [k, v] : spec_.params)
    ETHSHARD_CHECK_MSG(consumed_.count(k) != 0,
                       "unknown key '" + k + "' for strategy '" +
                           spec_.name + "'");
}

void StrategyRegistry::add(const std::string& canonical,
                           const std::vector<std::string>& aliases,
                           Factory factory) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys{lower(canonical)};
  for (const std::string& a : aliases) keys.push_back(lower(a));
  for (const std::string& key : keys)
    ETHSHARD_CHECK_MSG(factories_.count(key) == 0,
                       "strategy name '" + key + "' is already registered");
  for (const std::string& key : keys) factories_[key] = factory;
  canonical_.push_back(lower(canonical));
}

std::unique_ptr<ShardingStrategy> StrategyRegistry::make(
    std::string_view spec, std::uint64_t default_seed,
    std::size_t default_threads) const {
  return make_build(spec, default_seed, default_threads).strategy;
}

StrategyBuild StrategyRegistry::make_build(
    std::string_view spec, std::uint64_t default_seed,
    std::size_t default_threads) const {
  const StrategySpec parsed = parse_strategy_spec(spec);
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = factories_.find(parsed.name);
    if (it == factories_.end()) {
      std::ostringstream os;
      os << "unknown strategy '" << parsed.name << "' — known strategies:";
      for (const std::string& n : canonical_) os << " " << n;
      ETHSHARD_CHECK_MSG(false, os.str());
    }
    factory = it->second;
  }
  SpecReader reader(parsed, default_seed, default_threads);
  StrategyBuild build;
  // Simulator-level keys are consumed before the factory runs, so every
  // registered strategy accepts them and finish() stays strict about
  // genuinely unknown keys.
  // "auto" spells the measured-probe mode (the 0 default) readably.
  if (reader.get_string("replay_threads", "0") == "auto")
    build.replay_threads = 0;
  else
    build.replay_threads = static_cast<std::size_t>(
        reader.get_uint("replay_threads", 0));
  ETHSHARD_CHECK_MSG(build.replay_threads <= 1024,
                     "strategy '" + parsed.name + "': replay_threads = " +
                         std::to_string(build.replay_threads) +
                         " is not plausible — use 0 (or 'auto') for the "
                         "measured auto mode or 1 for serial replay");
  build.queue_capacity = static_cast<std::size_t>(
      reader.get_uint("queue_capacity", 0));
  ETHSHARD_CHECK_MSG(
      build.queue_capacity <= 65536,
      "strategy '" + parsed.name + "': queue_capacity = " +
          std::to_string(build.queue_capacity) +
          " is not plausible — each slot buffers a whole window table");
  if (reader.get_string("agg_shards", "0") == "auto")
    build.aggregation_shards = 0;
  else
    build.aggregation_shards = static_cast<std::size_t>(
        reader.get_uint("agg_shards", 0));
  ETHSHARD_CHECK_MSG(build.aggregation_shards <= 64,
                     "strategy '" + parsed.name + "': agg_shards = " +
                         std::to_string(build.aggregation_shards) +
                         " is not plausible — use 0 (or 'auto') for the "
                         "hardware-derived default");
  build.strategy = factory(reader);
  ETHSHARD_CHECK_MSG(build.strategy != nullptr, "strategy factory for '" +
                                                    parsed.name +
                                                    "' returned nothing");
  reader.finish();
  return build;
}

bool StrategyRegistry::contains(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(lower(trim(name))) != 0;
}

std::vector<std::string> StrategyRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out = canonical_;
  std::sort(out.begin(), out.end());
  return out;
}

StrategyRegistry& StrategyRegistry::global() {
  static StrategyRegistry* reg = [] {
    auto* r = new StrategyRegistry();  // leaked: outlives all callers
    register_builtins(*r);
    return r;
  }();
  return *reg;
}

}  // namespace ethshard::core
