#include "core/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "core/window_aggregator.hpp"
#include "eth/gas.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/mem.hpp"
#include "util/parallel.hpp"
#include "util/pipeline.hpp"
#include "workload/windows.hpp"

namespace ethshard::core {

// Strategy-facing view backed directly by the simulator's state.
class ShardingSimulator::Env final : public SimulatorEnv {
 public:
  explicit Env(const ShardingSimulator& sim) : sim_(sim) {}

  std::uint32_t k() const override { return sim_.cfg_.k; }
  util::Timestamp now() const override { return sim_.now_; }

  const partition::Partition& current_partition() const override {
    return sim_.part_;
  }
  const std::vector<std::uint64_t>& shard_vertex_counts() const override {
    return sim_.shard_counts_;
  }
  const std::vector<graph::Weight>& shard_loads() const override {
    return sim_.shard_loads_;
  }

  const graph::Graph& cumulative_graph() const override {
    return sim_.cumulative_snapshot();
  }

  WindowGraph window_graph() const override {
    // Active = touched by a call this window (endpoints always accrue
    // activity weight). The induced symmetrized snapshot comes straight
    // from the window builder's undirected adjacency, through scratch
    // buffers that persist across windows.
    std::vector<graph::Vertex>& active = sim_.window_active_;
    active.clear();
    for (graph::Vertex v = 0; v < sim_.window_.num_vertices(); ++v)
      if (sim_.window_.vertex_weight(v) > 0) active.push_back(v);
    WindowGraph wg;
    wg.undirected = sim_.window_.build_undirected_induced(
        active, sim_.window_old_to_new_);
    wg.to_global = active;
    return wg;
  }

 private:
  const ShardingSimulator& sim_;
};

// Applies a strategy's online migrations with full accounting.
class ShardingSimulator::Sink final : public MigrationSink {
 public:
  explicit Sink(ShardingSimulator& sim) : sim_(sim) {}

  void migrate(graph::Vertex v, partition::ShardId s) override {
    sim_.apply_migration(v, s);
  }

 private:
  ShardingSimulator& sim_;
};

void ShardingSimulator::apply_migration(graph::Vertex v,
                                        partition::ShardId s) {
  ETHSHARD_CHECK_MSG(v < part_.size(), "migrate: unknown vertex");
  ETHSHARD_CHECK_MSG(s < cfg_.k, "migrate: shard out of range");
  const partition::ShardId from = part_.shard_of(v);
  ETHSHARD_CHECK_MSG(from != partition::kUnassigned,
                     "migrate: vertex not placed yet");
  if (from == s) return;

  apply_cut_delta(v, from, s);
  part_.assign(v, s);
  --shard_counts_[from];
  ++shard_counts_[s];
  shard_loads_[from] -= activity_[v];
  shard_loads_[s] += activity_[v];
  ETHSHARD_OBS_COUNT("sim/cut_delta_migrations", 1);

  const std::uint64_t state = 1 + activity_[v];
  ++result_.total_moves;
  ++result_.online_moves;
  result_.total_moved_state_units += state;
  result_.online_moved_state_units += state;
  ETHSHARD_OBS_COUNT("sim/migrations", 1);
}

ShardingSimulator::ShardingSimulator(workload::BlockSource& source,
                                     ShardingStrategy& strategy,
                                     SimulatorConfig cfg)
    : source_(&source),
      strategy_(strategy),
      cfg_(cfg),
      part_(0, cfg.k),
      shard_counts_(cfg.k, 0),
      shard_loads_(cfg.k, 0),
      window_metrics_(cfg.k) {
  ETHSHARD_CHECK(cfg_.k >= 1);
  ETHSHARD_CHECK(cfg_.metric_window > 0);
}

ShardingSimulator::ShardingSimulator(const workload::History& history,
                                     ShardingStrategy& strategy,
                                     SimulatorConfig cfg)
    : owned_source_(std::make_unique<workload::MaterializedSource>(
          history.chain, &history.accounts)),
      source_(owned_source_.get()),
      strategy_(strategy),
      cfg_(cfg),
      part_(0, cfg.k),
      shard_counts_(cfg.k, 0),
      shard_loads_(cfg.k, 0),
      window_metrics_(cfg.k) {
  ETHSHARD_CHECK(cfg_.k >= 1);
  ETHSHARD_CHECK(cfg_.metric_window > 0);
}

void ShardingSimulator::ensure_vertex(graph::Vertex v) {
  while (part_.size() <= v) {
    part_.append(partition::kUnassigned);
    activity_.push_back(0);
  }
  cumulative_.ensure_vertices(v + 1, /*default_weight=*/1);
  window_.ensure_vertices(v + 1, /*default_weight=*/0);
}

void ShardingSimulator::place_vertex(
    graph::Vertex v, std::span<const partition::ShardId> peers) {
  Env env(*this);
  const partition::ShardId s = strategy_.place(v, peers, env);
  ETHSHARD_CHECK(s < cfg_.k);
  part_.assign(v, s);
  ++shard_counts_[s];
  ETHSHARD_OBS_COUNT("sim/placements", 1);
}

void ShardingSimulator::process_transaction(const eth::Transaction& tx) {
  // Involved accounts, in order of first appearance in the trace,
  // deduplicated by epoch stamp (membership is one indexed load instead
  // of a scan of everything noted so far — the attack era's many-dummy
  // transactions made the old std::find quadratic visible; see bench
  // simulate_manycall).
  involved_scratch_.clear();
  ++involved_epoch_;
  auto note = [&](graph::Vertex v) {
    if (involved_stamp_.size() <= v) involved_stamp_.resize(v + 1, 0);
    if (involved_stamp_[v] == involved_epoch_) return;
    involved_stamp_[v] = involved_epoch_;
    involved_scratch_.push_back(v);
  };
  note(tx.sender);
  for (const eth::Call& c : tx.calls) {
    note(c.from);
    note(c.to);
  }
  const std::span<const graph::Vertex> involved{involved_scratch_};

  // Place any account appearing for the first time, handing the strategy
  // the shards of the transaction's already-placed participants (§II-C).
  for (graph::Vertex v : involved) {
    ensure_vertex(v);
    if (part_.shard_of(v) != partition::kUnassigned) continue;
    peers_scratch_.clear();
    for (graph::Vertex u : involved) {
      if (u == v) continue;
      if (u < part_.size() &&
          part_.shard_of(u) != partition::kUnassigned)
        peers_scratch_.push_back(part_.shard_of(u));
    }
    place_vertex(v, peers_scratch_);
  }

  // Record every call: graphs, window metrics, static counters.
  for (const eth::Call& c : tx.calls) {
    const partition::ShardId sf = part_.shard_of(c.from);
    const partition::ShardId st = part_.shard_of(c.to);

    // Load carried by this call: 1 under the paper's frequency model, or
    // its gas cost in kilogas under the computation model.
    graph::Weight load = 1;
    if (cfg_.load_model == LoadModel::kGas)
      load = 1 + eth::call_gas(c, /*callee_exists=*/true) / 1000;

    // Self-calls count toward traffic volume and activity but are
    // excluded from the cut denominators — they can never cross shards
    // (matching metrics::dynamic_edge_cut on the loop-free window graph).
    if (c.from == c.to)
      window_metrics_.record_self_interaction(1);
    else
      window_metrics_.record_interaction(sf, st, 1);
    window_metrics_.record_activity(sf, load);
    if (c.to != c.from) window_metrics_.record_activity(st, load);

    activity_[c.from] += load;
    shard_loads_[sf] += load;
    if (c.to != c.from) {
      activity_[c.to] += load;
      shard_loads_[st] += load;
    }

    // Static-cut bookkeeping counts distinct *undirected* non-loop edges,
    // matching metrics::static_edge_cut over the symmetrized cumulative
    // graph (a→b and b→a are one edge; self-loops can never be cut).
    const graph::EdgeInsert ins = cumulative_.add_edge(c.from, c.to, 1);
    if (ins.new_undirected_edge) {
      ++distinct_edges_;
      if (sf != st) ++cut_edges_;
    }

    window_.add_edge(c.from, c.to, 1);
    window_.add_vertex_weight(c.from, load);
    if (c.to != c.from) window_.add_vertex_weight(c.to, load);

    ++executed_total_;
    if (c.from != c.to) {
      ++executed_pair_;
      if (sf != st) ++executed_cross_;
    }
  }

  // Give state-movement strategies their per-transaction hook.
  Env env(*this);
  Sink sink(*this);
  strategy_.on_transaction(involved, env, sink);
}

double ShardingSimulator::current_static_balance() const {
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  for (std::uint64_t c : shard_counts_) {
    total += c;
    max = std::max(max, c);
  }
  if (total == 0) return 1.0;
  return static_cast<double>(max) * static_cast<double>(cfg_.k) /
         static_cast<double>(total);
}

void ShardingSimulator::apply_cut_delta(graph::Vertex v,
                                        partition::ShardId from,
                                        partition::ShardId to) {
  const auto neighbors = cumulative_.undirected_neighbors(v);
  for (const graph::Vertex u : neighbors) {
    const partition::ShardId su = part_.shard_of(u);
    if (su == from)
      ++cut_edges_;  // {v, u} was internal, v is leaving
    else if (su == to)
      --cut_edges_;  // {v, u} was cut, v joins u's shard
  }
  ETHSHARD_OBS_COUNT("sim/cut_delta_arcs_scanned", neighbors.size());
}

void ShardingSimulator::recompute_static_cut() {
  std::uint64_t cut = 0;
  const std::uint64_t n = cumulative_.num_vertices();
  for (graph::Vertex v = 0; v < n; ++v)
    for (const graph::Vertex u : cumulative_.undirected_neighbors(v)) {
      if (u <= v) continue;  // count each undirected edge once
      if (part_.shard_of(v) != part_.shard_of(u)) ++cut;
    }
  cut_edges_ = cut;
  ETHSHARD_OBS_COUNT("sim/static_cut_recomputes", 1);
}

const graph::Graph& ShardingSimulator::cumulative_snapshot() const {
  if (cum_snapshot_vertices_ != cumulative_.num_vertices() ||
      cum_snapshot_edges_ != cumulative_.num_edges() ||
      cum_snapshot_weight_ != cumulative_.total_edge_weight()) {
    cum_snapshot_ = cumulative_.build_undirected();
    cum_snapshot_vertices_ = cumulative_.num_vertices();
    cum_snapshot_edges_ = cumulative_.num_edges();
    cum_snapshot_weight_ = cumulative_.total_edge_weight();
    ETHSHARD_OBS_COUNT("sim/cumulative_snapshot_builds", 1);
  } else {
    ETHSHARD_OBS_COUNT("sim/cumulative_snapshot_reuses", 1);
  }
  return cum_snapshot_;
}

void ShardingSimulator::verify_incremental_state() {
  const std::uint64_t incremental_cut = cut_edges_;
  recompute_static_cut();
  ETHSHARD_CHECK_MSG(cut_edges_ == incremental_cut,
                     "incremental static cut diverged: incremental "
                         << incremental_cut << " vs recomputed "
                         << cut_edges_);
  ETHSHARD_CHECK_MSG(
      distinct_edges_ == cumulative_.num_undirected_edges(),
      "distinct-edge count diverged: " << distinct_edges_ << " vs "
                                       << cumulative_.num_undirected_edges());
}

void ShardingSimulator::flush_window(util::Timestamp window_end) {
  ETHSHARD_OBS_TIMER("sim/flush_window_ms");
  ETHSHARD_OBS_SPAN("pipeline/flush");
  // The window's wall span is measured *before* any repartition runs
  // (and window_wall_start_ is re-armed after it returns), so a
  // repartition's cost shows up only in partitioner_ms — not smeared
  // into this or the next window's window_wall_ms.
  const double window_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - window_wall_start_)
          .count();
  if (cfg_.verify_incremental) verify_incremental_state();
  WindowSample sample;
  sample.window_start = window_start_;
  sample.window_end = window_end;
  sample.dynamic_edge_cut = window_metrics_.dynamic_edge_cut();
  sample.dynamic_balance = window_metrics_.dynamic_balance();
  sample.static_edge_cut =
      distinct_edges_ == 0 ? 0.0
                           : static_cast<double>(cut_edges_) /
                                 static_cast<double>(distinct_edges_);
  sample.static_balance = current_static_balance();
  sample.interactions = window_metrics_.total_interactions();

  const bool record =
      !cfg_.skip_empty_windows || !window_metrics_.empty();
  if (record) {
    result_.windows.push_back(sample);
    ETHSHARD_OBS_COUNT("sim/windows", 1);
    ETHSHARD_OBS_COUNT("sim/window_interactions", sample.interactions);
  }

  WindowSnapshot snapshot;
  snapshot.window_start = window_start_;
  snapshot.window_end = window_end;
  snapshot.dynamic_edge_cut = sample.dynamic_edge_cut;
  snapshot.dynamic_balance = sample.dynamic_balance;
  snapshot.interactions = sample.interactions;
  snapshot.since_last_repartition = window_end - last_repartition_;

  window_metrics_.reset();
  window_start_ = window_end;

  const bool repartitioned = maybe_repartition(snapshot);
  window_wall_start_ = std::chrono::steady_clock::now();

  if (cfg_.telemetry != nullptr || cfg_.consumer != nullptr) {
    WindowTelemetry tel;
    tel.window_start = sample.window_start;
    tel.window_end = sample.window_end;
    tel.interactions = sample.interactions;
    tel.recorded = record;
    tel.dynamic_edge_cut = sample.dynamic_edge_cut;
    tel.dynamic_balance = sample.dynamic_balance;
    tel.static_edge_cut = sample.static_edge_cut;
    tel.static_balance = sample.static_balance;
    tel.window_wall_ms = window_wall_ms;
    tel.repartition = repartitioned;
    if (repartitioned) {
      const RepartitionEvent& ev = result_.repartitions.back();
      tel.partitioner_ms = ev.compute_ms;
      tel.moves = ev.moves;
      tel.moved_state_units = ev.moved_state_units;
    }
    tel.rss_mb =
        static_cast<double>(util::current_rss_bytes()) / (1024.0 * 1024.0);
    tel.peak_rss_mb =
        static_cast<double>(util::peak_rss_bytes()) / (1024.0 * 1024.0);
    if (cfg_.telemetry != nullptr) cfg_.telemetry->write_window(tel);
    if (cfg_.consumer != nullptr) cfg_.consumer->on_window(tel);
  }
}

bool ShardingSimulator::maybe_repartition(const WindowSnapshot& snapshot) {
  Env env(*this);
  if (!strategy_.should_repartition(snapshot, env)) return false;

  ETHSHARD_OBS_SPAN("sim/repartition");
  const auto wall_start = std::chrono::steady_clock::now();
  partition::Partition next = strategy_.compute_partition(env);
  const double compute_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  ETHSHARD_OBS_RECORD_MS("sim/repartition_compute_ms", compute_ms);
  ETHSHARD_CHECK_MSG(next.size() == part_.size(),
                     "strategy returned wrong-sized partition");
  ETHSHARD_CHECK(next.k() == cfg_.k);

  if (cfg_.align_repartition_labels)
    partition::align_partition_labels(part_, &next);

  // Collect the vertices whose label actually changes (any label,
  // including kUnassigned — the cut treats it as one more shard id) and
  // the adjacency volume a delta update would have to scan.
  std::uint64_t moves = 0;
  std::uint64_t moved_state = 0;
  std::uint64_t delta_scan_arcs = 0;
  reassigned_.clear();
  for (graph::Vertex v = 0; v < part_.size(); ++v) {
    const partition::ShardId a = part_.shard_of(v);
    const partition::ShardId b = next.shard_of(v);
    if (a == b) continue;
    reassigned_.push_back(v);
    delta_scan_arcs += cumulative_.undirected_neighbors(v).size();
    if (a == partition::kUnassigned || b == partition::kUnassigned)
      continue;
    ++moves;
    moved_state += 1 + activity_[v];
  }

  // Assignment-dependent bookkeeping follows the moved vertices only.
  // Each vertex's cut delta is evaluated against the current part_ state
  // and applied before its own reassignment, so sequential application
  // is exact for any move set. When the moved adjacency exceeds a full
  // sweep (2 arcs per distinct edge), recompute instead.
  const bool delta_cheaper = delta_scan_arcs < 2 * distinct_edges_;
  for (graph::Vertex v : reassigned_) {
    const partition::ShardId a = part_.shard_of(v);
    const partition::ShardId b = next.shard_of(v);
    if (delta_cheaper) apply_cut_delta(v, a, b);
    if (a != partition::kUnassigned) {
      --shard_counts_[a];
      shard_loads_[a] -= activity_[v];
    }
    if (b != partition::kUnassigned) {
      ++shard_counts_[b];
      shard_loads_[b] += activity_[v];
    }
    part_.assign(v, b);
  }
  if (!delta_cheaper) recompute_static_cut();

  if (cfg_.verify_incremental) {
    verify_incremental_state();
    ETHSHARD_CHECK_MSG(cumulative_snapshot() == cumulative_.build_undirected(),
                       "cached cumulative snapshot diverged");
  }

  // A fresh activity window begins at every repartition (§II-C R-METIS:
  // the reduced graph "starts at the last (re)partitioning").
  window_.reset_edges(/*default_vertex_weight=*/0);
  window_.ensure_vertices(part_.size(), 0);

  last_repartition_ = snapshot.window_end;
  result_.repartitions.push_back(RepartitionEvent{
      snapshot.window_end, moves, moved_state, compute_ms});
  result_.total_moves += moves;
  result_.total_moved_state_units += moved_state;
  ETHSHARD_OBS_COUNT("sim/repartitions", 1);
  ETHSHARD_OBS_COUNT("sim/moves", moves);
  ETHSHARD_OBS_HIST("sim/repartition_moves", moves);
  return true;
}

void ShardingSimulator::advance_windows() {
  while (now_ >= window_start_ + cfg_.metric_window) {
    // Long traffic gaps: once the accumulating window is empty, every
    // pending window up to the current block is empty too. Skip them
    // wholesale as far as the strategy's no_repartition_before bound
    // allows — they would produce no sample and a guaranteed-false
    // should_repartition, so the result is identical.
    if (cfg_.fast_forward_gaps && cfg_.skip_empty_windows &&
        cfg_.telemetry == nullptr && cfg_.consumer == nullptr &&
        window_metrics_.empty()) {
      const util::Timestamp width = cfg_.metric_window;
      const auto pending =
          static_cast<std::uint64_t>((now_ - window_start_) / width);
      const util::Timestamp consult_at =
          strategy_.no_repartition_before(last_repartition_);
      std::uint64_t skip = 0;
      if (consult_at > window_start_ + width) {
        // Window i ends at window_start_ + i*width; skippable while
        // that end stays strictly before consult_at.
        const auto limit = static_cast<std::uint64_t>(
            (consult_at - window_start_ - 1) / width);
        skip = std::min(pending, limit);
      }
      if (skip > 0) {
        window_start_ += static_cast<util::Timestamp>(skip) * width;
        result_.gap_windows_skipped += skip;
        ETHSHARD_OBS_COUNT("sim/gap_windows_skipped", skip);
        continue;
      }
    }
    flush_window(window_start_ + cfg_.metric_window);
  }
}

void ShardingSimulator::begin_step(util::Timestamp ts) {
  now_ = ts;
  if (!started_) {
    started_ = true;
    window_start_ = ts;
    last_repartition_ = ts;
    window_wall_start_ = std::chrono::steady_clock::now();
  }
  advance_windows();
}

void ShardingSimulator::run_serial() {
  // next_ref() is zero-copy for a MaterializedSource (it hands out the
  // chain's own storage), so the History adapter replays exactly as the
  // old by-reference loop did; streaming sources buffer one block.
  while (const eth::Block* block = source_->next_ref()) {
    begin_step(block->timestamp);
    for (const eth::Transaction& tx : block->transactions)
      process_transaction(tx);
  }
}

void ShardingSimulator::apply_window_table(const WindowTable& table) {
  ETHSHARD_OBS_TIMER("sim/window_apply_ms");
  ETHSHARD_OBS_SPAN("pipeline/apply");
  // The producer measured its own wall time but must not touch obs (its
  // thread-local registry may be the wrong one in experiment grids), so
  // the table's cost is recorded here.
  ETHSHARD_OBS_RECORD_MS("sim/window_aggregate_ms", table.aggregate_ms);

  // Stage B.1 — placement replay, exactly the serial loop: transactions
  // that introduce new vertices run in trace order with now_ at their
  // block timestamp; within one, earlier placements are visible to later
  // ones, and the partition state decides anew which vertices are
  // unplaced and what their peers' shards are.
  for (const PlacementRecord& rec : table.placements) {
    now_ = rec.ts;
    const std::span<const graph::Vertex> involved{
        table.placement_vertices.data() + rec.begin,
        static_cast<std::size_t>(rec.end - rec.begin)};
    for (graph::Vertex v : involved) {
      ensure_vertex(v);
      if (part_.shard_of(v) != partition::kUnassigned) continue;
      peers_scratch_.clear();
      for (graph::Vertex u : involved) {
        if (u == v) continue;
        if (u < part_.size() &&
            part_.shard_of(u) != partition::kUnassigned)
          peers_scratch_.push_back(part_.shard_of(u));
      }
      place_vertex(v, peers_scratch_);
    }
  }
  now_ = table.last_block_ts;

  // Stage B.2 — one vectorized accounting pass. Every vertex the table
  // mentions was placed above (its first-ever transaction is a placement
  // record at or before this window), and no shard changes until the
  // flush, so counting after all placements reproduces the per-call
  // sums exactly (integer accumulators, order-independent). The LoadModel
  // dispatch is hoisted to a column pick: the loop touches the table's
  // vertex column plus exactly one weight column, branch-free.
  const std::vector<graph::Weight>& loads = cfg_.load_model == LoadModel::kGas
                                                ? table.load_gas
                                                : table.load_calls;
  const std::size_t load_count = table.load_vertices.size();
  for (std::size_t i = 0; i < load_count; ++i) {
    const graph::Vertex v = table.load_vertices[i];
    const graph::Weight load = loads[i];
    const partition::ShardId s = part_.shard_of(v);
    window_metrics_.record_activity(s, load);
    activity_[v] += load;
    shard_loads_[s] += load;
    window_.add_vertex_weight(v, load);
  }

  if (table.self_calls > 0)
    window_metrics_.record_self_interaction(table.self_calls);
  std::uint64_t pair_calls = 0;
  std::uint64_t cross_calls = 0;
  for (const graph::PairDelta& pd : table.pairs) {
    if (pd.u == pd.v) continue;
    const graph::Weight count = pd.fwd + pd.rev;
    const partition::ShardId su = part_.shard_of(pd.u);
    const partition::ShardId sv = part_.shard_of(pd.v);
    window_metrics_.record_interaction(su, sv, count);
    pair_calls += count;
    if (su != sv) cross_calls += count;
  }
  executed_total_ += table.total_calls;
  executed_pair_ += pair_calls;
  executed_cross_ += cross_calls;

  // Bulk graph apply: one hash probe per distinct pair, with the static
  // cut attributed per new undirected edge against the (fixed) endpoint
  // shards — the same classification serial replay made call by call,
  // batched: the apply collects the new pairs' indices and the cut test
  // runs over just those in its own loop.
  cumulative_.apply_pair_deltas(table.pairs, &new_pair_scratch_);
  distinct_edges_ += new_pair_scratch_.size();
  for (const std::uint32_t i : new_pair_scratch_) {
    const graph::PairDelta& pd = table.pairs[i];
    if (part_.shard_of(pd.u) != part_.shard_of(pd.v)) ++cut_edges_;
  }
  window_.apply_pair_deltas(table.pairs);
}

void ShardingSimulator::run_pipelined(std::size_t replay_threads,
                                      bool auto_probe) {
  // One aggregator thread feeds this one over an SPSC queue deep enough
  // for aggregation to run ahead across cheap windows while a
  // flush-heavy one stalls the consumer (queue_capacity= right-sizes
  // it; depth changes speed, never results).
  const std::size_t capacity =
      cfg_.queue_capacity != 0 ? cfg_.queue_capacity
                               : std::max<std::size_t>(replay_threads, 8);
  util::BoundedQueue<WindowTable> queue(capacity);
  std::uint64_t windows_pushed = 0;  // producer-written, read after join

  // Auto-fallback handshake: when the probe decides the pipeline cannot
  // win, the consumer raises `stop_pipeline`, keeps draining (so no
  // aggregated table is dropped), and the producer exits at the next
  // window boundary after recording where serial replay must resume.
  std::atomic<bool> stop_pipeline{false};
  // Materialized path: first block index Stage A did NOT aggregate.
  // Plain (non-atomic) because it is written before queue.close() and
  // read after producer.join().
  std::size_t resume_block = 0;

  const eth::Chain* chain = source_->materialized_chain();
  std::span<const eth::Block> block_span;
  std::vector<workload::WindowSpan> spans;
  if (chain != nullptr) {
    const auto& blocks = chain->blocks();
    block_span = {blocks.data(), blocks.size()};
    spans = workload::window_spans(block_span, cfg_.metric_window);
  }
  // Streaming path: on early stop the binner still holds the partially
  // binned window; declared out here so the serial resume can finish it
  // after the join.
  workload::WindowBinner binner(cfg_.metric_window);

#if ETHSHARD_OBS_ENABLED
  // Pipeline profiling taps: stall intervals as retroactive spans, queue
  // occupancy and per-window progress as counter tracks. Everything goes
  // through the process-global TraceBuffer, which is safe from any
  // thread — unlike the metric macros, which stay off the producer
  // thread (its thread-local registry may be the wrong one in experiment
  // grids; see the note in window_aggregator.cpp). The observer is only
  // installed when tracing is on, so untraced runs keep the queue's
  // zero-clock-read path.
  struct PipelineTap final : util::QueueObserver {
    void on_push(std::size_t depth, double wait_ms) override {
      if (wait_ms > 0) {
        const double end_ms = obs::trace_now_ms();
        obs::record_span("pipeline/backpressure_stall", end_ms - wait_ms,
                         end_ms);
      }
      obs::record_counter_sample("pipeline/queue_depth",
                                 static_cast<double>(depth));
      obs::record_counter_sample("pipeline/windows_aggregated",
                                 static_cast<double>(++pushed));
    }
    void on_pop(std::size_t depth, double wait_ms) override {
      if (wait_ms > 0) {
        const double end_ms = obs::trace_now_ms();
        obs::record_span("pipeline/prefetch_stall", end_ms - wait_ms,
                         end_ms);
      }
      obs::record_counter_sample("pipeline/queue_depth",
                                 static_cast<double>(depth));
      obs::record_counter_sample("pipeline/windows_applied",
                                 static_cast<double>(++popped));
    }
    // Each field is touched by exactly one side of the queue.
    std::uint64_t pushed = 0;
    std::uint64_t popped = 0;
  };
  PipelineTap tap;
  if (obs::trace_enabled()) {
    queue.set_observer(&tap);
    obs::set_current_thread_lane("Stage B (apply+flush)");
  }
#endif

  std::thread producer([&] {
    try {
#if ETHSHARD_OBS_ENABLED
      obs::set_current_thread_lane("Stage A (aggregate)");
#endif
      const std::size_t agg_shards =
          cfg_.aggregation_shards != 0
              ? cfg_.aggregation_shards
              : std::min<std::size_t>(util::default_thread_count(), 4);
      WindowAggregator aggregator(agg_shards);
      if (chain != nullptr) {
        // Whole chain in memory: the spans were binned up front;
        // aggregate them in place (no block copies).
        for (const workload::WindowSpan& span : spans) {
          if (stop_pipeline.load(std::memory_order_acquire)) {
            resume_block = span.block_begin;
            queue.close();
            return;
          }
          WindowTable table;
          {
            ETHSHARD_OBS_SPAN("pipeline/aggregate");
            table = aggregator.aggregate(block_span, span);
          }
          ++windows_pushed;
          if (!queue.push(std::move(table))) return;  // consumer bailed
        }
        resume_block = block_span.size();
      } else {
        // Streaming: pull blocks one at a time, hold only the window
        // being binned, aggregate each as it completes. The source is
        // touched exclusively by this thread (until a fallback joins it).
        workload::BinnedWindow window;
        eth::Block block;
        auto aggregate_traced = [&](const workload::BinnedWindow& w) {
          ETHSHARD_OBS_SPAN("pipeline/aggregate");
          return aggregator.aggregate(w);
        };
        bool stopped = false;
        while (true) {
          if (stop_pipeline.load(std::memory_order_acquire)) {
            stopped = true;  // partial window stays in the binner
            break;
          }
          if (!source_->next(block)) break;
          if (binner.push(std::move(block), window)) {
            ++windows_pushed;
            if (!queue.push(aggregate_traced(window))) return;
          }
        }
        if (!stopped && binner.finish(window)) {
          ++windows_pushed;
          if (!queue.push(aggregate_traced(window))) return;
        }
      }
      queue.close();
    } catch (...) {
      queue.fail(std::current_exception());
    }
  });

  bool fell_back = false;
  try {
    const auto pipeline_start = std::chrono::steady_clock::now();
    double staged_ms = 0;
    std::uint64_t probed = 0;
    bool decided = !auto_probe || cfg_.auto_probe_windows == 0;
    while (std::optional<WindowTable> table = queue.pop()) {
      const double apply_cpu0 = decided ? 0 : util::thread_cpu_ms();
      // The first block of this span is what would have triggered the
      // pending flushes in serial replay; align now_ before advancing.
      begin_step(table->first_block_ts);
      apply_window_table(*table);
      if (!decided) {
        // Serial estimate for the windows seen so far: what one thread
        // would have spent on aggregate + apply + flush back to back —
        // the same model tools/trace_report scores a finished trace
        // with, measured live instead. Both terms are CPU time, not
        // wall time: when producer and consumer share cores (the exact
        // case the fallback exists for), preemption inflates each
        // stage's wall clock until the "serial estimate" is as slow as
        // the struggling pipeline itself and the probe can never fire.
        // CPU time only counts work actually done, so the estimate
        // stays honest on any core count.
        staged_ms += table->aggregate_cpu_ms +
                     (util::thread_cpu_ms() - apply_cpu0);
        if (++probed >= cfg_.auto_probe_windows) {
          decided = true;
          const double wall_ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - pipeline_start)
                  .count();
          ETHSHARD_OBS_GAUGE("sim/pipeline_probe_speedup",
                             wall_ms > 0 ? staged_ms / wall_ms : 0.0);
          if (staged_ms < cfg_.auto_min_speedup * wall_ms) {
            // The pipeline is not beating the serial estimate by the
            // required margin: stop the producer at its next window
            // boundary and finish the history serially. Tables already
            // aggregated keep flowing — nothing is dropped or redone.
            fell_back = true;
            stop_pipeline.store(true, std::memory_order_release);
          }
        }
      }
    }
  } catch (...) {
    queue.close();
    producer.join();
    throw;
  }
  producer.join();
  ETHSHARD_OBS_COUNT("sim/pipeline_windows", windows_pushed);
  ETHSHARD_OBS_COUNT("sim/pipeline_prefetch_stalls", queue.pop_waits());
  ETHSHARD_OBS_COUNT("sim/pipeline_backpressure_stalls",
                     queue.push_waits());
  if (!fell_back) return;

  // Serial resume after a measured fallback. Everything Stage A
  // aggregated has been applied above; replay the rest through the
  // per-call reference path, exactly as if the run had been serial from
  // the first un-aggregated block onward.
  ETHSHARD_OBS_COUNT("sim/pipeline_auto_fallbacks", 1);
  if (chain != nullptr) {
    for (std::size_t b = resume_block; b < block_span.size(); ++b) {
      const eth::Block& block = block_span[b];
      begin_step(block.timestamp);
      for (const eth::Transaction& tx : block.transactions)
        process_transaction(tx);
    }
  } else {
    // The producer stopped mid-bin: finish the partial window it left in
    // the binner, then drain whatever is still in the source.
    workload::BinnedWindow partial;
    if (binner.finish(partial)) {
      for (const eth::Block& block : partial.blocks) {
        begin_step(block.timestamp);
        for (const eth::Transaction& tx : block.transactions)
          process_transaction(tx);
      }
    }
    run_serial();
  }
}

SimulationResult ShardingSimulator::run() {
  ETHSHARD_CHECK_MSG(!ran_, "simulator is single-use");
  ran_ = true;
  ETHSHARD_OBS_SPAN("sim/run");

  result_.strategy_name = strategy_.name();
  result_.k = cfg_.k;

  // 0 = auto: start pipelined and let the measured probe decide whether
  // the pipeline stays, falling back to serial mid-run when it cannot
  // win. The one hardware guess auto does make is the degenerate one:
  // with fewer than 2 hardware threads the producer and consumer would
  // only time-slice a single core, so even the probe's few pipelined
  // windows are pure loss and auto resolves straight to serial.
  const bool auto_replay = cfg_.replay_threads == 0;
  const std::size_t auto_hw = cfg_.auto_hw_override != 0
                                  ? cfg_.auto_hw_override
                                  : util::default_thread_count();
  const std::size_t replay_threads =
      auto_replay ? (auto_hw < 2 ? 1 : std::max<std::size_t>(2, auto_hw))
                  : cfg_.replay_threads;
  if (replay_threads >= 2 && strategy_.supports_batched_replay())
    run_pipelined(replay_threads, auto_replay);
  else
    run_serial();

  // Empty stream: no window clock ever started, nothing to flush (the
  // result keeps its default-constructed aggregates, as before).
  if (!started_) return std::move(result_);

  // Final partial window: its reported end is clamped to just past the
  // last block instead of a full metric_window into silence.
  flush_window(std::min(window_start_ + cfg_.metric_window, now_ + 1));

  ETHSHARD_OBS_GAUGE("sim/peak_rss_mb",
                     static_cast<double>(util::peak_rss_bytes()) /
                         (1024.0 * 1024.0));

  result_.vertices = part_.size();
  result_.distinct_edges = distinct_edges_;
  result_.interactions = executed_total_;
  result_.final_static_edge_cut =
      distinct_edges_ == 0 ? 0.0
                           : static_cast<double>(cut_edges_) /
                                 static_cast<double>(distinct_edges_);
  result_.final_static_balance = current_static_balance();
  result_.executed_cross_shard_fraction =
      executed_pair_ == 0 ? 0.0
                          : static_cast<double>(executed_cross_) /
                                static_cast<double>(executed_pair_);
  return std::move(result_);
}

}  // namespace ethshard::core
