#include "core/simulator.hpp"

#include <algorithm>
#include <chrono>

#include "eth/gas.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"

namespace ethshard::core {

// Strategy-facing view backed directly by the simulator's state.
class ShardingSimulator::Env final : public SimulatorEnv {
 public:
  explicit Env(const ShardingSimulator& sim) : sim_(sim) {}

  std::uint32_t k() const override { return sim_.cfg_.k; }
  util::Timestamp now() const override { return sim_.now_; }

  const partition::Partition& current_partition() const override {
    return sim_.part_;
  }
  const std::vector<std::uint64_t>& shard_vertex_counts() const override {
    return sim_.shard_counts_;
  }
  const std::vector<graph::Weight>& shard_loads() const override {
    return sim_.shard_loads_;
  }

  graph::Graph cumulative_graph() const override {
    return sim_.cumulative_.build_undirected();
  }

  WindowGraph window_graph() const override {
    const graph::Graph directed = sim_.window_.build_directed();
    WindowGraph wg;
    for (graph::Vertex v = 0; v < directed.num_vertices(); ++v)
      if (directed.vertex_weight(v) > 0) wg.to_global.push_back(v);
    wg.undirected =
        directed.induced_subgraph(wg.to_global).to_undirected();
    return wg;
  }

 private:
  const ShardingSimulator& sim_;
};

// Applies a strategy's online migrations with full accounting.
class ShardingSimulator::Sink final : public MigrationSink {
 public:
  explicit Sink(ShardingSimulator& sim) : sim_(sim) {}

  void migrate(graph::Vertex v, partition::ShardId s) override {
    sim_.apply_migration(v, s);
  }

 private:
  ShardingSimulator& sim_;
};

void ShardingSimulator::apply_migration(graph::Vertex v,
                                        partition::ShardId s) {
  ETHSHARD_CHECK_MSG(v < part_.size(), "migrate: unknown vertex");
  ETHSHARD_CHECK_MSG(s < cfg_.k, "migrate: shard out of range");
  const partition::ShardId from = part_.shard_of(v);
  ETHSHARD_CHECK_MSG(from != partition::kUnassigned,
                     "migrate: vertex not placed yet");
  if (from == s) return;

  part_.assign(v, s);
  --shard_counts_[from];
  ++shard_counts_[s];
  shard_loads_[from] -= activity_[v];
  shard_loads_[s] += activity_[v];
  static_cut_dirty_ = true;

  const std::uint64_t state = 1 + activity_[v];
  ++result_.total_moves;
  ++result_.online_moves;
  result_.total_moved_state_units += state;
  result_.online_moved_state_units += state;
  ETHSHARD_OBS_COUNT("sim/migrations", 1);
}

ShardingSimulator::ShardingSimulator(const workload::History& history,
                                     ShardingStrategy& strategy,
                                     SimulatorConfig cfg)
    : history_(history),
      strategy_(strategy),
      cfg_(cfg),
      part_(0, cfg.k),
      shard_counts_(cfg.k, 0),
      shard_loads_(cfg.k, 0),
      window_metrics_(cfg.k) {
  ETHSHARD_CHECK(cfg_.k >= 1);
  ETHSHARD_CHECK(cfg_.metric_window > 0);
}

void ShardingSimulator::ensure_vertex(graph::Vertex v) {
  while (part_.size() <= v) {
    part_.append(partition::kUnassigned);
    activity_.push_back(0);
  }
  cumulative_.ensure_vertices(v + 1, /*default_weight=*/1);
  window_.ensure_vertices(v + 1, /*default_weight=*/0);
}

void ShardingSimulator::place_vertex(
    graph::Vertex v, std::span<const partition::ShardId> peers) {
  Env env(*this);
  const partition::ShardId s = strategy_.place(v, peers, env);
  ETHSHARD_CHECK(s < cfg_.k);
  part_.assign(v, s);
  ++shard_counts_[s];
  ETHSHARD_OBS_COUNT("sim/placements", 1);
}

void ShardingSimulator::process_transaction(const eth::Transaction& tx) {
  // Involved accounts, in order of first appearance in the trace.
  std::vector<graph::Vertex> involved;
  involved.reserve(2 + tx.calls.size());
  auto note = [&](graph::Vertex v) {
    if (std::find(involved.begin(), involved.end(), v) == involved.end())
      involved.push_back(v);
  };
  note(tx.sender);
  for (const eth::Call& c : tx.calls) {
    note(c.from);
    note(c.to);
  }

  // Place any account appearing for the first time, handing the strategy
  // the shards of the transaction's already-placed participants (§II-C).
  for (graph::Vertex v : involved) {
    ensure_vertex(v);
    if (part_.shard_of(v) != partition::kUnassigned) continue;
    std::vector<partition::ShardId> peers;
    for (graph::Vertex u : involved) {
      if (u == v) continue;
      if (u < part_.size() &&
          part_.shard_of(u) != partition::kUnassigned)
        peers.push_back(part_.shard_of(u));
    }
    place_vertex(v, peers);
  }

  // Record every call: graphs, window metrics, static counters.
  for (const eth::Call& c : tx.calls) {
    const partition::ShardId sf = part_.shard_of(c.from);
    const partition::ShardId st = part_.shard_of(c.to);

    // Load carried by this call: 1 under the paper's frequency model, or
    // its gas cost in kilogas under the computation model.
    graph::Weight load = 1;
    if (cfg_.load_model == LoadModel::kGas)
      load = 1 + eth::call_gas(c, /*callee_exists=*/true) / 1000;

    window_metrics_.record_interaction(sf, st, 1);
    window_metrics_.record_activity(sf, load);
    if (c.to != c.from) window_metrics_.record_activity(st, load);

    activity_[c.from] += load;
    shard_loads_[sf] += load;
    if (c.to != c.from) {
      activity_[c.to] += load;
      shard_loads_[st] += load;
    }

    // Static-cut bookkeeping counts distinct *undirected* non-loop edges,
    // matching metrics::static_edge_cut over the symmetrized cumulative
    // graph (a→b and b→a are one edge; self-loops can never be cut).
    const bool existed = cumulative_.has_edge(c.from, c.to) ||
                         cumulative_.has_edge(c.to, c.from);
    cumulative_.add_edge(c.from, c.to, 1);
    if (!existed && c.from != c.to) {
      ++distinct_edges_;
      if (sf != st) ++cut_edges_;
    }

    window_.add_edge(c.from, c.to, 1);
    window_.add_vertex_weight(c.from, load);
    if (c.to != c.from) window_.add_vertex_weight(c.to, load);

    ++executed_total_;
    if (sf != st) ++executed_cross_;
  }

  // Give state-movement strategies their per-transaction hook.
  Env env(*this);
  Sink sink(*this);
  strategy_.on_transaction(involved, env, sink);
}

double ShardingSimulator::current_static_balance() const {
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  for (std::uint64_t c : shard_counts_) {
    total += c;
    max = std::max(max, c);
  }
  if (total == 0) return 1.0;
  return static_cast<double>(max) * static_cast<double>(cfg_.k) /
         static_cast<double>(total);
}

void ShardingSimulator::recompute_static_cut() {
  std::uint64_t cut = 0;
  cumulative_.for_each_edge(
      [&](graph::Vertex u, graph::Vertex v, graph::Weight) {
        if (u == v) return;
        // Count each undirected edge once: when both directions exist,
        // only the u < v orientation contributes.
        if (u > v && cumulative_.has_edge(v, u)) return;
        if (part_.shard_of(u) != part_.shard_of(v)) ++cut;
      });
  cut_edges_ = cut;
}

void ShardingSimulator::flush_window(util::Timestamp window_end) {
  ETHSHARD_OBS_TIMER("sim/flush_window_ms");
  const auto wall_now = std::chrono::steady_clock::now();
  const double window_wall_ms =
      std::chrono::duration<double, std::milli>(wall_now -
                                                window_wall_start_)
          .count();
  window_wall_start_ = wall_now;
  if (static_cut_dirty_) {
    recompute_static_cut();
    static_cut_dirty_ = false;
  }
  WindowSample sample;
  sample.window_start = window_start_;
  sample.window_end = window_end;
  sample.dynamic_edge_cut = window_metrics_.dynamic_edge_cut();
  sample.dynamic_balance = window_metrics_.dynamic_balance();
  sample.static_edge_cut =
      distinct_edges_ == 0 ? 0.0
                           : static_cast<double>(cut_edges_) /
                                 static_cast<double>(distinct_edges_);
  sample.static_balance = current_static_balance();
  sample.interactions = window_metrics_.total_interactions();

  const bool record =
      !cfg_.skip_empty_windows || !window_metrics_.empty();
  if (record) {
    result_.windows.push_back(sample);
    ETHSHARD_OBS_COUNT("sim/windows", 1);
    ETHSHARD_OBS_COUNT("sim/window_interactions", sample.interactions);
  }

  WindowSnapshot snapshot;
  snapshot.window_start = window_start_;
  snapshot.window_end = window_end;
  snapshot.dynamic_edge_cut = sample.dynamic_edge_cut;
  snapshot.dynamic_balance = sample.dynamic_balance;
  snapshot.interactions = sample.interactions;
  snapshot.since_last_repartition = window_end - last_repartition_;

  window_metrics_.reset();
  window_start_ = window_end;

  const bool repartitioned = maybe_repartition(snapshot);

  if (cfg_.telemetry != nullptr) {
    WindowTelemetry tel;
    tel.window_start = sample.window_start;
    tel.window_end = sample.window_end;
    tel.interactions = sample.interactions;
    tel.recorded = record;
    tel.dynamic_edge_cut = sample.dynamic_edge_cut;
    tel.dynamic_balance = sample.dynamic_balance;
    tel.static_edge_cut = sample.static_edge_cut;
    tel.static_balance = sample.static_balance;
    tel.window_wall_ms = window_wall_ms;
    tel.repartition = repartitioned;
    if (repartitioned) {
      const RepartitionEvent& ev = result_.repartitions.back();
      tel.partitioner_ms = ev.compute_ms;
      tel.moves = ev.moves;
      tel.moved_state_units = ev.moved_state_units;
    }
    cfg_.telemetry->write_window(tel);
  }
}

bool ShardingSimulator::maybe_repartition(const WindowSnapshot& snapshot) {
  Env env(*this);
  if (!strategy_.should_repartition(snapshot, env)) return false;

  ETHSHARD_OBS_SPAN("sim/repartition");
  const auto wall_start = std::chrono::steady_clock::now();
  partition::Partition next = strategy_.compute_partition(env);
  const double compute_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  ETHSHARD_OBS_RECORD_MS("sim/repartition_compute_ms", compute_ms);
  ETHSHARD_CHECK_MSG(next.size() == part_.size(),
                     "strategy returned wrong-sized partition");
  ETHSHARD_CHECK(next.k() == cfg_.k);

  if (cfg_.align_repartition_labels)
    partition::align_partition_labels(part_, &next);

  std::uint64_t moves = 0;
  std::uint64_t moved_state = 0;
  for (graph::Vertex v = 0; v < part_.size(); ++v) {
    const partition::ShardId a = part_.shard_of(v);
    const partition::ShardId b = next.shard_of(v);
    if (a == partition::kUnassigned || b == partition::kUnassigned ||
        a == b)
      continue;
    ++moves;
    moved_state += 1 + activity_[v];
  }
  part_ = std::move(next);

  // Rebuild all assignment-dependent bookkeeping.
  std::fill(shard_counts_.begin(), shard_counts_.end(), 0);
  std::fill(shard_loads_.begin(), shard_loads_.end(), 0);
  for (graph::Vertex v = 0; v < part_.size(); ++v) {
    const partition::ShardId s = part_.shard_of(v);
    if (s == partition::kUnassigned) continue;
    ++shard_counts_[s];
    shard_loads_[s] += activity_[v];
  }
  recompute_static_cut();

  // A fresh activity window begins at every repartition (§II-C R-METIS:
  // the reduced graph "starts at the last (re)partitioning").
  window_.clear();
  window_.ensure_vertices(part_.size(), 0);

  last_repartition_ = snapshot.window_end;
  result_.repartitions.push_back(RepartitionEvent{
      snapshot.window_end, moves, moved_state, compute_ms});
  result_.total_moves += moves;
  result_.total_moved_state_units += moved_state;
  ETHSHARD_OBS_COUNT("sim/repartitions", 1);
  ETHSHARD_OBS_COUNT("sim/moves", moves);
  ETHSHARD_OBS_HIST("sim/repartition_moves", moves);
  return true;
}

SimulationResult ShardingSimulator::run() {
  ETHSHARD_CHECK_MSG(!ran_, "simulator is single-use");
  ran_ = true;
  ETHSHARD_OBS_SPAN("sim/run");

  result_.strategy_name = strategy_.name();
  result_.k = cfg_.k;

  const auto& blocks = history_.chain.blocks();
  if (blocks.empty()) return std::move(result_);

  window_start_ = blocks.front().timestamp;
  last_repartition_ = window_start_;
  window_wall_start_ = std::chrono::steady_clock::now();

  for (const eth::Block& block : blocks) {
    now_ = block.timestamp;
    while (now_ >= window_start_ + cfg_.metric_window)
      flush_window(window_start_ + cfg_.metric_window);
    for (const eth::Transaction& tx : block.transactions)
      process_transaction(tx);
  }
  flush_window(window_start_ + cfg_.metric_window);  // final partial window

  result_.vertices = part_.size();
  result_.distinct_edges = distinct_edges_;
  result_.interactions = executed_total_;
  result_.final_static_edge_cut =
      distinct_edges_ == 0 ? 0.0
                           : static_cast<double>(cut_edges_) /
                                 static_cast<double>(distinct_edges_);
  result_.final_static_balance = current_static_balance();
  result_.executed_cross_shard_fraction =
      executed_total_ == 0 ? 0.0
                           : static_cast<double>(executed_cross_) /
                                 static_cast<double>(executed_total_);
  return std::move(result_);
}

}  // namespace ethshard::core
