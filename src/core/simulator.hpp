// The sharding what-if simulator — the paper's experiment engine.
//
// Replays a blockchain history call by call against a sharding strategy,
// maintaining: the growing assignment of accounts to shards (with the
// paper's online placement of newly appearing accounts), the cumulative
// and since-last-repartition interaction graphs, per-4-hour-window dynamic
// metrics, incrementally tracked static metrics, and the moves incurred by
// every repartition. This is what produces the data behind Figs. 3–5.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/strategy.hpp"
#include "core/telemetry.hpp"
#include "graph/builder.hpp"
#include "metrics/metrics.hpp"
#include "partition/types.hpp"
#include "workload/generator.hpp"

namespace ethshard::core {

/// What one unit of shard load means (§IV lists computation, storage and
/// bandwidth as the resources a sharding scheme must balance).
enum class LoadModel {
  kCalls,  ///< every call weighs 1 (the paper's frequency weighting)
  kGas,    ///< calls weigh their gas cost in kilogas (computation load)
};

struct SimulatorConfig {
  std::uint32_t k = 2;
  /// Metric sampling window (paper: four hours).
  util::Timestamp metric_window = util::kMetricWindow;
  /// Unit of the dynamic-balance load (kCalls reproduces the paper).
  LoadModel load_model = LoadModel::kCalls;
  /// Suppress empty windows (periods with no traffic produce no sample,
  /// mirroring the paper's data points).
  bool skip_empty_windows = true;
  /// Rename each newly computed partition's shard labels to maximize
  /// overlap with the previous assignment before counting moves, so a
  /// from-scratch partitioner is not charged for pure label permutations
  /// (its structural reshuffling — the paper's METIS pitfall — still
  /// counts in full).
  bool align_repartition_labels = true;
  /// Optional streaming sink: when set, the simulator writes one JSONL
  /// record per evaluation window as it completes (see core/telemetry.hpp
  /// for the schema). Not owned; must outlive the simulator.
  TelemetrySink* telemetry = nullptr;
};

/// One metric sample (a data point in Fig. 3).
struct WindowSample {
  util::Timestamp window_start = 0;
  util::Timestamp window_end = 0;
  /// Weighted cross-shard fraction of the window's interactions.
  double dynamic_edge_cut = 0;
  /// Eq. 2 over the window's per-shard activity.
  double dynamic_balance = 1;
  /// Eq. 1 over the cumulative graph's distinct undirected edges, current
  /// assignment — equal to metrics::static_edge_cut on the symmetrized
  /// cumulative graph at this window boundary.
  double static_edge_cut = 0;
  /// Eq. 2 over vertex counts, current assignment.
  double static_balance = 1;
  /// Interactions (calls) observed in the window.
  std::uint64_t interactions = 0;
};

/// One repartitioning of the system (a dashed vertical line in Fig. 3b).
struct RepartitionEvent {
  util::Timestamp time = 0;
  /// Vertices whose shard changed — the paper's "moves" metric.
  std::uint64_t moves = 0;
  /// State dragged along with those vertices, in state units (1 per
  /// vertex + its accumulated activity as a storage-size proxy). §III:
  /// "If the vertex is a contract, that would result in moving the entire
  /// contract storage to another shard."
  std::uint64_t moved_state_units = 0;
  /// Wall-clock cost of computing the new partition, in milliseconds —
  /// the practical price of "just rerun METIS" that full-graph methods
  /// pay as the chain grows.
  double compute_ms = 0;
};

struct SimulationResult {
  std::string strategy_name;
  std::uint32_t k = 0;
  std::vector<WindowSample> windows;
  std::vector<RepartitionEvent> repartitions;
  /// Vertices moved by repartitionings plus online migrations.
  std::uint64_t total_moves = 0;
  std::uint64_t total_moved_state_units = 0;
  /// The online-migration share of the totals (state-movement strategies;
  /// zero for the paper's five methods).
  std::uint64_t online_moves = 0;
  std::uint64_t online_moved_state_units = 0;

  // Final-state aggregates.
  std::uint64_t vertices = 0;
  std::uint64_t distinct_edges = 0;
  std::uint64_t interactions = 0;
  double final_static_edge_cut = 0;
  double final_static_balance = 1;
  /// Cross-shard fraction of ALL executed interactions, measured at
  /// execution time (the history-wide dynamic edge-cut).
  double executed_cross_shard_fraction = 0;
};

class ShardingSimulator {
 public:
  /// `history` and `strategy` must outlive the simulator.
  ShardingSimulator(const workload::History& history,
                    ShardingStrategy& strategy, SimulatorConfig cfg);

  /// Replays the whole history. Call once.
  SimulationResult run();

 private:
  class Env;
  class Sink;

  void process_transaction(const eth::Transaction& tx);
  void apply_migration(graph::Vertex v, partition::ShardId s);
  void ensure_vertex(graph::Vertex v);
  void place_vertex(graph::Vertex v,
                    std::span<const partition::ShardId> peers);
  void flush_window(util::Timestamp window_end);
  /// Returns true when the strategy repartitioned (the event is then the
  /// back of result_.repartitions).
  bool maybe_repartition(const WindowSnapshot& snapshot);
  void recompute_static_cut();
  double current_static_balance() const;

  const workload::History& history_;
  ShardingStrategy& strategy_;
  SimulatorConfig cfg_;

  partition::Partition part_;
  graph::GraphBuilder cumulative_;  // unit vertex weights
  graph::GraphBuilder window_;      // window-activity vertex weights
  std::vector<graph::Weight> activity_;  // cumulative per-vertex activity

  std::vector<std::uint64_t> shard_counts_;
  std::vector<graph::Weight> shard_loads_;

  // Incremental static-cut bookkeeping over distinct undirected non-loop
  // edges (a→b and b→a count once, as in the symmetrized graph).
  // Online migrations invalidate the incremental count; it is recomputed
  // lazily at the next window flush.
  std::uint64_t distinct_edges_ = 0;
  std::uint64_t cut_edges_ = 0;
  bool static_cut_dirty_ = false;

  // History-wide executed interaction accounting.
  std::uint64_t executed_total_ = 0;
  std::uint64_t executed_cross_ = 0;

  metrics::WindowAccumulator window_metrics_;
  util::Timestamp now_ = 0;
  util::Timestamp window_start_ = 0;
  util::Timestamp last_repartition_ = 0;
  /// Wall-clock start of the current window's replay (telemetry).
  std::chrono::steady_clock::time_point window_wall_start_{};

  SimulationResult result_;
  bool ran_ = false;
};

}  // namespace ethshard::core
