// The sharding what-if simulator — the paper's experiment engine.
//
// Replays a blockchain history call by call against a sharding strategy,
// maintaining: the growing assignment of accounts to shards (with the
// paper's online placement of newly appearing accounts), the cumulative
// and since-last-repartition interaction graphs, per-4-hour-window dynamic
// metrics, incrementally tracked static metrics, and the moves incurred by
// every repartition. This is what produces the data behind Figs. 3–5.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/strategy.hpp"
#include "core/telemetry.hpp"
#include "graph/builder.hpp"
#include "metrics/metrics.hpp"
#include "partition/types.hpp"
#include "workload/block_source.hpp"
#include "workload/generator.hpp"

namespace ethshard::core {

struct WindowTable;  // core/window_aggregator.hpp

/// What one unit of shard load means (§IV lists computation, storage and
/// bandwidth as the resources a sharding scheme must balance).
enum class LoadModel {
  kCalls,  ///< every call weighs 1 (the paper's frequency weighting)
  kGas,    ///< calls weigh their gas cost in kilogas (computation load)
};

struct SimulatorConfig {
  std::uint32_t k = 2;
  /// Metric sampling window (paper: four hours).
  util::Timestamp metric_window = util::kMetricWindow;
  /// Unit of the dynamic-balance load (kCalls reproduces the paper).
  LoadModel load_model = LoadModel::kCalls;
  /// Suppress empty windows (periods with no traffic produce no sample,
  /// mirroring the paper's data points).
  bool skip_empty_windows = true;
  /// Rename each newly computed partition's shard labels to maximize
  /// overlap with the previous assignment before counting moves, so a
  /// from-scratch partitioner is not charged for pure label permutations
  /// (its structural reshuffling — the paper's METIS pitfall — still
  /// counts in full).
  bool align_repartition_labels = true;
  /// Optional streaming sink: when set, the simulator writes one JSONL
  /// record per evaluation window as it completes (see core/telemetry.hpp
  /// for the schema). Not owned; must outlive the simulator.
  TelemetrySink* telemetry = nullptr;
  /// Optional in-process consumer of the same per-window records the
  /// sink serializes (invariant evaluation, live dashboards). Called on
  /// the flush thread, after the sink's write when both are set. Not
  /// owned; must outlive the simulator.
  TelemetryConsumer* consumer = nullptr;
  /// Skip long runs of empty windows in one step instead of flushing them
  /// one at a time, when the strategy declares (no_repartition_before)
  /// that quiet windows cannot trigger it. Only engages when
  /// skip_empty_windows is set and no telemetry sink or consumer is
  /// attached, so the observable output is identical either way.
  bool fast_forward_gaps = true;
  /// Debug cross-check: at every window flush, recompute the static cut
  /// from scratch and compare with the incrementally maintained count
  /// (and, at repartitions, rebuild the cumulative snapshot and compare
  /// with the cache). Aborts on divergence. O(E) per window — for tests.
  bool verify_incremental = false;
  /// Replay pipelining (the two-stage batched window replay; DESIGN.md
  /// §6d). 0 = auto: on hosts with >= 2 hardware threads, start
  /// pipelined and run a short measured probe (see auto_probe_windows),
  /// falling back to serial mid-run when the pipeline cannot beat the
  /// serial estimate; on single-core hosts, resolve straight to serial
  /// — so auto is never slower than serial beyond the probe itself. 1 = serial per-call replay,
  /// >= 2 = pipelined unconditionally: one background worker aggregates
  /// window W+1 while the simulator applies and flushes window W. There
  /// is always exactly one aggregator thread. The result is bit-identical
  /// across every value for strategies declaring
  /// supports_batched_replay(); all others silently use the serial path.
  std::size_t replay_threads = 0;
  /// Capacity of the SPSC window-table queue between the stages (spec
  /// key queue_capacity=). 0 derives max(replay_threads, 8) — deep
  /// enough that aggregation keeps running ahead across cheap windows
  /// while a flush-heavy one stalls the consumer. Affects speed only.
  std::size_t queue_capacity = 0;
  /// Stage A sub-ranges per window (spec key agg_shards=): each window's
  /// block span splits into this many contiguous sub-ranges aggregated
  /// in parallel and merged deterministically. 0 = auto (hardware thread
  /// count, capped at 4), 1 = unsharded. The WindowTable — and therefore
  /// the simulation result — is bit-identical for every value.
  std::size_t aggregation_shards = 0;
  /// replay_threads == 0 only: number of pipelined windows the measured
  /// probe covers before deciding pipelined-vs-serial. 0 disables the
  /// probe (auto then always stays pipelined).
  std::size_t auto_probe_windows = 24;
  /// replay_threads == 0 only: minimum (serial estimate) / (pipelined
  /// wall) ratio the probe must measure for the pipeline to keep
  /// running — the same serial_estimate = aggregate + apply + flush
  /// model and 1.05 threshold obs::analyze_pipeline_trace uses for its
  /// recommendation.
  double auto_min_speedup = 1.05;
  /// replay_threads == 0 only: hardware thread count auto assumes when
  /// deciding whether pipelining can win at all (0 = detect). On a host
  /// with fewer than 2 hardware threads auto resolves straight to serial
  /// — producer and consumer would only time-slice one core, so even the
  /// probe's ~24 pipelined windows are pure loss. Tests set this to >= 2
  /// to exercise the probe path on single-core runners.
  std::size_t auto_hw_override = 0;
};

/// One metric sample (a data point in Fig. 3).
struct WindowSample {
  util::Timestamp window_start = 0;
  /// Exclusive end: window_start + metric_window, except for the run's
  /// final partial window, which is clamped to last block timestamp + 1.
  util::Timestamp window_end = 0;
  /// Weighted cross-shard fraction of the window's interactions.
  double dynamic_edge_cut = 0;
  /// Eq. 2 over the window's per-shard activity.
  double dynamic_balance = 1;
  /// Eq. 1 over the cumulative graph's distinct undirected edges, current
  /// assignment — equal to metrics::static_edge_cut on the symmetrized
  /// cumulative graph at this window boundary.
  double static_edge_cut = 0;
  /// Eq. 2 over vertex counts, current assignment.
  double static_balance = 1;
  /// Interactions (calls) observed in the window.
  std::uint64_t interactions = 0;
};

/// One repartitioning of the system (a dashed vertical line in Fig. 3b).
struct RepartitionEvent {
  util::Timestamp time = 0;
  /// Vertices whose shard changed — the paper's "moves" metric.
  std::uint64_t moves = 0;
  /// State dragged along with those vertices, in state units (1 per
  /// vertex + its accumulated activity as a storage-size proxy). §III:
  /// "If the vertex is a contract, that would result in moving the entire
  /// contract storage to another shard."
  std::uint64_t moved_state_units = 0;
  /// Wall-clock cost of computing the new partition, in milliseconds —
  /// the practical price of "just rerun METIS" that full-graph methods
  /// pay as the chain grows.
  double compute_ms = 0;
};

struct SimulationResult {
  std::string strategy_name;
  std::uint32_t k = 0;
  std::vector<WindowSample> windows;
  std::vector<RepartitionEvent> repartitions;
  /// Vertices moved by repartitionings plus online migrations.
  std::uint64_t total_moves = 0;
  std::uint64_t total_moved_state_units = 0;
  /// The online-migration share of the totals (state-movement strategies;
  /// zero for the paper's five methods).
  std::uint64_t online_moves = 0;
  std::uint64_t online_moved_state_units = 0;

  // Final-state aggregates.
  std::uint64_t vertices = 0;
  std::uint64_t distinct_edges = 0;
  std::uint64_t interactions = 0;
  double final_static_edge_cut = 0;
  double final_static_balance = 1;
  /// Cross-shard fraction of executed interactions between *distinct*
  /// accounts, measured at execution time (the history-wide dynamic
  /// edge-cut). Self-calls are excluded from the denominator — they can
  /// never cross shards (see metrics::WindowAccumulator).
  double executed_cross_shard_fraction = 0;
  /// Empty windows elided by the gap fast-forward (they produce no sample
  /// either way; see SimulatorConfig::fast_forward_gaps).
  std::uint64_t gap_windows_skipped = 0;
};

class ShardingSimulator {
 public:
  /// Primary form: replays whatever `source` streams. The simulator pulls
  /// blocks on demand and never materializes the chain, so memory stays
  /// bounded by one metric window regardless of history length. `source`
  /// and `strategy` must outlive the simulator; the source must be fresh
  /// (nothing pulled from it yet) and is exhausted by run().
  ShardingSimulator(workload::BlockSource& source,
                    ShardingStrategy& strategy, SimulatorConfig cfg);

  /// Back-compat adapter over a materialized history. The simulator
  /// *aliases* `history` — it stores a reference and replays the chain
  /// zero-copy — so `history` (and `strategy`) must outlive the
  /// simulator; the rvalue overload is deleted to keep a temporary
  /// History from silently dangling. Bit-identical to streaming the same
  /// blocks through the primary constructor.
  ShardingSimulator(const workload::History& history,
                    ShardingStrategy& strategy, SimulatorConfig cfg);
  ShardingSimulator(workload::History&&, ShardingStrategy&,
                    SimulatorConfig) = delete;

  /// Replays the whole history. Call once.
  SimulationResult run();

 private:
  class Env;
  class Sink;

  /// Serial per-call replay: the reference semantics (and the
  /// replay_threads = 1 / unsupported-strategy fallback).
  void run_serial();
  /// Two-stage pipelined replay: a producer thread aggregates windows
  /// (core::WindowAggregator) into a bounded queue; this thread replays
  /// placements and bulk-applies each table. Bit-identical to run_serial
  /// for strategies that declare supports_batched_replay(). With
  /// `auto_probe` (replay_threads == 0), the consumer measures the first
  /// auto_probe_windows tables and, when the pipeline cannot beat the
  /// serial estimate, stops the producer at a window boundary, drains
  /// the queue, and finishes the history through the serial path.
  void run_pipelined(std::size_t replay_threads, bool auto_probe);
  /// Lazy window-clock start + per-block window advance: the first
  /// block/table anchors window_start_ (a streaming source only reveals
  /// its first timestamp at the first pull); afterwards flushes every
  /// window completed before now_.
  void begin_step(util::Timestamp ts);
  /// Flushes every window completed before now_ (including the gap
  /// fast-forward) — the shared per-block / per-table advance loop.
  void advance_windows();
  /// Stage B: trace-order placement replay + one vectorized accounting
  /// pass over a window table (exact because no vertex changes shard
  /// between its placement and the window flush).
  void apply_window_table(const WindowTable& table);
  void process_transaction(const eth::Transaction& tx);
  void apply_migration(graph::Vertex v, partition::ShardId s);
  void ensure_vertex(graph::Vertex v);
  void place_vertex(graph::Vertex v,
                    std::span<const partition::ShardId> peers);
  void flush_window(util::Timestamp window_end);
  /// Returns true when the strategy repartitioned (the event is then the
  /// back of result_.repartitions).
  bool maybe_repartition(const WindowSnapshot& snapshot);
  /// Updates cut_edges_ for vertex v moving shard `from` → `to` by
  /// scanning only v's cumulative undirected adjacency — O(deg v). Must
  /// run while part_ still holds every *other* vertex's effective shard
  /// (v's own entry is not read; the undirected adjacency has no loops).
  void apply_cut_delta(graph::Vertex v, partition::ShardId from,
                       partition::ShardId to);
  /// From-scratch O(E) static-cut sweep — the delta path's fallback (when
  /// a repartition moves more adjacency than a full sweep would touch)
  /// and the verify_incremental cross-check.
  void recompute_static_cut();
  /// Cached symmetrized snapshot of cumulative_, rebuilt only when edges
  /// or vertices were added since the last call.
  const graph::Graph& cumulative_snapshot() const;
  void verify_incremental_state();
  double current_static_balance() const;

  // History-adapter storage: the History constructor wraps the aliased
  // chain in an owned MaterializedSource and points source_ at it.
  // Declared before source_ so initialization order is safe.
  std::unique_ptr<workload::MaterializedSource> owned_source_;
  workload::BlockSource* source_;
  ShardingStrategy& strategy_;
  SimulatorConfig cfg_;

  partition::Partition part_;
  graph::GraphBuilder cumulative_;  // unit vertex weights
  // Window-activity vertex weights. Only whole-window snapshots are ever
  // taken from it, so it skips per-vertex neighbor tracking (two list
  // appends per new pair saved on the per-call hot path).
  graph::GraphBuilder window_{/*track_und_neighbors=*/false};
  std::vector<graph::Weight> activity_;  // cumulative per-vertex activity

  std::vector<std::uint64_t> shard_counts_;
  std::vector<graph::Weight> shard_loads_;

  // Incremental static-cut bookkeeping over distinct undirected non-loop
  // edges (a→b and b→a count once, as in the symmetrized graph). New
  // edges adjust the counts at insertion; migrations and repartitions
  // apply O(deg) deltas via apply_cut_delta, so cut_edges_ is exact at
  // all times (recompute_static_cut survives as fallback + cross-check).
  std::uint64_t distinct_edges_ = 0;
  std::uint64_t cut_edges_ = 0;

  // Cached Env::cumulative_graph() snapshot. The stamps capture every
  // mutation cumulative_ can see (the simulator only ever grows it via
  // ensure_vertices/add_edge; its vertex weights stay at 1).
  mutable graph::Graph cum_snapshot_;
  mutable std::uint64_t cum_snapshot_vertices_ = ~std::uint64_t{0};
  mutable std::uint64_t cum_snapshot_edges_ = ~std::uint64_t{0};
  mutable graph::Weight cum_snapshot_weight_ = 0;

  // Scratch reused by every Env::window_graph() construction (active
  // vertex list + old→new id map, kept all-kInvalid between calls) and
  // by maybe_repartition's moved-vertex collection.
  mutable std::vector<graph::Vertex> window_active_;
  mutable std::vector<graph::Vertex> window_old_to_new_;
  std::vector<graph::Vertex> reassigned_;

  // History-wide executed interaction accounting (pair = between
  // distinct accounts; the cross-shard denominator).
  std::uint64_t executed_total_ = 0;
  std::uint64_t executed_pair_ = 0;
  std::uint64_t executed_cross_ = 0;

  // Per-transaction involved-account dedup: epoch-stamped membership
  // check (O(1) per endpoint) replacing the old std::find scan, which
  // was quadratic in a transaction's distinct participants. Shared by
  // process_transaction and the pipelined placement replay.
  std::vector<graph::Vertex> involved_scratch_;
  std::vector<std::uint64_t> involved_stamp_;
  std::uint64_t involved_epoch_ = 0;
  std::vector<partition::ShardId> peers_scratch_;
  // Indices of a window table's new undirected pairs, collected by the
  // bulk apply so the cut classification runs as its own tight loop
  // (reused every window).
  std::vector<std::uint32_t> new_pair_scratch_;

  metrics::WindowAccumulator window_metrics_;
  util::Timestamp now_ = 0;
  util::Timestamp window_start_ = 0;
  util::Timestamp last_repartition_ = 0;
  /// Whether the first block has anchored the window clock yet.
  bool started_ = false;
  /// Wall-clock start of the current window's replay (telemetry).
  std::chrono::steady_clock::time_point window_wall_start_{};

  SimulationResult result_;
  bool ran_ = false;
};

}  // namespace ethshard::core
