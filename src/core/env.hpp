// Read-only view of the simulation that sharding strategies consult when
// placing vertices and computing repartitions.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "partition/types.hpp"
#include "util/sim_time.hpp"

namespace ethshard::core {

/// The activity subgraph since the last repartition, induced on the
/// vertices that were actually touched. Local vertex ids index the graph;
/// to_global maps them back to account ids.
struct WindowGraph {
  graph::Graph undirected;
  std::vector<graph::Vertex> to_global;
};

/// Strategy-facing view of the running simulation. Graph snapshots are
/// built on demand (they are expensive); counters are always current.
class SimulatorEnv {
 public:
  virtual ~SimulatorEnv() = default;

  virtual std::uint32_t k() const = 0;
  virtual util::Timestamp now() const = 0;

  /// Current assignment; size == number of accounts seen so far.
  virtual const partition::Partition& current_partition() const = 0;

  /// Vertices per shard (static balance numerator).
  virtual const std::vector<std::uint64_t>& shard_vertex_counts() const = 0;

  /// Cumulative activity per shard (dynamic load).
  virtual const std::vector<graph::Weight>& shard_loads() const = 0;

  /// Snapshot of the full cumulative graph, symmetrized, with *unit*
  /// vertex weights and frequency edge weights — exactly what the paper
  /// feeds METIS (§II-C: edge weights target dynamic edge-cut; vertex
  /// balance is static). The reference is to a cached snapshot rebuilt
  /// only when edges were added since the last call (O(n + m) then, O(1)
  /// otherwise); it stays valid until the next call.
  virtual const graph::Graph& cumulative_graph() const = 0;

  /// Snapshot of the interactions since the last repartition, induced on
  /// active vertices, symmetrized, with *activity* vertex weights — the
  /// R-METIS/TR-METIS/KL input. O(n + m_window).
  virtual WindowGraph window_graph() const = 0;
};

}  // namespace ethshard::core
