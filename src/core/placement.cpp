#include "core/placement.hpp"

#include <vector>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace ethshard::core {

partition::ShardId place_min_cut(std::span<const partition::ShardId> peers,
                                 const std::vector<std::uint64_t>& shard_sizes,
                                 std::uint32_t k) {
  ETHSHARD_CHECK(k >= 1);
  ETHSHARD_CHECK(shard_sizes.size() == k);

  // Count peer links per shard; every peer on another shard would become
  // a cut edge, so the shard with the most peers minimizes edge-cut.
  std::vector<std::uint32_t> links(k, 0);
  std::uint32_t best_links = 0;
  for (partition::ShardId s : peers) {
    if (s == partition::kUnassigned) continue;
    ETHSHARD_CHECK(s < k);
    best_links = std::max(best_links, ++links[s]);
  }

  partition::ShardId best = 0;
  std::uint64_t best_size = ~std::uint64_t{0};
  for (std::uint32_t s = 0; s < k; ++s) {
    if (links[s] != best_links) continue;
    if (shard_sizes[s] < best_size) {  // tie → maximize balance
      best = s;
      best_size = shard_sizes[s];
    }
  }
  return best;
}

partition::ShardId place_by_hash(graph::Vertex v, std::uint32_t k,
                                 std::uint64_t salt) {
  ETHSHARD_CHECK(k >= 1);
  return static_cast<partition::ShardId>(util::mix64(v ^ salt) % k);
}

}  // namespace ethshard::core
