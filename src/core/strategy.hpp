// The sharding-strategy interface: how each of the paper's five methods
// plugs into the replay simulator.
#pragma once

#include <limits>
#include <span>
#include <string>

#include "core/env.hpp"
#include "partition/types.hpp"

namespace ethshard::core {

/// Per-metric-window digest handed to should_repartition so
/// threshold-triggered methods (TR-METIS) can react to observed dynamic
/// edge-cut and balance, and periodic methods can track elapsed time.
struct WindowSnapshot {
  util::Timestamp window_start = 0;
  util::Timestamp window_end = 0;
  double dynamic_edge_cut = 0;
  double dynamic_balance = 1;
  /// Interactions observed in the window (0 for a quiet window — its
  /// cut/balance carry no signal).
  std::uint64_t interactions = 0;
  /// Time elapsed since the last repartition (or simulation start).
  util::Timestamp since_last_repartition = 0;
};

/// Interface through which a strategy requests *online* migrations — the
/// paper's §I class (b) for multi-shard requests: "moving the necessary
/// state to one shard that will execute the request locally" (its
/// citation [5], Dynamic Scalable SMR). Moves take effect immediately and
/// are charged to the same moves/state accounting as repartition moves.
class MigrationSink {
 public:
  virtual ~MigrationSink() = default;

  /// Reassigns vertex v to shard s (no-op if already there).
  /// Preconditions: v known to the simulator; s < k.
  virtual void migrate(graph::Vertex v, partition::ShardId s) = 0;
};

class ShardingStrategy {
 public:
  virtual ~ShardingStrategy() = default;

  /// Label used in figures ("Hashing", "KL", "METIS", "R-METIS",
  /// "TR-METIS").
  virtual std::string name() const = 0;

  /// Shard for a vertex appearing for the first time. `peer_shards` holds
  /// the shards of the already-placed accounts involved in the same
  /// transaction (§II-C: pick the shard minimizing edge-cut, break ties
  /// toward balance).
  virtual partition::ShardId place(graph::Vertex v,
                                   std::span<const partition::ShardId> peers,
                                   const SimulatorEnv& env) = 0;

  /// Consulted once per metric window; returning true triggers
  /// compute_partition and a reassignment (with moves accounting).
  virtual bool should_repartition(const WindowSnapshot& snapshot,
                                  const SimulatorEnv& env) = 0;

  /// Earliest time at which this strategy could answer true to
  /// should_repartition for an *empty* window (zero interactions), given
  /// the last repartition happened at `last_repartition`. The simulator
  /// uses this to fast-forward long traffic gaps: empty windows ending
  /// strictly before the returned time are skipped without consulting the
  /// strategy at all (they are not recorded either — see
  /// SimulatorConfig::skip_empty_windows). Returning kAlwaysConsult (the
  /// conservative default) disables skipping; kNeverOnEmpty declares that
  /// quiet windows can never trigger a repartition (pure threshold
  /// strategies); periodic strategies return last_repartition + period.
  /// Implementations must be consistent with should_repartition on empty
  /// snapshots AND must not depend on being consulted for skipped windows
  /// (no per-window internal state for quiet windows).
  static constexpr util::Timestamp kAlwaysConsult = 0;
  static constexpr util::Timestamp kNeverOnEmpty =
      std::numeric_limits<util::Timestamp>::max();
  virtual util::Timestamp no_repartition_before(
      util::Timestamp last_repartition) const {
    (void)last_repartition;
    return kAlwaysConsult;
  }

  /// Whether the simulator may replay this strategy through the batched
  /// two-stage window pipeline (SimulatorConfig::replay_threads >= 2).
  /// Under batched replay the simulator places a window's first-appearing
  /// vertices in trace order *before* recording any of the window's calls,
  /// so a strategy may opt in only if:
  ///  * place() depends on nothing beyond (v, peers, env.k(),
  ///    env.shard_vertex_counts(), env.current_partition(), env.now()) —
  ///    those are bit-identical at each placement in both replay modes;
  ///    mid-window graph state, shard loads and window metrics are NOT
  ///    (they lag behind until the window's bulk apply);
  ///  * on_transaction() is the inherited no-op (batched replay never
  ///    invokes the per-transaction hook, so online-migration strategies
  ///    must stay on the serial path);
  ///  * should_repartition()/compute_partition() only run at window
  ///    flushes, where the two modes agree exactly (always true — the
  ///    simulator never calls them elsewhere).
  /// The conservative default keeps unknown strategies on the serial
  /// path; the paper's five built-ins all satisfy the contract and
  /// override this to true.
  virtual bool supports_batched_replay() const { return false; }

  /// Computes the new assignment for every currently known vertex.
  /// Must return a complete partition of env.current_partition().size()
  /// vertices into env.k() shards.
  virtual partition::Partition compute_partition(const SimulatorEnv& env) = 0;

  /// Called after every executed transaction with the accounts it
  /// involved (each already placed). A state-movement strategy may
  /// migrate vertices through `sink`; the default does nothing.
  virtual void on_transaction(std::span<const graph::Vertex> involved,
                              const SimulatorEnv& env,
                              MigrationSink& sink) {
    (void)involved;
    (void)env;
    (void)sink;
  }
};

}  // namespace ethshard::core
