// Streaming per-window telemetry for the simulator.
//
// The paper's whole evaluation is a per-window time series; the
// end-of-run SimulationResult only materializes it after the fact. A
// TelemetrySink makes the same series observable *while* a long replay
// runs: the simulator emits one JSON object per evaluation window
// (JSONL, flushed per line), so a multi-hour run can be tailed
// (`tail -f`) and post-processed (`jq`, pandas) without waiting for the
// run to finish — and a crashed run still leaves every completed window
// on disk.
//
// Schema (one line per window flush, keys in fixed order):
//   {"v": 1, "seq": N, "window_start": s, "window_end": s,
//    "interactions": N, "recorded": bool, "dynamic_edge_cut": f,
//    "dynamic_balance": f, "static_edge_cut": f, "static_balance": f,
//    "window_wall_ms": f, "repartition": bool, "partitioner_ms": f,
//    "moves": N, "moved_state_units": N, "rss_mb": f, "peak_rss_mb": f}
// "recorded" mirrors SimulatorConfig::skip_empty_windows — false marks
// a window that produced no WindowSample (no traffic). "v" is the
// schema version; consumers should ignore unknown keys (rss_mb and
// peak_rss_mb were appended by the streaming BlockSource work — the
// resident set at flush time and the process high-water mark, both 0
// where /proc is unavailable).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>

namespace ethshard::core {

/// One evaluation window's record, filled by the simulator.
struct WindowTelemetry {
  std::uint64_t window_start = 0;
  /// Exclusive end. window_end - window_start == metric_window for every
  /// window except the run's final partial one, whose end is clamped to
  /// one past the last block timestamp.
  std::uint64_t window_end = 0;
  std::uint64_t interactions = 0;
  /// False for windows suppressed by skip_empty_windows.
  bool recorded = true;
  double dynamic_edge_cut = 0;
  double dynamic_balance = 1;
  double static_edge_cut = 0;
  double static_balance = 1;
  /// Wall-clock time spent replaying this window's transactions (the
  /// span from the end of the previous flush — after any repartition it
  /// ran — to the start of this one). Repartition cost is never included
  /// here; it is reported separately as partitioner_ms on the window
  /// whose boundary triggered it.
  double window_wall_ms = 0;
  /// Whether the strategy repartitioned at this window boundary.
  bool repartition = false;
  /// Wall-clock cost of compute_partition when repartition fired.
  double partitioner_ms = 0;
  std::uint64_t moves = 0;
  std::uint64_t moved_state_units = 0;
  /// Resident set at flush time and the process peak so far, in MiB
  /// (util/mem.hpp; 0 when the platform offers no probe). The per-window
  /// resident series is what shows streaming replay holding a flat
  /// footprint where materialized replay's baseline grows with history.
  double rss_mb = 0;
  double peak_rss_mb = 0;
};

/// In-process consumer of the per-window telemetry stream. Where
/// TelemetrySink serializes records to JSONL for external tools, a
/// TelemetryConsumer sees the same WindowTelemetry structs live, in
/// window order, on the simulator's flush thread — the hook the scenario
/// invariants harness (src/scenario) evaluates against without ever
/// materializing the window history. Implementations must not block:
/// on_window sits on the replay path.
class TelemetryConsumer {
 public:
  virtual ~TelemetryConsumer() = default;
  virtual void on_window(const WindowTelemetry& w) = 0;
};

/// Append-only JSONL writer. Thread-safe (a mutex per write); each line
/// is flushed so external tails see windows as they complete. Doubles as
/// a TelemetryConsumer so sinks and in-process evaluators compose
/// through one interface.
class TelemetrySink : public TelemetryConsumer {
 public:
  /// Streams to `out`, which must outlive the sink.
  explicit TelemetrySink(std::ostream& out);
  /// Opens `path` for writing (truncates); throws util::CheckFailure if
  /// the file cannot open.
  static std::unique_ptr<TelemetrySink> open(const std::string& path);

  /// Writes one JSONL record; assigns the next sequence number.
  void write_window(const WindowTelemetry& w);
  void on_window(const WindowTelemetry& w) override { write_window(w); }

  std::uint64_t records_written() const;

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_;
  mutable std::mutex mu_;
  std::uint64_t seq_ = 0;
};

}  // namespace ethshard::core
