#include "core/window_aggregator.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "eth/gas.hpp"
#include "util/check.hpp"
#include "util/mem.hpp"
#include "util/parallel.hpp"

namespace ethshard::core {

WindowAggregator::WindowAggregator(std::size_t shards)
    : shards_(std::max<std::size_t>(1, shards)) {}

WindowTable WindowAggregator::aggregate(std::span<const eth::Block> blocks,
                                        const workload::WindowSpan& span) {
  ETHSHARD_CHECK(span.block_begin < span.block_end &&
                 span.block_end <= blocks.size());
  return aggregate_blocks(
      blocks.subspan(span.block_begin, span.block_end - span.block_begin),
      span.window_start);
}

WindowTable WindowAggregator::aggregate(const workload::BinnedWindow& window) {
  ETHSHARD_CHECK(!window.blocks.empty());
  return aggregate_blocks({window.blocks.data(), window.blocks.size()},
                          window.window_start);
}

WindowTable WindowAggregator::aggregate_blocks(
    std::span<const eth::Block> window_blocks,
    util::Timestamp window_start) {
  const auto wall_start = std::chrono::steady_clock::now();
  ETHSHARD_CHECK(!window_blocks.empty());

  WindowTable table;
  table.window_start = window_start;
  table.first_block_ts = window_blocks.front().timestamp;
  table.last_block_ts = window_blocks.back().timestamp;

  // Balanced contiguous split. Which boundaries are chosen cannot affect
  // the output (the merge sums associatively and candidates keep trace
  // order), so the split only has to be cheap.
  const std::size_t s = std::min(shards_, window_blocks.size());
  if (scratch_.size() < s) scratch_.resize(s);
  if (scan_cpu_ms_.size() < s) scan_cpu_ms_.resize(s);
  const std::size_t per = window_blocks.size() / s;
  const std::size_t rem = window_blocks.size() % s;
  // Per-shard CPU time (not wall): summed across shards plus the merge,
  // this is what one thread doing the whole window would have spent —
  // the serial-estimate input the auto probe needs, immune to the
  // preemption inflation wall clocks suffer on oversubscribed hosts.
  auto scan_one = [&](std::size_t i) {
    const double cpu0 = util::thread_cpu_ms();
    const std::size_t begin = i * per + std::min(i, rem);
    const std::size_t end = begin + per + (i < rem ? 1 : 0);
    scan_span(window_blocks.subspan(begin, end - begin), scratch_[i]);
    scan_cpu_ms_[i] = util::thread_cpu_ms() - cpu0;
  };
  const std::size_t workers = std::min(s, util::default_thread_count());
  if (workers > 1) {
    util::parallel_for(s, scan_one, workers);
  } else {
    for (std::size_t i = 0; i < s; ++i) scan_one(i);
  }

  const double merge_cpu0 = util::thread_cpu_ms();
  merge_scratches(s, table);
  table.aggregate_cpu_ms = util::thread_cpu_ms() - merge_cpu0;
  for (std::size_t i = 0; i < s; ++i)
    table.aggregate_cpu_ms += scan_cpu_ms_[i];

  table.aggregate_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  return table;
}

void WindowAggregator::scan_span(std::span<const eth::Block> blocks,
                                 ShardScratch& sc) const {
  sc.pairs.clear();
  sc.loads.clear();
  sc.cand_vertices.clear();
  sc.cands.clear();
  sc.total_calls = 0;
  sc.self_calls = 0;
  sc.pair_slot.clear();
  sc.load_slot.clear();

  // Window-start snapshot bound: merge_scratches never shrinks seen_,
  // and nothing resizes it while shard scans run, so reading it from
  // several scan threads at once is safe.
  const std::size_t seen_limit = seen_.size();

  auto load_of = [&](graph::Vertex v) -> LocalLoad& {
    const auto [slot, fresh] = sc.load_slot.try_emplace(
        v, static_cast<std::uint32_t>(sc.loads.size()));
    if (fresh) sc.loads.push_back(LocalLoad{v, 0, 0});
    return sc.loads[slot];
  };

  for (const eth::Block& block : blocks) {
    for (const eth::Transaction& tx : block.transactions) {
      // Involved accounts in first-appearance order — the serial loop's
      // dedup, as O(1) flat-map probes. The transaction is a placement
      // *candidate* iff any involved vertex was unseen at window start;
      // whether it genuinely places anything (a vertex may first appear
      // earlier in this same window) is decided by the sequential merge.
      sc.tx_slot.clear();
      bool maybe_new = false;
      const std::size_t cand_begin = sc.cand_vertices.size();
      auto note = [&](graph::Vertex v) {
        if (!sc.tx_slot.try_emplace(v, 0).second) return;
        sc.cand_vertices.push_back(v);
        if (v >= seen_limit || !seen_[v]) maybe_new = true;
      };
      note(tx.sender);
      for (const eth::Call& c : tx.calls) {
        note(c.from);
        note(c.to);
      }
      if (maybe_new) {
        PlacementRecord rec;
        rec.ts = block.timestamp;
        rec.begin = static_cast<std::uint32_t>(cand_begin);
        rec.end = static_cast<std::uint32_t>(sc.cand_vertices.size());
        sc.cands.push_back(rec);
      } else {
        sc.cand_vertices.resize(cand_begin);
      }

      for (const eth::Call& c : tx.calls) {
        const graph::Vertex lo = std::min(c.from, c.to);
        const graph::Vertex hi = std::max(c.from, c.to);
        const auto [slot, fresh] = sc.pair_slot.try_emplace(
            (lo << 32) | hi, static_cast<std::uint32_t>(sc.pairs.size()));
        if (fresh) sc.pairs.push_back(graph::PairDelta{lo, hi, 0, 0});
        graph::PairDelta& pd = sc.pairs[slot];
        // Same orientation rule as GraphBuilder::add_edge: fwd is
        // lo→hi (and the full weight of a self-call).
        if (c.from == lo)
          ++pd.fwd;
        else
          ++pd.rev;

        const graph::Weight gas_load =
            1 + eth::call_gas(c, /*callee_exists=*/true) / 1000;
        LocalLoad& from_load = load_of(c.from);
        ++from_load.calls;
        from_load.gas += gas_load;
        if (c.to != c.from) {
          LocalLoad& to_load = load_of(c.to);
          ++to_load.calls;
          to_load.gas += gas_load;
        } else {
          ++sc.self_calls;
        }
        ++sc.total_calls;
      }
    }
  }

  // Canonical per-shard order: entries are unique within a shard, so
  // sum-merging the sorted locals reproduces the whole-window dedup +
  // sort bit for bit, for any shard count.
  std::sort(sc.pairs.begin(), sc.pairs.end(),
            [](const graph::PairDelta& a, const graph::PairDelta& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  std::sort(sc.loads.begin(), sc.loads.end(),
            [](const LocalLoad& a, const LocalLoad& b) { return a.v < b.v; });
}

void WindowAggregator::merge_scratches(std::size_t shard_count,
                                       WindowTable& table) {
  constexpr std::uint64_t kDone = std::numeric_limits<std::uint64_t>::max();

  for (std::size_t i = 0; i < shard_count; ++i) {
    table.total_calls += scratch_[i].total_calls;
    table.self_calls += scratch_[i].self_calls;
  }

  // Pairs: k-way merge of the sorted per-shard locals, summing entries
  // with equal keys. Integer sums are associative, so the result equals
  // the unsharded aggregation in both content and order.
  merge_pos_.assign(shard_count, 0);
  while (true) {
    std::uint64_t best = kDone;
    for (std::size_t i = 0; i < shard_count; ++i) {
      const ShardScratch& sc = scratch_[i];
      if (merge_pos_[i] >= sc.pairs.size()) continue;
      const graph::PairDelta& pd = sc.pairs[merge_pos_[i]];
      best = std::min(best, (pd.u << 32) | pd.v);
    }
    if (best == kDone) break;
    graph::PairDelta out{best >> 32, best & 0xffffffffu, 0, 0};
    for (std::size_t i = 0; i < shard_count; ++i) {
      const ShardScratch& sc = scratch_[i];
      if (merge_pos_[i] >= sc.pairs.size()) continue;
      const graph::PairDelta& pd = sc.pairs[merge_pos_[i]];
      if (pd.u != out.u || pd.v != out.v) continue;
      out.fwd += pd.fwd;
      out.rev += pd.rev;
      ++merge_pos_[i];
    }
    table.pairs.push_back(out);
  }

  // Loads: same merge keyed by vertex, written straight into the table's
  // SoA columns.
  merge_pos_.assign(shard_count, 0);
  while (true) {
    graph::Vertex best = kDone;
    for (std::size_t i = 0; i < shard_count; ++i) {
      const ShardScratch& sc = scratch_[i];
      if (merge_pos_[i] >= sc.loads.size()) continue;
      best = std::min(best, sc.loads[merge_pos_[i]].v);
    }
    if (best == kDone) break;
    graph::Weight calls = 0;
    graph::Weight gas = 0;
    for (std::size_t i = 0; i < shard_count; ++i) {
      ShardScratch& sc = scratch_[i];
      if (merge_pos_[i] >= sc.loads.size()) continue;
      const LocalLoad& ll = sc.loads[merge_pos_[i]];
      if (ll.v != best) continue;
      calls += ll.calls;
      gas += ll.gas;
      ++merge_pos_[i];
    }
    table.load_vertices.push_back(best);
    table.load_calls.push_back(calls);
    table.load_gas.push_back(gas);
  }

  // Placements: candidates carry every transaction whose involved set
  // touches a vertex unseen at window start — a superset of the true
  // placement set that is exact to filter sequentially, because a vertex
  // absent from the snapshot is first introduced by the earliest
  // candidate containing it. Shards hold contiguous sub-ranges in trace
  // order, so walking them in shard order replays candidates exactly as
  // the serial loop met them, against the live seen_ set.
  for (std::size_t i = 0; i < shard_count; ++i) {
    const ShardScratch& sc = scratch_[i];
    for (const PlacementRecord& rec : sc.cands) {
      bool any_new = false;
      for (std::uint32_t j = rec.begin; j < rec.end; ++j) {
        const graph::Vertex v = sc.cand_vertices[j];
        if (seen_.size() <= v) seen_.resize(v + 1, false);
        if (!seen_[v]) {
          seen_[v] = true;
          any_new = true;
        }
      }
      if (!any_new) continue;
      PlacementRecord out;
      out.ts = rec.ts;
      out.begin = static_cast<std::uint32_t>(table.placement_vertices.size());
      table.placement_vertices.insert(
          table.placement_vertices.end(),
          sc.cand_vertices.begin() + rec.begin,
          sc.cand_vertices.begin() + rec.end);
      out.end = static_cast<std::uint32_t>(table.placement_vertices.size());
      table.placements.push_back(out);
    }
  }
}

}  // namespace ethshard::core
