#include "core/window_aggregator.hpp"

#include <algorithm>
#include <chrono>

#include "eth/gas.hpp"
#include "util/check.hpp"

namespace ethshard::core {

WindowTable WindowAggregator::aggregate(std::span<const eth::Block> blocks,
                                        const workload::WindowSpan& span) {
  ETHSHARD_CHECK(span.block_begin < span.block_end &&
                 span.block_end <= blocks.size());
  return aggregate_blocks(
      blocks.subspan(span.block_begin, span.block_end - span.block_begin),
      span.window_start);
}

WindowTable WindowAggregator::aggregate(const workload::BinnedWindow& window) {
  ETHSHARD_CHECK(!window.blocks.empty());
  return aggregate_blocks({window.blocks.data(), window.blocks.size()},
                          window.window_start);
}

WindowTable WindowAggregator::aggregate_blocks(
    std::span<const eth::Block> window_blocks,
    util::Timestamp window_start) {
  const auto wall_start = std::chrono::steady_clock::now();
  ETHSHARD_CHECK(!window_blocks.empty());

  WindowTable table;
  table.window_start = window_start;
  table.first_block_ts = window_blocks.front().timestamp;
  table.last_block_ts = window_blocks.back().timestamp;

  pair_slot_.clear();
  load_slot_.clear();

  auto load_of = [&](graph::Vertex v) -> VertexWindowLoad& {
    const auto [it, fresh] =
        load_slot_.try_emplace(v, static_cast<std::uint32_t>(
                                      table.loads.size()));
    if (fresh) table.loads.push_back(VertexWindowLoad{v, 0, 0});
    return table.loads[it->second];
  };

  for (const eth::Block& block : window_blocks) {
    for (const eth::Transaction& tx : block.transactions) {
      // Involved accounts in first-appearance order — the serial loop's
      // std::find dedup, as O(1) epoch-stamped lookups.
      ++tx_epoch_;
      involved_.clear();
      bool any_new = false;
      auto note = [&](graph::Vertex v) {
        if (tx_stamp_.size() <= v) tx_stamp_.resize(v + 1, 0);
        if (tx_stamp_[v] == tx_epoch_) return;
        tx_stamp_[v] = tx_epoch_;
        involved_.push_back(v);
        if (seen_.size() <= v) seen_.resize(v + 1, false);
        if (!seen_[v]) {
          seen_[v] = true;
          any_new = true;
        }
      };
      note(tx.sender);
      for (const eth::Call& c : tx.calls) {
        note(c.from);
        note(c.to);
      }

      if (any_new) {
        PlacementRecord rec;
        rec.ts = block.timestamp;
        rec.begin = static_cast<std::uint32_t>(
            table.placement_vertices.size());
        table.placement_vertices.insert(table.placement_vertices.end(),
                                        involved_.begin(), involved_.end());
        rec.end = static_cast<std::uint32_t>(
            table.placement_vertices.size());
        table.placements.push_back(rec);
      }

      for (const eth::Call& c : tx.calls) {
        const graph::Vertex lo = std::min(c.from, c.to);
        const graph::Vertex hi = std::max(c.from, c.to);
        const auto [it, fresh] = pair_slot_.try_emplace(
            (lo << 32) | hi,
            static_cast<std::uint32_t>(table.pairs.size()));
        if (fresh) table.pairs.push_back(graph::PairDelta{lo, hi, 0, 0});
        graph::PairDelta& pd = table.pairs[it->second];
        // Same orientation rule as GraphBuilder::add_edge: fwd is
        // lo→hi (and the full weight of a self-call).
        if (c.from == lo)
          ++pd.fwd;
        else
          ++pd.rev;

        const graph::Weight gas_load =
            1 + eth::call_gas(c, /*callee_exists=*/true) / 1000;
        VertexWindowLoad& from_load = load_of(c.from);
        ++from_load.calls;
        from_load.gas += gas_load;
        if (c.to != c.from) {
          VertexWindowLoad& to_load = load_of(c.to);
          ++to_load.calls;
          to_load.gas += gas_load;
        } else {
          ++table.self_calls;
        }
        ++table.total_calls;
      }
    }
  }

  // Canonical order: the table (and everything Stage B derives from it)
  // must not depend on unordered_map iteration — sorting here keeps the
  // bulk apply bit-identical run to run and mode to mode.
  std::sort(table.pairs.begin(), table.pairs.end(),
            [](const graph::PairDelta& a, const graph::PairDelta& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  std::sort(table.loads.begin(), table.loads.end(),
            [](const VertexWindowLoad& a, const VertexWindowLoad& b) {
              return a.v < b.v;
            });

  table.aggregate_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  return table;
}

}  // namespace ethshard::core
