// Experiment grids: run many (method × shard-count) simulations over one
// history and summarize them comparably — the machinery behind the
// paper's Figs. 4/5 tables, reusable from benches, tests and the CLI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "core/strategies.hpp"
#include "core/throughput.hpp"
#include "metrics/summary.hpp"
#include "obs/registry.hpp"

namespace ethshard::core {

struct ExperimentConfig {
  std::vector<Method> methods{std::begin(kAllMethods),
                              std::end(kAllMethods)};
  std::vector<std::uint32_t> shard_counts{2, 4, 8};
  std::uint64_t seed = 7;
  LoadModel load_model = LoadModel::kCalls;
  /// Worker threads for the grid (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Partitioner (mt-MLKP) threads *per grid cell*: 1 = serial, 0 = use
  /// whatever hardware budget the grid workers leave over. run_experiment
  /// always caps the effective value so grid-threads × partitioner-threads
  /// never exceeds util::default_thread_count(); because mt-MLKP is
  /// thread-count invariant, the cap changes speed, never results.
  std::size_t partitioner_threads = 1;
  /// SimulatorConfig::replay_threads *per grid cell* (0 = auto, 1 =
  /// serial replay, >= 2 = pipelined). Capped against the grid workers
  /// the same way as partitioner_threads; batched replay is bit-identical
  /// to serial, so the cap changes speed, never results.
  std::size_t replay_threads = 0;

  /// Human-readable configuration problems, empty when the config is
  /// runnable. run_experiment calls this up front so a bad grid fails
  /// with an actionable message instead of deep inside a worker thread.
  std::vector<std::string> validate() const;
};

/// One grid cell: the raw simulation plus ready-to-print summaries.
struct ExperimentRun {
  Method method = Method::kHashing;
  std::uint32_t k = 2;
  SimulationResult result;
  metrics::Summary dynamic_edge_cut;
  metrics::Summary dynamic_balance;
  /// Fig. 5's normalization of the balance median.
  double normalized_balance_median = 0;
  ThroughputSummary throughput;
  /// Wall-clock cost of this cell (always measured).
  double cell_wall_ms = 0;
  /// Delay between grid start and this cell starting (queue wait).
  double queue_wait_ms = 0;
  /// This cell's observability snapshot (per-phase mlkp timings, window
  /// counters, ...). Empty unless obs::set_enabled(true) was called.
  obs::MetricsSnapshot metrics;
};

/// Runs the full grid (methods × shard_counts), in parallel when the
/// hardware allows. Deterministic for a fixed config. Each cell opens
/// its own stream from `sources` (BlockSourceFactory::open is required
/// to be thread-safe), so cells replay the history independently and no
/// cell ever needs it whole in memory.
std::vector<ExperimentRun> run_experiment(
    const workload::BlockSourceFactory& sources,
    const ExperimentConfig& config);

/// Materialized-history adapter: every cell streams `history` zero-copy
/// through a MaterializedSourceFactory. `history` must outlive the call
/// (it is aliased, not copied). Bit-identical to streaming the same
/// blocks through the factory form.
std::vector<ExperimentRun> run_experiment(const workload::History& history,
                                          const ExperimentConfig& config);

/// A temporary History would dangle behind the aliasing adapter above —
/// bind it to a name (or stream via a factory) instead.
std::vector<ExperimentRun> run_experiment(workload::History&& history,
                                          const ExperimentConfig& config) =
    delete;

/// Fixed-width comparison table (one row per run).
std::string comparison_table(const std::vector<ExperimentRun>& runs);

}  // namespace ethshard::core
