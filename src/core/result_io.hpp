// Serialization of simulation results for external plotting.
//
// Every figure in the paper is a plot over these series; the CSVs written
// here load directly into pandas/gnuplot. Used by the CLI's
// `simulate --csv` and available to any embedding program.
#pragma once

#include <iosfwd>
#include <string>

#include "core/simulator.hpp"

namespace ethshard::core {

/// Per-window samples: window_start, window_end, dynamic_edge_cut,
/// dynamic_balance, static_edge_cut, static_balance, interactions.
void write_windows_csv(std::ostream& out, const SimulationResult& result);

/// Repartition events: time, moves, moved_state_units, compute_ms.
void write_repartitions_csv(std::ostream& out,
                            const SimulationResult& result);

/// One-row run summary (method, k, final metrics, move totals).
void write_summary_csv(std::ostream& out, const SimulationResult& result);

/// File conveniences; throw util::CheckFailure if the file cannot open.
void write_windows_csv_file(const std::string& path,
                            const SimulationResult& result);
void write_repartitions_csv_file(const std::string& path,
                                 const SimulationResult& result);

}  // namespace ethshard::core
