// Online placement rules for vertices appearing for the first time.
#pragma once

#include <span>

#include "core/env.hpp"
#include "partition/types.hpp"

namespace ethshard::core {

/// The paper's rule for the METIS-family methods (§II-C): "inspecting all
/// the accounts involved in the transaction and picking the shard that
/// minimizes edge-cuts; if more than one exists, we maximize the balance."
/// With no placed peers the least-populated shard is chosen.
partition::ShardId place_min_cut(std::span<const partition::ShardId> peers,
                                 const std::vector<std::uint64_t>& shard_sizes,
                                 std::uint32_t k);

/// Hash placement: shard derived from the vertex id alone (the Hashing
/// method, and the bootstrap placement for KL).
partition::ShardId place_by_hash(graph::Vertex v, std::uint32_t k,
                                 std::uint64_t salt = 0);

}  // namespace ethshard::core
