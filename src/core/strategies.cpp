#include "core/strategies.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/placement.hpp"
#include "core/strategy_registry.hpp"
#include "util/check.hpp"

namespace ethshard::core {

namespace {

/// Copies the shards of the window's active vertices out of the global
/// partition into a local one over the window graph's vertex ids.
partition::Partition local_partition(const WindowGraph& wg,
                                     const partition::Partition& global) {
  partition::Partition local(wg.to_global.size(), global.k());
  for (graph::Vertex lv = 0; lv < wg.to_global.size(); ++lv)
    local.assign(lv, global.shard_of(wg.to_global[lv]));
  return local;
}

/// Relabels `local` so its shards line up with where the same window
/// vertices currently live globally ("scratch-remap" repartitioning). A
/// from-scratch MLKP run names its shards arbitrarily; the simulator's
/// post-merge alignment cannot undo that scrambling because its overlap
/// count is dominated by the dormant vertices that never moved, so
/// without this step a mere renaming of an unchanged cut would count
/// every active vertex as moved. A follow-up migration-aware pass then
/// keeps displaced vertices in place when doing so is free — among the
/// partitioner's equally good outputs, pick the one nearest the current
/// assignment.
partition::Partition align_labels(const WindowGraph& wg,
                                  partition::Partition local,
                                  const partition::Partition& global,
                                  double imbalance) {
  const partition::Partition current = local_partition(wg, global);
  partition::align_partition_labels(current, &local);

  // Even with labels matched, ties remain: a boundary vertex whose move
  // gain is exactly zero lands wherever the partitioner's salted
  // tie-break dropped it, and every such vertex bills one migration at
  // merge time. Walk the window once in ascending index order (so the
  // result stays deterministic and thread-count independent) and send
  // each displaced vertex home to its current shard whenever that
  // neither worsens the window cut nor lifts the destination shard past
  // the imbalance cap.
  const graph::Graph& g = wg.undirected;
  std::vector<graph::Weight> weights = local.shard_weights(g);
  const double cap = (1.0 + imbalance) *
                     static_cast<double>(g.total_vertex_weight()) /
                     static_cast<double>(local.k());
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    const partition::ShardId home = current.shard_of(v);
    const partition::ShardId away = local.shard_of(v);
    if (home == away || home >= local.k()) continue;
    const graph::Weight wv = g.vertex_weight(v);
    if (static_cast<double>(weights[home] + wv) > cap) continue;
    std::int64_t gain = 0;
    for (const graph::Arc& a : g.neighbors(v)) {
      if (a.to == v) continue;
      const partition::ShardId s = local.shard_of(a.to);
      if (s == home)
        gain += static_cast<std::int64_t>(a.weight);
      else if (s == away)
        gain -= static_cast<std::int64_t>(a.weight);
    }
    if (gain < 0) continue;
    weights[away] -= wv;
    weights[home] += wv;
    local.assign(v, home);
  }
  return local;
}

/// Writes a local (window) assignment back over a copy of the global one.
partition::Partition merge_local(const WindowGraph& wg,
                                 const partition::Partition& local,
                                 const partition::Partition& global) {
  partition::Partition merged = global;
  for (graph::Vertex lv = 0; lv < wg.to_global.size(); ++lv)
    merged.assign(wg.to_global[lv], local.shard_of(lv));
  return merged;
}

}  // namespace

// ---------------------------------------------------------------- Hashing

partition::ShardId HashStrategy::place(graph::Vertex v,
                                       std::span<const partition::ShardId>,
                                       const SimulatorEnv& env) {
  return place_by_hash(v, env.k(), salt_);
}

partition::Partition HashStrategy::compute_partition(
    const SimulatorEnv& env) {
  // Never called (should_repartition is constant false), but well-defined:
  // hashing's assignment is a pure function of the ids.
  partition::Partition p(env.current_partition().size(), env.k());
  for (graph::Vertex v = 0; v < p.size(); ++v)
    p.assign(v, place_by_hash(v, env.k(), salt_));
  return p;
}

// --------------------------------------------------------------------- KL

partition::ShardId KlStrategy::place(graph::Vertex v,
                                     std::span<const partition::ShardId>,
                                     const SimulatorEnv& env) {
  // The paper bootstraps KL from a hashed state; new arrivals follow the
  // same rule and later migrate via label propagation.
  return place_by_hash(v, env.k(), salt_);
}

bool KlStrategy::should_repartition(const WindowSnapshot& snapshot,
                                    const SimulatorEnv&) {
  return snapshot.since_last_repartition >= period_;
}

partition::Partition KlStrategy::compute_partition(const SimulatorEnv& env) {
  const WindowGraph wg = env.window_graph();
  if (wg.to_global.empty()) return env.current_partition();

  partition::Partition local = local_partition(wg, env.current_partition());
  partition::BlpConfig cfg = blp_;
  cfg.seed = blp_.seed + (++invocation_);
  partition::BalancedLabelPropagation blp(cfg);
  blp.refine(wg.undirected, local);
  return merge_local(wg, local, env.current_partition());
}

// ------------------------------------------------------------------ METIS

partition::ShardId FullGraphMlkpStrategy::place(
    graph::Vertex, std::span<const partition::ShardId> peers,
    const SimulatorEnv& env) {
  return place_min_cut(peers, env.shard_vertex_counts(), env.k());
}

bool FullGraphMlkpStrategy::should_repartition(const WindowSnapshot& snapshot,
                                               const SimulatorEnv&) {
  return snapshot.since_last_repartition >= period_;
}

partition::Partition FullGraphMlkpStrategy::compute_partition(
    const SimulatorEnv& env) {
  const graph::Graph& g = env.cumulative_graph();
  if (g.num_vertices() == 0) return env.current_partition();
  partition::MlkpConfig cfg = mlkp_;
  cfg.seed = mlkp_.seed + (++invocation_);
  partition::MlkpPartitioner mlkp(cfg);
  return mlkp.partition(g, env.k());
}

// ---------------------------------------------------------------- R-METIS

partition::ShardId WindowMlkpStrategy::place(
    graph::Vertex, std::span<const partition::ShardId> peers,
    const SimulatorEnv& env) {
  return place_min_cut(peers, env.shard_vertex_counts(), env.k());
}

bool WindowMlkpStrategy::should_repartition(const WindowSnapshot& snapshot,
                                            const SimulatorEnv&) {
  return snapshot.since_last_repartition >= period_;
}

partition::Partition WindowMlkpStrategy::compute_partition(
    const SimulatorEnv& env) {
  const WindowGraph wg = env.window_graph();
  if (wg.to_global.empty()) return env.current_partition();
  partition::MlkpConfig cfg = mlkp_;
  cfg.seed = mlkp_.seed + (++invocation_);
  partition::MlkpPartitioner mlkp(cfg);
  const partition::Partition local =
      align_labels(wg, mlkp.partition(wg.undirected, env.k()),
                   env.current_partition(), mlkp_.imbalance);
  return merge_local(wg, local, env.current_partition());
}

// --------------------------------------------------------------- TR-METIS

partition::ShardId ThresholdMlkpStrategy::place(
    graph::Vertex, std::span<const partition::ShardId> peers,
    const SimulatorEnv& env) {
  return place_min_cut(peers, env.shard_vertex_counts(), env.k());
}

bool ThresholdMlkpStrategy::should_repartition(const WindowSnapshot& snapshot,
                                               const SimulatorEnv&) {
  if (snapshot.interactions < thresholds_.min_interactions) return false;

  // The first busy window after a repartition defines what "good"
  // currently looks like; degradation is measured against it.
  if (!have_baseline_) {
    baseline_cut_ = snapshot.dynamic_edge_cut;
    baseline_balance_ = snapshot.dynamic_balance;
    ewma_cut_ = baseline_cut_;
    ewma_balance_ = baseline_balance_;
    violations_ = 0;
    have_baseline_ = true;
    return false;
  }

  const double a = thresholds_.ewma_alpha;
  ewma_cut_ = (1 - a) * ewma_cut_ + a * snapshot.dynamic_edge_cut;
  ewma_balance_ = (1 - a) * ewma_balance_ + a * snapshot.dynamic_balance;

  const double cut_trigger =
      std::max(thresholds_.cut_floor, baseline_cut_ + thresholds_.cut_margin);
  const double balance_trigger =
      std::max(thresholds_.balance_floor,
               baseline_balance_ + thresholds_.balance_margin);
  if (ewma_cut_ > cut_trigger || ewma_balance_ > balance_trigger)
    ++violations_;
  else
    violations_ = 0;

  if (snapshot.since_last_repartition < thresholds_.min_gap) return false;
  return violations_ >= thresholds_.violations_required;
}

partition::Partition ThresholdMlkpStrategy::compute_partition(
    const SimulatorEnv& env) {
  have_baseline_ = false;  // re-baseline after this repartition
  const WindowGraph wg = env.window_graph();
  if (wg.to_global.empty()) return env.current_partition();
  partition::MlkpConfig cfg = mlkp_;
  cfg.seed = mlkp_.seed + (++invocation_);
  partition::MlkpPartitioner mlkp(cfg);
  const partition::Partition local =
      align_labels(wg, mlkp.partition(wg.undirected, env.k()),
                   env.current_partition(), mlkp_.imbalance);
  return merge_local(wg, local, env.current_partition());
}

// -------------------------------------------------------------------- DSM

partition::ShardId DsmStrategy::place(
    graph::Vertex, std::span<const partition::ShardId> peers,
    const SimulatorEnv& env) {
  return place_min_cut(peers, env.shard_vertex_counts(), env.k());
}

void DsmStrategy::on_transaction(std::span<const graph::Vertex> involved,
                                 const SimulatorEnv& env,
                                 MigrationSink& sink) {
  if (involved.size() < 2) return;
  const partition::Partition& part = env.current_partition();

  // Majority shard among the participants; ties break toward the shard
  // with the smaller current population (balance pressure).
  std::vector<std::uint32_t> count(env.k(), 0);
  bool multi = false;
  const partition::ShardId first = part.shard_of(involved.front());
  for (graph::Vertex v : involved) {
    const partition::ShardId s = part.shard_of(v);
    ++count[s];
    if (s != first) multi = true;
  }
  if (!multi) return;  // already single-shard

  partition::ShardId target = 0;
  for (std::uint32_t s = 1; s < env.k(); ++s) {
    if (count[s] > count[target] ||
        (count[s] == count[target] &&
         env.shard_vertex_counts()[s] < env.shard_vertex_counts()[target]))
      target = s;
  }
  for (graph::Vertex v : involved)
    if (part.shard_of(v) != target) sink.migrate(v, target);
}

// ---------------------------------------------------------------- factory

std::unique_ptr<ShardingStrategy> make_strategy(
    Method method, std::uint64_t seed, std::size_t partitioner_threads) {
  // Thin wrapper over the string registry: a bare name resolves to the
  // paper's defaults, which are exactly what this enum factory promised.
  return StrategyRegistry::global().make(method_name(method), seed,
                                         partitioner_threads);
}

std::string method_name(Method method) {
  switch (method) {
    case Method::kHashing:
      return "Hashing";
    case Method::kKl:
      return "KL";
    case Method::kMetis:
      return "METIS";
    case Method::kRMetis:
      return "R-METIS";
    case Method::kTrMetis:
      return "TR-METIS";
  }
  return "?";
}

}  // namespace ethshard::core
