// String-addressable strategy construction: an open registry that
// resolves specs like
//
//   "r-metis"
//   "tr-metis:cut_floor=0.25,min_gap_days=2"
//   "kl:rounds=8,probabilistic=true,seed=42"
//
// to configured ShardingStrategy instances. New strategies plug in with
// StrategyRegistry::global().add(...) — no edit to the closed Method enum
// required. Names are case-insensitive; the paper's figure labels
// ("Hashing", "R-METIS", and the Fig. 4/5 alias "P-METIS") all resolve.
//
// Grammar:   spec     := name [":" param ("," param)*]
//            param    := key "=" value
// Unknown names, unknown keys, duplicate keys and unparsable values are
// rejected with a util::CheckFailure naming the offending token.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/strategy.hpp"

namespace ethshard::core {

/// A parsed strategy spec: the (normalized, lowercase) strategy name and
/// its key=value parameters in spec order.
struct StrategySpec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> params;
};

/// Splits a spec string. Throws util::CheckFailure on a malformed token
/// (missing '=', empty key, duplicate key), naming it.
StrategySpec parse_strategy_spec(std::string_view spec);

/// Typed, consumption-tracked access to a spec's parameters. Factories
/// read each key they support through one of the getters; finish() then
/// rejects any key that was never read — so a typo like "cut_flor" fails
/// with a message naming it rather than being silently ignored.
class SpecReader {
 public:
  /// `default_seed` seeds randomized strategy components unless the spec
  /// carries an explicit "seed" key; `default_threads` is the partitioner
  /// thread count a "threads" key falls back to (1 = serial).
  SpecReader(const StrategySpec& spec, std::uint64_t default_seed,
             std::size_t default_threads = 1);

  const std::string& name() const { return spec_.name; }
  std::uint64_t seed() const { return seed_; }
  std::size_t default_threads() const { return default_threads_; }

  /// Getters return `fallback` when the key is absent and throw
  /// util::CheckFailure (naming the key) when the value does not parse.
  std::string get_string(const std::string& key, const std::string& fallback);
  double get_double(const std::string& key, double fallback);
  std::uint64_t get_uint(const std::string& key, std::uint64_t fallback);
  int get_int(const std::string& key, int fallback);
  bool get_bool(const std::string& key, bool fallback);

  /// Throws util::CheckFailure naming the first never-read key, if any.
  void finish() const;

 private:
  const std::string* raw(const std::string& key);

  const StrategySpec& spec_;
  std::uint64_t seed_;
  std::size_t default_threads_;
  std::set<std::string> consumed_;
};

/// A configured strategy plus the simulator-level settings its spec
/// carried. Some spec keys configure the *replay* rather than the
/// strategy ("replay_threads=" → SimulatorConfig::replay_threads); they
/// are consumed centrally by make_build so every registered strategy
/// accepts them without factory changes.
struct StrategyBuild {
  std::unique_ptr<ShardingStrategy> strategy;
  /// From the spec's "replay_threads=" key ("auto" or 0 = the measured
  /// auto mode, the SimulatorConfig default when absent).
  std::size_t replay_threads = 0;
  /// From "queue_capacity=": the pipeline's SPSC queue depth; 0 (absent)
  /// = SimulatorConfig's derived default.
  std::size_t queue_capacity = 0;
  /// From "agg_shards=": Stage A sub-ranges per window; "auto" or 0
  /// (absent) = SimulatorConfig's hardware-derived default.
  std::size_t aggregation_shards = 0;
};

/// Open factory registry mapping names (plus aliases) to strategy
/// builders. global() comes pre-loaded with the paper's five methods and
/// DSM; user code may add its own before parsing CLI flags.
class StrategyRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<ShardingStrategy>(SpecReader&)>;

  /// Registers `factory` under `canonical` and each alias (all matched
  /// case-insensitively). Re-registering a taken name throws.
  void add(const std::string& canonical,
           const std::vector<std::string>& aliases, Factory factory);

  /// Builds a configured strategy from a spec string. Throws
  /// util::CheckFailure on an unknown name (listing the known ones) or a
  /// malformed/unknown parameter (naming the key). `default_threads` is
  /// the partitioner thread count used when the spec has no "threads="
  /// key (1 = serial; MLKP-backed strategies produce bit-identical
  /// partitions for every thread count, so this only changes speed).
  std::unique_ptr<ShardingStrategy> make(
      std::string_view spec, std::uint64_t default_seed = 1,
      std::size_t default_threads = 1) const;

  /// Like make(), additionally returning the simulator-level settings
  /// the spec carried (see StrategyBuild). make() delegates here and
  /// discards them, so both entry points accept the same spec grammar.
  StrategyBuild make_build(std::string_view spec,
                           std::uint64_t default_seed = 1,
                           std::size_t default_threads = 1) const;

  bool contains(std::string_view name) const;

  /// Canonical names, sorted (aliases excluded).
  std::vector<std::string> names() const;

  /// Process-wide registry with the built-ins pre-registered.
  static StrategyRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;  // canonical + aliases
  std::vector<std::string> canonical_;
};

}  // namespace ethshard::core
