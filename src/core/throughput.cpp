#include "core/throughput.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ethshard::core {

double window_speedup(double dynamic_edge_cut, double dynamic_balance,
                      std::uint32_t k, const ThroughputModel& model) {
  ETHSHARD_CHECK(k >= 1);
  ETHSHARD_CHECK(model.cross_cost >= 1.0);
  ETHSHARD_CHECK(dynamic_edge_cut >= 0.0 && dynamic_edge_cut <= 1.0);
  const double balance = std::max(1.0, dynamic_balance);
  const double work_per_interaction =
      1.0 + (model.cross_cost - 1.0) * dynamic_edge_cut;
  return static_cast<double>(k) / (balance * work_per_interaction);
}

ThroughputSummary summarize_throughput(const SimulationResult& result,
                                       const ThroughputModel& model) {
  ThroughputSummary s;
  double weighted_sum = 0;
  double weight_total = 0;
  bool first = true;
  std::size_t losses = 0;

  for (const WindowSample& w : result.windows) {
    if (w.interactions == 0) continue;
    const double speedup = window_speedup(w.dynamic_edge_cut,
                                          w.dynamic_balance, result.k,
                                          model);
    const double weight = static_cast<double>(w.interactions);
    weighted_sum += speedup * weight;
    weight_total += weight;
    if (first) {
      s.worst_speedup = speedup;
      s.best_speedup = speedup;
      first = false;
    } else {
      s.worst_speedup = std::min(s.worst_speedup, speedup);
      s.best_speedup = std::max(s.best_speedup, speedup);
    }
    if (speedup < 1.0) ++losses;
    ++s.windows;
  }
  if (s.windows > 0) {
    s.mean_speedup = weighted_sum / weight_total;
    s.loss_fraction =
        static_cast<double>(losses) / static_cast<double>(s.windows);
  }
  return s;
}

}  // namespace ethshard::core
