#include "core/result_io.hpp"

#include <fstream>
#include <ostream>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace ethshard::core {

void write_windows_csv(std::ostream& out, const SimulationResult& result) {
  util::CsvWriter csv(out);
  csv.write_row({"window_start", "window_end", "dynamic_edge_cut",
                 "dynamic_balance", "static_edge_cut", "static_balance",
                 "interactions"});
  for (const WindowSample& w : result.windows) {
    csv.field(static_cast<std::int64_t>(w.window_start))
        .field(static_cast<std::int64_t>(w.window_end))
        .field(w.dynamic_edge_cut)
        .field(w.dynamic_balance)
        .field(w.static_edge_cut)
        .field(w.static_balance)
        .field(w.interactions);
    csv.end_row();
  }
}

void write_repartitions_csv(std::ostream& out,
                            const SimulationResult& result) {
  util::CsvWriter csv(out);
  csv.write_row({"time", "moves", "moved_state_units", "compute_ms"});
  for (const RepartitionEvent& e : result.repartitions) {
    csv.field(static_cast<std::int64_t>(e.time))
        .field(e.moves)
        .field(e.moved_state_units)
        .field(e.compute_ms);
    csv.end_row();
  }
}

void write_summary_csv(std::ostream& out, const SimulationResult& result) {
  util::CsvWriter csv(out);
  csv.write_row({"method", "k", "vertices", "distinct_edges",
                 "interactions", "final_static_edge_cut",
                 "final_static_balance", "executed_cross_shard_fraction",
                 "total_moves", "total_moved_state_units", "online_moves",
                 "repartitions"});
  csv.field(result.strategy_name)
      .field(static_cast<std::uint64_t>(result.k))
      .field(result.vertices)
      .field(result.distinct_edges)
      .field(result.interactions)
      .field(result.final_static_edge_cut)
      .field(result.final_static_balance)
      .field(result.executed_cross_shard_fraction)
      .field(result.total_moves)
      .field(result.total_moved_state_units)
      .field(result.online_moves)
      .field(static_cast<std::uint64_t>(result.repartitions.size()));
  csv.end_row();
}

namespace {
std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  ETHSHARD_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  return out;
}
}  // namespace

void write_windows_csv_file(const std::string& path,
                            const SimulationResult& result) {
  auto out = open_or_throw(path);
  write_windows_csv(out, result);
}

void write_repartitions_csv_file(const std::string& path,
                                 const SimulationResult& result) {
  auto out = open_or_throw(path);
  write_repartitions_csv(out, result);
}

}  // namespace ethshard::core
