// Ablation: R-METIS repartition period (DESIGN.md §5).
//
// The paper fixes the reduced-graph window at two weeks. Shorter windows
// track the workload more closely (better cut/balance) but repartition —
// and hence move vertices — more often; longer windows amortize moves at
// the cost of staleness. This sweep quantifies that dial, plus the same
// trade-off for KL (whose exchange rounds run on the same window).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/strategies.hpp"
#include "util/parallel.hpp"

int main() {
  using namespace ethshard;

  const double scale = bench::scale_from_env();
  const std::uint64_t seed = bench::seed_from_env();
  const workload::History history = bench::make_history(scale, seed);
  constexpr std::uint32_t k = 4;

  bench::print_header(
      "Ablation — R-METIS / KL repartition period (k=4, full history)");

  struct Config {
    const char* label;
    util::Timestamp period;
    bool use_kl;
  };
  const std::vector<Config> configs = {
      {"R-METIS 1w", 1 * util::kWeek, false},
      {"R-METIS 2w", 2 * util::kWeek, false},
      {"R-METIS 4w", 4 * util::kWeek, false},
      {"R-METIS 8w", 8 * util::kWeek, false},
      {"KL 1w", 1 * util::kWeek, true},
      {"KL 2w", 2 * util::kWeek, true},
      {"KL 4w", 4 * util::kWeek, true},
  };

  const auto results = util::parallel_map(configs, [&](const Config& c) {
    std::unique_ptr<core::ShardingStrategy> strategy;
    if (c.use_kl) {
      partition::BlpConfig blp;
      blp.seed = 7;
      strategy = std::make_unique<core::KlStrategy>(c.period, blp, 7);
    } else {
      partition::MlkpConfig mlkp;
      mlkp.seed = 7;
      strategy = std::make_unique<core::WindowMlkpStrategy>(c.period, mlkp);
    }
    core::SimulatorConfig cfg;
    cfg.k = k;
    core::ShardingSimulator sim(history, *strategy, cfg);
    return sim.run();
  });

  std::printf("%-12s %12s %12s %10s %12s\n", "config", "dynCut(mean)",
              "dynBal(mean)", "reparts", "moves");
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const core::SimulationResult& r = results[i];
    double cut = 0;
    double bal = 0;
    for (const core::WindowSample& w : r.windows) {
      cut += w.dynamic_edge_cut;
      bal += w.dynamic_balance;
    }
    const double n = std::max<double>(1.0, static_cast<double>(r.windows.size()));
    std::printf("%-12s %12.4f %12.4f %10zu %12llu\n", configs[i].label,
                cut / n, bal / n, r.repartitions.size(),
                static_cast<unsigned long long>(r.total_moves));
  }

  std::printf("\nShorter windows: more repartitions and moves, fresher\n"
              "partitions (lower cut). The paper's two-week default sits\n"
              "near the knee of that curve.\n");
  return 0;
}
