// Robustness check: are the headline results an artefact of one random
// workload? Regenerates the history under five independent seeds and
// reports mean ± sample-stdev of the key metrics for the two ends of the
// paper's trade-off (Hashing and R-METIS) plus METIS's anomaly.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "util/parallel.hpp"

int main() {
  using namespace ethshard;

  const double scale = bench::scale_from_env();
  const std::vector<std::uint64_t> seeds = {11, 23, 37, 51, 77};
  constexpr std::uint32_t k = 2;

  bench::print_header(
      "Seed robustness — 5 independent workloads, k=2 (mean ± stdev)");

  struct Cell {
    core::Method method;
    std::uint64_t seed;
  };
  std::vector<Cell> cells;
  for (core::Method m :
       {core::Method::kHashing, core::Method::kMetis, core::Method::kRMetis})
    for (std::uint64_t s : seeds) cells.push_back({m, s});

  const auto results = util::parallel_map(cells, [&](const Cell& c) {
    const workload::History history = bench::make_history(scale, c.seed);
    return bench::simulate(history, c.method, k);
  });

  std::printf("%-9s %20s %20s %22s\n", "method", "execCut", "finalStatBal",
              "moves");
  std::size_t idx = 0;
  for (core::Method m :
       {core::Method::kHashing, core::Method::kMetis,
        core::Method::kRMetis}) {
    std::vector<double> cuts;
    std::vector<double> balances;
    std::vector<double> moves;
    for (std::size_t s = 0; s < seeds.size(); ++s, ++idx) {
      const core::SimulationResult& r = results[idx];
      cuts.push_back(r.executed_cross_shard_fraction);
      balances.push_back(r.final_static_balance);
      moves.push_back(static_cast<double>(r.total_moves));
    }
    const metrics::MeanStdev c = metrics::mean_stdev(cuts);
    const metrics::MeanStdev b = metrics::mean_stdev(balances);
    const metrics::MeanStdev mv = metrics::mean_stdev(moves);
    std::printf("%-9s %12.4f ±%6.4f %12.4f ±%6.4f %14.0f ±%7.0f\n",
                core::method_name(m).c_str(), c.mean, c.stdev, b.mean,
                b.stdev, mv.mean, mv.stdev);
  }

  std::printf("\nTight stdevs mean the reported orderings hold across\n"
              "independently generated histories, not just the reference\n"
              "seed.\n");
  return 0;
}
