// Reproduces Fig. 5: dynamic edge-cut, normalized dynamic balance
// ((balance − 1)/(k − 1)) and total moves for the five methods at k = 2,
// 4 and 8 shards over the whole history (Aug 2015 – Dec 2017).
//
// Expected shape (paper): every method's edge-cut worsens with k;
// METIS-family beats hashing and KL on cut; hashing and KL beat the
// METIS-family on balance; hashing has zero moves, METIS the most, while
// P/R-METIS and TR-METIS move far less because they use a smaller graph.
// The §II-C text claims are also checked: hashing multi-shard share ≈ 50%
// at k=2 and ≈ 88% at k=8.
#include <cstdio>

#include "bench_common.hpp"
#include "util/parallel.hpp"

int main() {
  using namespace ethshard;

  const double scale = bench::scale_from_env();
  const std::uint64_t seed = bench::seed_from_env();
  const workload::History history = bench::make_history(scale, seed);

  bench::print_header("Fig. 5 — methods vs number of shards (full history)");
  std::printf("%-9s %3s %12s %12s %14s %12s %8s\n", "method", "k",
              "dynCut(med)", "dynCut(mean)", "normBal(med)", "moves",
              "reparts");

  struct RunConfig {
    core::Method method;
    std::uint32_t k;
  };
  std::vector<RunConfig> configs;
  for (core::Method m : core::kAllMethods)
    for (std::uint32_t k : {2u, 4u, 8u}) configs.push_back({m, k});

  const auto results = util::parallel_map(
      configs, [&](const RunConfig& c) {
        return bench::simulate(history, c.method, c.k);
      });

  double hash_cut_k2 = 0;
  double hash_cut_k8 = 0;

  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto [m, k] = configs[i];
    const core::SimulationResult& r = results[i];

    std::vector<double> cuts;
    std::vector<double> norm_balances;
    for (const core::WindowSample& w : r.windows) {
      cuts.push_back(w.dynamic_edge_cut);
      norm_balances.push_back(
          metrics::normalized_balance(w.dynamic_balance, k));
    }
    const metrics::Summary cut_s = metrics::summarize(cuts);
    const metrics::Summary bal_s = metrics::summarize(norm_balances);

    std::printf("%-9s %3u %12.4f %12.4f %14.4f %12llu %8zu\n",
                core::method_name(m).c_str(), k, cut_s.median, cut_s.mean,
                bal_s.median,
                static_cast<unsigned long long>(r.total_moves),
                r.repartitions.size());

    if (m == core::Method::kHashing) {
      if (k == 2) hash_cut_k2 = r.executed_cross_shard_fraction;
      if (k == 8) hash_cut_k8 = r.executed_cross_shard_fraction;
    }
  }

  std::printf("\n§II-C text check — hashing executed cross-shard share: "
              "k=2: %.3f (paper ~0.50), k=8: %.3f (paper ~0.88)\n",
              hash_cut_k2, hash_cut_k8);
  return 0;
}
