// Microbenchmarks (google-benchmark) for the observability layer.
//
// The acceptance question: with instrumentation compiled in but the
// runtime flag off, how much slower is a real hot path than the same
// code would be without any instrumentation? The BM_Mlkp_* pair answers
// it end-to-end (the macro sites collapse to one relaxed atomic load +
// branch each); the BM_Disabled_* group prices a single macro site, and
// the BM_Enabled_* group prices the actual recording work so the cost of
// turning the flag on is equally documented.
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "partition/mlkp.hpp"
#include "util/rng.hpp"

namespace {

using namespace ethshard;

graph::Graph ba_graph(std::uint64_t n) {
  util::Rng rng(42);
  return graph::make_barabasi_albert(n, 3, rng);
}

// ------------------------------------------------- per-site costs, off

void BM_Disabled_Counter(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) ETHSHARD_OBS_COUNT("bench/counter", 1);
}
BENCHMARK(BM_Disabled_Counter);

void BM_Disabled_Timer(benchmark::State& state) {
  obs::set_enabled(false);
  for (auto _ : state) {
    ETHSHARD_OBS_TIMER("bench/timer");
  }
}
BENCHMARK(BM_Disabled_Timer);

void BM_Disabled_Span(benchmark::State& state) {
  obs::set_trace_enabled(false);
  for (auto _ : state) {
    ETHSHARD_OBS_SPAN("bench/span");
  }
}
BENCHMARK(BM_Disabled_Span);

// -------------------------------------------------- per-site costs, on

void BM_Enabled_Counter(benchmark::State& state) {
  obs::Registry registry;
  const obs::ScopedRegistry scope(registry);
  obs::set_enabled(true);
  for (auto _ : state) ETHSHARD_OBS_COUNT("bench/counter", 1);
  obs::set_enabled(false);
}
BENCHMARK(BM_Enabled_Counter);

void BM_Enabled_Timer(benchmark::State& state) {
  obs::Registry registry;
  const obs::ScopedRegistry scope(registry);
  obs::set_enabled(true);
  for (auto _ : state) {
    ETHSHARD_OBS_TIMER("bench/timer");
  }
  obs::set_enabled(false);
}
BENCHMARK(BM_Enabled_Timer);

void BM_Snapshot(benchmark::State& state) {
  obs::Registry registry;
  const obs::ScopedRegistry scope(registry);
  obs::set_enabled(true);
  for (int i = 0; i < state.range(0); ++i)
    registry.add_counter("bench/counter" + std::to_string(i), 1);
  obs::set_enabled(false);
  for (auto _ : state) {
    const obs::MetricsSnapshot snap = registry.snapshot();
    benchmark::DoNotOptimize(snap);
  }
}
BENCHMARK(BM_Snapshot)->Arg(10)->Arg(100);

// --------------------------------------- end-to-end: instrumented mlkp
//
// The partitioner body carries ~10 macro sites (phase timers, spans,
// counters). Compare flag-off against flag-on on the same graph; the
// flag-off time is the number the <=2% acceptance bound applies to,
// measured against a build with ETHSHARD_OBS=OFF.

void BM_Mlkp_ObsOff(benchmark::State& state) {
  obs::set_enabled(false);
  obs::set_trace_enabled(false);
  const graph::Graph g = ba_graph(static_cast<std::uint64_t>(state.range(0)));
  partition::MlkpPartitioner mlkp;
  for (auto _ : state) {
    partition::Partition p = mlkp.partition(g, 8);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_vertices()));
}
BENCHMARK(BM_Mlkp_ObsOff)->Arg(10000)->Arg(100000);

void BM_Mlkp_ObsOn(benchmark::State& state) {
  obs::Registry registry;
  const obs::ScopedRegistry scope(registry);
  obs::set_enabled(true);
  const graph::Graph g = ba_graph(static_cast<std::uint64_t>(state.range(0)));
  partition::MlkpPartitioner mlkp;
  for (auto _ : state) {
    partition::Partition p = mlkp.partition(g, 8);
    benchmark::DoNotOptimize(p);
  }
  obs::set_enabled(false);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_vertices()));
}
BENCHMARK(BM_Mlkp_ObsOn)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
