// Reproduces Fig. 1: the Ethereum graph's evolution in vertices (accounts
// + contracts) and edges (distinct interactions) per month, July 2015 –
// December 2017, annotated with the fork/attack events the paper marks.
//
// Expected shape: exponential growth until the Sep/Oct-2016 attack (which
// adds ~an order of magnitude of vertices/edges), then super-linear
// growth. Absolute counts scale with ETHSHARD_SCALE.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "graph/builder.hpp"

namespace {

using namespace ethshard;

const char* event_label(util::Timestamp month) {
  // The vertical dashed lines in Fig. 1.
  static const std::map<std::string, const char*> events = {
      {"03.16", "Homestead"},  {"09.16", "Attack"},
      {"10.16", "EIP150"},     {"06.16", "DAO"},
      {"11.16", "EIP155&158"}, {"10.17", "Byzantium"},
  };
  const auto it = events.find(util::month_label(month));
  return it == events.end() ? "" : it->second;
}

}  // namespace

int main() {
  const double scale = bench::scale_from_env();
  const std::uint64_t seed = bench::seed_from_env();
  bench::print_header(
      "Fig. 1 — Ethereum graph evolution (vertices & edges per month)\n"
      "scale=" + std::to_string(scale));

  const workload::History history = bench::make_history(scale, seed);

  // Replay, sampling cumulative distinct vertices/edges at month ends.
  graph::GraphBuilder builder;
  std::vector<bool> seen;
  std::uint64_t vertices = 0;

  auto touch = [&](graph::Vertex v) {
    if (seen.size() <= v) seen.resize(v + 1, false);
    if (!seen[v]) {
      seen[v] = true;
      ++vertices;
    }
    builder.ensure_vertices(v + 1, 1);
  };

  std::printf("%-8s %12s %12s %10s  %s\n", "month", "vertices", "edges",
              "calls", "event");

  util::Timestamp month_end =
      util::add_months(history.chain.blocks().front().timestamp, 1);
  std::uint64_t calls = 0;

  auto emit_row = [&](util::Timestamp month) {
    std::printf("%-8s %12llu %12llu %10llu  %s\n",
                util::month_label(month).c_str(),
                static_cast<unsigned long long>(vertices),
                static_cast<unsigned long long>(builder.num_edges()),
                static_cast<unsigned long long>(calls),
                event_label(month));
  };

  for (const eth::Block& b : history.chain.blocks()) {
    while (b.timestamp >= month_end) {
      emit_row(util::add_months(month_end, -1));
      month_end = util::add_months(month_end, 1);
    }
    for (const eth::Transaction& tx : b.transactions) {
      for (const eth::Call& c : tx.calls) {
        touch(c.from);
        touch(c.to);
        builder.add_edge(c.from, c.to, 1);
        ++calls;
      }
    }
  }
  emit_row(util::add_months(month_end, -1));

  const workload::HistoryStats st = workload::stats_of(history);
  std::printf("\nTotals: %llu accounts, %llu contracts, %llu blocks, "
              "%llu transactions, %llu calls\n",
              static_cast<unsigned long long>(st.accounts),
              static_cast<unsigned long long>(st.contracts),
              static_cast<unsigned long long>(st.blocks),
              static_cast<unsigned long long>(st.transactions),
              static_cast<unsigned long long>(st.calls));
  std::printf("Paper (scale 1.0): ~6e7 edges by 12.17; growth exponential "
              "to the attack, super-linear after.\n");
  return 0;
}
