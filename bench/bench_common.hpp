// Shared plumbing for the figure-reproduction harnesses.
//
// Every harness regenerates the same deterministic synthetic history
// (seed 1234) at a scale controlled by the ETHSHARD_SCALE environment
// variable (default 0.002 ≈ 1.2e5 interactions, seconds per run; the
// paper's full volume is scale 1.0).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "core/strategies.hpp"
#include "core/strategy_registry.hpp"
#include "metrics/summary.hpp"
#include "workload/generator.hpp"

namespace ethshard::bench {

inline double scale_from_env(double fallback = 0.002) {
  if (const char* s = std::getenv("ETHSHARD_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return fallback;
}

inline std::uint64_t seed_from_env(std::uint64_t fallback = 1234) {
  if (const char* s = std::getenv("ETHSHARD_SEED")) {
    const std::uint64_t v = std::strtoull(s, nullptr, 10);
    if (v != 0) return v;
  }
  return fallback;
}

inline workload::History make_history(double scale, std::uint64_t seed) {
  workload::GeneratorConfig cfg;
  cfg.scale = scale;
  cfg.seed = seed;
  return workload::EthereumHistoryGenerator(cfg).generate();
}

/// `replay_threads` follows SimulatorConfig::replay_threads: 0 = auto
/// (pipelined when the hardware allows), 1 = serial per-call replay.
inline core::SimulationResult simulate(const workload::History& history,
                                       core::Method method,
                                       std::uint32_t k,
                                       std::uint64_t seed = 7,
                                       std::size_t replay_threads = 0) {
  const auto strategy = core::make_strategy(method, seed);
  core::SimulatorConfig cfg;
  cfg.k = k;
  cfg.replay_threads = replay_threads;
  core::ShardingSimulator sim(history, *strategy, cfg);
  return sim.run();
}

/// Spec-string variant (see core/strategy_registry.hpp for the grammar;
/// a "replay_threads=" spec key configures the replay pipeline).
inline core::SimulationResult simulate(const workload::History& history,
                                       const std::string& spec,
                                       std::uint32_t k,
                                       std::uint64_t seed = 7) {
  core::StrategyBuild build =
      core::StrategyRegistry::global().make_build(spec, seed);
  core::SimulatorConfig cfg;
  cfg.k = k;
  cfg.replay_threads = build.replay_threads;
  cfg.queue_capacity = build.queue_capacity;
  cfg.aggregation_shards = build.aggregation_shards;
  core::ShardingSimulator sim(history, *build.strategy, cfg);
  return sim.run();
}

/// Windows restricted to [from, to).
inline std::vector<core::WindowSample> windows_between(
    const core::SimulationResult& r, util::Timestamp from,
    util::Timestamp to) {
  std::vector<core::WindowSample> out;
  for (const core::WindowSample& w : r.windows)
    if (w.window_start >= from && w.window_start < to) out.push_back(w);
  return out;
}

/// Moves from repartition events inside [from, to).
inline std::uint64_t moves_between(const core::SimulationResult& r,
                                   util::Timestamp from, util::Timestamp to) {
  std::uint64_t sum = 0;
  for (const core::RepartitionEvent& e : r.repartitions)
    if (e.time >= from && e.time < to) sum += e.moves;
  return sum;
}

inline void print_header(const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace ethshard::bench
