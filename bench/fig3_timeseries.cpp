// Reproduces Fig. 3: static & dynamic edge-cut and balance over time for
// (a) hashing and (b) METIS with two shards. The paper samples four-hour
// windows; for readable console output we aggregate the samples per week
// and mark repartitions.
//
// Expected shape (paper): hashing — static balance ≈ 1, static edge-cut
// ≈ 0.5, noisy dynamic series; METIS — much lower edge-cut, dynamic
// balance drifting toward 2 after the Sep/Oct-2016 attack, vertical
// repartition marks every two weeks.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace ethshard;

void print_series(const core::SimulationResult& r) {
  std::printf("%-12s %8s %8s %8s %8s %8s %6s\n", "week-of", "dynCut",
              "dynBal", "statCut", "statBal", "wins", "repart");

  if (r.windows.empty()) return;
  util::Timestamp week_start = r.windows.front().window_start;
  double cut = 0;
  double bal = 0;
  double scut = 0;
  double sbal = 0;
  std::uint64_t n = 0;
  std::size_t next_event = 0;

  auto flush = [&](util::Timestamp week_end) {
    if (n == 0) return;
    std::uint64_t reparts = 0;
    while (next_event < r.repartitions.size() &&
           r.repartitions[next_event].time < week_end) {
      ++reparts;
      ++next_event;
    }
    const double dn = static_cast<double>(n);
    std::printf("%-12s %8.4f %8.4f %8.4f %8.4f %8llu %6s\n",
                util::date_label(week_start).c_str(), cut / dn, bal / dn,
                scut / dn, sbal / dn, static_cast<unsigned long long>(n),
                reparts ? "|" : "");
    cut = bal = scut = sbal = 0;
    n = 0;
  };

  for (const core::WindowSample& w : r.windows) {
    while (w.window_start >= week_start + util::kWeek) {
      flush(week_start + util::kWeek);
      week_start += util::kWeek;
    }
    cut += w.dynamic_edge_cut;
    bal += w.dynamic_balance;
    scut += w.static_edge_cut;
    sbal += w.static_balance;
    ++n;
  }
  flush(week_start + util::kWeek);
}

}  // namespace

int main() {
  const double scale = bench::scale_from_env();
  const std::uint64_t seed = bench::seed_from_env();
  const workload::History history = bench::make_history(scale, seed);

  bench::print_header("Fig. 3a — Hashing, k=2 (weekly means of 4-hour windows)");
  const core::SimulationResult hash =
      bench::simulate(history, core::Method::kHashing, 2);
  print_series(hash);
  std::printf("\nfinal: staticCut=%.4f staticBal=%.4f moves=%llu\n\n",
              hash.final_static_edge_cut, hash.final_static_balance,
              static_cast<unsigned long long>(hash.total_moves));

  bench::print_header("Fig. 3b — METIS (full graph), k=2");
  const core::SimulationResult metis =
      bench::simulate(history, core::Method::kMetis, 2);
  print_series(metis);
  std::printf("\nfinal: staticCut=%.4f staticBal=%.4f repartitions=%zu "
              "moves=%llu\n",
              metis.final_static_edge_cut, metis.final_static_balance,
              metis.repartitions.size(),
              static_cast<unsigned long long>(metis.total_moves));

  std::printf("\nPaper shape check: hashing staticCut ~0.5 & staticBal ~1; "
              "METIS cut far lower; METIS dynBal -> ~2 after 10.16.\n");
  return 0;
}
