// Ablation: what repartitioning actually costs, and what "load" means.
//
// Two studies beyond the paper's figures, quantifying its §III/§IV
// remarks:
//
//  1. State migration — "If we were to move one vertex from one shard to
//     another, we ought to move the entire state of the vertex. If the
//     vertex is a contract, that would result in moving the entire
//     contract storage." For every method we report, next to raw moves,
//     the moved *state units* (vertex + accumulated activity) and the
//     byte-accurate footprint of the final state (via StateDb) to show
//     how skewed per-vertex migration cost is.
//
//  2. Load model — §IV lists computation, storage and bandwidth as the
//     resources to balance. We rerun the methods with shard load measured
//     in gas (computation) instead of call counts and compare the
//     resulting dynamic balance.
#include <cstdio>

#include "bench_common.hpp"
#include "eth/state.hpp"
#include "metrics/summary.hpp"

namespace {

using namespace ethshard;

core::SimulationResult simulate_with_load(const workload::History& history,
                                          core::Method method,
                                          std::uint32_t k,
                                          core::LoadModel load) {
  const auto strategy = core::make_strategy(method, 7);
  core::SimulatorConfig cfg;
  cfg.k = k;
  cfg.load_model = load;
  core::ShardingSimulator sim(history, *strategy, cfg);
  return sim.run();
}

double mean_dyn_balance(const core::SimulationResult& r) {
  double sum = 0;
  for (const core::WindowSample& w : r.windows) sum += w.dynamic_balance;
  return r.windows.empty() ? 1.0
                           : sum / static_cast<double>(r.windows.size());
}

}  // namespace

int main() {
  const double scale = bench::scale_from_env();
  const std::uint64_t seed = bench::seed_from_env();
  const workload::History history = bench::make_history(scale, seed);
  constexpr std::uint32_t k = 4;

  // ---------------------------------------------------------- study 1
  bench::print_header(
      "Ablation 1 — migration cost per method (k=4, full history)");
  std::printf("%-9s %10s %14s %16s %12s %12s\n", "method", "moves",
              "stateUnits", "stateUnits/move", "mean ms", "max ms");
  for (core::Method m : core::kAllMethods) {
    const core::SimulationResult r =
        bench::simulate(history, m, k);
    const double per_move =
        r.total_moves == 0
            ? 0.0
            : static_cast<double>(r.total_moved_state_units) /
                  static_cast<double>(r.total_moves);
    double mean_ms = 0;
    double max_ms = 0;
    for (const core::RepartitionEvent& e : r.repartitions) {
      mean_ms += e.compute_ms;
      max_ms = std::max(max_ms, e.compute_ms);
    }
    if (!r.repartitions.empty())
      mean_ms /= static_cast<double>(r.repartitions.size());
    std::printf("%-9s %10llu %14llu %16.2f %12.2f %12.2f\n",
                core::method_name(m).c_str(),
                static_cast<unsigned long long>(r.total_moves),
                static_cast<unsigned long long>(r.total_moved_state_units),
                per_move, mean_ms, max_ms);
  }
  std::printf("  (mean/max ms = wall-clock cost of one repartition: the\n"
              "   full-graph method's cost grows with the whole chain,\n"
              "   the windowed methods' with recent activity only)\n");

  // Byte-accurate skew of the final state (execution substrate).
  eth::StateDb db;
  for (const eth::AccountInfo& info : history.accounts.all())
    if (info.kind == eth::AccountKind::kExternallyOwned)
      db.credit(info.id, 1'000'000'000ULL);
  db.apply_chain(history.chain);

  std::vector<double> account_bytes;
  std::vector<double> contract_bytes;
  for (const eth::AccountInfo& info : history.accounts.all()) {
    const double bytes = static_cast<double>(db.migration_bytes(info.id));
    (info.kind == eth::AccountKind::kContract ? contract_bytes
                                              : account_bytes)
        .push_back(bytes);
  }
  const metrics::Summary acc = metrics::summarize(std::move(account_bytes));
  const metrics::Summary con =
      metrics::summarize(std::move(contract_bytes));
  std::printf("\nPer-vertex migration footprint (bytes):\n");
  std::printf("  accounts : %s\n", metrics::to_string(acc, 0).c_str());
  std::printf("  contracts: %s\n", metrics::to_string(con, 0).c_str());
  std::printf("  (moving a hot contract costs %.0fx a plain account)\n",
              con.max / std::max(acc.median, 1.0));

  // ---------------------------------------------------------- study 2
  bench::print_header(
      "Ablation 2 — dynamic balance under call-load vs gas-load (k=4)");
  std::printf("%-9s %14s %14s\n", "method", "balance(calls)",
              "balance(gas)");
  for (core::Method m : core::kAllMethods) {
    const double calls = mean_dyn_balance(
        simulate_with_load(history, m, k, core::LoadModel::kCalls));
    const double gas = mean_dyn_balance(
        simulate_with_load(history, m, k, core::LoadModel::kGas));
    std::printf("%-9s %14.4f %14.4f\n", core::method_name(m).c_str(),
                calls, gas);
  }
  std::printf("\nGas-weighted load shifts balance (creates and value\n"
              "transfers are costlier than plain calls), but the method\n"
              "ordering is stable — the paper's trade-off is not an\n"
              "artefact of counting calls.\n");
  return 0;
}
