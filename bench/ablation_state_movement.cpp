// Ablation: the paper's two classes of multi-shard request handling.
//
// §I names two solutions for transactions that span shards: (a)
// distributed coordination (Spanner, S-SMR) — this is what the five
// partitioning methods implicitly assume, every cross-shard interaction
// pays coordination; and (b) state movement (Dynamic Scalable SMR) —
// move the participants to one shard so the request executes locally.
//
// This bench runs class (b) as the DSM strategy against Hashing and
// R-METIS, separating what each approach pays: cross-shard execution
// (execCut) vs continuous state movement (online moves / state units).
// §IV's warning is visible in the numbers: "moving state
// indiscriminately will have both an impact in the bandwidth and storage
// of the system."
#include <cstdio>

#include "bench_common.hpp"
#include "core/strategies.hpp"
#include "util/parallel.hpp"

int main() {
  using namespace ethshard;

  const double scale = bench::scale_from_env();
  const std::uint64_t seed = bench::seed_from_env();
  const workload::History history = bench::make_history(scale, seed);

  bench::print_header(
      "Ablation — coordination (a) vs state movement (b), full history");
  std::printf("%-9s %3s %10s %12s %14s %14s\n", "method", "k", "execCut",
              "totalMoves", "onlineMoves", "stateUnits");

  struct Config {
    const char* which;  // "hash", "rmetis", "dsm"
    std::uint32_t k;
  };
  std::vector<Config> configs;
  for (std::uint32_t k : {2u, 4u, 8u})
    for (const char* which : {"Hashing", "R-METIS", "DSM"})
      configs.push_back({which, k});

  const auto results = util::parallel_map(configs, [&](const Config& c) {
    std::unique_ptr<core::ShardingStrategy> strategy;
    const std::string which = c.which;
    if (which == "Hashing") {
      strategy = core::make_strategy(core::Method::kHashing, 7);
    } else if (which == "R-METIS") {
      strategy = core::make_strategy(core::Method::kRMetis, 7);
    } else {
      strategy = std::make_unique<core::DsmStrategy>();
    }
    core::SimulatorConfig cfg;
    cfg.k = c.k;
    core::ShardingSimulator sim(history, *strategy, cfg);
    return sim.run();
  });

  for (std::size_t i = 0; i < configs.size(); ++i) {
    const core::SimulationResult& r = results[i];
    std::printf("%-9s %3u %10.4f %12llu %14llu %14llu\n",
                r.strategy_name.c_str(), configs[i].k,
                r.executed_cross_shard_fraction,
                static_cast<unsigned long long>(r.total_moves),
                static_cast<unsigned long long>(r.online_moves),
                static_cast<unsigned long long>(
                    r.total_moved_state_units));
  }

  std::printf(
      "\nDSM trades execution-time coordination (low execCut: only the\n"
      "first access of a group crosses shards) for continuous state\n"
      "movement — compare its online moves against R-METIS's repartition\n"
      "moves and Hashing's zero-move / maximal-cut corner.\n");
  return 0;
}
