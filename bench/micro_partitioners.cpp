// Microbenchmarks (google-benchmark) for the partitioning substrate, plus
// the ablations called out in DESIGN.md §5: heavy-edge vs random matching,
// refinement on/off, and BLP round counts. Each benchmark reports the
// achieved static edge-cut as a counter alongside the runtime.
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "metrics/metrics.hpp"
#include "partition/blp.hpp"
#include "partition/coarsen.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/kernighan_lin.hpp"
#include "partition/mlkp.hpp"
#include "partition/streaming.hpp"
#include "util/rng.hpp"

namespace {

using namespace ethshard;

graph::Graph ba_graph(std::uint64_t n) {
  util::Rng rng(42);
  return graph::make_barabasi_albert(n, 3, rng);
}

graph::Graph grid_graph(std::uint64_t side) {
  return graph::make_grid(side, side);
}

void report_cut(benchmark::State& state, const graph::Graph& g,
                const partition::Partition& p) {
  state.counters["edge_cut"] = metrics::static_edge_cut(g, p);
  state.counters["balance"] = metrics::static_balance(p);
}

// ------------------------------------------------------------ throughput

void BM_Hash(benchmark::State& state) {
  const graph::Graph g = ba_graph(static_cast<std::uint64_t>(state.range(0)));
  partition::HashPartitioner hp;
  partition::Partition p;
  for (auto _ : state) {
    p = hp.partition(g, 8);
    benchmark::DoNotOptimize(p);
  }
  report_cut(state, g, p);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_vertices()));
}
BENCHMARK(BM_Hash)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Mlkp(benchmark::State& state) {
  const graph::Graph g = ba_graph(static_cast<std::uint64_t>(state.range(0)));
  partition::MlkpPartitioner mlkp;
  partition::Partition p;
  for (auto _ : state) {
    p = mlkp.partition(g, 8);
    benchmark::DoNotOptimize(p);
  }
  report_cut(state, g, p);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_vertices()));
}
BENCHMARK(BM_Mlkp)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Scaling of the parallel multilevel partitioner over worker threads
// (range(1)) at fixed graph size (range(0)). mt-MLKP promises the exact
// same partition at every thread count, so the speedup is free quality-
// wise; the final check turns any divergence into a benchmark error.
void BM_MlkpThreads(benchmark::State& state) {
  const graph::Graph g = ba_graph(static_cast<std::uint64_t>(state.range(0)));
  partition::MlkpConfig cfg;
  cfg.seed = 7;
  cfg.threads = static_cast<std::size_t>(state.range(1));
  partition::MlkpPartitioner mlkp(cfg);
  partition::Partition p;
  for (auto _ : state) {
    p = mlkp.partition(g, 8);
    benchmark::DoNotOptimize(p);
  }
  cfg.threads = 1;
  const partition::Partition serial =
      partition::MlkpPartitioner(cfg).partition(g, 8);
  if (p.assignments() != serial.assignments())
    state.SkipWithError("thread-count invariance violated");
  report_cut(state, g, p);
  state.counters["threads"] =
      static_cast<double>(state.range(1));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_vertices()));
}
BENCHMARK(BM_MlkpThreads)
    ->Args({200000, 1})
    ->Args({200000, 2})
    ->Args({200000, 4})
    ->Args({200000, 8})
    ->Unit(benchmark::kMillisecond);

void BM_KernighanLin(benchmark::State& state) {
  const graph::Graph g = ba_graph(static_cast<std::uint64_t>(state.range(0)));
  partition::KernighanLinPartitioner kl;
  partition::Partition p;
  for (auto _ : state) {
    p = kl.partition(g, 8);
    benchmark::DoNotOptimize(p);
  }
  report_cut(state, g, p);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_vertices()));
}
BENCHMARK(BM_KernighanLin)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_Ldg(benchmark::State& state) {
  const graph::Graph g = ba_graph(static_cast<std::uint64_t>(state.range(0)));
  partition::LdgPartitioner ldg;
  partition::Partition p;
  for (auto _ : state) {
    p = ldg.partition(g, 8);
    benchmark::DoNotOptimize(p);
  }
  report_cut(state, g, p);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_vertices()));
}
BENCHMARK(BM_Ldg)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_Fennel(benchmark::State& state) {
  const graph::Graph g = ba_graph(static_cast<std::uint64_t>(state.range(0)));
  partition::FennelPartitioner fennel;
  partition::Partition p;
  for (auto _ : state) {
    p = fennel.partition(g, 8);
    benchmark::DoNotOptimize(p);
  }
  report_cut(state, g, p);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_vertices()));
}
BENCHMARK(BM_Fennel)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

// -------------------------------------------------------------- ablations

void BM_MlkpMatching(benchmark::State& state) {
  const graph::Graph g = grid_graph(100);
  partition::MlkpConfig cfg;
  cfg.matching = state.range(0) == 0 ? partition::MatchingScheme::kHeavyEdge
                                     : partition::MatchingScheme::kRandom;
  partition::MlkpPartitioner mlkp(cfg);
  partition::Partition p;
  for (auto _ : state) {
    p = mlkp.partition(g, 4);
    benchmark::DoNotOptimize(p);
  }
  report_cut(state, g, p);
  state.SetLabel(state.range(0) == 0 ? "heavy-edge" : "random");
}
BENCHMARK(BM_MlkpMatching)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_MlkpRefinement(benchmark::State& state) {
  const graph::Graph g = grid_graph(100);
  partition::MlkpConfig cfg;
  cfg.refine = state.range(0) != 0;
  partition::MlkpPartitioner mlkp(cfg);
  partition::Partition p;
  for (auto _ : state) {
    p = mlkp.partition(g, 4);
    benchmark::DoNotOptimize(p);
  }
  report_cut(state, g, p);
  state.SetLabel(state.range(0) ? "refine" : "no-refine");
}
BENCHMARK(BM_MlkpRefinement)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_BlpRounds(benchmark::State& state) {
  util::Rng rng(7);
  const graph::Graph g =
      graph::make_planted_partition(4, 250, 0.08, 0.005, rng);
  partition::HashPartitioner hp;
  const partition::Partition initial = hp.partition(g, 4);
  partition::BlpConfig cfg;
  cfg.rounds = static_cast<int>(state.range(0));
  partition::Partition p;
  for (auto _ : state) {
    p = initial;
    partition::BalancedLabelPropagation blp(cfg);
    benchmark::DoNotOptimize(blp.refine(g, p));
  }
  report_cut(state, g, p);
}
BENCHMARK(BM_BlpRounds)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CoarsenOnce(benchmark::State& state) {
  const graph::Graph g = ba_graph(static_cast<std::uint64_t>(state.range(0)));
  util::Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        partition::coarsen_once(g, partition::MatchingScheme::kHeavyEdge,
                                rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_vertices()));
}
BENCHMARK(BM_CoarsenOnce)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
