// Counterfactual ablation: which workload phenomenon causes which result?
//
// §III attributes METIS's dynamic-balance anomaly to the Sep/Oct-2016
// dummy-account attack, and hashing's huge edge-cut to the hub structure
// of real traffic. Re-running the same experiment on counterfactual
// histories isolates those causes:
//
//   * no-attack     → METIS's post-2016 dynamic balance should collapse
//                     back toward 1 (no dummy ballast);
//   * uniform       → without preferential-attachment hubs, partitioning
//                     gains shrink (every method drifts toward hashing);
//   * transfers-only→ a Bitcoin-shaped ledger: no call cascades, lower
//                     intra-transaction coupling;
//   * ico-frenzy    → more abrupt hotspot churn, stressing TR-METIS.
#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "workload/presets.hpp"

int main() {
  using namespace ethshard;

  const double scale = bench::scale_from_env();
  const std::uint64_t seed = bench::seed_from_env();

  bench::print_header("Counterfactual workloads — METIS & Hashing, k=2");
  std::printf("%-15s %14s %14s %14s %12s\n", "preset", "METIS postBal",
              "METIS cut", "Hash cut", "Hash moves");

  for (workload::Preset preset : workload::kAllPresets) {
    const workload::History history =
        workload::EthereumHistoryGenerator(
            workload::preset_config(preset, {.scale = scale, .seed = seed}))
            .generate();

    const core::SimulationResult metis =
        bench::simulate(history, core::Method::kMetis, 2);
    const core::SimulationResult hash =
        bench::simulate(history, core::Method::kHashing, 2);

    // Post-attack-era dynamic balance (the anomaly's home).
    double post_bal = 0;
    std::size_t post_n = 0;
    double metis_cut = 0;
    for (const core::WindowSample& w : metis.windows) {
      metis_cut += w.dynamic_edge_cut;
      if (w.window_start >= util::attack_end_time()) {
        post_bal += w.dynamic_balance;
        ++post_n;
      }
    }
    double hash_cut = 0;
    for (const core::WindowSample& w : hash.windows)
      hash_cut += w.dynamic_edge_cut;

    std::printf(
        "%-15s %14.4f %14.4f %14.4f %12llu\n",
        workload::preset_name(preset).c_str(),
        post_n ? post_bal / static_cast<double>(post_n) : 1.0,
        metis_cut / static_cast<double>(metis.windows.size()),
        hash_cut / static_cast<double>(hash.windows.size()),
        static_cast<unsigned long long>(hash.total_moves));
  }

  std::printf(
      "\nCausality check: removing the attack pulls METIS's post-2016\n"
      "dynamic balance away from its ceiling of 2 and costs it cut —\n"
      "the dummy accounts are the anomaly's amplifier (§III), though any\n"
      "dormant ballast (old organic accounts) pushes the same way.\n"
      "Hashing is structure-blind: ~0.5 cut and zero moves on every\n"
      "counterfactual, hubs or not.\n");
  return 0;
}
