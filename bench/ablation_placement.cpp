// Ablation: what does the online placement rule alone buy?
//
// §II-C's new-vertex rule ("picking the shard that minimizes edge-cuts;
// if more than one exists, we maximize the balance") is compared against
// pure hash placement with repartitioning disabled for both — isolating
// placement from repartitioning. The min-cut rule is the entire reason
// METIS-family methods start from a reasonable assignment between
// repartitions.
#include <cstdio>

#include "bench_common.hpp"
#include "core/placement.hpp"
#include "core/strategies.hpp"

namespace {

using namespace ethshard;

/// Min-cut placement, never repartitions (the "Sticky" upper bound on
/// placement-only quality).
class StickyMinCut final : public core::ShardingStrategy {
 public:
  std::string name() const override { return "Sticky"; }
  partition::ShardId place(graph::Vertex,
                           std::span<const partition::ShardId> peers,
                           const core::SimulatorEnv& env) override {
    return core::place_min_cut(peers, env.shard_vertex_counts(), env.k());
  }
  bool should_repartition(const core::WindowSnapshot&,
                          const core::SimulatorEnv&) override {
    return false;
  }
  partition::Partition compute_partition(
      const core::SimulatorEnv& env) override {
    return env.current_partition();
  }
};

/// Least-loaded placement (balance-only greedy), never repartitions.
class LeastLoaded final : public core::ShardingStrategy {
 public:
  std::string name() const override { return "LeastLoad"; }
  partition::ShardId place(graph::Vertex,
                           std::span<const partition::ShardId>,
                           const core::SimulatorEnv& env) override {
    return core::place_min_cut({}, env.shard_vertex_counts(), env.k());
  }
  bool should_repartition(const core::WindowSnapshot&,
                          const core::SimulatorEnv&) override {
    return false;
  }
  partition::Partition compute_partition(
      const core::SimulatorEnv& env) override {
    return env.current_partition();
  }
};

}  // namespace

int main() {
  const double scale = bench::scale_from_env();
  const std::uint64_t seed = bench::seed_from_env();
  const workload::History history = bench::make_history(scale, seed);

  bench::print_header(
      "Ablation — online placement rules, no repartitioning");
  std::printf("%-10s %3s %10s %10s %10s\n", "placement", "k", "execCut",
              "statBal", "moves");

  for (std::uint32_t k : {2u, 8u}) {
    for (int which = 0; which < 3; ++which) {
      std::unique_ptr<core::ShardingStrategy> strategy;
      if (which == 0)
        strategy = core::make_strategy(core::Method::kHashing, 7);
      else if (which == 1)
        strategy = std::make_unique<LeastLoaded>();
      else
        strategy = std::make_unique<StickyMinCut>();

      core::SimulatorConfig cfg;
      cfg.k = k;
      core::ShardingSimulator sim(history, *strategy, cfg);
      const core::SimulationResult r = sim.run();
      std::printf("%-10s %3u %10.4f %10.4f %10llu\n",
                  r.strategy_name.c_str(), k,
                  r.executed_cross_shard_fraction, r.final_static_balance,
                  static_cast<unsigned long long>(r.total_moves));
    }
  }

  std::printf(
      "\nThe §II-C min-cut rule (Sticky) roughly halves the cut of the\n"
      "structure-blind placements at zero moves — but its balance decays\n"
      "(min-cut gravity pulls new vertices into already-heavy shards,\n"
      "statBal -> k at k=8). Placement wins cut; only repartitioning\n"
      "pays the balance debt down. The trade-off again, in miniature.\n");
  return 0;
}
