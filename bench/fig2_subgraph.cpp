// Reproduces Fig. 2: a small subgraph of the early (September 2015)
// blockchain graph with accounts (solid), contracts (dashed) and weighted
// interaction edges, emitted as Graphviz DOT plus a textual summary.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "graph/builder.hpp"
#include "graph/dot.hpp"

int main() {
  using namespace ethshard;

  const double scale = bench::scale_from_env();
  const std::uint64_t seed = bench::seed_from_env();
  bench::print_header("Fig. 2 — September 2015 subgraph (DOT)");

  const workload::History history = bench::make_history(scale, seed);

  // Interactions during September 2015.
  const util::Timestamp from = util::make_timestamp(2015, 9, 1);
  const util::Timestamp to = util::make_timestamp(2015, 10, 1);

  graph::GraphBuilder builder;
  for (const eth::Block& b : history.chain.blocks()) {
    if (b.timestamp < from || b.timestamp >= to) continue;
    for (const eth::Transaction& tx : b.transactions)
      for (const eth::Call& c : tx.calls) {
        builder.ensure_vertices(std::max(c.from, c.to) + 1, 1);
        builder.add_edge(c.from, c.to, 1);
      }
  }
  const graph::Graph month = builder.build_directed();

  // Pick the highest-degree vertex and take its 2-hop neighbourhood,
  // capped at 24 vertices — about the size of the paper's figure.
  graph::Vertex hub = 0;
  for (graph::Vertex v = 0; v < month.num_vertices(); ++v)
    if (month.degree(v) > month.degree(hub)) hub = v;

  std::vector<graph::Vertex> selection = {hub};
  std::vector<bool> in_sel(month.num_vertices(), false);
  in_sel[hub] = true;
  for (std::size_t i = 0; i < selection.size() && selection.size() < 24;
       ++i) {
    for (const graph::Arc& a : month.neighbors(selection[i])) {
      if (selection.size() >= 24) break;
      if (!in_sel[a.to]) {
        in_sel[a.to] = true;
        selection.push_back(a.to);
      }
    }
  }

  const graph::Graph sub = month.induced_subgraph(selection);

  graph::DotOptions opts;
  opts.name = "september_2015";
  opts.is_contract = [&](graph::Vertex local) {
    const graph::Vertex global = selection[local];
    return history.accounts.contains(global) &&
           history.accounts.info(global).kind ==
               eth::AccountKind::kContract;
  };
  opts.label = [&](graph::Vertex local) {
    return std::to_string(selection[local]);
  };
  graph::write_dot(std::cout, sub, opts);

  std::printf("\nSubgraph: %llu vertices, %llu edges around hub account %llu\n",
              static_cast<unsigned long long>(sub.num_vertices()),
              static_cast<unsigned long long>(sub.num_edges()),
              static_cast<unsigned long long>(hub));
  std::printf("(solid = account, dashed = contract, edge label = "
              "interaction count, as in the paper)\n");
  return 0;
}
