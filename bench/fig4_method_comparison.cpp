// Reproduces Fig. 4: box-and-whisker statistics (min / q1 / median / q3 /
// max) of dynamic edge-cut and dynamic balance, plus total moves, for the
// five methods over the four 2017 periods the paper uses, in
// configurations with 2 and 8 shards.
//
// Expected shape (paper): hashing worst cut / best balance / zero moves;
// METIS best cut / worst balance / most moves; R-METIS balances better
// with far fewer moves; TR-METIS like R-METIS with yet fewer moves; KL in
// between, many moves.
#include <cstdio>

#include "bench_common.hpp"
#include "util/parallel.hpp"

namespace {

using namespace ethshard;

struct Period {
  const char* label;
  util::Timestamp from;
  util::Timestamp to;
};

const Period kPeriods[] = {
    {"01.17-06.17", util::make_timestamp(2017, 1, 1),
     util::make_timestamp(2017, 6, 1)},
    {"06.17-09.17", util::make_timestamp(2017, 6, 1),
     util::make_timestamp(2017, 9, 1)},
    {"09.17-12.17", util::make_timestamp(2017, 9, 1),
     util::make_timestamp(2017, 12, 1)},
    {"12.17-01.18", util::make_timestamp(2017, 12, 1),
     util::make_timestamp(2018, 1, 1)},
};

void print_metric_block(
    const char* metric,
    const std::vector<core::SimulationResult>& runs,
    double (*extract)(const core::WindowSample&)) {
  std::printf("\n  %s (min / q1 / median / q3 / max per period)\n", metric);
  for (const auto& result : runs) {
    std::printf("    %-9s", result.strategy_name.c_str());
    for (const Period& p : kPeriods) {
      std::vector<double> vals;
      for (const core::WindowSample& w :
           bench::windows_between(result, p.from, p.to))
        vals.push_back(extract(w));
      const metrics::Summary s = metrics::summarize(std::move(vals));
      std::printf("  [%5.3f %5.3f %5.3f %5.3f %5.3f]", s.min, s.q1,
                  s.median, s.q3, s.max);
    }
    std::printf("\n");
  }
  std::printf("    periods:");
  for (const Period& p : kPeriods) std::printf("  %-37s", p.label);
  std::printf("\n");
}

}  // namespace

int main() {
  const double scale = bench::scale_from_env();
  const std::uint64_t seed = bench::seed_from_env();
  const workload::History history = bench::make_history(scale, seed);

  for (std::uint32_t k : {2u, 8u}) {
    bench::print_header("Fig. 4 — five methods, k=" + std::to_string(k) +
                        ", 2017 periods");

    // The paper's five methods as registry specs, in figure order
    // ("p-metis" is the figures' name for R-METIS).
    const std::vector<std::string> specs = {"hashing", "kl", "metis",
                                            "p-metis", "tr-metis"};
    const auto runs = util::parallel_map(
        specs,
        [&](const std::string& s) { return bench::simulate(history, s, k); });

    print_metric_block("Dynamic edge-cut", runs,
                       [](const core::WindowSample& w) {
                         return w.dynamic_edge_cut;
                       });
    print_metric_block("Dynamic balance", runs,
                       [](const core::WindowSample& w) {
                         return w.dynamic_balance;
                       });

    std::printf("\n  Moves per period (and total)\n");
    for (const auto& result : runs) {
      std::printf("    %-9s", result.strategy_name.c_str());
      for (const Period& p : kPeriods)
        std::printf("  %12llu",
                    static_cast<unsigned long long>(
                        bench::moves_between(result, p.from, p.to)));
      std::printf("  | total %12llu\n",
                  static_cast<unsigned long long>(result.total_moves));
    }
    std::printf("\n");
  }

  std::printf("Paper shape check: Hashing zero moves & worst cut; METIS "
              "best cut, worst balance, most moves; TR-METIS moves << "
              "R-METIS moves << METIS moves.\n");
  return 0;
}
