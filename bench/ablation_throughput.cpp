// Ablation: expected throughput of a sharded Ethereum under each
// partitioning method — the quantified version of the paper's §I claim
// that a poorly partitioned system gets *slower* with more shards.
//
// For every method × k we convert the per-window dynamic edge-cut and
// balance into a speedup over an unsharded node (core/throughput.hpp,
// cross-shard cost 3×) and report the interaction-weighted mean, the
// worst window, and how often sharding was a net loss.
#include <cstdio>

#include "bench_common.hpp"
#include "core/throughput.hpp"

int main() {
  using namespace ethshard;

  const double scale = bench::scale_from_env();
  const std::uint64_t seed = bench::seed_from_env();
  const workload::History history = bench::make_history(scale, seed);

  bench::print_header(
      "Ablation — modelled speedup vs unsharded node (cross cost 3x)");
  std::printf("%-9s %3s %12s %12s %12s %12s\n", "method", "k",
              "meanSpeedup", "worstWindow", "bestWindow", "lossWindows");

  for (core::Method m : core::kAllMethods) {
    for (std::uint32_t k : {2u, 4u, 8u}) {
      const core::SimulationResult r = bench::simulate(history, m, k);
      const core::ThroughputSummary t = core::summarize_throughput(r);
      std::printf("%-9s %3u %12.3f %12.3f %12.3f %11.1f%%\n",
                  core::method_name(m).c_str(), k, t.mean_speedup,
                  t.worst_speedup, t.best_speedup,
                  100.0 * t.loss_fraction);
    }
  }

  std::printf(
      "\nReading: speedup < 1 means the sharded system is slower than a\n"
      "single node (the paper's §I pitfall). Expect hashing to cap well\n"
      "below k (it pays the cross-shard tax on ~(k-1)/k interactions) and\n"
      "full-graph METIS to stall on imbalance after the 2016 attack,\n"
      "while the windowed methods keep the most of k.\n");
  return 0;
}
