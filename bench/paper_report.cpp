// One-shot reproduction report.
//
// Regenerates the paper's entire evaluation as a single markdown document
// on stdout — workload characterization (Fig. 1), the method × shard grid
// (Figs. 4/5), the §II-C hashing claims, the throughput implication of §I
// and the attack counterfactual — ready to `tee` into a results file:
//
//   ETHSHARD_SCALE=0.002 ./paper_report | tee report.md
#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "workload/analysis.hpp"
#include "workload/presets.hpp"

namespace {

using namespace ethshard;

void print_workload_section(const workload::History& history) {
  const workload::HistoryStats st = workload::stats_of(history);
  const workload::WorkloadReport wr = workload::analyze_workload(history);

  std::printf("## Workload (synthetic stand-in for the paper's trace)\n\n");
  std::printf("| metric | value |\n|---|---|\n");
  std::printf("| blocks | %llu |\n",
              static_cast<unsigned long long>(st.blocks));
  std::printf("| transactions | %llu |\n",
              static_cast<unsigned long long>(st.transactions));
  std::printf("| interactions (calls) | %llu |\n",
              static_cast<unsigned long long>(st.calls));
  std::printf("| accounts / contracts | %llu / %llu |\n",
              static_cast<unsigned long long>(st.accounts),
              static_cast<unsigned long long>(st.contracts));
  std::printf("| activity gini | %.3f |\n", wr.activity_gini);
  std::printf("| top-1%% activity share | %.3f |\n", wr.top1pct_share);
  std::printf("| single-touch vertices | %llu (%.0f%%) |\n",
              static_cast<unsigned long long>(wr.single_touch_vertices),
              100.0 * static_cast<double>(wr.single_touch_vertices) /
                  static_cast<double>(std::max<std::uint64_t>(
                      1, wr.total_vertices)));
  std::printf("| attack-era new accounts | %llu |\n\n",
              static_cast<unsigned long long>(wr.attack.new_accounts));
}

void print_grid_section(const workload::History& history) {
  std::printf("## Method × shard grid (Figs. 4/5)\n\n");
  core::ExperimentConfig cfg;
  const auto runs = core::run_experiment(history, cfg);
  std::printf("| method | k | dynCut med | dynBal med | normBal | "
              "speedup | moves | reparts |\n");
  std::printf("|---|---|---|---|---|---|---|---|\n");
  double hash_k2 = 0;
  double hash_k8 = 0;
  for (const core::ExperimentRun& r : runs) {
    std::printf("| %s | %u | %.4f | %.4f | %.4f | %.3f | %llu | %zu |\n",
                core::method_name(r.method).c_str(), r.k,
                r.dynamic_edge_cut.median, r.dynamic_balance.median,
                r.normalized_balance_median, r.throughput.mean_speedup,
                static_cast<unsigned long long>(r.result.total_moves),
                r.result.repartitions.size());
    if (r.method == core::Method::kHashing) {
      if (r.k == 2) hash_k2 = r.result.executed_cross_shard_fraction;
      if (r.k == 8) hash_k8 = r.result.executed_cross_shard_fraction;
    }
  }
  std::printf("\n**§II-C check** — hashing executed cross-shard share: "
              "k=2: %.3f (paper ~0.50), k=8: %.3f (paper ~0.88).\n\n",
              hash_k2, hash_k8);
}

void print_counterfactual_section(double scale, std::uint64_t seed) {
  std::printf("## Attack counterfactual (§III causality)\n\n");
  std::printf("| history | METIS post-2016 dyn balance | METIS mean cut "
              "|\n|---|---|---|\n");
  for (const workload::Preset preset :
       {workload::Preset::kPaper, workload::Preset::kNoAttack}) {
    const workload::History history =
        workload::EthereumHistoryGenerator(
            workload::preset_config(preset, {.scale = scale, .seed = seed}))
            .generate();
    const core::SimulationResult r =
        bench::simulate(history, core::Method::kMetis, 2);
    double cut = 0;
    double post_bal = 0;
    std::size_t post_n = 0;
    for (const core::WindowSample& w : r.windows) {
      cut += w.dynamic_edge_cut;
      if (w.window_start >= util::attack_end_time()) {
        post_bal += w.dynamic_balance;
        ++post_n;
      }
    }
    std::printf("| %s | %.4f | %.4f |\n",
                workload::preset_name(preset).c_str(),
                post_n ? post_bal / static_cast<double>(post_n) : 1.0,
                cut / static_cast<double>(r.windows.size()));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const double scale = bench::scale_from_env();
  const std::uint64_t seed = bench::seed_from_env();

  std::printf("# ethshard reproduction report\n\n");
  std::printf("Paper: *Challenges and Pitfalls of Partitioning "
              "Blockchains* (Fynn & Pedone, DSN 2018).\n");
  std::printf("Workload scale %.4g, seed %llu. Absolute numbers are\n"
              "synthetic-trace values; orderings and ratios are the\n"
              "reproduction targets (see EXPERIMENTS.md).\n\n",
              scale, static_cast<unsigned long long>(seed));

  const workload::History history = bench::make_history(scale, seed);
  print_workload_section(history);
  print_grid_section(history);
  print_counterfactual_section(scale, seed);

  std::printf("## Conclusion (paper §IV)\n\n");
  std::printf(
      "A clear edge-cut/balance trade-off: hashing balances perfectly but\n"
      "cuts ~(k-1)/k of interactions; multilevel partitioning cuts far\n"
      "less but concentrates active vertices after the dummy-account\n"
      "attack; windowed variants recover balance and slash moves; no\n"
      "method achieves both low cut and good balance on this workload.\n");
  return 0;
}
