// Sweeps TR-METIS's repartitioning thresholds and reports the trade-off
// the paper motivates in §II-C: lenient thresholds avoid repartitions
// (fewer moved vertices) at the risk of worse edge-cut/balance; tight
// thresholds approach R-METIS quality at R-METIS cost.
//
//   $ ./threshold_tuning
#include <cstdio>
#include <vector>

#include "core/simulator.hpp"
#include "core/strategies.hpp"
#include "metrics/summary.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace ethshard;

  workload::GeneratorConfig gen_cfg;
  gen_cfg.scale = 0.001;
  gen_cfg.seed = 31;
  const workload::History history =
      workload::EthereumHistoryGenerator(gen_cfg).generate();

  struct Setting {
    double cut_margin;
    double balance_margin;
  };
  const std::vector<Setting> settings = {
      {0.05, 0.15}, {0.12, 0.40}, {0.25, 0.80}, {0.50, 2.00},
  };

  std::printf("%-20s %10s %10s %10s %9s\n", "margins(cut,bal)",
              "medDynCut", "medDynBal", "moves", "reparts");

  for (const Setting& s : settings) {
    core::ThresholdMlkpStrategy::Thresholds thresholds;
    thresholds.cut_margin = s.cut_margin;
    thresholds.balance_margin = s.balance_margin;
    core::ThresholdMlkpStrategy strategy(thresholds);
    core::SimulatorConfig sim_cfg;
    sim_cfg.k = 4;
    core::ShardingSimulator sim(history, strategy, sim_cfg);
    const core::SimulationResult r = sim.run();

    std::vector<double> cuts;
    std::vector<double> bals;
    for (const core::WindowSample& w : r.windows) {
      cuts.push_back(w.dynamic_edge_cut);
      bals.push_back(w.dynamic_balance);
    }
    std::printf("(%4.2f, %4.2f)         %10.4f %10.4f %10llu %9zu\n",
                s.cut_margin, s.balance_margin,
                metrics::summarize(cuts).median,
                metrics::summarize(bals).median,
                static_cast<unsigned long long>(r.total_moves),
                r.repartitions.size());
  }

  std::printf("\nLooser thresholds => fewer repartitions and moves, "
              "gradually worse cut/balance.\n");
  return 0;
}
