// Demonstrates the paper-compatible trace format: writes the synthetic
// history to CSV (the same flat schema as the authors' published data
// set), reads it back, verifies the chain revalidates, and runs a
// simulation from the reloaded trace. Swap the file for the real trace to
// reproduce on real data.
//
//   $ ./trace_roundtrip /tmp/ethereum_trace.csv
#include <cstdio>

#include "core/simulator.hpp"
#include "core/strategies.hpp"
#include "workload/generator.hpp"
#include "workload/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace ethshard;

  const std::string path =
      argc > 1 ? argv[1] : "/tmp/ethshard_trace.csv";

  workload::GeneratorConfig cfg;
  cfg.scale = 0.0005;
  cfg.seed = 5150;
  const workload::History original =
      workload::EthereumHistoryGenerator(cfg).generate();

  workload::write_trace_file(path, original);
  std::printf("wrote %s (%llu blocks, %llu transactions)\n", path.c_str(),
              static_cast<unsigned long long>(original.chain.size()),
              static_cast<unsigned long long>(
                  original.chain.transaction_count()));

  const workload::History restored = workload::read_trace_file(path);
  std::printf("reloaded: chain validates: %s, accounts: %llu "
              "(%llu contracts)\n",
              restored.chain.validate() ? "yes" : "NO",
              static_cast<unsigned long long>(restored.accounts.size()),
              static_cast<unsigned long long>(
                  restored.accounts.contract_count()));

  const auto strategy = core::make_strategy(core::Method::kRMetis);
  core::SimulatorConfig sim_cfg;
  sim_cfg.k = 2;
  core::ShardingSimulator sim(restored, *strategy, sim_cfg);
  const core::SimulationResult r = sim.run();
  std::printf("simulated %s on reloaded trace: execCut=%.4f moves=%llu\n",
              r.strategy_name.c_str(), r.executed_cross_shard_fraction,
              static_cast<unsigned long long>(r.total_moves));
  return 0;
}
