// Snapshot workflow: build the cumulative graph once, persist it as a
// binary snapshot, and run repeated analyses from the snapshot without
// regenerating or re-replaying the trace — the iteration loop for
// interactive partitioning studies on paper-scale graphs.
//
//   $ ./snapshot_workflow [snapshot-path]
#include <cstdio>

#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "graph/serialize.hpp"
#include "metrics/metrics.hpp"
#include "partition/mlkp.hpp"
#include "partition/quality.hpp"
#include "workload/generator.hpp"

int main(int argc, char** argv) {
  using namespace ethshard;
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/ethshard_snapshot.bin";

  // Phase 1 (expensive, once): trace → cumulative graph → snapshot.
  {
    workload::GeneratorConfig cfg;
    cfg.scale = 0.001;
    cfg.seed = 64;
    const workload::History history =
        workload::EthereumHistoryGenerator(cfg).generate();

    graph::GraphBuilder builder;
    for (const eth::Block& b : history.chain.blocks())
      for (const eth::Transaction& tx : b.transactions)
        for (const eth::Call& c : tx.calls) {
          builder.ensure_vertices(std::max(c.from, c.to) + 1, 1);
          builder.add_edge(c.from, c.to, 1);
        }
    const graph::Graph g = builder.build_undirected();
    graph::save_graph_file(path, g);
    std::printf("snapshot: %llu vertices, %llu edges -> %s\n",
                static_cast<unsigned long long>(g.num_vertices()),
                static_cast<unsigned long long>(g.num_edges()),
                path.c_str());
  }

  // Phase 2 (cheap, repeatable): load snapshot, analyze, partition.
  const graph::Graph g = graph::load_graph_file(path);
  const graph::Components comps = graph::connected_components(g);
  const graph::CoreDecomposition cores = graph::kcore_decomposition(g);
  std::printf("loaded: %llu components (largest %llu), max core %llu "
              "(nucleus %llu vertices)\n",
              static_cast<unsigned long long>(comps.count()),
              static_cast<unsigned long long>(comps.largest()),
              static_cast<unsigned long long>(cores.max_core),
              static_cast<unsigned long long>(cores.nucleus_size));

  for (std::uint32_t k : {2u, 4u, 8u}) {
    partition::MlkpPartitioner mlkp;
    const partition::Partition p = mlkp.partition(g, k);
    const partition::QualityReport q = partition::evaluate_partition(g, p);
    std::printf("k=%u: edge-cut %.4f, balance %.4f, comm volume %llu\n",
                k, q.edge_cut_fraction, q.balance,
                static_cast<unsigned long long>(q.communication_volume));
  }
  return 0;
}
