// Extracts a neighbourhood of the early blockchain graph and prints it as
// Graphviz DOT, in the style of the paper's Fig. 2 (solid accounts,
// dashed contracts, weighted edges). Pipe into `dot -Tpng` to render.
//
//   $ ./subgraph_dot > fig2.dot
#include <cstdio>
#include <iostream>

#include "graph/builder.hpp"
#include "graph/dot.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace ethshard;

  workload::GeneratorConfig cfg;
  cfg.scale = 0.001;
  cfg.seed = 77;
  // Only generate the first few months — enough for a Fig. 2-sized graph.
  cfg.model.end = util::make_timestamp(2015, 10, 1);
  const workload::History history =
      workload::EthereumHistoryGenerator(cfg).generate();

  graph::GraphBuilder builder;
  for (const eth::Block& b : history.chain.blocks())
    for (const eth::Transaction& tx : b.transactions)
      for (const eth::Call& c : tx.calls) {
        builder.ensure_vertices(std::max(c.from, c.to) + 1, 1);
        builder.add_edge(c.from, c.to, 1);
      }
  const graph::Graph g = builder.build_directed();

  // Select the busiest contract and its 2-hop neighbourhood (≤ 20 nodes).
  graph::Vertex hub = 0;
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v)
    if (g.degree(v) > g.degree(hub) &&
        history.accounts.info(v).kind == eth::AccountKind::kContract)
      hub = v;

  std::vector<graph::Vertex> selection = {hub};
  std::vector<bool> chosen(g.num_vertices(), false);
  chosen[hub] = true;
  for (std::size_t i = 0; i < selection.size() && selection.size() < 20; ++i)
    for (const graph::Arc& a : g.neighbors(selection[i]))
      if (selection.size() < 20 && !chosen[a.to]) {
        chosen[a.to] = true;
        selection.push_back(a.to);
      }

  const graph::Graph sub = g.induced_subgraph(selection);
  graph::DotOptions opts;
  opts.name = "early_ethereum";
  opts.is_contract = [&](graph::Vertex local) {
    return history.accounts.info(selection[local]).kind ==
           eth::AccountKind::kContract;
  };
  opts.label = [&](graph::Vertex local) {
    return std::to_string(selection[local]);
  };
  graph::write_dot(std::cout, sub, opts);
  return 0;
}
