// Demonstrates the miner-side substrate (§II-A): users submit
// transactions with different gas prices, the mempool keeps per-sender
// nonce order, and a miner packs blocks greedily by fee under a block gas
// limit. The packed blocks are then executed against the StateDb, showing
// fees flowing from senders into the fee pot with value conserved.
//
//   $ ./mempool_packing
#include <cstdio>

#include "eth/chain.hpp"
#include "eth/mempool.hpp"
#include "eth/state.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ethshard;
  using eth::AccountId;

  util::Rng rng(7);
  eth::Mempool pool;
  eth::StateDb state;

  // Ten users with funds; each queues a small burst of transfers at a
  // random fee level.
  constexpr AccountId kUsers = 10;
  for (AccountId u = 0; u < kUsers; ++u) state.credit(u, 50'000'000);

  std::uint64_t submitted = 0;
  for (AccountId u = 0; u < kUsers; ++u) {
    const std::uint64_t burst = 1 + rng.uniform(4);
    for (std::uint64_t n = 0; n < burst; ++n) {
      eth::Transaction tx;
      tx.sender = u;
      tx.nonce = n;
      tx.gas_price = 1 + rng.uniform(60);
      tx.calls.push_back(eth::Call{u, (u + 1 + rng.uniform(kUsers - 1)) % kUsers,
                                   eth::CallKind::kTransfer,
                                   100 + rng.uniform(900)});
      if (pool.submit(std::move(tx), 0)) ++submitted;
    }
  }
  std::printf("mempool: %zu pending transactions (%llu submitted)\n\n",
              pool.size(), static_cast<unsigned long long>(submitted));

  // Mine blocks with a deliberately small gas limit so packing is visible.
  const std::uint64_t gas_limit = 140'000;  // ~4 plain transfers
  eth::Chain chain;
  util::Timestamp now = util::genesis_time();
  std::uint64_t block_number = 0;

  while (!pool.empty()) {
    eth::Block block;
    block.number = block_number;
    block.timestamp = now;
    if (!chain.empty())
      block.parent_hash = chain.block_hash(block_number - 1);
    block.transactions = pool.pack_block(gas_limit);
    if (block.transactions.empty()) break;  // nothing fits

    double mean_price = 0;
    for (const eth::Transaction& tx : block.transactions)
      mean_price += static_cast<double>(tx.gas_price);
    mean_price /= static_cast<double>(block.transactions.size());

    const eth::BlockApplyResult r = state.apply(block);
    std::printf("block %2llu: %zu txs, gas %7llu/%llu, mean gas price "
                "%5.1f, fees %llu wei\n",
                static_cast<unsigned long long>(block.number),
                block.transactions.size(),
                static_cast<unsigned long long>(r.gas_used),
                static_cast<unsigned long long>(gas_limit), mean_price,
                static_cast<unsigned long long>(r.fees_wei));

    chain.append(std::move(block));
    ++block_number;
    now += 15;  // one slot
  }

  std::printf("\nchain: %zu blocks, validates: %s\n", chain.size(),
              chain.validate() ? "yes" : "NO");
  std::printf("fee pot: %llu wei; value conserved: %s\n",
              static_cast<unsigned long long>(state.total_fees()),
              state.check_conservation() ? "yes" : "NO");
  std::printf("\nNote how early blocks carry the highest mean gas price —\n"
              "the miner policy the paper describes in §II-A.\n");
  return 0;
}
