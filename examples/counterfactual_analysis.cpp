// Uses the workload presets to ask "what if the chain had been
// different?" — the counterfactual companion to the paper's real-trace
// analysis. Compares METIS on the calibrated history vs a no-attack
// history, showing how the Sep/Oct-2016 dummy accounts drive the
// dynamic-balance anomaly of §III.
//
//   $ ./counterfactual_analysis
#include <cstdio>

#include "core/simulator.hpp"
#include "core/strategies.hpp"
#include "workload/presets.hpp"

int main() {
  using namespace ethshard;

  std::printf("%-12s %14s %14s %10s\n", "history", "postAttackBal",
              "meanDynCut", "moves");

  for (const workload::Preset preset :
       {workload::Preset::kPaper, workload::Preset::kNoAttack}) {
    const workload::History history =
        workload::EthereumHistoryGenerator(
            workload::preset_config(preset, {.scale = 0.001, .seed = 21}))
            .generate();

    const auto strategy = core::make_strategy(core::Method::kMetis);
    core::SimulatorConfig cfg;
    cfg.k = 2;
    core::ShardingSimulator sim(history, *strategy, cfg);
    const core::SimulationResult r = sim.run();

    double cut = 0;
    double post_balance = 0;
    std::size_t post_windows = 0;
    for (const core::WindowSample& w : r.windows) {
      cut += w.dynamic_edge_cut;
      if (w.window_start >= util::attack_end_time()) {
        post_balance += w.dynamic_balance;
        ++post_windows;
      }
    }
    std::printf("%-12s %14.4f %14.4f %10llu\n",
                workload::preset_name(preset).c_str(),
                post_windows ? post_balance /
                                   static_cast<double>(post_windows)
                             : 1.0,
                cut / static_cast<double>(r.windows.size()),
                static_cast<unsigned long long>(r.total_moves));
  }

  std::printf("\nWith the attack, METIS 'balances' dummies against real\n"
              "accounts and its dynamic balance pins near 2 (all activity\n"
              "on one shard). Remove the attack and the anomaly shrinks —\n"
              "the §III causal story, reproduced counterfactually.\n");
  return 0;
}
