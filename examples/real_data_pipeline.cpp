// The full real-data adoption path in one file: a (tiny, embedded)
// BigQuery-style traces export is imported, converted to the native trace
// format, reloaded and simulated — exactly the steps a user with a real
// `crypto_ethereum.traces` export would follow via the CLI:
//
//   ethshard import   --traces bq.csv --out trace.csv
//   ethshard simulate --trace trace.csv --method R-METIS --shards 2
//
//   $ ./real_data_pipeline
#include <cstdio>
#include <sstream>

#include "core/simulator.hpp"
#include "core/strategies.hpp"
#include "workload/import.hpp"
#include "workload/trace_io.hpp"

namespace {

// A miniature export: three blocks of activity among six addresses, with
// a contract call cascade, a plain transfer and a contract creation.
constexpr const char* kBigQueryCsv = R"(block_number,block_timestamp,transaction_hash,from_address,to_address,value,trace_type,input
4370000,2017-10-16 05:22:11 UTC,0xt1,0x00000000000000000000000000000000000000a1,0x00000000000000000000000000000000000000c1,0,call,0xa9059cbb
4370000,2017-10-16 05:22:11 UTC,0xt1,0x00000000000000000000000000000000000000c1,0x00000000000000000000000000000000000000a2,7,call,0x
4370000,2017-10-16 05:22:11 UTC,0xt2,0x00000000000000000000000000000000000000a3,0x00000000000000000000000000000000000000a2,100,call,0x
4370001,2017-10-16 05:22:26 UTC,0xt3,0x00000000000000000000000000000000000000a1,0x00000000000000000000000000000000000000c2,0,create,0x6080
4370002,2017-10-16 05:22:41 UTC,0xt4,0x00000000000000000000000000000000000000a2,0x00000000000000000000000000000000000000c1,0,call,0x23b872dd
)";

}  // namespace

int main() {
  using namespace ethshard;

  // 1. Import the export.
  std::istringstream bq(kBigQueryCsv);
  const workload::ImportResult imported =
      workload::import_bigquery_traces(bq);
  std::printf("imported: %llu calls, %llu txs, %llu blocks, %llu accounts "
              "(%llu skipped rows)\n",
              static_cast<unsigned long long>(imported.stats.imported_calls),
              static_cast<unsigned long long>(imported.stats.transactions),
              static_cast<unsigned long long>(imported.stats.blocks),
              static_cast<unsigned long long>(imported.stats.accounts),
              static_cast<unsigned long long>(imported.stats.skipped_rows));

  // 2. Round-trip through the native trace format (what the CLI writes).
  std::stringstream native;
  workload::write_trace(native, imported.history);
  const workload::History reloaded = workload::read_trace(native);
  std::printf("native trace round-trip: chain validates: %s\n",
              reloaded.chain.validate() ? "yes" : "NO");

  // 3. Simulate sharding on it.
  const auto strategy = core::make_strategy(core::Method::kHashing);
  core::SimulatorConfig cfg;
  cfg.k = 2;
  core::ShardingSimulator sim(reloaded, *strategy, cfg);
  const core::SimulationResult r = sim.run();
  std::printf("simulated %s k=2: %llu interactions, executed cross-shard "
              "fraction %.3f\n",
              r.strategy_name.c_str(),
              static_cast<unsigned long long>(r.interactions),
              r.executed_cross_shard_fraction);

  std::printf("\nSwap the embedded CSV for a real BigQuery export and this\n"
              "pipeline reproduces the paper's analysis on the real chain.\n");
  return 0;
}
