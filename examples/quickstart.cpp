// Quickstart: generate a scaled-down Ethereum history, replay it against
// two sharding strategies, and compare the paper's three metric families.
//
//   $ ./quickstart
//
// This walks the whole public API surface end to end:
//   workload::EthereumHistoryGenerator  → synthetic chain
//   core::make_strategy                 → one of the paper's five methods
//   core::ShardingSimulator             → replay + metrics
#include <cstdio>

#include "core/simulator.hpp"
#include "core/strategies.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace ethshard;

  // 1. Synthesize a small Ethereum-like history (0.1% of the real chain's
  //    volume; crank `scale` up for paper-sized runs).
  workload::GeneratorConfig gen_cfg;
  gen_cfg.scale = 0.001;
  gen_cfg.seed = 2024;
  const workload::History history =
      workload::EthereumHistoryGenerator(gen_cfg).generate();

  const workload::HistoryStats stats = workload::stats_of(history);
  std::printf("History: %llu blocks, %llu transactions, %llu calls, "
              "%llu accounts, %llu contracts\n\n",
              static_cast<unsigned long long>(stats.blocks),
              static_cast<unsigned long long>(stats.transactions),
              static_cast<unsigned long long>(stats.calls),
              static_cast<unsigned long long>(stats.accounts),
              static_cast<unsigned long long>(stats.contracts));

  // 2. Replay against hashing and R-METIS with 4 shards.
  std::printf("%-9s %10s %10s %10s %10s %9s\n", "method", "statCut",
              "statBal", "execCut", "moves", "reparts");
  for (core::Method m : {core::Method::kHashing, core::Method::kRMetis}) {
    const auto strategy = core::make_strategy(m);
    core::SimulatorConfig sim_cfg;
    sim_cfg.k = 4;
    core::ShardingSimulator sim(history, *strategy, sim_cfg);
    const core::SimulationResult r = sim.run();

    std::printf("%-9s %10.4f %10.4f %10.4f %10llu %9zu\n",
                r.strategy_name.c_str(), r.final_static_edge_cut,
                r.final_static_balance, r.executed_cross_shard_fraction,
                static_cast<unsigned long long>(r.total_moves),
                r.repartitions.size());
  }

  std::printf("\nexecCut = fraction of all executed interactions that "
              "crossed shards.\nExpect R-METIS to cut far fewer "
              "interactions than hashing, at the cost of vertex moves.\n");
  return 0;
}
