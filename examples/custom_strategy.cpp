// Shows how to plug a user-defined sharding strategy into the simulator —
// the extension point a downstream researcher would use to test a new
// method against the paper's five.
//
// The example strategy ("Sticky") places new vertices with the paper's
// min-cut rule but never repartitions: an upper bound on placement-only
// quality (zero moves, like hashing, but topology-aware).
//
//   $ ./custom_strategy
#include <cstdio>

#include "core/placement.hpp"
#include "core/simulator.hpp"
#include "core/strategies.hpp"
#include "workload/generator.hpp"

namespace {

using namespace ethshard;

class StickyMinCutStrategy final : public core::ShardingStrategy {
 public:
  std::string name() const override { return "Sticky"; }

  partition::ShardId place(graph::Vertex,
                           std::span<const partition::ShardId> peers,
                           const core::SimulatorEnv& env) override {
    return core::place_min_cut(peers, env.shard_vertex_counts(), env.k());
  }

  bool should_repartition(const core::WindowSnapshot&,
                          const core::SimulatorEnv&) override {
    return false;  // placement-only: vertices never move
  }

  partition::Partition compute_partition(
      const core::SimulatorEnv& env) override {
    return env.current_partition();  // unreachable, but well-defined
  }
};

}  // namespace

int main() {
  workload::GeneratorConfig cfg;
  cfg.scale = 0.001;
  cfg.seed = 404;
  const workload::History history =
      workload::EthereumHistoryGenerator(cfg).generate();

  std::printf("%-9s %10s %10s %10s %10s\n", "method", "execCut", "statBal",
              "moves", "reparts");

  // Compare the custom strategy against hashing and R-METIS.
  StickyMinCutStrategy sticky;
  core::SimulatorConfig sim_cfg;
  sim_cfg.k = 4;
  {
    core::ShardingSimulator sim(history, sticky, sim_cfg);
    const core::SimulationResult r = sim.run();
    std::printf("%-9s %10.4f %10.4f %10llu %10zu\n",
                r.strategy_name.c_str(), r.executed_cross_shard_fraction,
                r.final_static_balance,
                static_cast<unsigned long long>(r.total_moves),
                r.repartitions.size());
  }
  for (core::Method m : {core::Method::kHashing, core::Method::kRMetis}) {
    const auto strategy = core::make_strategy(m);
    core::ShardingSimulator sim(history, *strategy, sim_cfg);
    const core::SimulationResult r = sim.run();
    std::printf("%-9s %10.4f %10.4f %10llu %10zu\n",
                r.strategy_name.c_str(), r.executed_cross_shard_fraction,
                r.final_static_balance,
                static_cast<unsigned long long>(r.total_moves),
                r.repartitions.size());
  }

  std::printf("\nSticky placement beats hashing on cut with zero moves; "
              "repartitioning methods cut further still.\n");
  return 0;
}
