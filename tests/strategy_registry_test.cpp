#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>

#include "core/strategies.hpp"
#include "core/strategy_registry.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace ethshard;
using core::StrategyRegistry;

/// Runs `fn`, expecting a CheckFailure whose message mentions `needle`.
template <typename Fn>
void expect_failure_mentioning(Fn fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected CheckFailure mentioning '" << needle << "'";
  } catch (const util::CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

// ------------------------------------------------------------- parsing

TEST(StrategySpec, BareNameLowercasesAndTrims) {
  const core::StrategySpec s = core::parse_strategy_spec("  R-METIS ");
  EXPECT_EQ(s.name, "r-metis");
  EXPECT_TRUE(s.params.empty());
}

TEST(StrategySpec, ParamsSplitOnCommas) {
  const core::StrategySpec s =
      core::parse_strategy_spec("tr-metis:cut_floor=0.25, min_gap_days=2");
  EXPECT_EQ(s.name, "tr-metis");
  ASSERT_EQ(s.params.size(), 2u);
  EXPECT_EQ(s.params[0].first, "cut_floor");
  EXPECT_EQ(s.params[0].second, "0.25");
  EXPECT_EQ(s.params[1].first, "min_gap_days");
  EXPECT_EQ(s.params[1].second, "2");
}

TEST(StrategySpec, RejectsMalformedTokens) {
  expect_failure_mentioning([] { core::parse_strategy_spec(""); },
                            "empty name");
  expect_failure_mentioning([] { core::parse_strategy_spec("kl:rounds"); },
                            "key=value");
  expect_failure_mentioning(
      [] { core::parse_strategy_spec("kl:=3"); }, "empty key");
  expect_failure_mentioning(
      [] { core::parse_strategy_spec("kl:rounds=1,rounds=2"); },
      "repeats key 'rounds'");
}

// ------------------------------------------------------------ resolving

TEST(StrategyRegistryTest, ResolvesEveryPaperLabel) {
  for (const char* label :
       {"Hashing", "KL", "METIS", "R-METIS", "TR-METIS", "P-METIS", "DSM"}) {
    const auto s = StrategyRegistry::global().make(label, 7);
    ASSERT_NE(s, nullptr) << label;
  }
}

TEST(StrategyRegistryTest, PMetisIsRMetis) {
  // The paper's figures call the reduced variant P-METIS; both labels
  // must build the same strategy.
  const auto p = StrategyRegistry::global().make("p-metis", 7);
  const auto r = StrategyRegistry::global().make("r-metis", 7);
  EXPECT_EQ(p->name(), "R-METIS");
  EXPECT_EQ(r->name(), "R-METIS");
}

TEST(StrategyRegistryTest, UnknownNameListsKnownOnes) {
  expect_failure_mentioning(
      [] { StrategyRegistry::global().make("metiss", 7); },
      "unknown strategy 'metiss'");
  expect_failure_mentioning(
      [] { StrategyRegistry::global().make("metiss", 7); }, "tr-metis");
}

TEST(StrategyRegistryTest, UnknownKeyIsNamed) {
  expect_failure_mentioning(
      [] { StrategyRegistry::global().make("tr-metis:cut_flor=0.2", 7); },
      "unknown key 'cut_flor' for strategy 'tr-metis'");
  expect_failure_mentioning(
      [] { StrategyRegistry::global().make("hashing:rounds=3", 7); },
      "unknown key 'rounds'");
}

TEST(StrategyRegistryTest, BadValuesAreNamed) {
  expect_failure_mentioning(
      [] { StrategyRegistry::global().make("tr-metis:cut_floor=abc", 7); },
      "key 'cut_floor'");
  expect_failure_mentioning(
      [] { StrategyRegistry::global().make("kl:probabilistic=maybe", 7); },
      "key 'probabilistic'");
  expect_failure_mentioning(
      [] { StrategyRegistry::global().make("kl:rounds=x", 7); },
      "key 'rounds'");
  expect_failure_mentioning(
      [] { StrategyRegistry::global().make("metis:matching=fancy", 7); },
      "matching");
}

TEST(StrategyRegistryTest, TrMetisParamsReachThresholds) {
  const auto s = StrategyRegistry::global().make(
      "tr-metis:cut_floor=0.25,min_gap_days=3,violations_required=2", 7);
  const auto* tr = dynamic_cast<core::ThresholdMlkpStrategy*>(s.get());
  ASSERT_NE(tr, nullptr);
  EXPECT_DOUBLE_EQ(tr->thresholds().cut_floor, 0.25);
  EXPECT_EQ(tr->thresholds().min_gap, 3 * util::kDay);
  EXPECT_EQ(tr->thresholds().violations_required, 2);
}

TEST(StrategyRegistryTest, DefaultsMatchTheBareSpec) {
  const auto s = StrategyRegistry::global().make("tr-metis", 7);
  const auto* tr = dynamic_cast<core::ThresholdMlkpStrategy*>(s.get());
  ASSERT_NE(tr, nullptr);
  const core::TrMetisThresholds defaults;
  EXPECT_DOUBLE_EQ(tr->thresholds().cut_floor, defaults.cut_floor);
  EXPECT_EQ(tr->thresholds().min_gap, defaults.min_gap);
}

TEST(StrategyRegistryTest, SpecSeedOverridesDefaultSeed) {
  // "seed" is a spec key on every strategy; it wins over the default
  // passed to make().
  const auto a = StrategyRegistry::global().make("hashing:seed=1", 7);
  const auto b = StrategyRegistry::global().make("hashing", 1);
  // Same salt → same placement behaviour; cheapest observable check is
  // that both built fine and report the same name.
  EXPECT_EQ(a->name(), b->name());
}

TEST(StrategyRegistryTest, ContainsAndNames) {
  EXPECT_TRUE(StrategyRegistry::global().contains("r-metis"));
  EXPECT_TRUE(StrategyRegistry::global().contains("P-METIS"));
  EXPECT_FALSE(StrategyRegistry::global().contains("nope"));
  const std::vector<std::string> names = StrategyRegistry::global().names();
  // Canonical names only — the alias is reachable but not listed.
  EXPECT_EQ(std::count(names.begin(), names.end(), "p-metis"), 0);
  EXPECT_EQ(std::count(names.begin(), names.end(), "r-metis"), 1);
}

TEST(StrategyRegistryTest, EnumFactoryStillWorks) {
  for (core::Method m : core::kAllMethods) {
    const auto s = core::make_strategy(m, 7);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), core::method_name(m));
  }
}

TEST(StrategyRegistryTest, RejectsDuplicateRegistration) {
  StrategyRegistry reg;
  reg.add("mine", {"alias"}, [](core::SpecReader& r) {
    return std::make_unique<core::HashStrategy>(r.seed());
  });
  expect_failure_mentioning(
      [&] {
        reg.add("alias", {}, [](core::SpecReader& r) {
          return std::make_unique<core::HashStrategy>(r.seed());
        });
      },
      "already registered");
}

// ------------------------------------------------- randomized round-trips

/// Pulls the MlkpConfig out of whichever MLKP-backed strategy `s` is.
const partition::MlkpConfig& mlkp_config_of(core::ShardingStrategy& s) {
  if (auto* w = dynamic_cast<core::WindowMlkpStrategy*>(&s))
    return w->mlkp_config();
  if (auto* f = dynamic_cast<core::FullGraphMlkpStrategy*>(&s))
    return f->mlkp_config();
  auto* t = dynamic_cast<core::ThresholdMlkpStrategy*>(&s);
  EXPECT_NE(t, nullptr) << "not an MLKP-backed strategy: " << s.name();
  return t->mlkp_config();
}

TEST(StrategyRegistryTest, RandomizedMlkpSpecsRoundTrip) {
  // Every value written into a random spec must come back out of the
  // built strategy's config — the spec grammar round-trips.
  const char* kNames[] = {"metis", "r-metis", "p-metis", "tr-metis"};
  const char* kImbalances[] = {"0.01", "0.03", "0.05", "0.1", "0.25"};
  util::Rng rng(2026);
  for (int i = 0; i < 48; ++i) {
    const std::string name = kNames[rng.uniform(4)];
    const std::string imbalance = kImbalances[rng.uniform(5)];
    const std::uint64_t coarsen_to = 100 + rng.uniform(400);
    const int init_tries = static_cast<int>(1 + rng.uniform(6));
    const int refine_passes = static_cast<int>(1 + rng.uniform(8));
    const bool refine = rng.uniform(2) == 0;
    const std::uint64_t threads = rng.uniform(9);  // 0 = hardware, 1..8
    const bool heavy = rng.uniform(2) == 0;

    std::ostringstream spec;
    spec << name << ":imbalance=" << imbalance
         << ",coarsen_to=" << coarsen_to << ",init_tries=" << init_tries
         << ",refine_passes=" << refine_passes
         << ",refine=" << (refine ? "true" : "false")
         << ",threads=" << threads
         << ",matching=" << (heavy ? "heavy-edge" : "random");
    const auto s = StrategyRegistry::global().make(spec.str(), 7);
    ASSERT_NE(s, nullptr) << spec.str();

    const partition::MlkpConfig& cfg = mlkp_config_of(*s);
    EXPECT_DOUBLE_EQ(cfg.imbalance, std::strtod(imbalance.c_str(), nullptr))
        << spec.str();
    EXPECT_EQ(cfg.coarsen_to, coarsen_to) << spec.str();
    EXPECT_EQ(cfg.init_tries, init_tries) << spec.str();
    EXPECT_EQ(cfg.refine_passes, refine_passes) << spec.str();
    EXPECT_EQ(cfg.refine, refine) << spec.str();
    EXPECT_EQ(cfg.threads, threads) << spec.str();
    EXPECT_EQ(cfg.matching, heavy ? partition::MatchingScheme::kHeavyEdge
                                  : partition::MatchingScheme::kRandom)
        << spec.str();
    EXPECT_EQ(cfg.seed, 7u) << spec.str();
  }
}

TEST(StrategyRegistryTest, RandomizedTrMetisThresholdsRoundTrip) {
  util::Rng rng(4242);
  for (int i = 0; i < 24; ++i) {
    const std::uint64_t min_interactions = rng.uniform(50);
    const int violations = static_cast<int>(1 + rng.uniform(10));
    const std::uint64_t gap_days = 1 + rng.uniform(13);
    std::ostringstream spec;
    spec << "tr-metis:min_interactions=" << min_interactions
         << ",violations_required=" << violations
         << ",min_gap_days=" << gap_days;
    const auto s = StrategyRegistry::global().make(spec.str(), 7);
    const auto* tr = dynamic_cast<core::ThresholdMlkpStrategy*>(s.get());
    ASSERT_NE(tr, nullptr) << spec.str();
    EXPECT_EQ(tr->thresholds().min_interactions, min_interactions);
    EXPECT_EQ(tr->thresholds().violations_required, violations);
    EXPECT_EQ(tr->thresholds().min_gap, gap_days * util::kDay);
  }
}

// --------------------------------------------------------- threads param

TEST(StrategyRegistryTest, DefaultThreadsReachesMlkpConfig) {
  // The make() default applies when the spec stays silent...
  const auto a = StrategyRegistry::global().make("r-metis", 7, 4);
  EXPECT_EQ(mlkp_config_of(*a).threads, 4u);
  // ...an explicit spec key wins over the default...
  const auto b = StrategyRegistry::global().make("r-metis:threads=2", 7, 8);
  EXPECT_EQ(mlkp_config_of(*b).threads, 2u);
  // ...and with neither, MLKP stays serial.
  const auto c = StrategyRegistry::global().make("metis", 7);
  EXPECT_EQ(mlkp_config_of(*c).threads, 1u);
  // The P-METIS alias takes the same keys as its canonical name.
  const auto d = StrategyRegistry::global().make("p-metis:threads=3", 7);
  EXPECT_EQ(d->name(), "R-METIS");
  EXPECT_EQ(mlkp_config_of(*d).threads, 3u);
}

TEST(StrategyRegistryTest, BadThreadsValuesAreNamed) {
  expect_failure_mentioning(
      [] { StrategyRegistry::global().make("r-metis:threads=abc", 7); },
      "key 'threads'");
  expect_failure_mentioning(
      [] { StrategyRegistry::global().make("metis:threads=4096", 7); },
      "not plausible");
  // Strategies without a partitioner reject the key outright.
  expect_failure_mentioning(
      [] { StrategyRegistry::global().make("hashing:threads=4", 7); },
      "unknown key 'threads'");
  expect_failure_mentioning(
      [] { StrategyRegistry::global().make("kl:threads=4", 7); },
      "unknown key 'threads'");
}

// ---------------------------------------------------- replay_threads key

TEST(StrategyRegistryTest, ReplayThreadsIsConsumedForEveryStrategy) {
  // replay_threads= is a simulator-level key handled by make_build before
  // the factory runs, so every registered strategy accepts it — even
  // hashing, which rejects the partitioner-level threads= key.
  for (const char* spec :
       {"hashing:replay_threads=2", "kl:replay_threads=4",
        "metis:replay_threads=1", "r-metis:replay_threads=8",
        "tr-metis:replay_threads=0", "dsm:replay_threads=3"}) {
    const core::StrategyBuild build =
        StrategyRegistry::global().make_build(spec, 7);
    ASSERT_NE(build.strategy, nullptr) << spec;
  }
  EXPECT_EQ(
      StrategyRegistry::global().make_build("hashing:replay_threads=2", 7)
          .replay_threads,
      2u);
  EXPECT_EQ(StrategyRegistry::global().make_build("hashing", 7).replay_threads,
            0u);  // absent -> 0 = auto
  // make() delegates to make_build and simply discards the knob.
  EXPECT_NE(StrategyRegistry::global().make("metis:replay_threads=2", 7),
            nullptr);
}

TEST(StrategyRegistryTest, ReplayPipelineKeysAreConsumed) {
  // "auto" spells the measured auto mode (same as 0 / the absent default).
  EXPECT_EQ(StrategyRegistry::global()
                .make_build("hashing:replay_threads=auto", 7)
                .replay_threads,
            0u);
  const core::StrategyBuild tuned = StrategyRegistry::global().make_build(
      "kl:replay_threads=2,queue_capacity=16,agg_shards=4", 7);
  ASSERT_NE(tuned.strategy, nullptr);
  EXPECT_EQ(tuned.replay_threads, 2u);
  EXPECT_EQ(tuned.queue_capacity, 16u);
  EXPECT_EQ(tuned.aggregation_shards, 4u);
  // Defaults when absent: 0 = derived/auto for all three knobs.
  const core::StrategyBuild plain =
      StrategyRegistry::global().make_build("hashing", 7);
  EXPECT_EQ(plain.queue_capacity, 0u);
  EXPECT_EQ(plain.aggregation_shards, 0u);
  // "agg_shards=auto" is accepted like replay_threads=auto.
  EXPECT_EQ(StrategyRegistry::global()
                .make_build("hashing:agg_shards=auto", 7)
                .aggregation_shards,
            0u);
}

TEST(StrategyRegistryTest, BadReplayPipelineValuesAreNamed) {
  expect_failure_mentioning(
      [] {
        StrategyRegistry::global().make_build("hashing:queue_capacity=abc", 7);
      },
      "key 'queue_capacity'");
  expect_failure_mentioning(
      [] {
        StrategyRegistry::global().make_build("hashing:queue_capacity=100000",
                                              7);
      },
      "queue_capacity");
  expect_failure_mentioning(
      [] {
        StrategyRegistry::global().make_build("hashing:agg_shards=128", 7);
      },
      "agg_shards");
}

TEST(StrategyRegistryTest, BadReplayThreadsValuesAreNamed) {
  expect_failure_mentioning(
      [] {
        StrategyRegistry::global().make_build("hashing:replay_threads=abc", 7);
      },
      "key 'replay_threads'");
  expect_failure_mentioning(
      [] {
        StrategyRegistry::global().make_build("hashing:replay_threads=4096",
                                              7);
      },
      "not plausible");
  expect_failure_mentioning(
      [] {
        StrategyRegistry::global().make_build(
            "hashing:replay_threads=1,replay_threads=2", 7);
      },
      "repeats key 'replay_threads'");
}

TEST(StrategyRegistryTest, MalformedSpecsNameTheOffendingToken) {
  expect_failure_mentioning(
      [] { StrategyRegistry::global().make("r-metis:threads", 7); },
      "'threads' is not of the form key=value");
  expect_failure_mentioning(
      [] {
        StrategyRegistry::global().make("r-metis:threads=1,threads=2", 7);
      },
      "repeats key 'threads'");
  expect_failure_mentioning(
      [] { StrategyRegistry::global().make("r-metis:threads=-2", 7); },
      "non-negative integer");
}

TEST(StrategyRegistryTest, CustomStrategiesPlugIn) {
  StrategyRegistry reg;
  reg.add("custom-hash", {}, [](core::SpecReader& r) {
    return std::make_unique<core::HashStrategy>(
        r.get_uint("salt", r.seed()));
  });
  const auto s = reg.make("custom-hash:salt=9");
  EXPECT_EQ(s->name(), "Hashing");
  expect_failure_mentioning([&] { reg.make("custom-hash:pepper=1"); },
                            "unknown key 'pepper'");
}

}  // namespace
