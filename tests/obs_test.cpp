#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/histogram.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace {

using namespace ethshard;

// Tests toggle the process-wide flags; restore them no matter how the
// test exits.
class ObsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::set_enabled(false);
    obs::set_trace_enabled(false);
    obs::TraceBuffer::global().clear();
    obs::TraceBuffer::global().set_max_spans(
        obs::TraceBuffer::kDefaultMaxSpans);
  }
};

TEST_F(ObsTest, DisabledByDefault) {
  EXPECT_FALSE(obs::enabled());
  obs::Registry reg;
  const obs::ScopedRegistry scope(reg);
  ETHSHARD_OBS_COUNT("c", 1);
  ETHSHARD_OBS_GAUGE("g", 2.0);
  ETHSHARD_OBS_RECORD_MS("t", 3.0);
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST_F(ObsTest, CountersGaugesTimers) {
  obs::Registry reg;
  reg.add_counter("calls", 2);
  reg.add_counter("calls", 3);
  reg.set_gauge("temp", 1.5);
  reg.set_gauge("temp", 2.5);  // gauges keep the last value
  reg.record_ms("step", 4.0);
  reg.record_ms("step", 2.0);

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("calls"), 5u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("temp"), 2.5);
  const obs::TimerStat& t = snap.timers.at("step");
  EXPECT_EQ(t.count, 2u);
  EXPECT_DOUBLE_EQ(t.total_ms, 6.0);
  EXPECT_DOUBLE_EQ(t.mean_ms(), 3.0);
  EXPECT_DOUBLE_EQ(t.min_ms, 2.0);
  EXPECT_DOUBLE_EQ(t.max_ms, 4.0);
}

TEST_F(ObsTest, MergesAcrossThreads) {
  obs::Registry reg;
  std::vector<std::thread> workers;
  for (int i = 0; i < 4; ++i)
    workers.emplace_back([&reg] {
      for (int j = 0; j < 100; ++j) reg.add_counter("n", 1);
      reg.record_ms("work", 1.0);
    });
  for (std::thread& w : workers) w.join();

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("n"), 400u);
  EXPECT_EQ(snap.timers.at("work").count, 4u);
}

TEST_F(ObsTest, RegistryIdsAreNotReused) {
  // A thread's cached sink for a destroyed registry must never serve a
  // later registry that happens to live at the same address.
  obs::MetricsSnapshot first;
  {
    obs::Registry reg;
    reg.add_counter("a", 1);
    first = reg.snapshot();
  }
  obs::Registry reg2;
  reg2.add_counter("b", 7);
  const obs::MetricsSnapshot snap = reg2.snapshot();
  EXPECT_EQ(first.counters.at("a"), 1u);
  EXPECT_EQ(snap.counters.count("a"), 0u);
  EXPECT_EQ(snap.counters.at("b"), 7u);
}

TEST_F(ObsTest, ScopedRegistryRedirectsAndRestores) {
  obs::set_enabled(true);
  obs::Registry outer;
  obs::Registry inner;
  const obs::ScopedRegistry outer_scope(outer);
  {
    const obs::ScopedRegistry inner_scope(inner);
    ETHSHARD_OBS_COUNT("x", 1);
  }
  ETHSHARD_OBS_COUNT("y", 1);
#if ETHSHARD_OBS_ENABLED
  EXPECT_EQ(inner.snapshot().counters.at("x"), 1u);
  EXPECT_EQ(outer.snapshot().counters.count("x"), 0u);
  EXPECT_EQ(outer.snapshot().counters.at("y"), 1u);
#else
  EXPECT_TRUE(inner.snapshot().empty());
  EXPECT_TRUE(outer.snapshot().empty());
#endif
}

TEST_F(ObsTest, AbsorbFoldsChildSnapshots) {
  obs::Registry parent;
  obs::Registry child;
  parent.add_counter("n", 1);
  child.add_counter("n", 2);
  child.record_ms("t", 5.0);
  parent.absorb(child.snapshot());
  const obs::MetricsSnapshot snap = parent.snapshot();
  EXPECT_EQ(snap.counters.at("n"), 3u);
  EXPECT_EQ(snap.timers.at("t").count, 1u);
}

TEST_F(ObsTest, ScopedTimerRecordsWhenEnabled) {
  obs::set_enabled(true);
  obs::Registry reg;
  const obs::ScopedRegistry scope(reg);
  {
    ETHSHARD_OBS_TIMER("timed");
  }
  const obs::MetricsSnapshot snap = reg.snapshot();
#if ETHSHARD_OBS_ENABLED
  ASSERT_EQ(snap.timers.count("timed"), 1u);
  EXPECT_EQ(snap.timers.at("timed").count, 1u);
  EXPECT_GE(snap.timers.at("timed").total_ms, 0.0);
#else
  EXPECT_TRUE(snap.empty());
#endif
}

TEST_F(ObsTest, SpansNestIntoPaths) {
  obs::set_trace_enabled(true);
  {
    obs::ScopedSpan outer("outer");
    { obs::ScopedSpan inner("inner"); }
  }
  const std::vector<obs::SpanRecord> spans =
      obs::TraceBuffer::global().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes first.
  EXPECT_EQ(spans[0].path, "outer/inner");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].path, "outer");
  EXPECT_EQ(spans[1].depth, 0u);
}

TEST_F(ObsTest, SpansOffByDefault) {
  { obs::ScopedSpan s("nope"); }
  EXPECT_EQ(obs::TraceBuffer::global().size(), 0u);
}

TEST_F(ObsTest, MetricsJsonRoundTrips) {
  obs::Registry reg;
  reg.add_counter("a/b", 2);
  reg.set_gauge("g", 0.5);
  reg.record_ms("t", 1.25);
  std::ostringstream os;
  obs::write_metrics_json(os, reg.snapshot());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"a/b\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST_F(ObsTest, MetricsCsvHasOneRowPerEntry) {
  obs::Registry reg;
  reg.add_counter("c", 1);
  reg.set_gauge("g", 2.0);
  reg.record_ms("t", 3.0);
  std::ostringstream os;
  obs::write_metrics_csv(os, reg.snapshot());
  const std::string csv = os.str();
  int lines = 0;
  for (char ch : csv)
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 4);  // header + 3 rows
  EXPECT_NE(csv.find("counter,c,"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g,"), std::string::npos);
  EXPECT_NE(csv.find("timer,t,"), std::string::npos);
}

TEST_F(ObsTest, TraceJsonIsChromeShaped) {
  obs::set_trace_enabled(true);
  { obs::ScopedSpan s("phase"); }
  std::ostringstream os;
  obs::write_trace_json(os, obs::TraceBuffer::global().snapshot());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

// -------------------------------------------------------------- histogram

TEST_F(ObsTest, HistogramEmpty) {
  obs::Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST_F(ObsTest, HistogramSingleValue) {
  obs::Histogram h;
  h.record(5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  // Every quantile of a single sample is that sample (midpoints clamp).
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
}

TEST_F(ObsTest, HistogramQuantilesWithinRelativeError) {
  obs::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);    // exact: tracked min
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0); // exact: tracked max
  // 8 sub-buckets per octave → ≈9% relative error; allow 12% slack.
  EXPECT_NEAR(h.quantile(0.5), 500.0, 60.0);
  EXPECT_NEAR(h.quantile(0.9), 900.0, 110.0);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 120.0);
}

TEST_F(ObsTest, HistogramNonPositiveValuesLandInUnderflowBucket) {
  obs::Histogram h;
  h.record(0.0);
  h.record(-3.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  // The underflow bucket reports the tracked minimum.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), -3.0);
}

TEST_F(ObsTest, HistogramMergeMatchesCombinedRecording) {
  obs::Histogram a;
  obs::Histogram b;
  obs::Histogram combined;
  for (int i = 1; i <= 500; ++i) {
    a.record(static_cast<double>(i));
    combined.record(static_cast<double>(i));
  }
  for (int i = 501; i <= 1000; ++i) {
    b.record(static_cast<double>(i));
    combined.record(static_cast<double>(i));
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  for (double q : {0.1, 0.5, 0.9, 0.99})
    EXPECT_DOUBLE_EQ(a.quantile(q), combined.quantile(q)) << "q=" << q;
}

TEST_F(ObsTest, HistogramMergeIntoEmptyCopies) {
  obs::Histogram a;
  obs::Histogram b;
  b.record(2.0);
  b.record(8.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 8.0);
  a.merge(obs::Histogram());  // merging an empty histogram is a no-op
  EXPECT_EQ(a.count(), 2u);
}

TEST_F(ObsTest, RegistryHistogramsMergeAcrossThreadShards) {
  obs::Registry reg;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t)
    workers.emplace_back([&reg, t] {
      for (int i = 0; i < 250; ++i)
        reg.record_hist("depth", static_cast<double>(t * 250 + i + 1));
    });
  for (std::thread& w : workers) w.join();

  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.count("depth"), 1u);
  const obs::Histogram& h = snap.histograms.at("depth");
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.quantile(0.5), 500.0, 60.0);
}

TEST_F(ObsTest, TimerQuantilesTrackRecordedDurations) {
  obs::Registry reg;
  for (int i = 1; i <= 100; ++i)
    reg.record_ms("step", static_cast<double>(i));
  const obs::MetricsSnapshot snap = reg.snapshot();
  const obs::TimerStat& t = snap.timers.at("step");
  EXPECT_EQ(t.count, 100u);
  EXPECT_NEAR(t.quantile_ms(0.5), 50.0, 6.0);
  EXPECT_NEAR(t.quantile_ms(0.99), 99.0, 12.0);
  EXPECT_DOUBLE_EQ(t.quantile_ms(1.0), 100.0);
}

TEST_F(ObsTest, HistMacroRespectsMasterSwitch) {
  obs::Registry reg;
  const obs::ScopedRegistry scope(reg);
  ETHSHARD_OBS_HIST("h", 1.0);  // disabled: no-op
  EXPECT_TRUE(reg.snapshot().empty());
  obs::set_enabled(true);
  ETHSHARD_OBS_HIST("h", 4.0);
  ETHSHARD_OBS_HIST("h", 6.0);
  const obs::MetricsSnapshot snap = reg.snapshot();
#if ETHSHARD_OBS_ENABLED
  ASSERT_EQ(snap.histograms.count("h"), 1u);
  EXPECT_EQ(snap.histograms.at("h").count(), 2u);
  EXPECT_DOUBLE_EQ(snap.histograms.at("h").mean(), 5.0);
#else
  EXPECT_TRUE(snap.empty());
#endif
}

// ----------------------------------------------------------------- export

TEST_F(ObsTest, MetricsJsonIncludesTimerPercentilesAndHistograms) {
  obs::Registry reg;
  for (int i = 1; i <= 10; ++i) reg.record_ms("t", static_cast<double>(i));
  reg.record_hist("h", 7.0);
  std::ostringstream os;
  obs::write_metrics_json(os, reg.snapshot());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"p50_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"p90_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

TEST_F(ObsTest, MetricsCsvIncludesHistogramRows) {
  obs::Registry reg;
  reg.add_counter("c", 1);
  reg.record_hist("h", 3.0);
  std::ostringstream os;
  obs::write_metrics_csv(os, reg.snapshot());
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("kind,name,count,value,min,max,p50,p90,p99\n", 0),
            0u);
  EXPECT_NE(csv.find("histogram,h,"), std::string::npos);
}

TEST_F(ObsTest, MetricsJsonKeysAreSorted) {
  // std::map-backed snapshots give deterministic, sorted exports — pinned
  // here so JSON diffs between runs stay stable.
  obs::Registry reg;
  reg.add_counter("zulu", 1);
  reg.add_counter("alpha", 1);
  reg.add_counter("mike", 1);
  std::ostringstream os;
  obs::write_metrics_json(os, reg.snapshot());
  const std::string json = os.str();
  const std::size_t a = json.find("\"alpha\"");
  const std::size_t m = json.find("\"mike\"");
  const std::size_t z = json.find("\"zulu\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
}

// -------------------------------------------------------- trace span cap

TEST_F(ObsTest, TraceBufferCapDropsAndCounts) {
  obs::set_trace_enabled(true);
  obs::TraceBuffer::global().set_max_spans(2);
  for (int i = 0; i < 5; ++i) {
    obs::ScopedSpan s("s");
  }
  EXPECT_EQ(obs::TraceBuffer::global().size(), 2u);
  EXPECT_EQ(obs::TraceBuffer::global().dropped(), 3u);
  obs::TraceBuffer::global().clear();
  EXPECT_EQ(obs::TraceBuffer::global().size(), 0u);
  EXPECT_EQ(obs::TraceBuffer::global().dropped(), 0u);
}

TEST_F(ObsTest, TraceBufferUnlimitedWhenCapIsZero) {
  obs::set_trace_enabled(true);
  obs::TraceBuffer::global().set_max_spans(0);
  for (int i = 0; i < 100; ++i) {
    obs::ScopedSpan s("s");
  }
  EXPECT_EQ(obs::TraceBuffer::global().size(), 100u);
  EXPECT_EQ(obs::TraceBuffer::global().dropped(), 0u);
}

// ------------------------------------------------- multithreaded tracing

TEST_F(ObsTest, WorkerThreadSpansKeepOrdinalsAndPaths) {
  obs::set_trace_enabled(true);
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([] {
      // Two regions per thread: the ordinal must be identical for both.
      {
        obs::ScopedSpan outer("outer");
        obs::ScopedSpan inner("inner");
      }
      obs::ScopedSpan again("again");
    });
  for (std::thread& w : workers) w.join();

  const std::vector<obs::SpanRecord> spans =
      obs::TraceBuffer::global().snapshot();
  ASSERT_EQ(spans.size(), 3u * kThreads);

  std::set<std::uint32_t> ordinals;
  for (const obs::SpanRecord& s : spans) ordinals.insert(s.thread);
  EXPECT_EQ(ordinals.size(), static_cast<std::size_t>(kThreads));

  for (std::uint32_t tid : ordinals) {
    std::vector<std::string> paths;
    for (const obs::SpanRecord& s : spans)
      if (s.thread == tid) paths.push_back(s.path);
    // Completion order per thread: inner, outer, again.
    ASSERT_EQ(paths.size(), 3u);
    EXPECT_EQ(paths[0], "outer/inner");
    EXPECT_EQ(paths[1], "outer");
    EXPECT_EQ(paths[2], "again");
  }
}

TEST_F(ObsTest, PoolWorkerSpansNestUnderTheirOwnThread) {
  obs::set_trace_enabled(true);
  // parallel_for workers are fresh threads; each task's spans must carry
  // that worker's ordinal and nest only within the worker's own stack.
  util::parallel_for(
      8,
      [](std::size_t) {
        obs::ScopedSpan task("task");
        obs::ScopedSpan step("step");
      },
      /*threads=*/4);

  const std::vector<obs::SpanRecord> spans =
      obs::TraceBuffer::global().snapshot();
  ASSERT_EQ(spans.size(), 16u);
  for (const obs::SpanRecord& s : spans) {
    if (s.path == "task") {
      EXPECT_EQ(s.depth, 0u);
    } else {
      EXPECT_EQ(s.path, "task/step");
      EXPECT_EQ(s.depth, 1u);
    }
  }
  // Depth-1 spans exist: nesting happened on the workers, not the main
  // thread (the main thread opened no span here).
  const auto nested = std::count_if(
      spans.begin(), spans.end(),
      [](const obs::SpanRecord& s) { return s.depth == 1; });
  EXPECT_EQ(nested, 8);
}

// -------------------------------------------- trace snapshot + exporter

TEST_F(ObsTest, ExplicitSpanAndCounterApisRespectTraceSwitch) {
  // Off: both record nothing.
  obs::record_span("pipeline/apply", 1.0, 2.0);
  obs::record_counter_sample("pipeline/queue_depth", 3.0);
  EXPECT_EQ(obs::TraceBuffer::global().size(), 0u);
  EXPECT_TRUE(obs::TraceBuffer::global().trace_snapshot().counters.empty());

  obs::set_trace_enabled(true);
  obs::record_span("pipeline/apply", 1.0, 2.5);
  obs::record_counter_sample("pipeline/queue_depth", 3.0);
  const obs::TraceSnapshot trace =
      obs::TraceBuffer::global().trace_snapshot();
  ASSERT_EQ(trace.spans.size(), 1u);
  EXPECT_EQ(trace.spans[0].path, "pipeline/apply");
  EXPECT_DOUBLE_EQ(trace.spans[0].start_ms, 1.0);
  EXPECT_DOUBLE_EQ(trace.spans[0].duration_ms, 1.5);
  ASSERT_EQ(trace.counters.size(), 1u);
  EXPECT_EQ(trace.counters[0].name, "pipeline/queue_depth");
  EXPECT_DOUBLE_EQ(trace.counters[0].value, 3.0);
}

TEST_F(ObsTest, ThreadLanesLandInSnapshotAndExportAsThreadNames) {
  obs::set_trace_enabled(true);
  obs::set_current_thread_lane("Stage B (apply+flush)");
  std::thread producer([] {
    obs::set_current_thread_lane("Stage A (aggregate)");
    obs::record_span("pipeline/aggregate", 0.0, 1.0);
  });
  producer.join();
  obs::record_span("pipeline/apply", 1.0, 2.0);

  const obs::TraceSnapshot trace =
      obs::TraceBuffer::global().trace_snapshot();
  ASSERT_EQ(trace.spans.size(), 2u);
  ASSERT_EQ(trace.lanes.size(), 2u);
  // The two spans carry distinct thread ordinals, and each ordinal maps
  // to the lane named on that thread.
  const obs::SpanRecord* agg = nullptr;
  const obs::SpanRecord* apply = nullptr;
  for (const obs::SpanRecord& s : trace.spans)
    (s.path == "pipeline/aggregate" ? agg : apply) = &s;
  ASSERT_NE(agg, nullptr);
  ASSERT_NE(apply, nullptr);
  EXPECT_NE(agg->thread, apply->thread);
  EXPECT_EQ(trace.lanes.at(agg->thread), "Stage A (aggregate)");
  EXPECT_EQ(trace.lanes.at(apply->thread), "Stage B (apply+flush)");

  std::ostringstream os;
  obs::write_trace_json(os, trace);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"Stage A (aggregate)\""), std::string::npos);
  EXPECT_NE(json.find("\"Stage B (apply+flush)\""), std::string::npos);
}

TEST_F(ObsTest, CounterSamplesExportAsCounterEvents) {
  obs::TraceSnapshot trace;
  trace.counters.push_back({"pipeline/queue_depth", 5.0, 2.0});
  trace.counters.push_back({"pipeline/queue_depth", 7.0, 1.0});
  std::ostringstream os;
  obs::write_trace_json(os, trace);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 2.000000"), std::string::npos);
  EXPECT_NE(json.find("\"value\": 1.000000"), std::string::npos);
}

TEST_F(ObsTest, TraceJsonEventsAreTimestampSorted) {
  obs::TraceSnapshot trace;
  trace.spans.push_back({"late", 30.0, 1.0, 0, 0});
  trace.spans.push_back({"early", 1.0, 1.0, 0, 0});
  trace.counters.push_back({"depth", 10.0, 1.0});
  std::ostringstream os;
  obs::write_trace_json(os, trace);
  const std::string json = os.str();
  const std::size_t early = json.find("\"early\"");
  const std::size_t mid = json.find("\"depth\"");
  const std::size_t late = json.find("\"late\"");
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(mid, std::string::npos);
  ASSERT_NE(late, std::string::npos);
  EXPECT_LT(early, mid);
  EXPECT_LT(mid, late);
}

TEST_F(ObsTest, TruncatedTraceExportsInstantMarker) {
  obs::set_trace_enabled(true);
  obs::TraceBuffer::global().set_max_spans(2);
  for (int i = 0; i < 5; ++i) obs::record_span("s", i, i + 1.0);
  // Counters have their own budget at the same cap value.
  for (int i = 0; i < 3; ++i) obs::record_counter_sample("c", i);
  const obs::TraceSnapshot trace =
      obs::TraceBuffer::global().trace_snapshot();
  EXPECT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.dropped_spans, 3u);
  EXPECT_EQ(trace.dropped_counters, 1u);

  std::ostringstream os;
  obs::write_trace_json(os, trace);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"trace_truncated\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_counters\": 1"), std::string::npos);
}

TEST_F(ObsTest, UntruncatedTraceHasNoMarker) {
  obs::TraceSnapshot trace;
  trace.spans.push_back({"s", 0.0, 1.0, 0, 0});
  std::ostringstream os;
  obs::write_trace_json(os, trace);
  EXPECT_EQ(os.str().find("trace_truncated"), std::string::npos);
}

}  // namespace
