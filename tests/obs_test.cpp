#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace {

using namespace ethshard;

// Tests toggle the process-wide flags; restore them no matter how the
// test exits.
class ObsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::set_enabled(false);
    obs::set_trace_enabled(false);
    obs::TraceBuffer::global().clear();
  }
};

TEST_F(ObsTest, DisabledByDefault) {
  EXPECT_FALSE(obs::enabled());
  obs::Registry reg;
  const obs::ScopedRegistry scope(reg);
  ETHSHARD_OBS_COUNT("c", 1);
  ETHSHARD_OBS_GAUGE("g", 2.0);
  ETHSHARD_OBS_RECORD_MS("t", 3.0);
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST_F(ObsTest, CountersGaugesTimers) {
  obs::Registry reg;
  reg.add_counter("calls", 2);
  reg.add_counter("calls", 3);
  reg.set_gauge("temp", 1.5);
  reg.set_gauge("temp", 2.5);  // gauges keep the last value
  reg.record_ms("step", 4.0);
  reg.record_ms("step", 2.0);

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("calls"), 5u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("temp"), 2.5);
  const obs::TimerStat& t = snap.timers.at("step");
  EXPECT_EQ(t.count, 2u);
  EXPECT_DOUBLE_EQ(t.total_ms, 6.0);
  EXPECT_DOUBLE_EQ(t.mean_ms(), 3.0);
  EXPECT_DOUBLE_EQ(t.min_ms, 2.0);
  EXPECT_DOUBLE_EQ(t.max_ms, 4.0);
}

TEST_F(ObsTest, MergesAcrossThreads) {
  obs::Registry reg;
  std::vector<std::thread> workers;
  for (int i = 0; i < 4; ++i)
    workers.emplace_back([&reg] {
      for (int j = 0; j < 100; ++j) reg.add_counter("n", 1);
      reg.record_ms("work", 1.0);
    });
  for (std::thread& w : workers) w.join();

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("n"), 400u);
  EXPECT_EQ(snap.timers.at("work").count, 4u);
}

TEST_F(ObsTest, RegistryIdsAreNotReused) {
  // A thread's cached sink for a destroyed registry must never serve a
  // later registry that happens to live at the same address.
  obs::MetricsSnapshot first;
  {
    obs::Registry reg;
    reg.add_counter("a", 1);
    first = reg.snapshot();
  }
  obs::Registry reg2;
  reg2.add_counter("b", 7);
  const obs::MetricsSnapshot snap = reg2.snapshot();
  EXPECT_EQ(first.counters.at("a"), 1u);
  EXPECT_EQ(snap.counters.count("a"), 0u);
  EXPECT_EQ(snap.counters.at("b"), 7u);
}

TEST_F(ObsTest, ScopedRegistryRedirectsAndRestores) {
  obs::set_enabled(true);
  obs::Registry outer;
  obs::Registry inner;
  const obs::ScopedRegistry outer_scope(outer);
  {
    const obs::ScopedRegistry inner_scope(inner);
    ETHSHARD_OBS_COUNT("x", 1);
  }
  ETHSHARD_OBS_COUNT("y", 1);
  EXPECT_EQ(inner.snapshot().counters.at("x"), 1u);
  EXPECT_EQ(outer.snapshot().counters.count("x"), 0u);
  EXPECT_EQ(outer.snapshot().counters.at("y"), 1u);
}

TEST_F(ObsTest, AbsorbFoldsChildSnapshots) {
  obs::Registry parent;
  obs::Registry child;
  parent.add_counter("n", 1);
  child.add_counter("n", 2);
  child.record_ms("t", 5.0);
  parent.absorb(child.snapshot());
  const obs::MetricsSnapshot snap = parent.snapshot();
  EXPECT_EQ(snap.counters.at("n"), 3u);
  EXPECT_EQ(snap.timers.at("t").count, 1u);
}

TEST_F(ObsTest, ScopedTimerRecordsWhenEnabled) {
  obs::set_enabled(true);
  obs::Registry reg;
  const obs::ScopedRegistry scope(reg);
  {
    ETHSHARD_OBS_TIMER("timed");
  }
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.timers.count("timed"), 1u);
  EXPECT_EQ(snap.timers.at("timed").count, 1u);
  EXPECT_GE(snap.timers.at("timed").total_ms, 0.0);
}

TEST_F(ObsTest, SpansNestIntoPaths) {
  obs::set_trace_enabled(true);
  {
    obs::ScopedSpan outer("outer");
    { obs::ScopedSpan inner("inner"); }
  }
  const std::vector<obs::SpanRecord> spans =
      obs::TraceBuffer::global().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes first.
  EXPECT_EQ(spans[0].path, "outer/inner");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].path, "outer");
  EXPECT_EQ(spans[1].depth, 0u);
}

TEST_F(ObsTest, SpansOffByDefault) {
  { obs::ScopedSpan s("nope"); }
  EXPECT_EQ(obs::TraceBuffer::global().size(), 0u);
}

TEST_F(ObsTest, MetricsJsonRoundTrips) {
  obs::Registry reg;
  reg.add_counter("a/b", 2);
  reg.set_gauge("g", 0.5);
  reg.record_ms("t", 1.25);
  std::ostringstream os;
  obs::write_metrics_json(os, reg.snapshot());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"a/b\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST_F(ObsTest, MetricsCsvHasOneRowPerEntry) {
  obs::Registry reg;
  reg.add_counter("c", 1);
  reg.set_gauge("g", 2.0);
  reg.record_ms("t", 3.0);
  std::ostringstream os;
  obs::write_metrics_csv(os, reg.snapshot());
  const std::string csv = os.str();
  int lines = 0;
  for (char ch : csv)
    if (ch == '\n') ++lines;
  EXPECT_EQ(lines, 4);  // header + 3 rows
  EXPECT_NE(csv.find("counter,c,"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g,"), std::string::npos);
  EXPECT_NE(csv.find("timer,t,"), std::string::npos);
}

TEST_F(ObsTest, TraceJsonIsChromeShaped) {
  obs::set_trace_enabled(true);
  { obs::ScopedSpan s("phase"); }
  std::ostringstream os;
  obs::write_trace_json(os, obs::TraceBuffer::global().snapshot());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

}  // namespace
