// Tests for the metrics module: Eq. 1/2 static & dynamic, normalization,
// window accumulation and distribution summaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "metrics/metrics.hpp"
#include "metrics/summary.hpp"
#include "metrics/timeseries.hpp"
#include "partition/types.hpp"
#include "util/check.hpp"

namespace ethshard::metrics {
namespace {

using graph::Graph;
using graph::Vertex;
using partition::Partition;

Graph weighted_square() {
  // 0-1 (w=10), 1-2 (w=1), 2-3 (w=10), 3-0 (w=1); vertex weights 1,1,5,5.
  graph::GraphBuilder b;
  b.add_vertex(1);
  b.add_vertex(1);
  b.add_vertex(5);
  b.add_vertex(5);
  b.add_edge(0, 1, 10);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 10);
  b.add_edge(3, 0, 1);
  return b.build_undirected();
}

TEST(EdgeCutMetric, StaticCountsEdges) {
  const Graph g = weighted_square();
  Partition p(4, 2);
  p.assign(0, 0);
  p.assign(1, 0);
  p.assign(2, 1);
  p.assign(3, 1);
  // Edges 1-2 and 3-0 cross: 2 of 4.
  EXPECT_DOUBLE_EQ(static_edge_cut(g, p), 0.5);
}

TEST(EdgeCutMetric, DynamicWeighsFrequencies) {
  const Graph g = weighted_square();
  Partition p(4, 2);
  p.assign(0, 0);
  p.assign(1, 0);
  p.assign(2, 1);
  p.assign(3, 1);
  // Crossing weight 2 of total 22.
  EXPECT_DOUBLE_EQ(dynamic_edge_cut(g, p), 2.0 / 22.0);
}

TEST(EdgeCutMetric, WorstSplitCutsHeavyEdges) {
  const Graph g = weighted_square();
  Partition p(4, 2);
  p.assign(0, 0);
  p.assign(1, 1);
  p.assign(2, 0);
  p.assign(3, 1);
  EXPECT_DOUBLE_EQ(static_edge_cut(g, p), 1.0);
  EXPECT_DOUBLE_EQ(dynamic_edge_cut(g, p), 1.0);
}

TEST(EdgeCutMetric, EdgelessGraphIsZero) {
  graph::GraphBuilder b;
  b.ensure_vertices(3);
  const Graph g = b.build_undirected();
  Partition p(3, 2, 0);
  EXPECT_DOUBLE_EQ(static_edge_cut(g, p), 0.0);
  EXPECT_DOUBLE_EQ(dynamic_edge_cut(g, p), 0.0);
}

TEST(BalanceMetric, StaticUsesVertexCounts) {
  Partition p(6, 2);
  for (Vertex v = 0; v < 6; ++v) p.assign(v, v < 4 ? 0 : 1);
  // max=4, k=2, n=6 → 4*2/6.
  EXPECT_DOUBLE_EQ(static_balance(p), 4.0 * 2 / 6);
}

TEST(BalanceMetric, PerfectBalanceIsOne) {
  Partition p(8, 4);
  for (Vertex v = 0; v < 8; ++v) p.assign(v, static_cast<std::uint32_t>(v % 4));
  EXPECT_DOUBLE_EQ(static_balance(p), 1.0);
}

TEST(BalanceMetric, DynamicUsesWeights) {
  const Graph g = weighted_square();  // weights 1,1,5,5
  Partition p(4, 2);
  p.assign(0, 0);
  p.assign(1, 0);
  p.assign(2, 1);
  p.assign(3, 1);
  // Loads: shard0 = 2, shard1 = 10; balance = 10*2/12.
  EXPECT_DOUBLE_EQ(dynamic_balance(g, p), 10.0 * 2 / 12);
}

TEST(BalanceMetric, EverythingInOneShardEqualsK) {
  Partition p(10, 5, 0);
  EXPECT_DOUBLE_EQ(static_balance(p), 5.0);
}

TEST(NormalizedBalance, MapsRangeToUnitInterval) {
  EXPECT_DOUBLE_EQ(normalized_balance(1.0, 8), 0.0);
  EXPECT_DOUBLE_EQ(normalized_balance(8.0, 8), 1.0);
  EXPECT_DOUBLE_EQ(normalized_balance(1.5, 2), 0.5);
  EXPECT_DOUBLE_EQ(normalized_balance(2.0, 1), 0.0);  // k=1 degenerate
}

// ---------------------------------------------------- WindowAccumulator

TEST(WindowAccumulator, EdgeCutFraction) {
  WindowAccumulator acc(2);
  acc.record_interaction(0, 0, 3);
  acc.record_interaction(0, 1, 1);
  EXPECT_DOUBLE_EQ(acc.dynamic_edge_cut(), 0.25);
  EXPECT_EQ(acc.total_interactions(), 4u);
  EXPECT_EQ(acc.cross_interactions(), 1u);
}

TEST(WindowAccumulator, BalanceFromLoads) {
  WindowAccumulator acc(2);
  acc.record_activity(0, 9);
  acc.record_activity(1, 3);
  EXPECT_DOUBLE_EQ(acc.dynamic_balance(), 9.0 * 2 / 12);
}

TEST(WindowAccumulator, EmptyWindowDefaults) {
  WindowAccumulator acc(4);
  EXPECT_TRUE(acc.empty());
  EXPECT_DOUBLE_EQ(acc.dynamic_edge_cut(), 0.0);
  EXPECT_DOUBLE_EQ(acc.dynamic_balance(), 1.0);
}

TEST(WindowAccumulator, ResetClears) {
  WindowAccumulator acc(2);
  acc.record_interaction(0, 1, 5);
  acc.record_activity(1, 5);
  acc.reset();
  EXPECT_TRUE(acc.empty());
  EXPECT_DOUBLE_EQ(acc.dynamic_edge_cut(), 0.0);
}

TEST(WindowAccumulator, RejectsOutOfRangeShard) {
  WindowAccumulator acc(2);
  EXPECT_THROW(acc.record_interaction(0, 2), util::CheckFailure);
  EXPECT_THROW(acc.record_activity(5), util::CheckFailure);
}

// ---------------------------------------------------------------- Summary

TEST(Summary, FiveNumberSummary) {
  const Summary s = summarize({5, 1, 3, 2, 4});
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.q1, 2);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_DOUBLE_EQ(s.q3, 4);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_EQ(s.count, 5u);
}

TEST(Summary, InterpolatedQuartiles) {
  const Summary s = summarize({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.q1, 1.75);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.q3, 3.25);
}

TEST(Summary, SingleValue) {
  const Summary s = summarize({7});
  EXPECT_DOUBLE_EQ(s.min, 7);
  EXPECT_DOUBLE_EQ(s.median, 7);
  EXPECT_DOUBLE_EQ(s.max, 7);
}

TEST(Summary, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.median, 0);
}

TEST(Summary, QuantileSortedEndpoints) {
  const std::vector<double> v = {1, 2, 3};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 3);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 2);
}

TEST(Summary, MeanStdevKnownValues) {
  const MeanStdev ms = mean_stdev({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(ms.mean, 5.0);
  EXPECT_NEAR(ms.stdev, 2.138, 0.001);  // sample stdev (n-1)
  EXPECT_EQ(ms.count, 8u);
}

TEST(Summary, MeanStdevDegenerateCases) {
  EXPECT_EQ(mean_stdev({}).count, 0u);
  const MeanStdev one = mean_stdev({42});
  EXPECT_DOUBLE_EQ(one.mean, 42.0);
  EXPECT_DOUBLE_EQ(one.stdev, 0.0);
  const MeanStdev same = mean_stdev({3, 3, 3});
  EXPECT_DOUBLE_EQ(same.stdev, 0.0);
}

TEST(Summary, ToStringContainsFields) {
  const std::string s = to_string(summarize({1, 2, 3}));
  EXPECT_NE(s.find("med="), std::string::npos);
  EXPECT_NE(s.find("mean="), std::string::npos);
}

// ------------------------------------------------------------ timeseries

TimeSeries make_series(std::initializer_list<double> values,
                       util::Timestamp step = util::kHour) {
  TimeSeries s;
  util::Timestamp t = 0;
  for (double v : values) {
    s.push_back(TimePoint{t, v});
    t += step;
  }
  return s;
}

TEST(TimeSeriesOps, EwmaAlphaOneIsIdentity) {
  const TimeSeries s = make_series({1, 5, 2, 8});
  EXPECT_EQ(ewma(s, 1.0), s);
}

TEST(TimeSeriesOps, EwmaSmoothsTowardMean) {
  const TimeSeries s = make_series({0, 10, 0, 10, 0, 10, 0, 10});
  const TimeSeries sm = ewma(s, 0.25);
  // Smoothed oscillation amplitude shrinks.
  double max_jump = 0;
  for (std::size_t i = 1; i < sm.size(); ++i)
    max_jump = std::max(max_jump, std::abs(sm[i].value - sm[i - 1].value));
  EXPECT_LT(max_jump, 5.0);
  // First observation seeds exactly.
  EXPECT_DOUBLE_EQ(sm[0].value, 0.0);
}

TEST(TimeSeriesOps, EwmaRejectsBadAlpha) {
  const TimeSeries s = make_series({1});
  EXPECT_THROW(ewma(s, 0.0), util::CheckFailure);
  EXPECT_THROW(ewma(s, 1.5), util::CheckFailure);
}

TEST(TimeSeriesOps, ResampleMeanBucketsCorrectly) {
  // Hourly values, 4-hour buckets.
  const TimeSeries s = make_series({1, 2, 3, 4, 5, 6, 7, 8});
  const TimeSeries r = resample_mean(s, 0, 4 * util::kHour);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0].value, 2.5);
  EXPECT_DOUBLE_EQ(r[1].value, 6.5);
  EXPECT_EQ(r[0].time, 0);
  EXPECT_EQ(r[1].time, 4 * util::kHour);
}

TEST(TimeSeriesOps, ResampleSkipsEmptyBuckets) {
  TimeSeries s;
  s.push_back(TimePoint{0, 1.0});
  s.push_back(TimePoint{10 * util::kHour, 2.0});
  const TimeSeries r = resample_mean(s, 0, util::kHour);
  ASSERT_EQ(r.size(), 2u);  // 9 empty buckets produce nothing
}

TEST(TimeSeriesOps, ResampleCustomReduction) {
  const TimeSeries s = make_series({1, 9, 4});
  const TimeSeries r =
      resample(s, 0, util::kDay, [](const std::vector<double>& v) {
        return *std::max_element(v.begin(), v.end());
      });
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r[0].value, 9.0);
}

TEST(TimeSeriesOps, SummarizeRangeFilters) {
  const TimeSeries s = make_series({1, 2, 3, 4, 5});
  const Summary sum =
      summarize_range(s, util::kHour, 4 * util::kHour);  // values 2,3,4
  EXPECT_EQ(sum.count, 3u);
  EXPECT_DOUBLE_EQ(sum.median, 3.0);
}

TEST(TimeSeriesOps, MaxGap) {
  TimeSeries s;
  s.push_back(TimePoint{0, 0});
  s.push_back(TimePoint{util::kHour, 0});
  s.push_back(TimePoint{5 * util::kHour, 0});
  EXPECT_EQ(max_gap(s), 4 * util::kHour);
  EXPECT_EQ(max_gap({}), 0);
}

TEST(TimeSeriesOps, RollingMean) {
  const TimeSeries s = make_series({2, 4, 6, 8});
  const TimeSeries r = rolling_mean(s, 2);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_DOUBLE_EQ(r[0].value, 2.0);  // prefix shorter than window
  EXPECT_DOUBLE_EQ(r[1].value, 3.0);
  EXPECT_DOUBLE_EQ(r[2].value, 5.0);
  EXPECT_DOUBLE_EQ(r[3].value, 7.0);
}

// --------------------------------------------- consistency with partition

TEST(Consistency, WindowAccumulatorMatchesGraphMetrics) {
  // Recording every edge of a static graph into the accumulator must give
  // the same dynamic edge-cut as the graph-level computation.
  const Graph g = graph::make_grid(6, 6);
  Partition p(g.num_vertices(), 2);
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    p.assign(v, v % 2 == 0 ? 0u : 1u);

  WindowAccumulator acc(2);
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    for (const graph::Arc& a : g.neighbors(v))
      if (v < a.to)
        acc.record_interaction(p.shard_of(v), p.shard_of(a.to), a.weight);

  EXPECT_DOUBLE_EQ(acc.dynamic_edge_cut(), dynamic_edge_cut(g, p));
}

TEST(Consistency, SelfCallsDropOutOfTheCutDenominator) {
  // Replaying a traffic mix that includes self-calls must agree with
  // metrics::dynamic_edge_cut on the symmetrized window graph, which
  // drops self-loops. Routing self-calls through record_interaction
  // instead would deflate the accumulator's cut (regression guard for
  // the denominator-mismatch bug).
  graph::GraphBuilder b;
  b.ensure_vertices(4);
  Partition p(4, 2);
  for (Vertex v = 0; v < 4; ++v) p.assign(v, v < 2 ? 0u : 1u);

  struct Call {
    Vertex from, to;
    graph::Weight times;
  };
  const std::vector<Call> calls = {
      {0, 1, 3}, {0, 2, 2}, {1, 1, 50}, {3, 3, 10}, {2, 3, 4}, {1, 3, 1}};

  WindowAccumulator acc(2);
  for (const Call& c : calls) {
    b.add_edge(c.from, c.to, c.times);
    if (c.from == c.to)
      acc.record_self_interaction(c.times);
    else
      acc.record_interaction(p.shard_of(c.from), p.shard_of(c.to), c.times);
  }

  const graph::Graph window = b.build_undirected();
  EXPECT_DOUBLE_EQ(acc.dynamic_edge_cut(), dynamic_edge_cut(window, p));
  // Volume still counts every call; the denominator only pairs.
  EXPECT_EQ(acc.total_interactions(), 70u);
  EXPECT_EQ(acc.pair_interactions(), 10u);
  EXPECT_EQ(acc.cross_interactions(), 3u);
  EXPECT_DOUBLE_EQ(acc.dynamic_edge_cut(), 0.3);
}

TEST(WindowAccumulator, SelfOnlyWindowHasZeroCut) {
  WindowAccumulator acc(2);
  acc.record_self_interaction(12);
  EXPECT_EQ(acc.total_interactions(), 12u);
  EXPECT_EQ(acc.pair_interactions(), 0u);
  EXPECT_DOUBLE_EQ(acc.dynamic_edge_cut(), 0.0);
  EXPECT_FALSE(acc.empty());
}

}  // namespace
}  // namespace ethshard::metrics
