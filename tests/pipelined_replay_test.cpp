// PipelinedReplayDifferential: the two-stage batched window replay
// (SimulatorConfig::replay_threads >= 2, DESIGN.md §6d) must be
// bit-identical to the serial per-call reference path — not "close", the
// same SimulationResult and the same telemetry JSONL modulo wall-clock
// fields — for every strategy family that declares
// supports_batched_replay(), under both LoadModels, at every thread
// count, and across the gap-fast-forward and final-partial-window edge
// cases. This suite is to the replay pipeline what the thread-invariance
// suite is to mt-MLKP: the license to enable it by default.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "core/strategy_registry.hpp"
#include "core/telemetry.hpp"
#include "util/sim_time.hpp"
#include "workload/generator.hpp"

namespace ethshard::core {
namespace {

// ETHSHARD_DIFF_SCALE shrinks the generated histories without thinning
// the strategy × load-model × thread-count matrix — the TSan CI leg uses
// it to keep the ~10x-slower instrumented run inside its budget.
double diff_scale() {
  if (const char* s = std::getenv("ETHSHARD_DIFF_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 0.0004;
}

workload::History diff_history(std::uint64_t seed) {
  workload::GeneratorConfig cfg;
  cfg.scale = diff_scale();
  cfg.seed = seed;
  return workload::EthereumHistoryGenerator(cfg).generate();
}

struct RunOutput {
  SimulationResult result;
  std::string telemetry;  // JSONL; empty when no sink was attached
};

/// Extra replay knobs beyond the thread count. Defaults mirror
/// SimulatorConfig; the auto_* fields only matter for replay_threads=0.
struct ReplayKnobs {
  std::size_t aggregation_shards = 0;
  std::size_t queue_capacity = 0;
  std::size_t auto_probe_windows = 24;
  double auto_min_speedup = 1.05;
  /// Pretend the host has this many hardware threads so replay_threads=0
  /// takes the probe path even on single-core CI runners.
  std::size_t auto_hw_override = 2;
};

RunOutput run_with(const workload::History& history, const std::string& spec,
                   std::uint32_t k, LoadModel load_model,
                   std::size_t replay_threads, bool with_telemetry,
                   const ReplayKnobs& knobs = {}) {
  const auto strategy = StrategyRegistry::global().make(spec,
                                                       /*default_seed=*/7);
  SimulatorConfig cfg;
  cfg.k = k;
  cfg.load_model = load_model;
  cfg.replay_threads = replay_threads;
  cfg.aggregation_shards = knobs.aggregation_shards;
  cfg.queue_capacity = knobs.queue_capacity;
  cfg.auto_probe_windows = knobs.auto_probe_windows;
  cfg.auto_min_speedup = knobs.auto_min_speedup;
  cfg.auto_hw_override = knobs.auto_hw_override;
  std::ostringstream os;
  std::unique_ptr<TelemetrySink> sink;
  if (with_telemetry) {
    sink = std::make_unique<TelemetrySink>(os);
    cfg.telemetry = sink.get();
  }
  ShardingSimulator sim(history, *strategy, cfg);
  RunOutput out;
  out.result = sim.run();
  out.telemetry = os.str();
  return out;
}

// Blanks the value of a `"key": <number>` field wherever it appears, so
// telemetry lines compare equal modulo wall-clock measurements.
std::string blank_field(std::string text, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  std::size_t at = 0;
  while ((at = text.find(needle, at)) != std::string::npos) {
    std::size_t i = at + needle.size();
    std::size_t end = i;
    while (end < text.size() && text[end] != ',' && text[end] != '}' &&
           text[end] != '\n')
      ++end;
    text.replace(i, end - i, "X");
    at = i;
  }
  return text;
}

std::string normalized_telemetry(const std::string& jsonl) {
  // rss_mb/peak_rss_mb are process-level measurements like the wall
  // clocks: legitimate run-to-run differences, blanked the same way.
  return blank_field(
      blank_field(blank_field(blank_field(jsonl, "window_wall_ms"),
                              "partitioner_ms"),
                  "rss_mb"),
      "peak_rss_mb");
}

// Every SimulationResult field except wall-clock timings, compared
// exactly (EXPECT_EQ on doubles is bitwise-for-equality — intentional:
// the pipeline promises the same arithmetic, not similar arithmetic).
void expect_identical(const SimulationResult& a, const SimulationResult& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.strategy_name, b.strategy_name);
  EXPECT_EQ(a.k, b.k);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    SCOPED_TRACE("window " + std::to_string(i));
    EXPECT_EQ(a.windows[i].window_start, b.windows[i].window_start);
    EXPECT_EQ(a.windows[i].window_end, b.windows[i].window_end);
    EXPECT_EQ(a.windows[i].dynamic_edge_cut, b.windows[i].dynamic_edge_cut);
    EXPECT_EQ(a.windows[i].dynamic_balance, b.windows[i].dynamic_balance);
    EXPECT_EQ(a.windows[i].static_edge_cut, b.windows[i].static_edge_cut);
    EXPECT_EQ(a.windows[i].static_balance, b.windows[i].static_balance);
    EXPECT_EQ(a.windows[i].interactions, b.windows[i].interactions);
  }
  ASSERT_EQ(a.repartitions.size(), b.repartitions.size());
  for (std::size_t i = 0; i < a.repartitions.size(); ++i) {
    SCOPED_TRACE("repartition " + std::to_string(i));
    EXPECT_EQ(a.repartitions[i].time, b.repartitions[i].time);
    EXPECT_EQ(a.repartitions[i].moves, b.repartitions[i].moves);
    EXPECT_EQ(a.repartitions[i].moved_state_units,
              b.repartitions[i].moved_state_units);
    // compute_ms is wall clock — the one field allowed to differ.
  }
  EXPECT_EQ(a.total_moves, b.total_moves);
  EXPECT_EQ(a.total_moved_state_units, b.total_moved_state_units);
  EXPECT_EQ(a.online_moves, b.online_moves);
  EXPECT_EQ(a.online_moved_state_units, b.online_moved_state_units);
  EXPECT_EQ(a.vertices, b.vertices);
  EXPECT_EQ(a.distinct_edges, b.distinct_edges);
  EXPECT_EQ(a.interactions, b.interactions);
  EXPECT_EQ(a.final_static_edge_cut, b.final_static_edge_cut);
  EXPECT_EQ(a.final_static_balance, b.final_static_balance);
  EXPECT_EQ(a.executed_cross_shard_fraction,
            b.executed_cross_shard_fraction);
  EXPECT_EQ(a.gap_windows_skipped, b.gap_windows_skipped);
}

struct Cell {
  const char* spec;
  std::uint32_t k;
};

// The five paper strategy families; periods shortened so the 0.0004-scale
// history still triggers several repartitions per run.
constexpr Cell kCells[] = {
    {"hashing", 4},
    {"kl:period_days=2", 8},
    {"metis:period_days=3", 4},
    {"r-metis:period_days=2", 4},
    {"tr-metis", 4},
};

// replay_threads values beyond the serial reference: forced pipeline
// (2), deeper prefetch queue (4), and auto (0 — starts the pipeline and
// runs the measured probe, which may fall back to serial mid-run; both
// outcomes must be bit-identical, so the default probe settings are fine
// here).
constexpr std::size_t kThreadCounts[] = {2, 4, 0};

TEST(PipelinedReplayDifferential, BitIdenticalAcrossStrategiesAndLoadModels) {
  const workload::History history = diff_history(99);
  for (const Cell& cell : kCells) {
    for (const LoadModel lm : {LoadModel::kCalls, LoadModel::kGas}) {
      const RunOutput serial =
          run_with(history, cell.spec, cell.k, lm, 1, /*with_telemetry=*/true);
      ASSERT_FALSE(serial.result.windows.empty()) << cell.spec;
      for (const std::size_t threads : kThreadCounts) {
        const RunOutput piped = run_with(history, cell.spec, cell.k, lm,
                                         threads, /*with_telemetry=*/true);
        const std::string label =
            std::string(cell.spec) + " lm=" +
            (lm == LoadModel::kCalls ? "calls" : "gas") +
            " replay_threads=" + std::to_string(threads);
        expect_identical(serial.result, piped.result, label);
        EXPECT_EQ(normalized_telemetry(serial.telemetry),
                  normalized_telemetry(piped.telemetry))
            << label;
      }
    }
  }
}

// The sharded Stage A merge (DESIGN.md §6d): splitting each window's
// block span into 1, 2 or 4 sub-ranges aggregated independently and
// merged deterministically must reproduce the serial reference bit for
// bit across every strategy family — result AND telemetry. shards=1
// exercises the unified scan/merge path on a single span; 2 and 4 cover
// the k-way pair/load merges and the candidate-placement filter.
TEST(PipelinedReplayDifferential, AggregationShardSweepBitIdentical) {
  const workload::History history = diff_history(99);
  for (const Cell& cell : kCells) {
    const RunOutput serial = run_with(history, cell.spec, cell.k,
                                      LoadModel::kCalls, 1,
                                      /*with_telemetry=*/true);
    ASSERT_FALSE(serial.result.windows.empty()) << cell.spec;
    for (const std::size_t shards : {1, 2, 4}) {
      ReplayKnobs knobs;
      knobs.aggregation_shards = shards;
      const RunOutput piped =
          run_with(history, cell.spec, cell.k, LoadModel::kCalls, 2,
                   /*with_telemetry=*/true, knobs);
      const std::string label =
          std::string(cell.spec) + " agg_shards=" + std::to_string(shards);
      expect_identical(serial.result, piped.result, label);
      EXPECT_EQ(normalized_telemetry(serial.telemetry),
                normalized_telemetry(piped.telemetry))
          << label;
    }
  }
}

// The auto mode's two outcomes, each forced deterministically:
// auto_min_speedup=0 can never trigger the fallback (staged time is
// never < 0), so the run stays pipelined end to end; an absurdly large
// threshold always triggers it, so the run falls back after the probe
// and replays the remainder serially mid-run. Both must match the
// serial reference exactly — the fallback path in particular covers the
// producer's resume-point handoff and the consumer-side drain.
TEST(PipelinedReplayDifferential, AutoProbeBothOutcomesBitIdentical) {
  const workload::History history = diff_history(99);
  for (const Cell& cell : {kCells[0], kCells[1]}) {
    const RunOutput serial = run_with(history, cell.spec, cell.k,
                                      LoadModel::kCalls, 1,
                                      /*with_telemetry=*/true);
    ReplayKnobs stay;
    stay.auto_min_speedup = 0;  // probe always says "pipeline wins"
    ReplayKnobs fall;
    fall.auto_min_speedup = 1e9;  // probe always says "serial wins"
    fall.auto_probe_windows = 4;  // decide early, leaving a long tail
    for (const auto& [knobs, tag] :
         {std::pair<ReplayKnobs, const char*>{stay, "stay-pipelined"},
          std::pair<ReplayKnobs, const char*>{fall, "mid-run fallback"}}) {
      const RunOutput piped = run_with(history, cell.spec, cell.k,
                                       LoadModel::kCalls, 0,
                                       /*with_telemetry=*/true, knobs);
      const std::string label = std::string(cell.spec) + " auto " + tag;
      expect_identical(serial.result, piped.result, label);
      EXPECT_EQ(normalized_telemetry(serial.telemetry),
                normalized_telemetry(piped.telemetry))
          << label;
    }
  }
}

// The PR-4 edge cases: a multi-year quiet stretch (exercising the gap
// fast-forward, which only engages without a telemetry sink) and the
// run's final partial window (every generated history ends mid-window).
TEST(PipelinedReplayDifferential, GapFastForwardAndFinalPartialWindow) {
  const workload::History base = diff_history(7);
  const auto& blocks = base.chain.blocks();
  ASSERT_FALSE(blocks.empty());
  const util::Timestamp mid =
      (blocks.front().timestamp + blocks.back().timestamp) / 2;
  const workload::History gapped =
      workload::with_traffic_gap(base, mid, 400 * util::kDay);

  for (const char* spec : {"hashing", "metis:period_days=3"}) {
    for (const bool with_telemetry : {false, true}) {
      const RunOutput serial =
          run_with(gapped, spec, 4, LoadModel::kCalls, 1, with_telemetry);
      const RunOutput piped =
          run_with(gapped, spec, 4, LoadModel::kCalls, 2, with_telemetry);
      const std::string label = std::string(spec) +
                                (with_telemetry ? " +telemetry" : " -telemetry");
      expect_identical(serial.result, piped.result, label);
      EXPECT_EQ(normalized_telemetry(serial.telemetry),
                normalized_telemetry(piped.telemetry))
          << label;
      if (!with_telemetry) {
        // The fast-forward must actually have engaged — otherwise this
        // test is not covering the edge case it claims to.
        EXPECT_GT(serial.result.gap_windows_skipped, 0u) << label;
      }
    }
    // Final window really is partial (the clamp path in flush_window).
    const RunOutput check =
        run_with(gapped, spec, 4, LoadModel::kCalls, 2, false);
    ASSERT_FALSE(check.result.windows.empty());
    const WindowSample& last = check.result.windows.back();
    EXPECT_LT(last.window_end - last.window_start, util::kMetricWindow);
  }
}

// DSM migrates online through on_transaction, which batched replay never
// invokes — it must decline the pipeline and still produce its usual
// output when replay_threads asks for one.
TEST(PipelinedReplayDifferential, DsmFallsBackToSerial) {
  const workload::History history = diff_history(21);
  const RunOutput serial =
      run_with(history, "dsm", 4, LoadModel::kCalls, 1, true);
  const RunOutput requested =
      run_with(history, "dsm", 4, LoadModel::kCalls, 8, true);
  expect_identical(serial.result, requested.result, "dsm replay_threads=8");
  EXPECT_EQ(normalized_telemetry(serial.telemetry),
            normalized_telemetry(requested.telemetry));
  // DSM exists to migrate; if nothing moved online the fixture is inert.
  EXPECT_GT(serial.result.online_moves, 0u);
}

// verify_incremental's O(E)-per-window cross-checks must also hold on
// the pipelined path (they run inside flush_window, downstream of the
// bulk apply).
TEST(PipelinedReplayDifferential, VerifyIncrementalHoldsUnderPipeline) {
  const workload::History history = diff_history(5);
  for (const char* spec : {"hashing", "kl:period_days=2"}) {
    const auto strategy = StrategyRegistry::global().make(spec, 7);
    SimulatorConfig cfg;
    cfg.k = 4;
    cfg.replay_threads = 2;
    cfg.verify_incremental = true;
    ShardingSimulator sim(history, *strategy, cfg);
    const SimulationResult r = sim.run();  // aborts on divergence
    EXPECT_FALSE(r.windows.empty()) << spec;
  }
}

}  // namespace
}  // namespace ethshard::core
