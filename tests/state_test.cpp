// Tests for the execution substrate: gas accounting, Merkle commitments
// and the world-state database (including value conservation and the
// migration-cost model).
#include <gtest/gtest.h>

#include "eth/chain.hpp"
#include "eth/gas.hpp"
#include "eth/merkle.hpp"
#include "eth/state.hpp"
#include "util/check.hpp"
#include "workload/generator.hpp"

namespace ethshard::eth {
namespace {

// ------------------------------------------------------------------- gas

Transaction transfer_tx(AccountId from, AccountId to, std::uint64_t value,
                        std::uint64_t gas_price = 1) {
  Transaction tx;
  tx.sender = from;
  tx.gas_price = gas_price;
  tx.calls.push_back(Call{from, to, CallKind::kTransfer, value});
  return tx;
}

TEST(Gas, PlainTransferCost) {
  const GasSchedule s;
  const Transaction tx = transfer_tx(1, 2, 100);
  // intrinsic + call + value surcharge + memory overhead
  EXPECT_EQ(transaction_gas(tx),
            s.g_transaction + s.g_call + s.g_callvalue +
                s.g_memory_per_call);
}

TEST(Gas, ZeroValueTransferSkipsSurcharge) {
  const GasSchedule s;
  const Transaction tx = transfer_tx(1, 2, 0);
  EXPECT_EQ(transaction_gas(tx),
            s.g_transaction + s.g_call + s.g_memory_per_call);
}

TEST(Gas, TransferToFreshAccountPaysNewAccount) {
  const GasSchedule s;
  const Transaction tx = transfer_tx(1, 2, 5);
  const std::uint64_t existing = transaction_gas(tx);
  const std::uint64_t fresh = transaction_gas(
      tx, [](AccountId id) { return id != 2; });
  EXPECT_EQ(fresh, existing + s.g_newaccount);
}

TEST(Gas, CreateCost) {
  const GasSchedule s;
  Transaction tx;
  tx.sender = 1;
  tx.calls.push_back(Call{1, 9, CallKind::kContractCreate, 0});
  EXPECT_EQ(transaction_gas(tx), s.g_transaction + s.g_create + s.g_sset +
                                     s.g_memory_per_call);
}

TEST(Gas, TraceCreatedAccountCountsAsExistingLater) {
  // Create contract 9, then transfer to it: the transfer must not pay
  // g_newaccount even if the pre-state lacks account 9.
  const GasSchedule s;
  Transaction tx;
  tx.sender = 1;
  tx.calls.push_back(Call{1, 9, CallKind::kContractCreate, 0});
  tx.calls.push_back(Call{1, 9, CallKind::kTransfer, 0});
  const std::uint64_t gas =
      transaction_gas(tx, [](AccountId) { return false; });
  EXPECT_EQ(gas, s.g_transaction + (s.g_create + s.g_sset) + s.g_call +
                     2 * s.g_memory_per_call);
}

TEST(Gas, FeeIsGasTimesPrice) {
  const Transaction tx = transfer_tx(1, 2, 100, /*gas_price=*/7);
  EXPECT_EQ(transaction_fee(tx), transaction_gas(tx) * 7);
}

TEST(Gas, CascadeCostsAccumulate) {
  Transaction tx;
  tx.sender = 1;
  tx.calls.push_back(Call{1, 5, CallKind::kContractCall, 0});
  const std::uint64_t one = transaction_gas(tx);
  tx.calls.push_back(Call{5, 6, CallKind::kContractCall, 0});
  EXPECT_GT(transaction_gas(tx), one);
}

// ---------------------------------------------------------------- merkle

std::vector<Hash256> make_leaves(std::size_t n) {
  std::vector<Hash256> leaves;
  for (std::size_t i = 0; i < n; ++i)
    leaves.push_back(keccak256("leaf" + std::to_string(i)));
  return leaves;
}

TEST(Merkle, SingleLeafRootIsLeaf) {
  const auto leaves = make_leaves(1);
  EXPECT_EQ(merkle_root(leaves), leaves[0]);
}

TEST(Merkle, EmptyRootIsDefined) {
  EXPECT_EQ(merkle_root({}), keccak256(""));
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  auto leaves = make_leaves(8);
  const Hash256 root = merkle_root(leaves);
  leaves[3][0] ^= 0x01;
  EXPECT_NE(merkle_root(leaves), root);
}

TEST(Merkle, RootDependsOnOrder) {
  auto leaves = make_leaves(4);
  const Hash256 root = merkle_root(leaves);
  std::swap(leaves[0], leaves[1]);
  EXPECT_NE(merkle_root(leaves), root);
}

TEST(Merkle, TreeRootMatchesFreeFunction) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 8u, 13u}) {
    const auto leaves = make_leaves(n);
    const MerkleTree tree(leaves);
    EXPECT_EQ(tree.root(), merkle_root(leaves)) << "n=" << n;
  }
}

TEST(Merkle, ProofsVerifyForEveryLeaf) {
  for (std::size_t n : {1u, 2u, 3u, 7u, 12u}) {
    const auto leaves = make_leaves(n);
    const MerkleTree tree(leaves);
    for (std::size_t i = 0; i < n; ++i) {
      const auto proof = tree.prove(i);
      EXPECT_TRUE(MerkleTree::verify(leaves[i], i, proof, tree.root()))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(Merkle, TamperedProofFails) {
  const auto leaves = make_leaves(8);
  const MerkleTree tree(leaves);
  auto proof = tree.prove(3);
  proof[1].sibling[0] ^= 0xFF;
  EXPECT_FALSE(MerkleTree::verify(leaves[3], 3, proof, tree.root()));
}

TEST(Merkle, WrongLeafFails) {
  const auto leaves = make_leaves(8);
  const MerkleTree tree(leaves);
  const auto proof = tree.prove(3);
  EXPECT_FALSE(MerkleTree::verify(leaves[4], 3, proof, tree.root()));
}

TEST(Merkle, WrongIndexFails) {
  const auto leaves = make_leaves(8);
  const MerkleTree tree(leaves);
  const auto proof = tree.prove(3);
  EXPECT_FALSE(MerkleTree::verify(leaves[3], 4, proof, tree.root()));
}

TEST(Merkle, OutOfRangeProofThrows) {
  const MerkleTree tree(make_leaves(4));
  EXPECT_THROW(tree.prove(4), util::CheckFailure);
}

// ----------------------------------------------------------------- state

Chain single_block_chain(std::vector<Transaction> txs) {
  Chain chain;
  Block b;
  b.number = 0;
  b.timestamp = 1000;
  b.transactions = std::move(txs);
  chain.append(std::move(b));
  return chain;
}

TEST(StateDb, TransferMovesValue) {
  StateDb db;
  db.credit(1, 1'000'000);
  const Chain chain = single_block_chain({transfer_tx(1, 2, 300, 0)});
  const BlockApplyResult r = db.apply_chain(chain);
  EXPECT_EQ(r.transactions, 1u);
  EXPECT_EQ(r.calls, 1u);
  EXPECT_EQ(db.balance(2), 300u);
  EXPECT_EQ(db.balance(1), 1'000'000u - 300);
  EXPECT_TRUE(db.check_conservation());
}

TEST(StateDb, FeesAreChargedAndConserved) {
  StateDb db;
  db.credit(1, 10'000'000);
  const Chain chain = single_block_chain({transfer_tx(1, 2, 100, 2)});
  const BlockApplyResult r = db.apply_chain(chain);
  EXPECT_GT(r.fees_wei, 0u);
  EXPECT_EQ(r.fees_wei, db.total_fees());
  EXPECT_EQ(db.balance(1), 10'000'000u - 100 - r.fees_wei);
  EXPECT_TRUE(db.check_conservation());
}

TEST(StateDb, InsufficientBalanceClamps) {
  StateDb db;  // account 1 has nothing
  const Chain chain = single_block_chain({transfer_tx(1, 2, 500, 0)});
  const BlockApplyResult r = db.apply_chain(chain);
  EXPECT_EQ(r.clamped_transfers, 1u);
  EXPECT_EQ(db.balance(2), 0u);
  EXPECT_TRUE(db.check_conservation());
}

TEST(StateDb, NonceIncrementsPerTransaction) {
  StateDb db;
  db.credit(1, 1000);
  const Chain chain = single_block_chain(
      {transfer_tx(1, 2, 1, 0), transfer_tx(1, 3, 1, 0)});
  db.apply_chain(chain);
  EXPECT_EQ(db.nonce(1), 2u);
}

TEST(StateDb, ContractCallsGrowStorage) {
  StateDb db;
  db.credit(1, 1000);
  Transaction tx;
  tx.sender = 1;
  tx.gas_price = 0;
  tx.calls.push_back(Call{1, 7, CallKind::kContractCreate, 0});
  tx.calls.push_back(Call{1, 7, CallKind::kContractCall, 0});
  tx.calls.push_back(Call{1, 7, CallKind::kContractCall, 0});
  db.apply_chain(single_block_chain({tx}));
  EXPECT_TRUE(db.is_contract(7));
  EXPECT_GE(db.storage_slots(7), 3u);  // create seed + 2 activations
}

TEST(StateDb, MigrationBytesScaleWithStorage) {
  StateDb db;
  db.credit(1, 1000);
  Transaction tx;
  tx.sender = 1;
  tx.gas_price = 0;
  tx.calls.push_back(Call{1, 7, CallKind::kContractCreate, 0});
  for (int i = 0; i < 10; ++i)
    tx.calls.push_back(Call{1, 7, CallKind::kContractCall, 0});
  db.apply_chain(single_block_chain({tx}));
  EXPECT_GT(db.migration_bytes(7), db.migration_bytes(1));
  EXPECT_EQ(db.migration_bytes(999), 0u);  // unknown account
}

TEST(StateDb, BlocksMustApplyInOrder) {
  StateDb db;
  Chain chain;
  Block b0;
  b0.number = 0;
  b0.timestamp = 1;
  chain.append(std::move(b0));
  Block b1;
  b1.number = 1;
  b1.timestamp = 2;
  b1.parent_hash = chain.block_hash(0);
  chain.append(std::move(b1));

  db.apply(chain.block(1 - 1));
  EXPECT_THROW(db.apply(chain.block(0)), util::CheckFailure);  // replay
  EXPECT_NO_THROW(db.apply(chain.block(1)));
}

TEST(StateDb, StateRootChangesWithState) {
  StateDb a;
  StateDb b;
  a.credit(1, 100);
  b.credit(1, 100);
  EXPECT_EQ(a.state_root(), b.state_root());
  b.credit(2, 5);
  EXPECT_NE(a.state_root(), b.state_root());
}

TEST(StateDb, StateRootIsInsertionOrderIndependent) {
  StateDb a;
  StateDb b;
  a.credit(1, 100);
  a.credit(2, 200);
  b.credit(2, 200);
  b.credit(1, 100);
  EXPECT_EQ(a.state_root(), b.state_root());
}

TEST(StateDb, ExecutesGeneratedHistory) {
  workload::GeneratorConfig cfg;
  cfg.scale = 0.0005;
  cfg.seed = 3;
  const workload::History history =
      workload::EthereumHistoryGenerator(cfg).generate();

  StateDb db;
  // Premine every account generously so transfers rarely clamp.
  for (const AccountInfo& info : history.accounts.all())
    if (info.kind == AccountKind::kExternallyOwned)
      db.credit(info.id, 1'000'000'000ULL);

  const BlockApplyResult r = db.apply_chain(history.chain);
  EXPECT_EQ(r.transactions, history.chain.transaction_count());
  EXPECT_GT(r.gas_used, 21000 * r.transactions);
  EXPECT_TRUE(db.check_conservation());

  // Contracts touched by calls must have storage.
  std::uint64_t contracts_with_storage = 0;
  for (const AccountInfo& info : history.accounts.all())
    if (info.kind == AccountKind::kContract && db.storage_slots(info.id) > 0)
      ++contracts_with_storage;
  EXPECT_GT(contracts_with_storage, 0u);
}

}  // namespace
}  // namespace ethshard::eth
