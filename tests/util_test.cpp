// Unit tests for the util module: RNG, hashing, time model, CSV, checks.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/args.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/parallel.hpp"
#include "util/hash.hpp"
#include "util/pipeline.hpp"
#include "util/rng.hpp"
#include "util/slot_map.hpp"
#include "util/sim_time.hpp"

namespace ethshard::util {
namespace {

// ------------------------------------------------------------------- Rng

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(Rng, UniformBoundOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformZeroBoundThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(0), CheckFailure);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.uniform_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(29);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.03);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(31);
  double sum = 0;
  for (int i = 0; i < 20000; ++i)
    sum += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(sum / 20000.0, 3.0, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(37);
  double sum = 0;
  for (int i = 0; i < 5000; ++i)
    sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / 5000.0, 200.0, 2.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(41);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-5.0), 0u);
}

TEST(Rng, GeometricMean) {
  Rng rng(43);
  double sum = 0;
  for (int i = 0; i < 20000; ++i)
    sum += static_cast<double>(rng.geometric(0.5));
  EXPECT_NEAR(sum / 20000.0, 1.0, 0.05);  // mean (1-p)/p = 1
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(47);
  const std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 20000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 20000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 20000.0, 0.6, 0.02);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  Rng rng(53);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), CheckFailure);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(59);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, ForkDivergesFromParent) {
  Rng a(61);
  Rng child = a.fork();
  EXPECT_NE(a.next(), child.next());
}

TEST(Zipf, RankZeroMostPopular) {
  Rng rng(67);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[99]);
}

TEST(Zipf, ZeroExponentIsUniform) {
  Rng rng(71);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c / 50000.0, 0.1, 0.02);
}

TEST(Zipf, SingleElement) {
  Rng rng(73);
  ZipfSampler zipf(1, 2.0);
  EXPECT_EQ(zipf.sample(rng), 0u);
}

// ------------------------------------------------------------------ hash

TEST(Hash, Fnv1aKnownVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171F73967E8ULL);
}

TEST(Hash, Mix64IsBijectiveish) {
  // Distinct inputs must give distinct outputs on a sample (fmix64 is a
  // permutation, so collisions are impossible).
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 10000; ++i) outs.insert(mix64(i));
  EXPECT_EQ(outs.size(), 10000u);
}

TEST(Hash, Mix64SpreadsLowBits) {
  // Consecutive ids must not land in consecutive buckets.
  int same_bucket_runs = 0;
  for (std::uint64_t i = 0; i + 1 < 1000; ++i)
    if (mix64(i) % 8 == mix64(i + 1) % 8) ++same_bucket_runs;
  EXPECT_LT(same_bucket_runs, 250);  // ~125 expected for uniform
}

TEST(Hash, HashCombineOrderMatters) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

// ------------------------------------------------------------------ time

TEST(SimTime, EpochRoundTrip) {
  EXPECT_EQ(days_from_civil(1970, 1, 1), 0);
  EXPECT_EQ(civil_from_days(0), (CivilDate{1970, 1, 1}));
}

TEST(SimTime, KnownDates) {
  // 2015-07-30 (Ethereum genesis) is 16646 days after the epoch.
  EXPECT_EQ(days_from_civil(2015, 7, 30), 16646);
  EXPECT_EQ(make_timestamp(2015, 7, 30), 16646 * kDay);
}

TEST(SimTime, RoundTripAllDaysInRange) {
  for (std::int64_t d = days_from_civil(2015, 1, 1);
       d <= days_from_civil(2018, 12, 31); ++d) {
    const CivilDate c = civil_from_days(d);
    EXPECT_EQ(days_from_civil(c.year, c.month, c.day), d);
  }
}

TEST(SimTime, LeapYearHandling) {
  EXPECT_EQ(days_from_civil(2016, 3, 1) - days_from_civil(2016, 2, 28), 2);
  EXPECT_EQ(days_from_civil(2017, 3, 1) - days_from_civil(2017, 2, 28), 1);
}

TEST(SimTime, MonthFloor) {
  const Timestamp mid = make_timestamp(2016, 9, 18) + 5 * kHour;
  EXPECT_EQ(month_floor(mid), make_timestamp(2016, 9, 1));
}

TEST(SimTime, AddMonthsAcrossYearBoundary) {
  const Timestamp nov = make_timestamp(2015, 11, 10);
  EXPECT_EQ(add_months(nov, 2), make_timestamp(2016, 1, 1));
  EXPECT_EQ(add_months(nov, -11), make_timestamp(2014, 12, 1));
}

TEST(SimTime, MonthLabelMatchesPaperAxis) {
  EXPECT_EQ(month_label(make_timestamp(2015, 7, 30)), "07.15");
  EXPECT_EQ(month_label(make_timestamp(2017, 12, 31)), "12.17");
}

TEST(SimTime, DateLabel) {
  EXPECT_EQ(date_label(make_timestamp(2016, 10, 2)), "2016-10-02");
}

TEST(SimTime, AnchorsOrdered) {
  EXPECT_LT(genesis_time(), attack_start_time());
  EXPECT_LT(attack_start_time(), attack_end_time());
  EXPECT_LT(attack_end_time(), study_end_time());
}

// ------------------------------------------------------------------- csv

TEST(Csv, WriteSimpleRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a,b", "say \"hi\"", "plain"});
  EXPECT_EQ(os.str(), "\"a,b\",\"say \"\"hi\"\"\",plain\n");
}

TEST(Csv, FieldByFieldTypes) {
  std::ostringstream os;
  CsvWriter w(os);
  w.field(std::uint64_t{42})
      .field(std::int64_t{-7})
      .field(1.5)
      .field(std::string_view{"x"});
  w.end_row();
  EXPECT_EQ(os.str(), "42,-7,1.5,x\n");
}

TEST(Csv, ParseRoundTrip) {
  const auto fields = parse_csv_line("\"a,b\",\"say \"\"hi\"\"\",plain");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a,b");
  EXPECT_EQ(fields[1], "say \"hi\"");
  EXPECT_EQ(fields[2], "plain");
}

TEST(Csv, ParseEmptyFields) {
  const auto fields = parse_csv_line(",,");
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_TRUE(f.empty());
}

TEST(Csv, ReaderSkipsBlankLines) {
  std::istringstream in("a,b\n\n\nc,d\n");
  CsvReader r(in);
  std::vector<std::string> fields;
  ASSERT_TRUE(r.read_row(fields));
  EXPECT_EQ(fields[0], "a");
  ASSERT_TRUE(r.read_row(fields));
  EXPECT_EQ(fields[0], "c");
  EXPECT_FALSE(r.read_row(fields));
}

TEST(Csv, ToleratesCrlf) {
  std::istringstream in("a,b\r\nc,d\r\n");
  CsvReader r(in);
  std::vector<std::string> fields;
  ASSERT_TRUE(r.read_row(fields));
  EXPECT_EQ(fields[1], "b");
}

// ------------------------------------------------------------------ args

ArgParser make_args(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return ArgParser(static_cast<int>(v.size()), v.data());
}

TEST(Args, SpaceSeparatedFlags) {
  const ArgParser a = make_args({"--scale", "0.5", "--seed", "42"});
  EXPECT_DOUBLE_EQ(a.get_double("scale", 0), 0.5);
  EXPECT_EQ(a.get_uint("seed", 0), 42u);
}

TEST(Args, EqualsSyntax) {
  const ArgParser a = make_args({"--method=METIS", "--shards=8"});
  EXPECT_EQ(a.get("method", ""), "METIS");
  EXPECT_EQ(a.get_int("shards", 0), 8);
}

TEST(Args, Positional) {
  const ArgParser a = make_args({"simulate", "--shards", "4", "extra"});
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "simulate");
  EXPECT_EQ(a.positional()[1], "extra");
}

TEST(Args, BooleanSwitch) {
  const ArgParser a = make_args({"--verbose", "--csv", "out.csv"});
  EXPECT_TRUE(a.get_bool("verbose", false));
  EXPECT_FALSE(a.get_bool("quiet", false));
  EXPECT_EQ(a.get("csv", ""), "out.csv");
}

TEST(Args, BooleanExplicitValues) {
  const ArgParser a = make_args({"--x=true", "--y=0"});
  EXPECT_TRUE(a.get_bool("x", false));
  EXPECT_FALSE(a.get_bool("y", true));
}

TEST(Args, Fallbacks) {
  const ArgParser a = make_args({});
  EXPECT_EQ(a.get("missing", "dflt"), "dflt");
  EXPECT_EQ(a.get_int("missing", -3), -3);
  EXPECT_DOUBLE_EQ(a.get_double("missing", 1.5), 1.5);
}

TEST(Args, MalformedValuesThrow) {
  const ArgParser a = make_args({"--n", "abc", "--f", "1.2.3", "--b", "maybe"});
  EXPECT_THROW(a.get_int("n", 0), CheckFailure);
  EXPECT_THROW(a.get_double("f", 0), CheckFailure);
  EXPECT_THROW(a.get_bool("b", false), CheckFailure);
}

TEST(Args, UnusedFlagDetection) {
  const ArgParser a = make_args({"--used", "1", "--typo", "2"});
  a.get_int("used", 0);
  const auto unused = a.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Args, NegativeNumberValue) {
  const ArgParser a = make_args({"--offset", "-7"});
  EXPECT_EQ(a.get_int("offset", 0), -7);
}

// -------------------------------------------------------------- parallel

TEST(Parallel, ForCoversAllIndicesExactlyOnce) {
  std::vector<std::atomic<int>> hits(500);
  parallel_for(500, [&](std::size_t i) { ++hits[i]; }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, MapPreservesOrder) {
  std::vector<int> inputs(100);
  std::iota(inputs.begin(), inputs.end(), 0);
  const auto out =
      parallel_map(inputs, [](int v) { return v * v; }, 8);
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i * i);
}

TEST(Parallel, ZeroCountIsNoop) {
  bool touched = false;
  parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(Parallel, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
               1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Parallel, ExceptionsPropagate) {
  EXPECT_THROW(
      parallel_for(64,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   },
                   4),
      std::runtime_error);
}

TEST(Parallel, DefaultThreadCountPositive) {
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(Parallel, MapHandlesNonDefaultConstructibleResults) {
  struct Boxed {
    explicit Boxed(int v) : value(v) {}
    Boxed(Boxed&&) = default;
    Boxed& operator=(Boxed&&) = default;
    int value;
  };
  static_assert(!std::is_default_constructible_v<Boxed>);
  std::vector<int> inputs{1, 2, 3, 4};
  const auto out =
      parallel_map(inputs, [](int v) { return Boxed(v * 10); }, 2);
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i].value, static_cast<int>(i + 1) * 10);
}

TEST(Parallel, WorkerExceptionRethrownExactlyOnce) {
  // Several workers may throw; the caller must see exactly one exception
  // (the first), and a subsequent call must start clean.
  std::atomic<int> caught{0};
  for (int attempt = 0; attempt < 2; ++attempt) {
    try {
      parallel_for(
          64,
          [](std::size_t i) {
            if (i % 7 == 0) throw std::runtime_error("boom " + std::to_string(i));
          },
          4);
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      ++caught;
      EXPECT_EQ(std::string(e.what()).rfind("boom", 0), 0u);
    }
  }
  EXPECT_EQ(caught.load(), 2);  // one per call, never zero or doubled
}

TEST(Parallel, ChunkCountMatchesCeilDiv) {
  EXPECT_EQ(chunk_count(0, 100), 0u);
  EXPECT_EQ(chunk_count(1, 100), 1u);
  EXPECT_EQ(chunk_count(100, 100), 1u);
  EXPECT_EQ(chunk_count(101, 100), 2u);
  EXPECT_EQ(chunk_count(1000, 64), 16u);
}

TEST(Parallel, ForChunkedCoversAllIndicesExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    std::vector<std::atomic<int>> hits(1000);
    std::atomic<std::size_t> chunks_seen{0};
    parallel_for_chunked(
        1000, 64,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          // Chunk boundaries are a pure function of (count, grain) —
          // never of the thread count.
          EXPECT_EQ(begin, chunk * 64);
          EXPECT_EQ(end, std::min<std::size_t>(begin + 64, 1000));
          for (std::size_t i = begin; i < end; ++i) ++hits[i];
          ++chunks_seen;
        },
        threads);
    EXPECT_EQ(chunks_seen.load(), chunk_count(1000, 64));
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(Parallel, ReduceMatchesSerialSum) {
  std::vector<std::uint64_t> values(10007);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = i * i % 97;
  const std::uint64_t expected =
      std::accumulate(values.begin(), values.end(), std::uint64_t{0});
  for (const std::size_t threads : {1u, 3u, 8u}) {
    const std::uint64_t got = parallel_reduce<std::uint64_t>(
        values.size(), 256, 0,
        [&](std::size_t begin, std::size_t end) {
          std::uint64_t s = 0;
          for (std::size_t i = begin; i < end; ++i) s += values[i];
          return s;
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; }, threads);
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(Parallel, ExclusivePrefixSumMatchesSerial) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                              std::size_t{1000}, std::size_t{100000}}) {
    std::vector<std::uint64_t> values(n);
    for (std::size_t i = 0; i < n; ++i) values[i] = (i * 31 + 7) % 11;
    std::vector<std::uint64_t> expected(n);
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expected[i] = running;
      running += values[i];
    }
    for (const std::size_t threads : {1u, 2u, 8u}) {
      std::vector<std::uint64_t> scratch = values;
      const std::uint64_t total = exclusive_prefix_sum(scratch, threads);
      EXPECT_EQ(total, running) << "n=" << n << " threads=" << threads;
      EXPECT_EQ(scratch, expected) << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(Parallel, CapNestedThreadsSharesTheBudget) {
  const std::size_t hw = default_thread_count();
  // requested == 0 → take whatever the outer level leaves over.
  EXPECT_EQ(cap_nested_threads(0, 1), hw);
  EXPECT_GE(cap_nested_threads(0, hw), 1u);
  // An explicit request is honoured only up to the per-caller share.
  EXPECT_EQ(cap_nested_threads(1, 4), 1u);
  EXPECT_LE(cap_nested_threads(64, 2) * 2, std::max<std::size_t>(hw, 2));
  // Never returns zero, even when outer workers already oversubscribe.
  EXPECT_GE(cap_nested_threads(8, 10 * hw), 1u);
}

// ----------------------------------------------------------------- check

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(ETHSHARD_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsWithLocation) {
  try {
    ETHSHARD_CHECK(false);
    FAIL() << "expected throw";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("util_test.cpp"),
              std::string::npos);
  }
}

TEST(Check, MessageIsIncluded) {
  try {
    ETHSHARD_CHECK_MSG(false, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"),
              std::string::npos);
  }
}

// --------------------------------------------------------------- SlotMap

TEST(SlotMap, InsertThenLookup) {
  SlotMap m;
  auto [v1, fresh1] = m.try_emplace(42, 7);
  EXPECT_TRUE(fresh1);
  EXPECT_EQ(v1, 7u);
  auto [v2, fresh2] = m.try_emplace(42, 99);
  EXPECT_FALSE(fresh2);   // key already present: value untouched
  EXPECT_EQ(v2, 7u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(SlotMap, ValueReferenceIsMutable) {
  SlotMap m;
  m.try_emplace(5, 0).first = 123;
  EXPECT_EQ(m.try_emplace(5, 0).first, 123u);
}

TEST(SlotMap, ClearForgetsEverythingButKeepsCapacity) {
  SlotMap m(16);
  for (std::uint64_t k = 0; k < 10; ++k) m.try_emplace(k, 1);
  const std::size_t cap = m.capacity();
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.capacity(), cap);
  // Every key reads as absent again (fresh insert succeeds).
  for (std::uint64_t k = 0; k < 10; ++k)
    EXPECT_TRUE(m.try_emplace(k, 2).second);
}

TEST(SlotMap, GrowthPreservesLiveEntries) {
  SlotMap m(16);
  constexpr std::uint64_t kKeys = 10000;
  for (std::uint64_t k = 0; k < kKeys; ++k)
    EXPECT_TRUE(m.try_emplace(k * 0x9e3779b97f4a7c15ULL,
                              static_cast<std::uint32_t>(k))
                    .second);
  EXPECT_EQ(m.size(), kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    auto [v, fresh] = m.try_emplace(k * 0x9e3779b97f4a7c15ULL, 0);
    EXPECT_FALSE(fresh);
    EXPECT_EQ(v, static_cast<std::uint32_t>(k));
  }
}

TEST(SlotMap, ManyClearCyclesStayIndependent) {
  // The epoch trick must make every cleared generation read as empty —
  // a stale slot leaking through would show up as fresh == false.
  SlotMap m(16);
  for (int cycle = 0; cycle < 1000; ++cycle) {
    for (std::uint64_t k = 0; k < 8; ++k)
      EXPECT_TRUE(m.try_emplace(k, static_cast<std::uint32_t>(cycle)).second);
    EXPECT_EQ(m.size(), 8u);
    m.clear();
  }
}

TEST(SlotMap, PackedPairKeysDoNotCollide) {
  // The aggregator packs (lo << 32 | hi) vertex pairs — keys differing
  // only in the high half must still land in distinct slots.
  SlotMap m;
  for (std::uint64_t lo = 0; lo < 64; ++lo)
    for (std::uint64_t hi = lo; hi < 64; ++hi)
      EXPECT_TRUE(m.try_emplace((lo << 32) | hi, 0).second);
  EXPECT_EQ(m.size(), 64u * 65u / 2u);
}

// ---------------------------------------------------------- BoundedQueue

TEST(BoundedQueue, FifoThroughOneThread) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  q.close();
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, PushAfterCloseIsRefused) {
  BoundedQueue<int> q(2);
  q.close();
  EXPECT_FALSE(q.push(7));
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, ProducerConsumerPreservesOrderUnderBackpressure) {
  constexpr int kItems = 10000;
  BoundedQueue<int> q(2);  // tiny capacity forces producer stalls
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i)
      if (!q.push(i)) return;
    q.close();
  });
  int expect = 0;
  while (const std::optional<int> v = q.pop()) EXPECT_EQ(*v, expect++);
  producer.join();
  EXPECT_EQ(expect, kItems);
  // With capacity 2 and 10k items someone must have waited; the stall
  // counters exist to expose exactly that to the obs layer.
  EXPECT_GT(q.push_waits() + q.pop_waits(), 0u);
}

TEST(BoundedQueue, ConsumerDrainsBufferedItemsBeforeSeeingClose) {
  BoundedQueue<std::string> q(8);
  EXPECT_TRUE(q.push("a"));
  EXPECT_TRUE(q.push("b"));
  q.close();
  EXPECT_EQ(q.pop(), "a");
  EXPECT_EQ(q.pop(), "b");
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, FailRethrowsInConsumerAfterDrain) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  std::thread producer([&] {
    try {
      throw std::runtime_error("producer exploded");
    } catch (...) {
      q.fail(std::current_exception());
    }
  });
  producer.join();
  // Buffered work is still delivered; the error surfaces at end of queue.
  EXPECT_EQ(q.pop(), 1);
  try {
    (void)q.pop();
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "producer exploded");
  }
}

TEST(BoundedQueue, CloseWakesProducerBlockedAtCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));  // queue now full
  std::atomic<int> refused{0};
  std::thread producer([&] {
    // Blocks at capacity; close() below must wake it, and the push must
    // be refused rather than enqueued into a closed queue.
    if (!q.push(3)) refused.fetch_add(1);
  });
  // Give the producer time to reach the blocked cv.wait before closing,
  // so this exercises the wakeup rather than the fast-path refusal.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();  // hangs forever here if close() fails to wake push()
  EXPECT_EQ(refused.load(), 1);
  // The refused item was dropped, not enqueued.
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, PopAfterCloseDrainsRemainingItemsExactlyOnce) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(10));
  EXPECT_TRUE(q.push(11));
  EXPECT_TRUE(q.push(12));
  q.close();
  std::vector<int> drained;
  while (const std::optional<int> v = q.pop()) drained.push_back(*v);
  EXPECT_EQ(drained, (std::vector<int>{10, 11, 12}));
  // Once drained, pop stays empty — no item is delivered twice.
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, MoveOnlyPayloadsWork) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.push(std::make_unique<int>(42)));
  q.close();
  const auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

// Records every callback so tests can assert on depths and wait times.
struct RecordingObserver final : QueueObserver {
  struct Event {
    bool push = false;
    std::size_t depth = 0;
    double wait_ms = 0;
  };
  std::mutex mu;
  std::vector<Event> events;
  void on_push(std::size_t depth, double wait_ms) override {
    const std::lock_guard<std::mutex> lock(mu);
    events.push_back({true, depth, wait_ms});
  }
  void on_pop(std::size_t depth, double wait_ms) override {
    const std::lock_guard<std::mutex> lock(mu);
    events.push_back({false, depth, wait_ms});
  }
};

TEST(BoundedQueue, ObserverSeesDepthsWithoutWaitsWhenUncontended) {
  BoundedQueue<int> q(4);
  RecordingObserver obs;
  q.set_observer(&obs);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.pop(), 1);
  ASSERT_EQ(obs.events.size(), 3u);
  EXPECT_TRUE(obs.events[0].push);
  EXPECT_EQ(obs.events[0].depth, 1u);
  EXPECT_EQ(obs.events[1].depth, 2u);
  EXPECT_FALSE(obs.events[2].push);
  EXPECT_EQ(obs.events[2].depth, 1u);
  for (const RecordingObserver::Event& e : obs.events)
    EXPECT_DOUBLE_EQ(e.wait_ms, 0.0);  // nobody blocked
}

TEST(BoundedQueue, ObserverAttributesProducerBackpressureWait) {
  BoundedQueue<int> q(1);  // full after one item
  RecordingObserver obs;
  q.set_observer(&obs);
  EXPECT_TRUE(q.push(1));
  std::thread producer([&] { EXPECT_TRUE(q.push(2)); });
  // Hold the queue full long enough that the producer measurably blocks.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_EQ(q.pop(), 2);

  double blocked_push_ms = 0;
  for (const RecordingObserver::Event& e : obs.events) {
    EXPECT_LE(e.depth, 1u);  // depth never exceeds capacity
    if (e.push) blocked_push_ms = std::max(blocked_push_ms, e.wait_ms);
  }
  EXPECT_GT(blocked_push_ms, 5.0);
}

TEST(BoundedQueue, ObserverAttributesConsumerPrefetchWait) {
  BoundedQueue<int> q(2);
  RecordingObserver obs;
  q.set_observer(&obs);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_TRUE(q.push(7));
    q.close();
  });
  EXPECT_EQ(q.pop(), 7);  // blocks until the delayed producer delivers
  producer.join();

  double blocked_pop_ms = 0;
  for (const RecordingObserver::Event& e : obs.events)
    if (!e.push) blocked_pop_ms = std::max(blocked_pop_ms, e.wait_ms);
  EXPECT_GT(blocked_pop_ms, 5.0);
}

TEST(BoundedQueue, ObserverSilentWhenDetached) {
  BoundedQueue<int> q(2);
  RecordingObserver obs;
  q.set_observer(&obs);
  q.set_observer(nullptr);
  EXPECT_TRUE(q.push(1));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_TRUE(obs.events.empty());
}

}  // namespace
}  // namespace ethshard::util
