// Unit tests for the blockchain substrate: Keccak-256 vectors, addresses,
// transactions, block hashing, chain linkage and validation.
#include <gtest/gtest.h>

#include <functional>

#include "eth/address.hpp"
#include "eth/block.hpp"
#include "eth/chain.hpp"
#include "eth/keccak.hpp"
#include "eth/rlp.hpp"
#include "eth/transaction.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ethshard::eth {
namespace {

// ---------------------------------------------------------------- keccak

TEST(Keccak, EmptyStringVector) {
  // Published Keccak-256 (pre-NIST padding) vector; this is the digest
  // Ethereum uses for the empty string.
  EXPECT_EQ(to_hex(keccak256("")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
}

TEST(Keccak, AbcVector) {
  EXPECT_EQ(to_hex(keccak256("abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45");
}

TEST(Keccak, LongMessageVector) {
  // "The quick brown fox jumps over the lazy dog"
  EXPECT_EQ(to_hex(keccak256("The quick brown fox jumps over the lazy dog")),
            "4d741b6f1eb29cb2a9b9911c82f56fa8d73b04959d3d9d222895df6c0b28aa15");
}

TEST(Keccak, MultiBlockMessage) {
  // Message longer than the 136-byte rate exercises multi-block absorb.
  const std::string msg(1000, 'a');
  const Hash256 one_shot = keccak256(msg);
  Keccak256 incremental;
  for (std::size_t i = 0; i < msg.size(); i += 7)
    incremental.update(msg.substr(i, 7));
  EXPECT_EQ(one_shot, incremental.finalize());
}

TEST(Keccak, RateBoundaryLengths) {
  // Lengths straddling the 136-byte rate: padding edge cases.
  for (std::size_t len : {135u, 136u, 137u, 271u, 272u, 273u}) {
    const std::string msg(len, 'x');
    Keccak256 a;
    a.update(msg);
    Keccak256 b;
    b.update(msg.substr(0, len / 2));
    b.update(msg.substr(len / 2));
    EXPECT_EQ(a.finalize(), b.finalize()) << "len=" << len;
  }
}

TEST(Keccak, DifferentInputsDifferentDigests) {
  EXPECT_NE(keccak256("a"), keccak256("b"));
  EXPECT_NE(keccak256(""), keccak256(std::string(1, '\0')));
}

TEST(Keccak, HexRoundTrip) {
  const Hash256 h = keccak256("roundtrip");
  EXPECT_EQ(hash_from_hex(to_hex(h)), h);
  EXPECT_EQ(hash_from_hex("0x" + to_hex(h)), h);
}

TEST(Keccak, HexRejectsMalformed) {
  EXPECT_THROW(hash_from_hex("abc"), util::CheckFailure);
  EXPECT_THROW(hash_from_hex(std::string(64, 'g')), util::CheckFailure);
}

TEST(Keccak, PrefixU64BigEndian) {
  Hash256 h{};
  h[0] = 0x01;
  h[7] = 0xFF;
  EXPECT_EQ(hash_prefix_u64(h), 0x01000000000000FFULL);
}

TEST(Keccak, FinalizeTwiceThrows) {
  Keccak256 h;
  h.update("x");
  h.finalize();
  EXPECT_THROW(h.finalize(), util::CheckFailure);
}

// ------------------------------------------------------------------- rlp

using rlp::Bytes;
using rlp::Item;

Bytes bytes_of(std::initializer_list<int> xs) {
  Bytes b;
  for (int x : xs) b.push_back(static_cast<std::uint8_t>(x));
  return b;
}

TEST(Rlp, YellowPaperStringVectors) {
  // rlp("dog") = [0x83, 'd', 'o', 'g']
  EXPECT_EQ(rlp::encode_string("dog"),
            bytes_of({0x83, 'd', 'o', 'g'}));
  // rlp("") = [0x80]
  EXPECT_EQ(rlp::encode_string(""), bytes_of({0x80}));
  // Single byte below 0x80 encodes itself.
  EXPECT_EQ(rlp::encode_string("\x0f"), bytes_of({0x0f}));
  EXPECT_EQ(rlp::encode_string("a"), bytes_of({'a'}));
}

TEST(Rlp, YellowPaperIntegerVectors) {
  EXPECT_EQ(rlp::encode_integer(0), bytes_of({0x80}));
  EXPECT_EQ(rlp::encode_integer(15), bytes_of({0x0f}));
  // rlp(1024) = [0x82, 0x04, 0x00]
  EXPECT_EQ(rlp::encode_integer(1024), bytes_of({0x82, 0x04, 0x00}));
}

TEST(Rlp, YellowPaperListVectors) {
  // rlp(["cat","dog"]) = [0xc8, 0x83,'c','a','t', 0x83,'d','o','g']
  const Item cat_dog =
      Item::list({Item::string("cat"), Item::string("dog")});
  EXPECT_EQ(rlp::encode(cat_dog),
            bytes_of({0xc8, 0x83, 'c', 'a', 't', 0x83, 'd', 'o', 'g'}));
  // rlp([]) = [0xc0]
  EXPECT_EQ(rlp::encode(Item::list({})), bytes_of({0xc0}));
  // The "set-theoretic three": [ [], [[]], [ [], [[]] ] ]
  const Item empty = Item::list({});
  const Item nested = Item::list({empty});
  const Item three = Item::list({empty, nested, Item::list({empty, nested})});
  EXPECT_EQ(rlp::encode(three),
            bytes_of({0xc7, 0xc0, 0xc1, 0xc0, 0xc3, 0xc0, 0xc1, 0xc0}));
}

TEST(Rlp, LongStringUsesLengthOfLength) {
  // 56-byte string: 0xb8 0x38 <payload>.
  const std::string s(56, 'x');
  const Bytes enc = rlp::encode_string(s);
  ASSERT_EQ(enc.size(), 58u);
  EXPECT_EQ(enc[0], 0xb8);
  EXPECT_EQ(enc[1], 56);
}

TEST(Rlp, RoundTripNestedStructures) {
  const Item item = Item::list(
      {Item::integer(0), Item::integer(1024), Item::string("hello rlp"),
       Item::list({Item::string(std::string(100, 'y')),
                   Item::list({}), Item::integer(255)})});
  EXPECT_EQ(rlp::decode(rlp::encode(item)), item);
}

TEST(Rlp, IntegerRoundTrip) {
  for (std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 255ULL, 256ULL, 1024ULL,
        0xDEADBEEFULL, ~0ULL}) {
    EXPECT_EQ(rlp::decode(rlp::encode_integer(v)).to_integer(), v);
  }
}

TEST(Rlp, DecodeRejectsTrailingBytes) {
  Bytes enc = rlp::encode_string("dog");
  enc.push_back(0x00);
  EXPECT_THROW(rlp::decode(enc), util::CheckFailure);
}

TEST(Rlp, DecodeRejectsTruncation) {
  Bytes enc = rlp::encode_string("dog");
  enc.pop_back();
  EXPECT_THROW(rlp::decode(enc), util::CheckFailure);
}

TEST(Rlp, DecodeRejectsNonCanonicalSingleByte) {
  // 'a' must encode as itself, not as 0x81 0x61.
  EXPECT_THROW(rlp::decode(bytes_of({0x81, 0x61})), util::CheckFailure);
}

TEST(Rlp, DecodeRejectsNonMinimalLength) {
  // Long form with leading zero length byte.
  Bytes bad = {0xb9, 0x00, 0x38};
  bad.resize(3 + 56, 'x');
  EXPECT_THROW(rlp::decode(bad), util::CheckFailure);
}

TEST(Rlp, ToIntegerRejectsLists) {
  EXPECT_THROW(Item::list({}).to_integer(), util::CheckFailure);
}

TEST(Rlp, FuzzDecodeNeverCrashesAndIsCanonical) {
  // Random byte strings either fail to decode (CheckFailure) or decode to
  // an item whose re-encoding is byte-identical — the canonical-form
  // property strict decoding guarantees.
  ethshard::util::Rng rng(20240705);
  int decoded_ok = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes bytes(rng.uniform(24));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform(256));
    try {
      const Item item = rlp::decode(bytes);
      EXPECT_EQ(rlp::encode(item), bytes);
      ++decoded_ok;
    } catch (const util::CheckFailure&) {
      // fine: malformed input must throw, not crash
    }
  }
  EXPECT_GT(decoded_ok, 0);  // single bytes <=0x7f always decode
}

TEST(Rlp, FuzzEncodeDecodeRandomStructures) {
  ethshard::util::Rng rng(42);
  // Random nested items round-trip exactly.
  std::function<Item(int)> random_item = [&](int depth) -> Item {
    if (depth >= 3 || rng.bernoulli(0.6)) {
      Bytes b(rng.uniform(40));
      for (auto& x : b) x = static_cast<std::uint8_t>(rng.uniform(256));
      return Item::string(std::move(b));
    }
    std::vector<Item> children;
    const std::uint64_t n = rng.uniform(4);
    for (std::uint64_t i = 0; i < n; ++i)
      children.push_back(random_item(depth + 1));
    return Item::list(std::move(children));
  };
  for (int trial = 0; trial < 300; ++trial) {
    const Item item = random_item(0);
    EXPECT_EQ(rlp::decode(rlp::encode(item)), item);
  }
}

// --------------------------------------------------------------- address

TEST(Address, DerivationIsDeterministic) {
  EXPECT_EQ(Address::from_id(42), Address::from_id(42));
  EXPECT_NE(Address::from_id(42), Address::from_id(43));
}

TEST(Address, HexRoundTrip) {
  const Address a = Address::from_id(7);
  EXPECT_EQ(Address::from_hex(a.to_hex()), a);
  EXPECT_EQ(a.to_hex().size(), 42u);
  EXPECT_EQ(a.to_hex().substr(0, 2), "0x");
}

TEST(Address, HexRejectsBadLength) {
  EXPECT_THROW(Address::from_hex("0x1234"), util::CheckFailure);
}

TEST(AccountRegistry, DenseIds) {
  AccountRegistry reg;
  EXPECT_EQ(reg.create(AccountKind::kExternallyOwned, 100), 0u);
  EXPECT_EQ(reg.create(AccountKind::kContract, 200, 16), 1u);
  EXPECT_EQ(reg.create(AccountKind::kExternallyOwned, 300), 2u);
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.contract_count(), 1u);
  EXPECT_EQ(reg.info(1).kind, AccountKind::kContract);
  EXPECT_EQ(reg.info(1).created_at, 200);
  EXPECT_EQ(reg.info(1).storage_slots, 16u);
}

TEST(AccountRegistry, StorageGrowth) {
  AccountRegistry reg;
  const AccountId c = reg.create(AccountKind::kContract, 0, 4);
  reg.add_storage(c, 10);
  EXPECT_EQ(reg.info(c).storage_slots, 14u);
}

TEST(AccountRegistry, OutOfRangeThrows) {
  AccountRegistry reg;
  EXPECT_THROW(reg.info(0), util::CheckFailure);
}

// ----------------------------------------------------------- transaction

Transaction simple_transfer(AccountId from, AccountId to) {
  Transaction tx;
  tx.sender = from;
  tx.calls.push_back(Call{from, to, CallKind::kTransfer, 100});
  return tx;
}

TEST(Transaction, WellFormedTransfer) {
  EXPECT_TRUE(simple_transfer(1, 2).well_formed());
}

TEST(Transaction, EmptyTraceIsMalformed) {
  Transaction tx;
  tx.sender = 1;
  EXPECT_FALSE(tx.well_formed());
}

TEST(Transaction, FirstCallMustOriginateAtSender) {
  Transaction tx;
  tx.sender = 1;
  tx.calls.push_back(Call{2, 3, CallKind::kTransfer, 0});
  EXPECT_FALSE(tx.well_formed());
}

TEST(Transaction, InternalCallsMustChainFromTouchedAccounts) {
  Transaction tx;
  tx.sender = 1;
  tx.calls.push_back(Call{1, 2, CallKind::kContractCall, 0});
  tx.calls.push_back(Call{2, 3, CallKind::kTransfer, 5});   // ok: 2 touched
  tx.calls.push_back(Call{3, 4, CallKind::kContractCall, 0});  // ok: 3 touched
  EXPECT_TRUE(tx.well_formed());
  tx.calls.push_back(Call{9, 1, CallKind::kTransfer, 0});  // 9 never touched
  EXPECT_FALSE(tx.well_formed());
}

TEST(Transaction, HashCoversCallList) {
  Transaction a = simple_transfer(1, 2);
  Transaction b = simple_transfer(1, 2);
  EXPECT_EQ(a.hash(), b.hash());
  b.calls[0].value_wei = 101;
  EXPECT_NE(a.hash(), b.hash());
}

TEST(Transaction, HashCoversMetadata) {
  Transaction a = simple_transfer(1, 2);
  Transaction b = a;
  b.nonce = 7;
  EXPECT_NE(a.hash(), b.hash());
}

// ----------------------------------------------------------------- block

TEST(Block, HashDependsOnTransactions) {
  Block b1;
  b1.number = 1;
  b1.timestamp = 1000;
  b1.transactions.push_back(simple_transfer(1, 2));
  Block b2 = b1;
  EXPECT_EQ(b1.hash(), b2.hash());
  b2.transactions.push_back(simple_transfer(2, 3));
  EXPECT_NE(b1.hash(), b2.hash());
}

TEST(Block, HashDependsOnParent) {
  Block b1;
  b1.number = 1;
  Block b2 = b1;
  b2.parent_hash[0] = 0xFF;
  EXPECT_NE(b1.hash(), b2.hash());
}

// ----------------------------------------------------------------- chain

Chain make_chain(int blocks, int txs_per_block = 1) {
  Chain chain;
  for (int i = 0; i < blocks; ++i) {
    Block b;
    b.number = static_cast<std::uint64_t>(i);
    b.timestamp = 1000 * (i + 1);
    if (i > 0)
      b.parent_hash = chain.block_hash(static_cast<std::uint64_t>(i - 1));
    for (int t = 0; t < txs_per_block; ++t)
      b.transactions.push_back(simple_transfer(
          static_cast<AccountId>(i), static_cast<AccountId>(i + 1)));
    chain.append(std::move(b));
  }
  return chain;
}

TEST(Chain, AppendAndValidate) {
  const Chain chain = make_chain(5, 3);
  EXPECT_EQ(chain.size(), 5u);
  EXPECT_EQ(chain.transaction_count(), 15u);
  EXPECT_TRUE(chain.validate());
}

TEST(Chain, RejectsWrongGenesisNumber) {
  Chain chain;
  Block b;
  b.number = 1;
  EXPECT_THROW(chain.append(std::move(b)), util::CheckFailure);
}

TEST(Chain, RejectsNonConsecutiveNumber) {
  Chain chain = make_chain(2);
  Block b;
  b.number = 5;
  b.parent_hash = chain.block_hash(1);
  b.timestamp = 99999;
  EXPECT_THROW(chain.append(std::move(b)), util::CheckFailure);
}

TEST(Chain, RejectsBadParentHash) {
  Chain chain = make_chain(2);
  Block b;
  b.number = 2;
  b.parent_hash = Hash256{};  // wrong
  b.timestamp = 99999;
  EXPECT_THROW(chain.append(std::move(b)), util::CheckFailure);
}

TEST(Chain, RejectsTimestampRegression) {
  Chain chain = make_chain(2);
  Block b;
  b.number = 2;
  b.parent_hash = chain.block_hash(1);
  b.timestamp = 1;  // before block 1
  EXPECT_THROW(chain.append(std::move(b)), util::CheckFailure);
}

TEST(Chain, BlockHashCacheMatchesRecomputation) {
  const Chain chain = make_chain(4);
  for (std::uint64_t i = 0; i < chain.size(); ++i)
    EXPECT_EQ(chain.block_hash(i), chain.block(i).hash());
}

TEST(Chain, FirstBlockAtOrAfter) {
  const Chain chain = make_chain(5);  // timestamps 1000..5000
  EXPECT_EQ(chain.first_block_at_or_after(0), 0u);
  EXPECT_EQ(chain.first_block_at_or_after(1000), 0u);
  EXPECT_EQ(chain.first_block_at_or_after(1001), 1u);
  EXPECT_EQ(chain.first_block_at_or_after(5000), 4u);
  EXPECT_EQ(chain.first_block_at_or_after(5001), 5u);
}

TEST(Chain, ValidateDetectsMalformedTransaction) {
  Chain chain;
  Block b;
  b.number = 0;
  b.timestamp = 10;
  Transaction bad;
  bad.sender = 1;
  bad.calls.push_back(Call{2, 3, CallKind::kTransfer, 0});  // wrong origin
  b.transactions.push_back(bad);
  chain.append(std::move(b));
  EXPECT_FALSE(chain.validate());
}

TEST(Chain, EmptyChainQueries) {
  Chain chain;
  EXPECT_TRUE(chain.empty());
  EXPECT_TRUE(chain.validate());
  EXPECT_THROW(chain.last(), util::CheckFailure);
}

}  // namespace
}  // namespace ethshard::eth
