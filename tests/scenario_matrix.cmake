# Runs the checked-in scenario matrix through scenario_runner and gates
# on the report JSON — the same artifact CI uploads. Two legs:
#
#   green  the full scenarios/ directory must pass wholesale, with the
#          coverage the harness promises (>= 5 scenarios, >= 25 strategy
#          runs, >= 4 invariant kinds actually evaluated),
#   red    re-running with an impossible balance bound injected via
#          --override must exit 1 with a failing verdict — proof the
#          gate trips when a threshold tightens past reality, not only
#          that it stays green.
#
# Usage:
#   cmake -DRUNNER=<scenario_runner> -DSCENARIOS=<dir> -DWORKDIR=<scratch>
#         -P scenario_matrix.cmake

if(NOT DEFINED RUNNER OR NOT DEFINED SCENARIOS OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR
    "scenario_matrix.cmake needs -DRUNNER=..., -DSCENARIOS=... and "
    "-DWORKDIR=...")
endif()
if(CMAKE_VERSION VERSION_LESS 3.19)
  message(FATAL_ERROR "scenario_matrix.cmake needs cmake >= 3.19")
endif()
file(MAKE_DIRECTORY "${WORKDIR}")

# --- green leg ----------------------------------------------------------

set(report "${WORKDIR}/scenario_report.json")
file(REMOVE "${report}")
execute_process(
  COMMAND ${RUNNER} --out ${report} ${SCENARIOS}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "scenario matrix failed (rc=${rc}):\n${out}\n${err}")
endif()
if(NOT EXISTS "${report}")
  message(FATAL_ERROR "scenario runner wrote no report at ${report}")
endif()

file(READ "${report}" json)
string(JSON schema ERROR_VARIABLE jerr GET "${json}" schema_version)
if(NOT jerr STREQUAL "NOTFOUND" OR NOT schema EQUAL 1)
  message(FATAL_ERROR
    "unexpected report schema (version '${schema}', error '${jerr}')")
endif()
string(JSON pass GET "${json}" pass)
string(JSON n_scenarios GET "${json}" totals scenarios)
string(JSON n_runs GET "${json}" totals strategy_runs)
string(JSON n_invariants GET "${json}" totals invariants)
string(JSON n_violations GET "${json}" totals violations)
string(JSON kinds_json GET "${json}" totals invariant_kinds)
string(JSON n_kinds LENGTH "${kinds_json}")

message(STATUS
  "scenario matrix: ${n_scenarios} scenarios, ${n_runs} runs, "
  "${n_invariants} invariants (${n_kinds} kinds), "
  "${n_violations} violations")

# string(JSON) renders JSON booleans as ON/OFF.
if(NOT pass STREQUAL "ON")
  message(FATAL_ERROR
    "scenario matrix verdict is FAIL; runner output:\n${out}\n${err}")
endif()
if(n_scenarios LESS 5)
  message(FATAL_ERROR "expected >= 5 scenarios, got ${n_scenarios}")
endif()
if(n_runs LESS 25)
  message(FATAL_ERROR "expected >= 25 strategy runs, got ${n_runs}")
endif()
if(n_kinds LESS 4)
  message(FATAL_ERROR
    "expected >= 4 invariant kinds, got ${n_kinds}: ${kinds_json}")
endif()

# --- red leg ------------------------------------------------------------

set(red_report "${WORKDIR}/scenario_report_red.json")
file(REMOVE "${red_report}")
execute_process(
  COMMAND ${RUNNER} --out ${red_report}
    --override invariant.balance_max=1.000001 ${SCENARIOS}
  RESULT_VARIABLE red_rc
  OUTPUT_VARIABLE red_out
  ERROR_VARIABLE red_err)
if(red_rc EQUAL 0)
  message(FATAL_ERROR
    "an impossible balance bound still passed — the invariant gate is "
    "not engaging:\n${red_out}\n${red_err}")
endif()
if(NOT EXISTS "${red_report}")
  message(FATAL_ERROR
    "red leg wrote no report (rc=${red_rc}):\n${red_out}\n${red_err}")
endif()
file(READ "${red_report}" red_json)
string(JSON red_pass GET "${red_json}" pass)
string(JSON red_violations GET "${red_json}" totals violations)
if(NOT red_pass STREQUAL "OFF" OR red_violations EQUAL 0)
  message(FATAL_ERROR
    "red leg report is not failing (pass='${red_pass}', "
    "violations=${red_violations})")
endif()

message(STATUS
  "scenario matrix passed (red leg tripped ${red_violations} violations)")
