// Tests for the core module: placement rules, the five strategies'
// behaviour, and the replay simulator's invariants.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <tuple>

#include "core/placement.hpp"
#include "core/simulator.hpp"
#include "core/strategies.hpp"
#include <sstream>

#include "core/experiment.hpp"
#include "core/result_io.hpp"
#include "core/throughput.hpp"
#include "obs/obs.hpp"
#include "util/csv.hpp"
#include "util/check.hpp"
#include "workload/generator.hpp"

namespace ethshard::core {
namespace {

using partition::ShardId;

// -------------------------------------------------------------- placement

TEST(Placement, MinCutPicksMajorityPeerShard) {
  const std::vector<ShardId> peers = {1, 1, 0, 2};
  const std::vector<std::uint64_t> sizes = {100, 100, 100};
  EXPECT_EQ(place_min_cut(peers, sizes, 3), 1u);
}

TEST(Placement, MinCutTieBreaksTowardBalance) {
  const std::vector<ShardId> peers = {0, 1};
  const std::vector<std::uint64_t> sizes = {50, 10};
  EXPECT_EQ(place_min_cut(peers, sizes, 2), 1u);
}

TEST(Placement, NoPeersPicksLeastPopulated) {
  const std::vector<std::uint64_t> sizes = {5, 3, 9};
  EXPECT_EQ(place_min_cut({}, sizes, 3), 1u);
}

TEST(Placement, UnassignedPeersIgnored) {
  const std::vector<ShardId> peers = {partition::kUnassigned, 2};
  const std::vector<std::uint64_t> sizes = {1, 1, 1};
  EXPECT_EQ(place_min_cut(peers, sizes, 3), 2u);
}

TEST(Placement, HashIsStable) {
  EXPECT_EQ(place_by_hash(42, 8), place_by_hash(42, 8));
  EXPECT_LT(place_by_hash(42, 8), 8u);
}

TEST(Placement, HashRoughlyUniform) {
  std::vector<int> counts(4, 0);
  for (graph::Vertex v = 0; v < 8000; ++v) ++counts[place_by_hash(v, 4)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 200);
}

// ------------------------------------------------------------- strategies

TEST(Strategies, FactoryProducesAllFive) {
  for (Method m : kAllMethods) {
    const auto s = make_strategy(m);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), method_name(m));
  }
}

TEST(Strategies, MethodNames) {
  EXPECT_EQ(method_name(Method::kHashing), "Hashing");
  EXPECT_EQ(method_name(Method::kKl), "KL");
  EXPECT_EQ(method_name(Method::kMetis), "METIS");
  EXPECT_EQ(method_name(Method::kRMetis), "R-METIS");
  EXPECT_EQ(method_name(Method::kTrMetis), "TR-METIS");
}

// --------------------------------------------------------------- fixture

const workload::History& tiny_history() {
  static const workload::History history = [] {
    workload::GeneratorConfig cfg;
    cfg.scale = 0.001;
    cfg.seed = 99;
    return workload::EthereumHistoryGenerator(cfg).generate();
  }();
  return history;
}

SimulationResult run_method(Method m, std::uint32_t k) {
  const auto strategy = make_strategy(m, /*seed=*/5);
  SimulatorConfig cfg;
  cfg.k = k;
  ShardingSimulator sim(tiny_history(), *strategy, cfg);
  return sim.run();
}

// -------------------------------------------------------------- simulator

TEST(Simulator, HashingProducesZeroMoves) {
  const SimulationResult r = run_method(Method::kHashing, 2);
  EXPECT_EQ(r.total_moves, 0u);
  EXPECT_TRUE(r.repartitions.empty());
}

TEST(Simulator, HashingStaticBalanceNearOne) {
  const SimulationResult r = run_method(Method::kHashing, 2);
  EXPECT_LT(r.final_static_balance, 1.1);
}

TEST(Simulator, HashingHighDynamicEdgeCut) {
  const SimulationResult r = run_method(Method::kHashing, 2);
  // Random assignment of endpoints → ~half the interactions cross.
  EXPECT_GT(r.executed_cross_shard_fraction, 0.3);
}

TEST(Simulator, WindowsAreOrderedAndSane) {
  const SimulationResult r = run_method(Method::kHashing, 2);
  ASSERT_GT(r.windows.size(), 100u);
  for (std::size_t i = 0; i < r.windows.size(); ++i) {
    const WindowSample& w = r.windows[i];
    // Full metric window everywhere except the run's final partial
    // window, whose end is clamped to just past the last block.
    if (i + 1 < r.windows.size()) {
      EXPECT_EQ(w.window_end - w.window_start, util::kMetricWindow);
    } else {
      EXPECT_GT(w.window_end, w.window_start);
      EXPECT_LE(w.window_end - w.window_start, util::kMetricWindow);
    }
    EXPECT_GE(w.dynamic_edge_cut, 0.0);
    EXPECT_LE(w.dynamic_edge_cut, 1.0);
    EXPECT_GE(w.dynamic_balance, 1.0 - 1e-9);
    EXPECT_LE(w.dynamic_balance, 2.0 + 1e-9);  // k = 2 bound
    EXPECT_GE(w.static_edge_cut, 0.0);
    EXPECT_LE(w.static_edge_cut, 1.0);
    if (i > 0) {
      EXPECT_GE(w.window_start, r.windows[i - 1].window_start);
    }
  }
}

TEST(Simulator, PeriodicStrategiesRepartitionRoughlyBiweekly) {
  const SimulationResult r = run_method(Method::kRMetis, 2);
  // ~2.4 years of history / 2 weeks ≈ 63 repartitions; the early months
  // are too quiet to always produce windows, so allow a broad band.
  EXPECT_GT(r.repartitions.size(), 30u);
  EXPECT_LT(r.repartitions.size(), 80u);
  for (std::size_t i = 1; i < r.repartitions.size(); ++i)
    EXPECT_GE(r.repartitions[i].time - r.repartitions[i - 1].time,
              util::kRepartitionPeriod);
}

TEST(Simulator, MetisMovesExceedWindowMethods) {
  const SimulationResult metis = run_method(Method::kMetis, 2);
  const SimulationResult rmetis = run_method(Method::kRMetis, 2);
  const SimulationResult trmetis = run_method(Method::kTrMetis, 2);
  EXPECT_GT(metis.total_moves, rmetis.total_moves);
  EXPECT_GT(rmetis.total_moves, trmetis.total_moves);
}

TEST(Simulator, MetisCutsLessThanHashing) {
  const SimulationResult metis = run_method(Method::kMetis, 2);
  const SimulationResult hash = run_method(Method::kHashing, 2);
  EXPECT_LT(metis.final_static_edge_cut, hash.final_static_edge_cut);
}

TEST(Simulator, AllMethodsCompleteAtAllK) {
  for (Method m : kAllMethods) {
    for (std::uint32_t k : {2u, 4u}) {
      const SimulationResult r = run_method(m, k);
      EXPECT_EQ(r.k, k);
      EXPECT_GT(r.vertices, 0u);
      EXPECT_GT(r.interactions, 0u);
      EXPECT_FALSE(r.windows.empty()) << method_name(m);
    }
  }
}

TEST(Simulator, TrMetisRepartitionsLessOftenThanRMetis) {
  const SimulationResult rmetis = run_method(Method::kRMetis, 2);
  const SimulationResult trmetis = run_method(Method::kTrMetis, 2);
  EXPECT_LT(trmetis.repartitions.size(), rmetis.repartitions.size() + 5);
}

TEST(Simulator, KlKeepsDynamicBalanceReasonable) {
  const SimulationResult kl = run_method(Method::kKl, 2);
  std::vector<double> balances;
  for (const WindowSample& w : kl.windows)
    balances.push_back(w.dynamic_balance);
  const double mean =
      std::accumulate(balances.begin(), balances.end(), 0.0) /
      static_cast<double>(balances.size());
  EXPECT_LT(mean, 1.8);
}

TEST(Simulator, InteractionsMatchHistory) {
  const SimulationResult r = run_method(Method::kHashing, 2);
  const workload::HistoryStats st = workload::stats_of(tiny_history());
  EXPECT_EQ(r.interactions, st.calls);
  EXPECT_EQ(r.vertices, st.accounts + st.contracts);
}

TEST(Simulator, WindowInteractionsSumToTotal) {
  const SimulationResult r = run_method(Method::kHashing, 2);
  std::uint64_t sum = 0;
  for (const WindowSample& w : r.windows) sum += w.interactions;
  EXPECT_EQ(sum, r.interactions);
}

TEST(Simulator, RepartitionMovesMatchEvents) {
  const SimulationResult r = run_method(Method::kMetis, 2);
  std::uint64_t sum = 0;
  std::uint64_t state = 0;
  for (const RepartitionEvent& e : r.repartitions) {
    sum += e.moves;
    state += e.moved_state_units;
    // Moving a vertex moves at least one state unit.
    EXPECT_GE(e.moved_state_units, e.moves);
  }
  EXPECT_EQ(sum, r.total_moves);
  EXPECT_EQ(state, r.total_moved_state_units);
  EXPECT_GT(r.total_moves, 0u);
}

TEST(Simulator, LabelAlignmentReducesMoves) {
  // With alignment off, a from-scratch repartitioner is charged for label
  // permutations too, so it can only report more (or equal) moves.
  const auto aligned_strategy = make_strategy(Method::kMetis, 5);
  SimulatorConfig cfg;
  cfg.k = 2;
  ShardingSimulator aligned(tiny_history(), *aligned_strategy, cfg);
  const SimulationResult a = aligned.run();

  const auto raw_strategy = make_strategy(Method::kMetis, 5);
  cfg.align_repartition_labels = false;
  ShardingSimulator raw(tiny_history(), *raw_strategy, cfg);
  const SimulationResult b = raw.run();

  EXPECT_LE(a.total_moves, b.total_moves);
}

TEST(Simulator, SingleUse) {
  const auto strategy = make_strategy(Method::kHashing);
  SimulatorConfig cfg;
  cfg.k = 2;
  ShardingSimulator sim(tiny_history(), *strategy, cfg);
  sim.run();
  EXPECT_THROW(sim.run(), util::CheckFailure);
}

TEST(Simulator, KOneDegenerates) {
  const auto strategy = make_strategy(Method::kHashing);
  SimulatorConfig cfg;
  cfg.k = 1;
  ShardingSimulator sim(tiny_history(), *strategy, cfg);
  const SimulationResult r = sim.run();
  EXPECT_DOUBLE_EQ(r.final_static_edge_cut, 0.0);
  EXPECT_DOUBLE_EQ(r.executed_cross_shard_fraction, 0.0);
  for (const WindowSample& w : r.windows) {
    EXPECT_DOUBLE_EQ(w.dynamic_edge_cut, 0.0);
    EXPECT_DOUBLE_EQ(w.dynamic_balance, 1.0);
  }
}

TEST(Simulator, GasLoadModelStillSatisfiesInvariants) {
  const auto strategy = make_strategy(Method::kRMetis, 5);
  SimulatorConfig cfg;
  cfg.k = 2;
  cfg.load_model = LoadModel::kGas;
  ShardingSimulator sim(tiny_history(), *strategy, cfg);
  const SimulationResult r = sim.run();
  EXPECT_FALSE(r.windows.empty());
  for (const WindowSample& w : r.windows) {
    EXPECT_GE(w.dynamic_balance, 1.0 - 1e-9);
    EXPECT_LE(w.dynamic_balance, 2.0 + 1e-9);
    EXPECT_GE(w.dynamic_edge_cut, 0.0);
    EXPECT_LE(w.dynamic_edge_cut, 1.0);
  }
  // Gas load inflates state units relative to call counting.
  EXPECT_GE(r.total_moved_state_units, r.total_moves);
}

// Parameterized invariant sweep: every method × k × seed must satisfy the
// simulator's structural contracts on an independent small history.
class SimulatorPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<Method, std::uint32_t, std::uint64_t>> {
 protected:
  static const workload::History& history_for(std::uint64_t seed) {
    static std::map<std::uint64_t, workload::History>* cache =
        new std::map<std::uint64_t, workload::History>();
    auto it = cache->find(seed);
    if (it == cache->end()) {
      workload::GeneratorConfig cfg;
      cfg.scale = 0.0004;
      cfg.seed = 1000 + seed;
      it = cache->emplace(
          seed, workload::EthereumHistoryGenerator(cfg).generate())
               .first;
    }
    return it->second;
  }
};

TEST_P(SimulatorPropertyTest, StructuralInvariants) {
  const auto [method, k, seed] = GetParam();
  const workload::History& history = history_for(seed);
  const auto strategy = make_strategy(method, seed);
  SimulatorConfig cfg;
  cfg.k = k;
  ShardingSimulator sim(history, *strategy, cfg);
  const SimulationResult r = sim.run();

  // Totals tie out against the input history.
  const workload::HistoryStats st = workload::stats_of(history);
  EXPECT_EQ(r.interactions, st.calls);
  EXPECT_EQ(r.vertices, st.accounts + st.contracts);

  // Windows: ordered, in-range metrics, interactions conserved.
  std::uint64_t window_calls = 0;
  util::Timestamp prev_start = 0;
  for (const WindowSample& w : r.windows) {
    EXPECT_GE(w.window_start, prev_start);
    prev_start = w.window_start;
    EXPECT_GE(w.dynamic_edge_cut, 0.0);
    EXPECT_LE(w.dynamic_edge_cut, 1.0);
    EXPECT_GE(w.dynamic_balance, 1.0 - 1e-9);
    EXPECT_LE(w.dynamic_balance, static_cast<double>(k) + 1e-9);
    EXPECT_GE(w.static_edge_cut, 0.0);
    EXPECT_LE(w.static_edge_cut, 1.0);
    window_calls += w.interactions;
  }
  EXPECT_EQ(window_calls, r.interactions);

  // Moves: consistent between events and totals, bounded per event.
  std::uint64_t move_sum = 0;
  for (const RepartitionEvent& e : r.repartitions) {
    EXPECT_LE(e.moves, r.vertices);
    EXPECT_GE(e.moved_state_units, e.moves);
    move_sum += e.moves;
  }
  EXPECT_EQ(move_sum, r.total_moves);
  if (method == Method::kHashing) {
    EXPECT_EQ(r.total_moves, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsShardsSeeds, SimulatorPropertyTest,
    ::testing::Combine(::testing::ValuesIn(kAllMethods),
                       ::testing::Values(2u, 3u, 8u),
                       ::testing::Values(0ULL, 1ULL)));

// ------------------------------------------------------ strategy contract

namespace {

/// Deliberately misbehaving strategies, to pin the simulator's checks.
class WrongSizeStrategy final : public ShardingStrategy {
 public:
  std::string name() const override { return "WrongSize"; }
  partition::ShardId place(graph::Vertex v,
                           std::span<const partition::ShardId>,
                           const SimulatorEnv& env) override {
    return place_by_hash(v, env.k());
  }
  bool should_repartition(const WindowSnapshot&, const SimulatorEnv&) override {
    return true;  // fire on the first window
  }
  partition::Partition compute_partition(const SimulatorEnv& env) override {
    return partition::Partition(3, env.k(), 0);  // wrong vertex count
  }
};

class WrongKStrategy final : public ShardingStrategy {
 public:
  std::string name() const override { return "WrongK"; }
  partition::ShardId place(graph::Vertex v,
                           std::span<const partition::ShardId>,
                           const SimulatorEnv& env) override {
    return place_by_hash(v, env.k());
  }
  bool should_repartition(const WindowSnapshot&, const SimulatorEnv&) override {
    return true;
  }
  partition::Partition compute_partition(const SimulatorEnv& env) override {
    return partition::Partition(env.current_partition().size(),
                                env.k() + 1, 0);
  }
};

class OutOfRangePlacementStrategy final : public ShardingStrategy {
 public:
  std::string name() const override { return "BadPlace"; }
  partition::ShardId place(graph::Vertex, std::span<const partition::ShardId>,
                           const SimulatorEnv& env) override {
    return env.k();  // one past the end
  }
  bool should_repartition(const WindowSnapshot&, const SimulatorEnv&) override {
    return false;
  }
  partition::Partition compute_partition(const SimulatorEnv& env) override {
    return env.current_partition();
  }
};

/// Periodically "repartitions" by renaming every shard label (s+1) mod k.
/// The partition structure is identical, so label alignment must reduce
/// the charged moves to exactly zero.
class PermuteLabelsStrategy final : public ShardingStrategy {
 public:
  std::string name() const override { return "PermuteLabels"; }
  partition::ShardId place(graph::Vertex v,
                           std::span<const partition::ShardId>,
                           const SimulatorEnv& env) override {
    return place_by_hash(v, env.k());
  }
  bool should_repartition(const WindowSnapshot& snapshot,
                          const SimulatorEnv&) override {
    return snapshot.since_last_repartition >= util::kRepartitionPeriod;
  }
  partition::Partition compute_partition(const SimulatorEnv& env) override {
    partition::Partition next = env.current_partition();
    for (graph::Vertex v = 0; v < next.size(); ++v)
      next.assign(v, (next.shard_of(v) + 1) % env.k());
    return next;
  }
};

/// Periodically re-hashes every vertex with a fresh salt — a genuine
/// structural reshuffle that no label renaming can undo.
class ReshuffleStrategy final : public ShardingStrategy {
 public:
  std::string name() const override { return "Reshuffle"; }
  partition::ShardId place(graph::Vertex v,
                           std::span<const partition::ShardId>,
                           const SimulatorEnv& env) override {
    return place_by_hash(v, env.k());
  }
  bool should_repartition(const WindowSnapshot& snapshot,
                          const SimulatorEnv&) override {
    return snapshot.since_last_repartition >= util::kRepartitionPeriod;
  }
  partition::Partition compute_partition(const SimulatorEnv& env) override {
    ++salt_;
    partition::Partition next(env.current_partition().size(), env.k());
    for (graph::Vertex v = 0; v < next.size(); ++v)
      next.assign(v, place_by_hash(v, env.k(), salt_));
    return next;
  }

 private:
  std::uint64_t salt_ = 0;
};

}  // namespace

TEST(SimulatorContract, RejectsWrongSizedPartition) {
  WrongSizeStrategy bad;
  SimulatorConfig cfg;
  cfg.k = 2;
  ShardingSimulator sim(tiny_history(), bad, cfg);
  EXPECT_THROW(sim.run(), util::CheckFailure);
}

TEST(SimulatorContract, RejectsWrongK) {
  WrongKStrategy bad;
  SimulatorConfig cfg;
  cfg.k = 2;
  ShardingSimulator sim(tiny_history(), bad, cfg);
  EXPECT_THROW(sim.run(), util::CheckFailure);
}

TEST(SimulatorContract, RejectsOutOfRangePlacement) {
  OutOfRangePlacementStrategy bad;
  SimulatorConfig cfg;
  cfg.k = 2;
  ShardingSimulator sim(tiny_history(), bad, cfg);
  EXPECT_THROW(sim.run(), util::CheckFailure);
}

TEST(LabelAlignment, PureLabelPermutationChargesZeroMoves) {
  SimulatorConfig cfg;
  cfg.k = 4;

  PermuteLabelsStrategy aligned_strategy;
  ShardingSimulator aligned(tiny_history(), aligned_strategy, cfg);
  const SimulationResult a = aligned.run();
  ASSERT_GT(a.repartitions.size(), 0u);
  EXPECT_EQ(a.total_moves, 0u);
  EXPECT_EQ(a.total_moved_state_units, 0u);

  // Without alignment the same renaming is charged for every vertex that
  // changed label — i.e. almost all of them, repeatedly.
  cfg.align_repartition_labels = false;
  PermuteLabelsStrategy raw_strategy;
  ShardingSimulator raw(tiny_history(), raw_strategy, cfg);
  const SimulationResult b = raw.run();
  EXPECT_GT(b.total_moves, 0u);
}

TEST(LabelAlignment, StructuralReshuffleStillCountsInFull) {
  SimulatorConfig cfg;
  cfg.k = 4;

  ReshuffleStrategy aligned_strategy;
  ShardingSimulator aligned(tiny_history(), aligned_strategy, cfg);
  const SimulationResult a = aligned.run();

  cfg.align_repartition_labels = false;
  ReshuffleStrategy raw_strategy;
  ShardingSimulator raw(tiny_history(), raw_strategy, cfg);
  const SimulationResult b = raw.run();

  // A re-hash with a fresh salt scatters vertices regardless of labels:
  // alignment may rename at best one shard into place but must keep the
  // bulk of the movement on the books.
  ASSERT_GT(a.repartitions.size(), 0u);
  EXPECT_GT(a.total_moves, 0u);
  EXPECT_LE(a.total_moves, b.total_moves);
  EXPECT_GE(a.total_moves, b.total_moves / 4);
}

// --------------------------------------------------------------- result io

TEST(ResultIo, WindowsCsvShape) {
  const SimulationResult r = run_method(Method::kHashing, 2);
  std::ostringstream out;
  write_windows_csv(out, r);
  std::istringstream in(out.str());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header,
            "window_start,window_end,dynamic_edge_cut,dynamic_balance,"
            "static_edge_cut,static_balance,interactions");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, r.windows.size());
}

TEST(ResultIo, RepartitionsCsvShape) {
  const SimulationResult r = run_method(Method::kRMetis, 2);
  std::ostringstream out;
  write_repartitions_csv(out, r);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));  // header
  std::size_t rows = 0;
  while (std::getline(in, line))
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, r.repartitions.size());
  EXPECT_GT(rows, 0u);
}

TEST(ResultIo, SummaryCsvRoundTripsThroughReader) {
  const SimulationResult r = run_method(Method::kHashing, 4);
  std::ostringstream out;
  write_summary_csv(out, r);
  std::istringstream in(out.str());
  util::CsvReader reader(in);
  std::vector<std::string> header;
  std::vector<std::string> row;
  ASSERT_TRUE(reader.read_row(header));
  ASSERT_TRUE(reader.read_row(row));
  ASSERT_EQ(header.size(), row.size());
  EXPECT_EQ(row[0], "Hashing");
  EXPECT_EQ(row[1], "4");
  EXPECT_EQ(row[8], "0");  // hashing: zero moves
}

// -------------------------------------------------------------- experiment

TEST(Experiment, GridProducesOneRunPerCell) {
  ExperimentConfig cfg;
  cfg.methods = {Method::kHashing, Method::kRMetis};
  cfg.shard_counts = {2, 4};
  const auto runs = run_experiment(tiny_history(), cfg);
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].method, Method::kHashing);
  EXPECT_EQ(runs[0].k, 2u);
  EXPECT_EQ(runs[3].method, Method::kRMetis);
  EXPECT_EQ(runs[3].k, 4u);
}

TEST(Experiment, SummariesMatchRawWindows) {
  ExperimentConfig cfg;
  cfg.methods = {Method::kHashing};
  cfg.shard_counts = {2};
  const auto runs = run_experiment(tiny_history(), cfg);
  ASSERT_EQ(runs.size(), 1u);
  const ExperimentRun& r = runs[0];
  std::vector<double> cuts;
  for (const WindowSample& w : r.result.windows)
    cuts.push_back(w.dynamic_edge_cut);
  const metrics::Summary expect = metrics::summarize(std::move(cuts));
  EXPECT_DOUBLE_EQ(r.dynamic_edge_cut.median, expect.median);
  EXPECT_DOUBLE_EQ(r.dynamic_edge_cut.mean, expect.mean);
  EXPECT_DOUBLE_EQ(
      r.normalized_balance_median,
      metrics::normalized_balance(r.dynamic_balance.median, 2));
}

TEST(Experiment, TableListsEveryMethod) {
  ExperimentConfig cfg;
  cfg.methods = {Method::kHashing, Method::kKl};
  cfg.shard_counts = {2};
  const auto runs = run_experiment(tiny_history(), cfg);
  const std::string table = comparison_table(runs);
  EXPECT_NE(table.find("Hashing"), std::string::npos);
  EXPECT_NE(table.find("KL"), std::string::npos);
  EXPECT_NE(table.find("speedup"), std::string::npos);
}

TEST(Experiment, ValidateAcceptsDefaultConfig) {
  EXPECT_TRUE(ExperimentConfig{}.validate().empty());
}

TEST(Experiment, ValidateNamesEveryProblem) {
  ExperimentConfig cfg;
  cfg.methods.clear();
  cfg.shard_counts = {0};
  cfg.threads = 100000;
  const std::vector<std::string> problems = cfg.validate();
  ASSERT_EQ(problems.size(), 3u);
  EXPECT_NE(problems[0].find("methods"), std::string::npos);
  EXPECT_NE(problems[1].find("k=0"), std::string::npos);
  EXPECT_NE(problems[2].find("threads"), std::string::npos);
}

TEST(Experiment, RunRejectsInvalidConfigUpFront) {
  ExperimentConfig cfg;
  cfg.shard_counts.clear();
  try {
    run_experiment(tiny_history(), cfg);
    FAIL() << "expected CheckFailure";
  } catch (const util::CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("shard_counts"),
              std::string::npos);
  }
}

TEST(Experiment, CellWallTimeIsAlwaysMeasured) {
  ExperimentConfig cfg;
  cfg.methods = {Method::kHashing};
  cfg.shard_counts = {2};
  const auto runs = run_experiment(tiny_history(), cfg);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_GT(runs[0].cell_wall_ms, 0.0);
  EXPECT_GE(runs[0].queue_wait_ms, 0.0);
  // Metrics snapshots ride along only when observability is on.
  EXPECT_TRUE(runs[0].metrics.empty());
}

TEST(Experiment, PerCellMetricsWhenObservabilityOn) {
  obs::set_enabled(true);
  ExperimentConfig cfg;
  cfg.methods = {Method::kRMetis};
  cfg.shard_counts = {2};
  const auto runs = run_experiment(tiny_history(), cfg);
  obs::set_enabled(false);
  ASSERT_EQ(runs.size(), 1u);
  const obs::MetricsSnapshot& m = runs[0].metrics;
#if ETHSHARD_OBS_ENABLED
  EXPECT_FALSE(m.empty());
  EXPECT_GT(m.counters.at("sim/windows"), 0u);
  EXPECT_GT(m.counters.at("mlkp/invocations"), 0u);
  EXPECT_EQ(m.timers.count("mlkp/coarsen_ms"), 1u);
  EXPECT_EQ(m.timers.count("experiment/cell_ms"), 1u);
#else
  // ETHSHARD_OBS=OFF compiles every recording macro to a no-op: the
  // runtime switch exists but nothing reaches the per-cell registries.
  EXPECT_TRUE(m.empty());
#endif
}

TEST(Experiment, DeterministicAcrossRuns) {
  ExperimentConfig cfg;
  cfg.methods = {Method::kRMetis};
  cfg.shard_counts = {2};
  const auto a = run_experiment(tiny_history(), cfg);
  const auto b = run_experiment(tiny_history(), cfg);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a[0].result.total_moves, b[0].result.total_moves);
  EXPECT_DOUBLE_EQ(a[0].dynamic_edge_cut.median,
                   b[0].dynamic_edge_cut.median);
}

// -------------------------------------------------------------------- DSM

TEST(Dsm, MigratesCrossShardGroupsTogether) {
  DsmStrategy dsm;
  SimulatorConfig cfg;
  cfg.k = 4;
  ShardingSimulator sim(tiny_history(), dsm, cfg);
  const SimulationResult r = sim.run();

  // Never repartitions, but moves plenty of state online.
  EXPECT_TRUE(r.repartitions.empty());
  EXPECT_GT(r.online_moves, 0u);
  EXPECT_EQ(r.online_moves, r.total_moves);
  EXPECT_EQ(r.online_moved_state_units, r.total_moved_state_units);
  EXPECT_GE(r.online_moved_state_units, r.online_moves);
}

TEST(Dsm, CutsExecutionCrossingsBelowHashing) {
  DsmStrategy dsm;
  SimulatorConfig cfg;
  cfg.k = 4;
  ShardingSimulator dsim(tiny_history(), dsm, cfg);
  const SimulationResult d = dsim.run();
  const SimulationResult h = run_method(Method::kHashing, 4);
  // Moving groups together means repeat interactions stop crossing.
  EXPECT_LT(d.executed_cross_shard_fraction,
            0.7 * h.executed_cross_shard_fraction);
}

TEST(Dsm, WindowInvariantsHold) {
  DsmStrategy dsm;
  SimulatorConfig cfg;
  cfg.k = 2;
  ShardingSimulator sim(tiny_history(), dsm, cfg);
  const SimulationResult r = sim.run();
  std::uint64_t calls = 0;
  for (const WindowSample& w : r.windows) {
    EXPECT_GE(w.static_edge_cut, 0.0);
    EXPECT_LE(w.static_edge_cut, 1.0);
    EXPECT_GE(w.dynamic_balance, 1.0 - 1e-9);
    calls += w.interactions;
  }
  EXPECT_EQ(calls, r.interactions);
}

TEST(Dsm, PaperMethodsNeverMigrateOnline) {
  for (Method m : kAllMethods) {
    const SimulationResult r = run_method(m, 2);
    EXPECT_EQ(r.online_moves, 0u) << method_name(m);
    EXPECT_EQ(r.online_moved_state_units, 0u) << method_name(m);
  }
}

// ------------------------------------------------------------- throughput

TEST(Throughput, PerfectShardingScalesLinearly) {
  // cut 0, balance 1 → speedup = k.
  EXPECT_DOUBLE_EQ(window_speedup(0.0, 1.0, 8), 8.0);
  EXPECT_DOUBLE_EQ(window_speedup(0.0, 1.0, 1), 1.0);
}

TEST(Throughput, HashLikeMetricsCapSpeedup) {
  // k=8, cut (k-1)/k, near-perfect balance, cross cost 3.
  const double s = window_speedup(0.875, 1.1, 8);
  EXPECT_NEAR(s, 8.0 / (1.1 * (1.0 + 2.0 * 0.875)), 1e-12);
  EXPECT_LT(s, 3.0);  // far from linear scaling
}

TEST(Throughput, ImbalanceCanMakeShardingALoss) {
  // The paper's pitfall: everything active on one shard (balance = k).
  EXPECT_LT(window_speedup(0.1, 8.0, 8), 1.0);
}

TEST(Throughput, MonotoneInCutAndBalance) {
  const double base = window_speedup(0.3, 1.5, 4);
  EXPECT_LT(window_speedup(0.6, 1.5, 4), base);
  EXPECT_LT(window_speedup(0.3, 2.5, 4), base);
  EXPECT_GT(window_speedup(0.1, 1.5, 4), base);
}

TEST(Throughput, CrossCostOneMakesCutFree) {
  const ThroughputModel free{.cross_cost = 1.0};
  EXPECT_DOUBLE_EQ(window_speedup(0.9, 1.0, 4, free), 4.0);
}

TEST(Throughput, RejectsBadInputs) {
  EXPECT_THROW(window_speedup(0.5, 1.0, 0), util::CheckFailure);
  EXPECT_THROW(window_speedup(1.5, 1.0, 2), util::CheckFailure);
  const ThroughputModel bad{.cross_cost = 0.5};
  EXPECT_THROW(window_speedup(0.5, 1.0, 2, bad), util::CheckFailure);
}

TEST(Throughput, SummaryWeighsWindowsByInteractions) {
  SimulationResult r;
  r.k = 2;
  // A huge perfect window and a tiny terrible one.
  WindowSample good;
  good.dynamic_edge_cut = 0.0;
  good.dynamic_balance = 1.0;
  good.interactions = 9900;
  WindowSample bad;
  bad.dynamic_edge_cut = 1.0;
  bad.dynamic_balance = 2.0;
  bad.interactions = 100;
  WindowSample empty;  // ignored entirely
  r.windows = {good, bad, empty};

  const ThroughputSummary s = summarize_throughput(r);
  EXPECT_EQ(s.windows, 2u);
  const double good_s = window_speedup(0.0, 1.0, 2);
  const double bad_s = window_speedup(1.0, 2.0, 2);
  EXPECT_NEAR(s.mean_speedup, (good_s * 9900 + bad_s * 100) / 10000.0,
              1e-12);
  EXPECT_DOUBLE_EQ(s.worst_speedup, bad_s);
  EXPECT_DOUBLE_EQ(s.best_speedup, good_s);
  EXPECT_DOUBLE_EQ(s.loss_fraction, 0.5);
}

TEST(Throughput, EmptyResultIsNeutral) {
  SimulationResult r;
  r.k = 4;
  const ThroughputSummary s = summarize_throughput(r);
  EXPECT_EQ(s.windows, 0u);
  EXPECT_DOUBLE_EQ(s.mean_speedup, 1.0);
  EXPECT_DOUBLE_EQ(s.loss_fraction, 0.0);
}

TEST(Simulator, CustomMetricWindowChangesSampleCount) {
  const auto s4 = make_strategy(Method::kHashing);
  SimulatorConfig cfg;
  cfg.k = 2;
  cfg.metric_window = 4 * util::kHour;
  ShardingSimulator sim4(tiny_history(), *s4, cfg);
  const SimulationResult four_hour = sim4.run();

  const auto s24 = make_strategy(Method::kHashing);
  cfg.metric_window = 24 * util::kHour;
  ShardingSimulator sim24(tiny_history(), *s24, cfg);
  const SimulationResult daily = sim24.run();

  EXPECT_GT(four_hour.windows.size(), daily.windows.size());
  // Interactions conserved regardless of sampling granularity.
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  for (const WindowSample& w : four_hour.windows) a += w.interactions;
  for (const WindowSample& w : daily.windows) b += w.interactions;
  EXPECT_EQ(a, b);
}

TEST(Simulator, KeepEmptyWindowsOption) {
  const auto strategy = make_strategy(Method::kHashing);
  SimulatorConfig cfg;
  cfg.k = 2;
  cfg.skip_empty_windows = false;
  ShardingSimulator sim(tiny_history(), *strategy, cfg);
  const SimulationResult with_empty = sim.run();

  const SimulationResult without = run_method(Method::kHashing, 2);
  EXPECT_GT(with_empty.windows.size(), without.windows.size());
}

TEST(Simulator, EmptyHistory) {
  const workload::History empty;
  const auto strategy = make_strategy(Method::kHashing);
  SimulatorConfig cfg;
  cfg.k = 2;
  ShardingSimulator sim(empty, *strategy, cfg);
  const SimulationResult r = sim.run();
  EXPECT_TRUE(r.windows.empty());
  EXPECT_EQ(r.vertices, 0u);
}

}  // namespace
}  // namespace ethshard::core
