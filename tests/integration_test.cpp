// End-to-end integration tests asserting the paper's qualitative results
// (§III) hold on the synthetic history:
//
//  * hashing: near-perfect static balance, worst dynamic edge-cut, zero
//    moves; cut grows with k (≈50% at k=2, ≈88% at k=8 in the paper);
//  * METIS: much lower edge-cut than hashing, but dynamic balance blows up
//    after the attack (dummy accounts) and moves are enormous;
//  * R-METIS: restores dynamic balance with far fewer moves;
//  * TR-METIS: R-METIS quality with another large drop in moves;
//  * the edge-cut/balance trade-off: no method wins both.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "core/simulator.hpp"
#include "core/strategies.hpp"
#include "core/throughput.hpp"
#include "metrics/summary.hpp"
#include "workload/generator.hpp"

namespace ethshard::core {
namespace {

// One shared, slightly larger history + all five methods at k = 2 and 8.
class PaperResults : public ::testing::Test {
 protected:
  struct MethodRun {
    SimulationResult result;
    double mean_dyn_cut = 0;
    double mean_dyn_balance = 0;
    double post_attack_dyn_balance = 0;
  };

  static void SetUpTestSuite() {
    workload::GeneratorConfig cfg;
    cfg.scale = 0.004;
    cfg.seed = 1234;
    history_ = new workload::History(
        workload::EthereumHistoryGenerator(cfg).generate());
    runs_ = new std::map<std::pair<Method, std::uint32_t>, MethodRun>();
    for (Method m : kAllMethods)
      for (std::uint32_t k : {2u, 8u}) (*runs_)[{m, k}] = run(m, k);
  }

  static void TearDownTestSuite() {
    delete runs_;
    runs_ = nullptr;
    delete history_;
    history_ = nullptr;
  }

  static MethodRun run(Method m, std::uint32_t k) {
    const auto strategy = make_strategy(m, 7);
    SimulatorConfig cfg;
    cfg.k = k;
    ShardingSimulator sim(*history_, *strategy, cfg);
    MethodRun mr;
    mr.result = sim.run();

    double cut = 0;
    double bal = 0;
    double post_bal = 0;
    std::size_t post_n = 0;
    for (const WindowSample& w : mr.result.windows) {
      cut += w.dynamic_edge_cut;
      bal += w.dynamic_balance;
      if (w.window_start >= util::attack_end_time()) {
        post_bal += w.dynamic_balance;
        ++post_n;
      }
    }
    const auto n = static_cast<double>(mr.result.windows.size());
    mr.mean_dyn_cut = cut / n;
    mr.mean_dyn_balance = bal / n;
    mr.post_attack_dyn_balance =
        post_n > 0 ? post_bal / static_cast<double>(post_n) : 1.0;
    return mr;
  }

  static const MethodRun& get(Method m, std::uint32_t k) {
    return runs_->at({m, k});
  }

  static workload::History* history_;
  static std::map<std::pair<Method, std::uint32_t>, MethodRun>* runs_;
};

workload::History* PaperResults::history_ = nullptr;
std::map<std::pair<Method, std::uint32_t>, PaperResults::MethodRun>*
    PaperResults::runs_ = nullptr;

// ----------------------------------------------------------- §III hashing

TEST_F(PaperResults, HashingStaticBalanceOptimal) {
  EXPECT_LT(get(Method::kHashing, 2).result.final_static_balance, 1.05);
  EXPECT_LT(get(Method::kHashing, 8).result.final_static_balance, 1.05);
}

TEST_F(PaperResults, HashingCutNearHalfAtTwoShards) {
  // Paper: "with two shards hashing leads to about 50% of transactions
  // across shards."
  EXPECT_NEAR(get(Method::kHashing, 2).mean_dyn_cut, 0.5, 0.12);
}

TEST_F(PaperResults, HashingCutNearNinetyPercentAtEightShards) {
  // Paper: "when k = 8 ... multi-shard transactions account for 88% of
  // the total."
  EXPECT_NEAR(get(Method::kHashing, 8).mean_dyn_cut, 0.875, 0.1);
}

TEST_F(PaperResults, HashingNeverMoves) {
  EXPECT_EQ(get(Method::kHashing, 2).result.total_moves, 0u);
  EXPECT_EQ(get(Method::kHashing, 8).result.total_moves, 0u);
}

// ------------------------------------------------------------ §III METIS

TEST_F(PaperResults, MetisCutFarBelowHashing) {
  for (std::uint32_t k : {2u, 8u}) {
    EXPECT_LT(get(Method::kMetis, k).mean_dyn_cut,
              0.6 * get(Method::kHashing, k).mean_dyn_cut)
        << "k=" << k;
  }
}

TEST_F(PaperResults, MetisDynamicBalanceDegradesAfterAttack) {
  // The dummy accounts sit in one shard; the active vertices concentrate,
  // pushing dynamic balance well above hashing's (paper: "near two").
  const double metis = get(Method::kMetis, 2).post_attack_dyn_balance;
  const double hash = get(Method::kHashing, 2).post_attack_dyn_balance;
  EXPECT_GT(metis, hash + 0.15);
  EXPECT_GT(metis, 1.4);
}

TEST_F(PaperResults, MetisMovesAreLargest) {
  for (std::uint32_t k : {2u, 8u}) {
    const auto& metis = get(Method::kMetis, k).result;
    for (Method other : {Method::kKl, Method::kRMetis, Method::kTrMetis}) {
      EXPECT_GT(metis.total_moves, get(other, k).result.total_moves)
          << "k=" << k << " vs " << method_name(other);
    }
  }
}

// ---------------------------------------------------------- §III R-METIS

TEST_F(PaperResults, RMetisImprovesDynamicBalanceOverMetis) {
  EXPECT_LT(get(Method::kRMetis, 2).post_attack_dyn_balance,
            get(Method::kMetis, 2).post_attack_dyn_balance);
}

TEST_F(PaperResults, RMetisMovesFarBelowMetis) {
  EXPECT_LT(get(Method::kRMetis, 2).result.total_moves,
            get(Method::kMetis, 2).result.total_moves / 2);
}

TEST_F(PaperResults, RMetisCutStillWellBelowHashing) {
  EXPECT_LT(get(Method::kRMetis, 2).mean_dyn_cut,
            get(Method::kHashing, 2).mean_dyn_cut);
}

// --------------------------------------------------------- §III TR-METIS

TEST_F(PaperResults, TrMetisDramaticallyFewerMovesThanRMetis) {
  // Paper: "The result is a dramatic decrease in the number of moved
  // vertices."
  EXPECT_LT(get(Method::kTrMetis, 2).result.total_moves,
            get(Method::kRMetis, 2).result.total_moves);
}

TEST_F(PaperResults, TrMetisQualityComparableToRMetis) {
  // "...without compromising edge-cuts and balance" — allow slack.
  EXPECT_LT(get(Method::kTrMetis, 2).mean_dyn_cut,
            get(Method::kRMetis, 2).mean_dyn_cut + 0.2);
}

TEST_F(PaperResults, TrMetisRepartitionsLessOften) {
  EXPECT_LT(get(Method::kTrMetis, 2).result.repartitions.size(),
            get(Method::kRMetis, 2).result.repartitions.size());
}

// ---------------------------------------------------------------- §III KL

TEST_F(PaperResults, KlBalancedButCutBetweenHashAndMetis) {
  const double kl_cut = get(Method::kKl, 2).mean_dyn_cut;
  EXPECT_LT(kl_cut, get(Method::kHashing, 2).mean_dyn_cut);
  EXPECT_GT(kl_cut, get(Method::kMetis, 2).mean_dyn_cut * 0.8);
  EXPECT_LT(get(Method::kKl, 2).mean_dyn_balance,
            get(Method::kMetis, 2).mean_dyn_balance);
}

TEST_F(PaperResults, KlMovesNonZero) {
  EXPECT_GT(get(Method::kKl, 2).result.total_moves, 0u);
}

// -------------------------------------------------------- cross-cutting

TEST_F(PaperResults, EdgeCutWorsensWithMoreShards) {
  // Fig. 5, top: every technique's dynamic edge-cut grows with k.
  for (Method m : kAllMethods) {
    EXPECT_GE(get(m, 8).mean_dyn_cut + 0.05, get(m, 2).mean_dyn_cut)
        << method_name(m);
  }
}

TEST_F(PaperResults, TradeoffNoMethodWinsBoth) {
  // §IV: "there is a clear tradeoff between edge-cuts and balance" —
  // the method with the best cut must not also have the best balance.
  Method best_cut = Method::kHashing;
  Method best_bal = Method::kHashing;
  for (Method m : kAllMethods) {
    if (get(m, 2).mean_dyn_cut < get(best_cut, 2).mean_dyn_cut)
      best_cut = m;
    if (get(m, 2).mean_dyn_balance < get(best_bal, 2).mean_dyn_balance)
      best_bal = m;
  }
  EXPECT_NE(best_cut, best_bal);
}

TEST_F(PaperResults, ThroughputModelShowsThePitfall) {
  // §I: "overall system performance will most likely decrease, instead
  // of increase" — at k=2 the hash-sharded system is slower than an
  // unsharded node under the 3x cross-shard cost model.
  const ThroughputSummary hash2 =
      summarize_throughput(get(Method::kHashing, 2).result);
  EXPECT_LT(hash2.mean_speedup, 1.05);
  EXPECT_GT(hash2.loss_fraction, 0.25);
}

TEST_F(PaperResults, WindowedMethodsScaleBestAtEightShards) {
  // The methods that keep cut AND balance in check convert shards into
  // the most throughput.
  double best = 0;
  Method best_method = Method::kHashing;
  for (Method m : kAllMethods) {
    const double s =
        summarize_throughput(get(m, 8).result).mean_speedup;
    if (s > best) {
      best = s;
      best_method = m;
    }
  }
  EXPECT_TRUE(best_method == Method::kRMetis ||
              best_method == Method::kTrMetis)
      << "best was " << method_name(best_method);
}

TEST_F(PaperResults, GraphScaleMatchesFig1Shape) {
  // Vertices and edges end within the same order of magnitude, with the
  // attack contributing a visible share of all vertices.
  const auto& r = get(Method::kHashing, 2).result;
  EXPECT_GT(r.vertices, 10000u);
  EXPECT_GT(r.distinct_edges, r.vertices / 3);

  std::uint64_t attack_accounts = 0;
  for (const eth::AccountInfo& info : history_->accounts.all())
    if (info.created_at >= util::attack_start_time() &&
        info.created_at < util::attack_end_time())
      ++attack_accounts;
  EXPECT_GT(attack_accounts, r.vertices / 10);
}

}  // namespace
}  // namespace ethshard::core
