// Property tests tying the simulator's incremental static metrics to the
// from-scratch definitions in metrics/, plus a golden regression test for
// the experiment comparison table.
//
// The simulator tracks static edge-cut with O(1)-per-edge incremental
// bookkeeping (plus targeted recomputation after repartitions and
// migrations). These tests replay randomized generated histories and
// assert that at EVERY window boundary the incremental numbers equal
// metrics::static_edge_cut / metrics::static_balance evaluated from
// scratch on the symmetrized cumulative graph — the invariant that makes
// Fig. 3's static curves trustworthy.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "core/simulator.hpp"
#include "core/strategies.hpp"
#include "core/strategy_registry.hpp"
#include "metrics/metrics.hpp"
#include "util/sim_time.hpp"
#include "workload/generator.hpp"

namespace ethshard::core {
namespace {

workload::History tiny_history(std::uint64_t seed,
                               double scale = 0.0004) {
  workload::GeneratorConfig cfg;
  cfg.scale = scale;
  cfg.seed = seed;
  return workload::EthereumHistoryGenerator(cfg).generate();
}

/// Wraps any strategy and, at every window boundary, recomputes the
/// static metrics from scratch. should_repartition fires after the
/// simulator pushed the window's sample and before any repartition can
/// change the assignment, so the from-scratch values computed here must
/// equal the incremental ones in the sample just recorded.
class RecordingStrategy final : public ShardingStrategy {
 public:
  explicit RecordingStrategy(std::unique_ptr<ShardingStrategy> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name(); }

  partition::ShardId place(graph::Vertex v,
                           std::span<const partition::ShardId> peers,
                           const SimulatorEnv& env) override {
    return inner_->place(v, peers, env);
  }

  bool should_repartition(const WindowSnapshot& snapshot,
                          const SimulatorEnv& env) override {
    // Quiet windows produce no sample (skip_empty_windows), so record
    // only what the simulator records.
    if (snapshot.interactions > 0) {
      const graph::Graph g = env.cumulative_graph();
      expected_.emplace_back(
          metrics::static_edge_cut(g, env.current_partition()),
          metrics::static_balance(env.current_partition()));
    }
    return inner_->should_repartition(snapshot, env);
  }

  partition::Partition compute_partition(const SimulatorEnv& env) override {
    return inner_->compute_partition(env);
  }

  void on_transaction(std::span<const graph::Vertex> involved,
                      const SimulatorEnv& env, MigrationSink& sink) override {
    inner_->on_transaction(involved, env, sink);
  }

  /// (static_edge_cut, static_balance) per busy window, from scratch.
  const std::vector<std::pair<double, double>>& expected() const {
    return expected_;
  }

 private:
  std::unique_ptr<ShardingStrategy> inner_;
  std::vector<std::pair<double, double>> expected_;
};

void expect_incremental_matches_scratch(const std::string& spec,
                                        std::uint64_t history_seed,
                                        std::uint32_t k) {
  const workload::History history = tiny_history(history_seed);
  RecordingStrategy strategy(
      StrategyRegistry::global().make(spec, /*default_seed=*/7));
  SimulatorConfig cfg;
  cfg.k = k;
  cfg.skip_empty_windows = true;
  ShardingSimulator sim(history, strategy, cfg);
  const SimulationResult result = sim.run();

  ASSERT_GT(result.windows.size(), 10u) << spec;
  ASSERT_EQ(result.windows.size(), strategy.expected().size()) << spec;
  for (std::size_t i = 0; i < result.windows.size(); ++i) {
    const auto& [cut, balance] = strategy.expected()[i];
    EXPECT_NEAR(result.windows[i].static_edge_cut, cut, 1e-12)
        << spec << " window " << i;
    EXPECT_NEAR(result.windows[i].static_balance, balance, 1e-12)
        << spec << " window " << i;
  }
}

// R-METIS with a short period repartitions often, exercising the
// post-repartition full recomputation between long incremental stretches.
TEST(SimStaticMetrics, IncrementalMatchesScratchUnderRMetis) {
  expect_incremental_matches_scratch("r-metis:period_days=2", 3, 3);
  expect_incremental_matches_scratch("r-metis:period_days=2", 11, 4);
}

// Hashing never repartitions: the pure incremental path, long histories.
TEST(SimStaticMetrics, IncrementalMatchesScratchUnderHashing) {
  expect_incremental_matches_scratch("hashing", 5, 3);
}

// DSM migrates vertices mid-window (online moves), which dirties the
// static cut and forces the targeted-recompute path every busy window.
TEST(SimStaticMetrics, IncrementalMatchesScratchUnderDsm) {
  expect_incremental_matches_scratch("dsm", 3, 3);
}

// METIS repartitions the full cumulative graph — label-permutation-heavy
// partitions stress the post-repartition cut rebuild.
TEST(SimStaticMetrics, IncrementalMatchesScratchUnderMetis) {
  expect_incremental_matches_scratch("metis:period_days=3", 11, 3);
}

// -------------------------------------- incremental differential suite
//
// cfg.verify_incremental makes the simulator itself recompute the static
// cut from scratch at every window flush and after every repartition (and
// rebuild the cumulative snapshot to compare with the cache), aborting on
// any divergence. Running migration-heavy strategies under it is the
// differential test for the O(deg) cut-delta path.

void expect_verified_run(const std::string& spec, std::uint64_t history_seed,
                         std::uint32_t k) {
  const workload::History history = tiny_history(history_seed);
  const auto strategy =
      StrategyRegistry::global().make(spec, /*default_seed=*/7);
  SimulatorConfig cfg;
  cfg.k = k;
  cfg.verify_incremental = true;
  ShardingSimulator sim(history, *strategy, cfg);
  const SimulationResult result = sim.run();
  EXPECT_GT(result.windows.size(), 10u) << spec;
}

TEST(IncrementalDifferential, HashingPureIncrementalPath) {
  expect_verified_run("hashing", 5, 2);
  expect_verified_run("hashing", 5, 8);
}

// KL/BLP repartitions move many vertices at once — the heaviest consumer
// of the per-vertex cut deltas.
TEST(IncrementalDifferential, BlpMigrationHeavy) {
  expect_verified_run("kl", 3, 4);
  expect_verified_run("kl", 11, 8);
}

TEST(IncrementalDifferential, DsmOnlineMigrations) {
  expect_verified_run("dsm", 3, 3);
}

// Full-graph METIS repartitions relabel wholesale, alternating the
// delta path with the recompute fallback.
TEST(IncrementalDifferential, MetisFamilies) {
  expect_verified_run("metis:period_days=3", 11, 4);
  expect_verified_run("r-metis:period_days=2", 3, 3);
  expect_verified_run("r-metis:period_days=2", 7, 8);
  expect_verified_run("tr-metis", 5, 4);
}

// ------------------------------------------------ gap fast-forwarding

/// Runs `spec` over a history with a long mid-trace traffic gap, with and
/// without fast_forward_gaps, and requires identical observable output.
void expect_fast_forward_equivalent(const std::string& spec,
                                    std::uint32_t k) {
  const workload::History base = tiny_history(3);
  const auto& blocks = base.chain.blocks();
  ASSERT_FALSE(blocks.empty());
  const util::Timestamp mid =
      (blocks.front().timestamp + blocks.back().timestamp) / 2;
  const workload::History gapped =
      workload::with_traffic_gap(base, mid, 400 * util::kDay);

  auto run = [&](bool fast_forward) {
    const auto strategy =
        StrategyRegistry::global().make(spec, /*default_seed=*/7);
    SimulatorConfig cfg;
    cfg.k = k;
    cfg.fast_forward_gaps = fast_forward;
    ShardingSimulator sim(gapped, *strategy, cfg);
    return sim.run();
  };
  const SimulationResult on = run(true);
  const SimulationResult off = run(false);

  EXPECT_GT(on.gap_windows_skipped, 0u) << spec;
  EXPECT_EQ(off.gap_windows_skipped, 0u) << spec;

  ASSERT_EQ(on.windows.size(), off.windows.size()) << spec;
  for (std::size_t i = 0; i < on.windows.size(); ++i) {
    const WindowSample& a = on.windows[i];
    const WindowSample& b = off.windows[i];
    EXPECT_EQ(a.window_start, b.window_start) << spec << " window " << i;
    EXPECT_EQ(a.window_end, b.window_end) << spec << " window " << i;
    EXPECT_EQ(a.interactions, b.interactions) << spec << " window " << i;
    EXPECT_EQ(a.dynamic_edge_cut, b.dynamic_edge_cut) << spec << " " << i;
    EXPECT_EQ(a.dynamic_balance, b.dynamic_balance) << spec << " " << i;
    EXPECT_EQ(a.static_edge_cut, b.static_edge_cut) << spec << " " << i;
    EXPECT_EQ(a.static_balance, b.static_balance) << spec << " " << i;
  }
  ASSERT_EQ(on.repartitions.size(), off.repartitions.size()) << spec;
  for (std::size_t i = 0; i < on.repartitions.size(); ++i) {
    EXPECT_EQ(on.repartitions[i].time, off.repartitions[i].time) << spec;
    EXPECT_EQ(on.repartitions[i].moves, off.repartitions[i].moves) << spec;
    EXPECT_EQ(on.repartitions[i].moved_state_units,
              off.repartitions[i].moved_state_units)
        << spec;
  }
  EXPECT_EQ(on.total_moves, off.total_moves) << spec;
  EXPECT_EQ(on.vertices, off.vertices) << spec;
  EXPECT_EQ(on.distinct_edges, off.distinct_edges) << spec;
  EXPECT_EQ(on.interactions, off.interactions) << spec;
  EXPECT_EQ(on.final_static_edge_cut, off.final_static_edge_cut) << spec;
  EXPECT_EQ(on.executed_cross_shard_fraction,
            off.executed_cross_shard_fraction)
      << spec;
}

// Hashing never repartitions (kNeverOnEmpty): the whole gap collapses.
TEST(GapFastForward, HashingSkipsWholeGap) {
  expect_fast_forward_equivalent("hashing", 4);
}

// Periodic strategies still repartition *inside* the gap at their usual
// cadence; skipping must stop at every consultation point.
TEST(GapFastForward, PeriodicStrategyKeepsGapRepartitions) {
  expect_fast_forward_equivalent("kl", 4);
  expect_fast_forward_equivalent("r-metis:period_days=2", 3);
}

// -------------------------------------------------- comparison_table

/// Drops the trailing cellMs column (wall-clock, not deterministic) from
/// every row of a comparison_table.
std::string strip_wall_clock_column(const std::string& table) {
  std::istringstream is(table);
  std::ostringstream os;
  std::string line;
  while (std::getline(is, line)) {
    const auto content_end = line.find_last_not_of(' ');
    if (content_end == std::string::npos) {
      os << "\n";
      continue;
    }
    const auto col_start = line.find_last_of(' ', content_end);
    const auto keep_end = line.find_last_not_of(' ', col_start);
    os << (keep_end == std::string::npos ? std::string()
                                         : line.substr(0, keep_end + 1))
       << "\n";
  }
  return os.str();
}

TEST(ComparisonTable, GoldenRegression) {
  const workload::History history = tiny_history(123);
  ExperimentConfig cfg;
  cfg.methods = {Method::kHashing, Method::kRMetis};
  cfg.shard_counts = {2, 4};
  cfg.seed = 7;
  cfg.threads = 1;
  cfg.partitioner_threads = 1;
  const std::vector<ExperimentRun> runs = run_experiment(history, cfg);
  const std::string got =
      strip_wall_clock_column(comparison_table(runs));

  // Regenerate by running this test and copying the printed `got` value.
  // A change here must be an intentional partitioner/simulator behaviour
  // change, never incidental drift. (Last change: self-calls no longer
  // count in the dynamic edge-cut denominator, which shifts dynCut and
  // the derived speedup.)
  const std::string expected =
      "method      k dynCut(med) dynBal(med)   normBal    speedup"
      "        moves  reparts\n"
      "Hashing     2      0.5000      1.2857    0.2857      0.792"
      "            0        0\n"
      "Hashing     4      0.7692      2.0000    0.3333      0.869"
      "            0        0\n"
      "R-METIS     2      0.3750      1.3333    0.3333      0.918"
      "         9730       63\n"
      "R-METIS     4      0.6000      2.0000    0.3333      1.003"
      "        14928       63\n";
  EXPECT_EQ(got, expected);
}

// The table itself (minus wall clock) must be reproducible run to run —
// guards against nondeterminism sneaking into the experiment grid.
TEST(ComparisonTable, DeterministicAcrossRuns) {
  const workload::History history = tiny_history(123);
  ExperimentConfig cfg;
  cfg.methods = {Method::kRMetis};
  cfg.shard_counts = {2};
  cfg.seed = 7;
  const std::string a =
      strip_wall_clock_column(comparison_table(run_experiment(history, cfg)));
  const std::string b =
      strip_wall_clock_column(comparison_table(run_experiment(history, cfg)));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ethshard::core
