// StreamingDifferential: the pull-based BlockSource path (DESIGN.md §6e)
// must be bit-identical to replaying a materialized History — the same
// SimulationResult and the same telemetry JSONL modulo wall-clock and
// resident-memory fields — for every paper strategy family, under both
// LoadModels, on the serial and pipelined replay paths. This suite is to
// the streaming API what PipelinedReplayDifferential is to batched
// replay: the license to stream by default. It also pins the supporting
// pieces to their materialized references: WindowBinner against
// window_spans, TraceSource against read_trace, the factory-based
// experiment grid against the History adapter, and MaterializedSource's
// zero-copy contract.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/simulator.hpp"
#include "core/strategy_registry.hpp"
#include "core/telemetry.hpp"
#include "util/sim_time.hpp"
#include "workload/generator.hpp"
#include "workload/trace_io.hpp"
#include "workload/windows.hpp"

namespace ethshard::core {
namespace {

// Same knob as the pipelined-replay suite: the sanitizer CI leg shrinks
// the histories without thinning the strategy × load-model matrix.
double diff_scale() {
  if (const char* s = std::getenv("ETHSHARD_DIFF_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 0.0004;
}

workload::GeneratorConfig diff_config(std::uint64_t seed) {
  workload::GeneratorConfig cfg;
  cfg.scale = diff_scale();
  cfg.seed = seed;
  return cfg;
}

struct RunOutput {
  SimulationResult result;
  std::string telemetry;  // JSONL; empty when no sink was attached
};

SimulatorConfig sim_config(std::uint32_t k, LoadModel load_model,
                           std::size_t replay_threads) {
  SimulatorConfig cfg;
  cfg.k = k;
  cfg.load_model = load_model;
  cfg.replay_threads = replay_threads;
  return cfg;
}

RunOutput run_source(workload::BlockSource& source, const std::string& spec,
                     std::uint32_t k, LoadModel load_model,
                     std::size_t replay_threads, bool with_telemetry) {
  const auto strategy = StrategyRegistry::global().make(spec,
                                                       /*default_seed=*/7);
  SimulatorConfig cfg = sim_config(k, load_model, replay_threads);
  std::ostringstream os;
  std::unique_ptr<TelemetrySink> sink;
  if (with_telemetry) {
    sink = std::make_unique<TelemetrySink>(os);
    cfg.telemetry = sink.get();
  }
  ShardingSimulator sim(source, *strategy, cfg);
  RunOutput out;
  out.result = sim.run();
  out.telemetry = os.str();
  return out;
}

RunOutput run_history(const workload::History& history,
                      const std::string& spec, std::uint32_t k,
                      LoadModel load_model, std::size_t replay_threads,
                      bool with_telemetry) {
  const auto strategy = StrategyRegistry::global().make(spec,
                                                       /*default_seed=*/7);
  SimulatorConfig cfg = sim_config(k, load_model, replay_threads);
  std::ostringstream os;
  std::unique_ptr<TelemetrySink> sink;
  if (with_telemetry) {
    sink = std::make_unique<TelemetrySink>(os);
    cfg.telemetry = sink.get();
  }
  ShardingSimulator sim(history, *strategy, cfg);
  RunOutput out;
  out.result = sim.run();
  out.telemetry = os.str();
  return out;
}

// Blanks the value of a `"key": <number>` field wherever it appears.
std::string blank_field(std::string text, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  std::size_t at = 0;
  while ((at = text.find(needle, at)) != std::string::npos) {
    std::size_t i = at + needle.size();
    std::size_t end = i;
    while (end < text.size() && text[end] != ',' && text[end] != '}' &&
           text[end] != '\n')
      ++end;
    text.replace(i, end - i, "X");
    at = i;
  }
  return text;
}

// Telemetry modulo per-run measurements: wall clocks and the resident-
// memory gauges (a streamed run legitimately has a different RSS than a
// materialized one — that difference is the point of the API).
std::string normalized_telemetry(const std::string& jsonl) {
  return blank_field(
      blank_field(blank_field(blank_field(jsonl, "window_wall_ms"),
                              "partitioner_ms"),
                  "rss_mb"),
      "peak_rss_mb");
}

// Every SimulationResult field except wall-clock timings, compared
// exactly (EXPECT_EQ on doubles is bitwise-for-equality — intentional:
// streaming promises the same arithmetic, not similar arithmetic).
void expect_identical(const SimulationResult& a, const SimulationResult& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.strategy_name, b.strategy_name);
  EXPECT_EQ(a.k, b.k);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    SCOPED_TRACE("window " + std::to_string(i));
    EXPECT_EQ(a.windows[i].window_start, b.windows[i].window_start);
    EXPECT_EQ(a.windows[i].window_end, b.windows[i].window_end);
    EXPECT_EQ(a.windows[i].dynamic_edge_cut, b.windows[i].dynamic_edge_cut);
    EXPECT_EQ(a.windows[i].dynamic_balance, b.windows[i].dynamic_balance);
    EXPECT_EQ(a.windows[i].static_edge_cut, b.windows[i].static_edge_cut);
    EXPECT_EQ(a.windows[i].static_balance, b.windows[i].static_balance);
    EXPECT_EQ(a.windows[i].interactions, b.windows[i].interactions);
  }
  ASSERT_EQ(a.repartitions.size(), b.repartitions.size());
  for (std::size_t i = 0; i < a.repartitions.size(); ++i) {
    SCOPED_TRACE("repartition " + std::to_string(i));
    EXPECT_EQ(a.repartitions[i].time, b.repartitions[i].time);
    EXPECT_EQ(a.repartitions[i].moves, b.repartitions[i].moves);
    EXPECT_EQ(a.repartitions[i].moved_state_units,
              b.repartitions[i].moved_state_units);
    // compute_ms is wall clock — the one field allowed to differ.
  }
  EXPECT_EQ(a.total_moves, b.total_moves);
  EXPECT_EQ(a.total_moved_state_units, b.total_moved_state_units);
  EXPECT_EQ(a.online_moves, b.online_moves);
  EXPECT_EQ(a.online_moved_state_units, b.online_moved_state_units);
  EXPECT_EQ(a.vertices, b.vertices);
  EXPECT_EQ(a.distinct_edges, b.distinct_edges);
  EXPECT_EQ(a.interactions, b.interactions);
  EXPECT_EQ(a.final_static_edge_cut, b.final_static_edge_cut);
  EXPECT_EQ(a.final_static_balance, b.final_static_balance);
  EXPECT_EQ(a.executed_cross_shard_fraction,
            b.executed_cross_shard_fraction);
  EXPECT_EQ(a.gap_windows_skipped, b.gap_windows_skipped);
}

struct Cell {
  const char* spec;
  std::uint32_t k;
};

// The five paper strategy families; periods shortened so the 0.0004-scale
// history still triggers several repartitions per run.
constexpr Cell kCells[] = {
    {"hashing", 4},
    {"kl:period_days=2", 8},
    {"metis:period_days=3", 4},
    {"r-metis:period_days=2", 4},
    {"tr-metis", 4},
};

// The tentpole differential: a GeneratedSource pulled by the simulator
// must reproduce a materialized generate() run bit for bit — serial and
// pipelined replay, both load models, every strategy family.
TEST(StreamingDifferential, GeneratedMatchesMaterialized) {
  const workload::GeneratorConfig cfg = diff_config(99);
  const workload::History history =
      workload::EthereumHistoryGenerator(cfg).generate();
  for (const Cell& cell : kCells) {
    for (const LoadModel lm : {LoadModel::kCalls, LoadModel::kGas}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
        const std::string label =
            std::string(cell.spec) + " lm=" +
            (lm == LoadModel::kCalls ? "calls" : "gas") +
            " replay_threads=" + std::to_string(threads);
        const RunOutput materialized = run_history(
            history, cell.spec, cell.k, lm, threads, /*with_telemetry=*/true);
        ASSERT_FALSE(materialized.result.windows.empty()) << label;
        // A fresh source per run: BlockSource is single-pass by contract.
        workload::GeneratedSource source(cfg);
        const RunOutput streamed = run_source(
            source, cell.spec, cell.k, lm, threads, /*with_telemetry=*/true);
        expect_identical(materialized.result, streamed.result, label);
        EXPECT_EQ(normalized_telemetry(materialized.telemetry),
                  normalized_telemetry(streamed.telemetry))
            << label;
      }
    }
  }
}

// The auto mode's mid-run fallback on a streaming source: an absurd
// probe threshold forces the pipeline to give up after a few windows,
// handing the in-flight partial window back from the producer's binner
// and draining the rest of the source serially. That resume path must
// still be bit-identical to a fully serial materialized run.
TEST(StreamingDifferential, AutoFallbackMidStreamBitIdentical) {
  const workload::GeneratorConfig cfg = diff_config(99);
  const workload::History history =
      workload::EthereumHistoryGenerator(cfg).generate();
  for (const Cell& cell : {kCells[0], kCells[1]}) {
    const RunOutput serial = run_history(history, cell.spec, cell.k,
                                         LoadModel::kCalls, 1,
                                         /*with_telemetry=*/true);
    const auto strategy =
        StrategyRegistry::global().make(cell.spec, /*default_seed=*/7);
    SimulatorConfig sim_cfg = sim_config(cell.k, LoadModel::kCalls, 0);
    sim_cfg.auto_min_speedup = 1e9;  // probe always says "serial wins"
    sim_cfg.auto_probe_windows = 4;  // decide early, leaving a long tail
    sim_cfg.auto_hw_override = 2;    // take the probe path even on 1 core
    std::ostringstream os;
    const auto sink = std::make_unique<TelemetrySink>(os);
    sim_cfg.telemetry = sink.get();
    workload::GeneratedSource source(cfg);
    ShardingSimulator sim(source, *strategy, sim_cfg);
    const SimulationResult streamed = sim.run();
    const std::string label =
        std::string(cell.spec) + " streaming auto fallback";
    expect_identical(serial.result, streamed, label);
    EXPECT_EQ(normalized_telemetry(serial.telemetry),
              normalized_telemetry(os.str()))
        << label;
  }
}

// Draining a GeneratedSource reproduces generate() exactly — same hash
// chain, same block count, and the directory only materializes at
// end-of-stream.
TEST(StreamingDifferential, GeneratedSourceDrainMatchesGenerate) {
  const workload::GeneratorConfig cfg = diff_config(31);
  const workload::History history =
      workload::EthereumHistoryGenerator(cfg).generate();
  workload::GeneratedSource source(cfg);
  EXPECT_EQ(source.info().seed, cfg.seed);
  EXPECT_EQ(source.info().scale, cfg.scale);
  eth::Chain chain;
  eth::Block block;
  while (source.next(block)) chain.append(std::move(block));
  ASSERT_EQ(chain.blocks().size(), history.chain.blocks().size());
  ASSERT_FALSE(chain.blocks().empty());
  for (std::size_t i = 0; i < chain.blocks().size(); ++i) {
    ASSERT_EQ(chain.blocks()[i].hash(), history.chain.blocks()[i].hash())
        << "block " << i;
  }
  ASSERT_NE(source.directory(), nullptr);
  EXPECT_EQ(source.directory()->size(), history.accounts.size());
}

// The trace leg: write_trace → TraceSource streamed into the simulator
// vs write_trace → read_trace → materialized replay. Both sides consume
// the same serialized bytes, so everything downstream must match.
TEST(StreamingDifferential, TraceSourceMatchesMaterializedTrace) {
  const workload::History history =
      workload::EthereumHistoryGenerator(diff_config(7)).generate();
  std::ostringstream trace;
  workload::write_trace(trace, history);
  const std::string bytes = trace.str();

  std::istringstream materialized_in(bytes);
  const workload::History from_trace = workload::read_trace(materialized_in);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    const std::string label =
        "trace replay_threads=" + std::to_string(threads);
    const RunOutput materialized =
        run_history(from_trace, "hashing", 4, LoadModel::kCalls, threads,
                    /*with_telemetry=*/true);
    std::istringstream streaming_in(bytes);
    workload::TraceSource source(streaming_in);
    const RunOutput streamed =
        run_source(source, "hashing", 4, LoadModel::kCalls, threads,
                   /*with_telemetry=*/true);
    expect_identical(materialized.result, streamed.result, label);
    EXPECT_EQ(normalized_telemetry(materialized.telemetry),
              normalized_telemetry(streamed.telemetry))
        << label;
  }

  // Block-level round trip: the streamed blocks are the read_trace blocks.
  std::istringstream drain_in(bytes);
  workload::TraceSource source(drain_in);
  EXPECT_EQ(source.directory(), nullptr);  // unknown until end-of-stream
  eth::Chain chain;
  eth::Block block;
  while (source.next(block)) chain.append(std::move(block));
  ASSERT_EQ(chain.blocks().size(), from_trace.chain.blocks().size());
  for (std::size_t i = 0; i < chain.blocks().size(); ++i) {
    ASSERT_EQ(chain.blocks()[i].hash(),
              from_trace.chain.blocks()[i].hash())
        << "block " << i;
  }
  ASSERT_NE(source.directory(), nullptr);
  EXPECT_EQ(source.directory()->size(), from_trace.accounts.size());
}

// The incremental binner must tile blocks exactly as the whole-span
// precomputation does — including across a multi-year gap, where both
// sides skip empty bins rather than emitting them.
TEST(StreamingDifferential, WindowBinnerMatchesWindowSpans) {
  const workload::History base =
      workload::EthereumHistoryGenerator(diff_config(5)).generate();
  const auto& blocks = base.chain.blocks();
  ASSERT_FALSE(blocks.empty());
  const util::Timestamp mid =
      (blocks.front().timestamp + blocks.back().timestamp) / 2;
  const workload::History gapped =
      workload::with_traffic_gap(base, mid, 400 * util::kDay);

  for (const workload::History* history : {&base, &gapped}) {
    const auto& hb = history->chain.blocks();
    const std::vector<workload::WindowSpan> spans =
        workload::window_spans(hb, util::kMetricWindow);
    ASSERT_FALSE(spans.empty());

    workload::WindowBinner binner(util::kMetricWindow);
    std::vector<workload::BinnedWindow> binned;
    workload::BinnedWindow window;
    for (const eth::Block& b : hb)
      if (binner.push(b, window)) binned.push_back(std::move(window));
    if (binner.finish(window)) binned.push_back(std::move(window));

    ASSERT_EQ(binned.size(), spans.size());
    for (std::size_t i = 0; i < spans.size(); ++i) {
      SCOPED_TRACE("window " + std::to_string(i));
      EXPECT_EQ(binned[i].window_start, spans[i].window_start);
      ASSERT_EQ(binned[i].blocks.size(),
                spans[i].block_end - spans[i].block_begin);
      for (std::size_t j = 0; j < binned[i].blocks.size(); ++j)
        EXPECT_EQ(binned[i].blocks[j].number,
                  hb[spans[i].block_begin + j].number);
    }
  }
}

// The factory-based experiment grid (each cell opens its own stream)
// must equal the History-adapter grid cell for cell.
TEST(StreamingDifferential, FactoryExperimentMatchesHistoryExperiment) {
  const workload::GeneratorConfig cfg = diff_config(3);
  const workload::History history =
      workload::EthereumHistoryGenerator(cfg).generate();

  ExperimentConfig ec;
  ec.methods = {Method::kHashing, Method::kKl};
  ec.shard_counts = {2, 4};
  ec.replay_threads = 2;

  const workload::GeneratedSourceFactory sources(cfg);
  const std::vector<ExperimentRun> streamed = run_experiment(sources, ec);
  const std::vector<ExperimentRun> materialized =
      run_experiment(history, ec);

  ASSERT_EQ(streamed.size(), materialized.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    const std::string label = "cell " + std::to_string(i);
    EXPECT_EQ(streamed[i].method, materialized[i].method) << label;
    EXPECT_EQ(streamed[i].k, materialized[i].k) << label;
    expect_identical(materialized[i].result, streamed[i].result, label);
    EXPECT_EQ(streamed[i].dynamic_edge_cut.median,
              materialized[i].dynamic_edge_cut.median)
        << label;
    EXPECT_EQ(streamed[i].dynamic_balance.median,
              materialized[i].dynamic_balance.median)
        << label;
    EXPECT_EQ(streamed[i].normalized_balance_median,
              materialized[i].normalized_balance_median)
        << label;
  }
}

// MaterializedSource is the zero-copy adapter: next_ref() hands out
// pointers into the wrapped chain's own storage, and the escape hatches
// expose the chain and directory unchanged.
TEST(StreamingDifferential, MaterializedSourceIsZeroCopy) {
  const workload::History history =
      workload::EthereumHistoryGenerator(diff_config(11)).generate();
  workload::MaterializedSource source(history.chain, &history.accounts);
  EXPECT_EQ(source.materialized_chain(), &history.chain);
  EXPECT_EQ(source.directory(), &history.accounts);
  const auto& blocks = history.chain.blocks();
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const eth::Block* ref = source.next_ref();
    ASSERT_NE(ref, nullptr);
    EXPECT_EQ(ref, &blocks[i]) << "block " << i;  // pointer identity
  }
  EXPECT_EQ(source.next_ref(), nullptr);
}

}  // namespace
}  // namespace ethshard::core
