// Both-sides coverage of the trace_report analyzer: a hand-built
// overlapped trace must score a high overlap fraction and a "pipelined"
// verdict; a hand-built serialized trace (stages taking turns, consumer
// starved in between) must score ~0 overlap, attribute the stall time to
// prefetch, and recommend "serial". The traces are written through the
// real exporter or as literal Chrome JSON, so the parser is exercised on
// exactly what tools/trace_report will see.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "obs/trace_analysis.hpp"
#include "util/check.hpp"

namespace {

using namespace ethshard;

// Builds a Chrome-trace JSON string through the real exporter.
std::string export_json(const obs::TraceSnapshot& trace) {
  std::ostringstream os;
  obs::write_trace_json(os, trace);
  return os.str();
}

obs::SpanRecord span(const char* path, double start_ms, double end_ms,
                     std::uint32_t thread) {
  obs::SpanRecord s;
  s.path = path;
  s.start_ms = start_ms;
  s.duration_ms = end_ms - start_ms;
  s.thread = thread;
  return s;
}

// Stage A aggregates windows back-to-back on tid 1 while Stage B applies
// them on tid 0 with ~1ms of skew — the ideal pipeline.
obs::TraceSnapshot overlapped_trace() {
  obs::TraceSnapshot t;
  t.lanes[0] = "Stage B (apply+flush)";
  t.lanes[1] = "Stage A (aggregate)";
  t.spans.push_back(span("pipeline/aggregate", 0.0, 10.0, 1));
  t.spans.push_back(span("pipeline/aggregate", 10.0, 20.0, 1));
  t.spans.push_back(span("pipeline/aggregate", 20.0, 30.0, 1));
  t.spans.push_back(span("pipeline/apply", 1.0, 10.0, 0));
  t.spans.push_back(span("pipeline/apply", 11.0, 20.0, 0));
  t.spans.push_back(span("pipeline/apply", 21.0, 30.0, 0));
  return t;
}

// The stages take turns: every apply waits for its aggregate to finish
// first, and the consumer's waiting shows up as prefetch stalls.
obs::TraceSnapshot serialized_trace() {
  obs::TraceSnapshot t;
  t.lanes[0] = "Stage B (apply+flush)";
  t.lanes[1] = "Stage A (aggregate)";
  t.spans.push_back(span("pipeline/aggregate", 0.0, 10.0, 1));
  t.spans.push_back(span("pipeline/aggregate", 22.0, 32.0, 1));
  t.spans.push_back(span("pipeline/apply", 12.0, 21.0, 0));
  t.spans.push_back(span("pipeline/apply", 34.0, 43.0, 0));
  t.spans.push_back(span("pipeline/prefetch_stall", 0.0, 12.0, 0));
  t.spans.push_back(span("pipeline/prefetch_stall", 21.0, 34.0, 0));
  return t;
}

TEST(TraceReport, OverlappedTraceScoresHighAndRecommendsPipelined) {
  const obs::ParsedTrace parsed =
      obs::parse_chrome_trace(export_json(overlapped_trace()));
  const obs::PipelineReport r = obs::analyze_pipeline_trace(parsed);

  EXPECT_NEAR(r.wall_ms, 30.0, 1e-6);
  EXPECT_NEAR(r.aggregate_ms, 30.0, 1e-6);
  EXPECT_NEAR(r.apply_ms, 27.0, 1e-6);
  // 27 of Stage B's 27 busy ms ran under a live aggregate span.
  EXPECT_NEAR(r.overlap_ms, 27.0, 1e-6);
  EXPECT_GT(r.overlap_fraction, 0.95);
  // No stall spans at all: the stages are balanced.
  EXPECT_EQ(r.bottleneck, "balanced");
  EXPECT_DOUBLE_EQ(r.backpressure_ms, 0.0);
  EXPECT_DOUBLE_EQ(r.prefetch_ms, 0.0);
  // Serial would pay 30 + 27 = 57 ms against the measured 30 ms wall.
  EXPECT_NEAR(r.serial_estimate_ms, 57.0, 1e-6);
  EXPECT_GT(r.speedup, 1.5);
  EXPECT_EQ(r.recommendation, "pipelined");

  // Lane stats: both stage lanes present, named, near-full utilization.
  ASSERT_EQ(r.lanes.size(), 2u);
  for (const obs::LaneStat& lane : r.lanes) {
    EXPECT_TRUE(lane.name == "Stage A (aggregate)" ||
                lane.name == "Stage B (apply+flush)");
    EXPECT_GT(lane.utilization, 0.85);
  }
}

TEST(TraceReport, SerializedTraceScoresLowAndRecommendsSerial) {
  const obs::ParsedTrace parsed =
      obs::parse_chrome_trace(export_json(serialized_trace()));
  const obs::PipelineReport r = obs::analyze_pipeline_trace(parsed);

  EXPECT_NEAR(r.wall_ms, 43.0, 1e-6);
  EXPECT_NEAR(r.aggregate_ms, 20.0, 1e-6);
  EXPECT_NEAR(r.apply_ms, 18.0, 1e-6);
  // The stages never ran concurrently.
  EXPECT_NEAR(r.overlap_ms, 0.0, 1e-6);
  EXPECT_LT(r.overlap_fraction, 0.05);
  // All stall time is the consumer starving on an empty queue.
  EXPECT_NEAR(r.prefetch_ms, 25.0, 1e-6);
  EXPECT_EQ(r.prefetch_count, 2u);
  EXPECT_DOUBLE_EQ(r.backpressure_ms, 0.0);
  EXPECT_EQ(r.bottleneck, "aggregate-bound");
  // Serial would pay 38 ms against the measured 43 ms wall: the pipeline
  // lost, and the verdict says so.
  EXPECT_NEAR(r.serial_estimate_ms, 38.0, 1e-6);
  EXPECT_LT(r.speedup, 0.95);
  EXPECT_EQ(r.recommendation, "serial");

  // Stall spans do not count toward lane busy time.
  for (const obs::LaneStat& lane : r.lanes)
    if (lane.name == "Stage B (apply+flush)")
      EXPECT_NEAR(lane.busy_ms, 18.0, 1e-6);
}

TEST(TraceReport, ReportJsonCarriesSchemaAndVerdictFields) {
  const obs::PipelineReport r = obs::analyze_pipeline_trace(
      obs::parse_chrome_trace(export_json(overlapped_trace())));
  std::ostringstream os;
  obs::write_pipeline_report_json(os, r);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"pipeline_report\""), std::string::npos);
  EXPECT_NE(json.find("\"overlap_fraction\""), std::string::npos);
  EXPECT_NE(json.find("\"bottleneck\": \"balanced\""), std::string::npos);
  EXPECT_NE(json.find("\"recommendation\": \"pipelined\""),
            std::string::npos);
  EXPECT_NE(json.find("\"Stage A (aggregate)\""), std::string::npos);
}

TEST(TraceReport, NestedPathsStillMatchStageLeaves) {
  // The simulator's spans nest under sim/run, so the recorded paths are
  // "sim/run/pipeline/apply" etc. — suffix matching must still bucket
  // them.
  obs::TraceSnapshot t;
  t.spans.push_back(span("sim/run/pipeline/aggregate", 0.0, 10.0, 1));
  t.spans.push_back(span("sim/run/pipeline/apply", 1.0, 10.0, 0));
  const obs::PipelineReport r = obs::analyze_pipeline_trace(
      obs::parse_chrome_trace(export_json(t)));
  EXPECT_NEAR(r.aggregate_ms, 10.0, 1e-6);
  EXPECT_NEAR(r.apply_ms, 9.0, 1e-6);
  EXPECT_NE(r.recommendation, "no-pipeline");
  // A name that merely ends with the words must NOT match.
  obs::TraceSnapshot bad;
  bad.spans.push_back(span("notpipeline/apply", 0.0, 10.0, 0));
  const obs::PipelineReport rb = obs::analyze_pipeline_trace(
      obs::parse_chrome_trace(export_json(bad)));
  EXPECT_EQ(rb.recommendation, "no-pipeline");
}

TEST(TraceReport, TraceWithoutPipelineSpansIsNoPipeline) {
  obs::TraceSnapshot t;
  t.spans.push_back(span("sim/run", 0.0, 100.0, 0));
  t.spans.push_back(span("pipeline/flush", 5.0, 6.0, 0));  // serial mode
  const obs::PipelineReport r = obs::analyze_pipeline_trace(
      obs::parse_chrome_trace(export_json(t)));
  EXPECT_EQ(r.bottleneck, "no-pipeline");
  EXPECT_EQ(r.recommendation, "no-pipeline");
  EXPECT_DOUBLE_EQ(r.overlap_fraction, 0.0);
}

TEST(TraceReport, EmptyTraceIsNoPipeline) {
  const obs::PipelineReport r = obs::analyze_pipeline_trace(
      obs::parse_chrome_trace(export_json(obs::TraceSnapshot{})));
  EXPECT_EQ(r.recommendation, "no-pipeline");
  EXPECT_DOUBLE_EQ(r.wall_ms, 0.0);
}

TEST(TraceReport, CounterAndWindowEventsAreCounted) {
  obs::TraceSnapshot t;
  t.spans.push_back(span("pipeline/aggregate", 0.0, 1.0, 1));
  t.spans.push_back(span("pipeline/apply", 1.0, 2.0, 0));
  t.counters.push_back({"pipeline/queue_depth", 0.5, 1.0});
  t.counters.push_back({"pipeline/windows_aggregated", 1.0, 1.0});
  t.counters.push_back({"pipeline/windows_aggregated", 2.0, 2.0});
  t.counters.push_back({"pipeline/windows_applied", 2.5, 1.0});
  const obs::ParsedTrace parsed = obs::parse_chrome_trace(export_json(t));
  // C events survive parsing with their values.
  std::size_t c_events = 0;
  for (const auto& e : parsed.events)
    if (e.ph == 'C') ++c_events;
  EXPECT_EQ(c_events, 4u);
  const obs::PipelineReport r = obs::analyze_pipeline_trace(parsed);
  // Window counts are the stage span counts.
  EXPECT_EQ(r.windows_aggregated, 1u);
  EXPECT_EQ(r.windows_applied, 1u);
}

TEST(TraceReport, TruncationMarkerSurvivesRoundTrip) {
  obs::TraceSnapshot t;
  t.spans.push_back(span("pipeline/aggregate", 0.0, 1.0, 1));
  t.dropped_spans = 7;
  const obs::ParsedTrace parsed = obs::parse_chrome_trace(export_json(t));
  EXPECT_TRUE(parsed.truncated);
  EXPECT_TRUE(obs::analyze_pipeline_trace(parsed).truncated);
}

TEST(TraceReport, MalformedJsonThrows) {
  EXPECT_THROW(obs::parse_chrome_trace("not json at all"),
               util::CheckFailure);
  EXPECT_THROW(obs::parse_chrome_trace("{\"events\": []}"),
               util::CheckFailure);
  // An X event missing its dur must be rejected, not silently zeroed.
  EXPECT_THROW(
      obs::parse_chrome_trace("{\"traceEvents\": [\n"
                              "  {\"name\": \"a\", \"ph\": \"X\", "
                              "\"ts\": 1.0, \"pid\": 0, \"tid\": 0}\n"
                              "]}\n"),
      util::CheckFailure);
}

}  // namespace
